"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table/figure of the paper and prints the
paper-style rows/series (run with ``pytest benchmarks/ --benchmark-only -s``
to see them). Timings measured by pytest-benchmark are the *harness* cost
(how long regenerating the experiment takes on this machine); the paper's
wall-clock numbers are the simulated outputs inside the printed tables.
"""

from __future__ import annotations

import pytest


def print_block(title: str, body: str) -> None:
    """Banner-print one regenerated artifact."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def code1_codebase():
    """One generated Code-1 source tree shared by Table I/II benches."""
    from repro.fortran.codebase import generate_mas_codebase

    return generate_mas_codebase()
