"""Critical-path observatory bench: attribution quality + analysis cost.

Runs the four-mode critical-path ablation
(:mod:`repro.experiments.critpath_ablation`) and the sync-vs-overlap
regression explanation, and gates the observatory's two contracts:

* the extracted critical path *tiles* the wall clock (coverage >= 99%:
  no double-charged or lost segments on any mode);
* the hierarchical explainer attributes the sync-vs-overlap wall delta
  to the MPI categories (>= 90% of the delta -- the optimization is a
  communication-schedule change, and the explainer must say so).

Results land in ``BENCH_critpath.json`` at the repo root.

Run with ``pytest benchmarks/bench_critpath.py -s``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import print_block

from repro.codes import CodeVersion, runtime_config_for
from repro.experiments.critpath_ablation import (
    MODES,
    render_critpath_ablation,
    run_critpath_ablation,
)
from repro.mas.model import MasModel, ModelConfig
from repro.obs.explain import explain_dirs
from repro.obs.telemetry import session
from repro.util.tables import Table

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_critpath.json"

STEPS = 2
SHAPE = (8, 6, 12)
RANKS = 2
PCG_ITERS = 4


def _telemetry_run(out_dir: Path, *, halo_overlap: bool) -> None:
    rt_cfg = runtime_config_for(CodeVersion.A)
    with session(out_dir):
        model = MasModel(
            ModelConfig(shape=SHAPE, num_ranks=RANKS, pcg_iters=PCG_ITERS,
                        sts_stages=3, halo_overlap=halo_overlap),
            rt_cfg,
        )
        model.run(STEPS)


def test_critpath_observatory(tmp_path, benchmark):
    t0 = time.perf_counter()
    ablation = benchmark.pedantic(
        lambda: run_critpath_ablation(
            num_ranks=RANKS, steps=STEPS, shape=SHAPE, pcg_iters=PCG_ITERS
        ),
        rounds=1, iterations=1,
    )
    ablation_seconds = time.perf_counter() - t0

    # sync-vs-overlap regression explanation on finalized directories
    # (the BENCH_halo scenario, read back through the artifact files).
    _telemetry_run(tmp_path / "sync", halo_overlap=False)
    _telemetry_run(tmp_path / "overlap", halo_overlap=True)
    t0 = time.perf_counter()
    exp = explain_dirs(tmp_path / "sync", tmp_path / "overlap")
    explain_seconds = time.perf_counter() - t0

    result = {
        "schema": "repro-bench-critpath/1",
        "config": {"steps": STEPS, "shape": list(SHAPE), "ranks": RANKS,
                   "pcg_iters": PCG_ITERS, "version": "A"},
        "modes": {
            mode: {
                "wall_seconds": r.wall,
                "path_seconds": r.path_total,
                "coverage": round(r.coverage, 6),
                "load_imbalance_ratio": round(r.load_imbalance_ratio, 4),
                "blame_shares": {
                    g: round(r.blame_share(g), 5) for g in r.by_blame
                },
            }
            for mode, r in ablation.results.items()
        },
        "explain": {
            "wall_delta_seconds": exp.wall_delta,
            "mpi_delta_seconds": exp.mpi_delta,
            "mpi_share_of_delta": round(exp.mpi_share_of_delta, 4),
        },
        "host_seconds": {
            "ablation_total": round(ablation_seconds, 3),
            "explain": round(explain_seconds, 3),
        },
    }
    ARTIFACT.write_text(json.dumps(result, indent=2) + "\n")

    t = Table(
        ["mode", "coverage", "halo share", "collectives share", "imbalance"],
        title="Critical-path attribution quality",
    )
    for mode, m in result["modes"].items():
        t.add_row([mode, f"{m['coverage'] * 100:.2f}%",
                   f"{m['blame_shares'].get('halo', 0.0) * 100:.2f}%",
                   f"{m['blame_shares'].get('collectives', 0.0) * 100:.2f}%",
                   m["load_imbalance_ratio"]])
    print_block(
        "CRITICAL-PATH OBSERVATORY",
        render_critpath_ablation(ablation) + "\n" + t.render() + "\n"
        + f"sync->overlap mpi share of wall delta: "
        f"{result['explain']['mpi_share_of_delta'] * 100:.1f}%\n"
        f"wrote {ARTIFACT}",
    )

    # acceptance: the path tiles the wall on every mode; overlapping the
    # exchange pushes halo blame under 5% of the path; and the explainer
    # pins the sync-vs-overlap delta on the MPI categories.
    for mode in MODES:
        assert result["modes"][mode]["coverage"] >= 0.99, mode
    sync_halo = ablation.blame_share("sync", "halo")
    overlap_halo = ablation.blame_share("overlap", "halo")
    assert overlap_halo < 0.05
    assert overlap_halo < sync_halo
    assert result["explain"]["mpi_share_of_delta"] >= 0.9
