"""Table II bench: regenerate the OpenACC directive census of Code 1."""

from conftest import print_block

from repro.experiments.table2 import PAPER_CENSUS, render_table2, run_table2


def test_table2_regeneration(benchmark):
    census = benchmark(run_table2)
    print_block(
        "TABLE II -- OpenACC directives in the original GPU branch",
        render_table2(census),
    )
    assert census == PAPER_CENSUS
    assert sum(census.values()) == 1458
