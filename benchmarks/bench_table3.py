"""Table III bench: CPU baseline wall-clock on Expanse EPYC nodes."""

from conftest import print_block

from repro.experiments.table3 import PAPER_TABLE3, render_table3, run_table3


def test_table3_regeneration(benchmark):
    result = benchmark(run_table3)
    print_block("TABLE III -- CPU wall clock (minutes)", render_table3(result))
    # absolute minutes within 2% of the paper
    for (nodes, version), paper in PAPER_TABLE3.items():
        assert abs(result.value(nodes, version) - paper) / paper < 0.02
    # headline: DC == OpenACC on CPUs
    assert result.dc_matches_openacc
