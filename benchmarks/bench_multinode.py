"""Extension bench: strong scaling beyond the paper's single node.

Carries the calibrated model to 8 nodes / 64 GPUs: intra-node NVLink,
inter-node Slingshot. Asserts the mechanisms (no paper numbers exist to
anchor against -- this is the paper's "scaling to dozens of GPUs" claim
made measurable).
"""

from conftest import print_block

from repro.codes import CodeVersion
from repro.experiments.multinode import render_multinode, run_multinode
from repro.perf.calibration import Calibration

CAL = Calibration(pcg_iters=4, sts_stages=4, bench_steps=1)


def test_multinode_extension(benchmark):
    result = benchmark.pedantic(
        lambda: run_multinode(calibration=CAL), rounds=1, iterations=1
    )
    print_block("EXTENSION -- multi-node scaling (8 -> 64 GPUs)", render_multinode(result))

    # manual-data code keeps scaling, but sub-linearly across the fabric
    assert 2.0 < result.speedup(CodeVersion.A, 64) < 8.0
    # every doubling still helps
    for a, b in ((8, 16), (16, 32), (32, 64)):
        assert result.wall(CodeVersion.A, b) < result.wall(CodeVersion.A, a)
    # the DC-sync code scales worse than OpenACC (launch gaps don't shrink)
    assert result.speedup(CodeVersion.AD, 64) < result.speedup(CodeVersion.A, 64)
    # the UM code is pinned by page migration
    assert result.speedup(CodeVersion.ADU, 64) < 2.0
