"""Ablation: asynchronous kernel launches (the second DC cost, SIV-B).

DC has no ``async`` clause, so every launch is a synchronous host round
trip. This sweep quantifies the loss as a function of kernel granularity.
"""

from conftest import print_block

from repro.runtime.stream import AsyncQueue
from repro.util.tables import Table


def run_async_ablation():
    q = AsyncQueue()
    t = Table(
        ["kernels", "body (us)", "async (us)", "sync (us)", "sync/async"],
        title="Async-launch ablation (sequence wall time)",
    )
    results = []
    for n in (10, 100, 1000):
        for body_us in (1.0, 10.0, 100.0):
            bodies = [body_us * 1e-6] * n
            a = q.simulate(bodies, async_launch=True).total_time
            s = q.simulate(bodies, async_launch=False).total_time
            t.add_row([n, body_us, a * 1e6, s * 1e6, s / a])
            results.append((body_us, a, s))
    return t, results


def test_async_ablation(benchmark):
    t, results = benchmark(run_async_ablation)
    print_block("ABLATION -- async vs synchronous launches", t.render())
    for body_us, a, s in results:
        assert a <= s
        if body_us <= 1.0:
            assert s / a > 2.0   # tiny kernels: sync launches dominate
        if body_us >= 100.0:
            assert s / a < 1.1   # long kernels: launch overhead hidden
