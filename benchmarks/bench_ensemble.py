"""Ensemble batching bench: member throughput and launch amortization.

Runs the same small multi-rank model as a batched ensemble at
B in {1, 2, 4, 8} and measures what the member axis buys: members/sec
(real wall-clock member-step throughput), kernel launches per member
(one batched launch moves every member, so per-member launches fall as
1/B), and the halo message count (packing all members per message keeps
it independent of B).  Results land in ``BENCH_ensemble.json`` at the
repo root so PRs can track the batching payoff like the other BENCH
artifacts.

Run with ``pytest benchmarks/bench_ensemble.py -s``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import print_block

from repro.codes import CodeVersion, runtime_config_for
from repro.mas.model import MasModel, ModelConfig
from repro.obs.telemetry import session
from repro.util.tables import Table

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_ensemble.json"

STEPS = 3
SHAPE = (8, 6, 12)
#: Per-member nominal (cost-model) grid, shrunk from the paper's
#: (150, 300, 800) so a B=8 batch fits the simulated 40 GB device.
NOMINAL = (150, 300, 96)
RANKS = 2
MEMBERS = (1, 2, 4, 8)


def _run_batch(members: int, out_dir: Path) -> dict:
    with session(out_dir) as tel:
        model = MasModel(
            ModelConfig(shape=SHAPE, nominal_shape=NOMINAL, num_ranks=RANKS,
                        pcg_iters=4, sts_stages=3, ensemble_size=members),
            runtime_config_for(CodeVersion.A),
        )
        t0 = time.perf_counter()
        model.run(STEPS)
        elapsed = time.perf_counter() - t0
        metrics = json.loads(tel.metrics.to_json_text())
    launches = sum(rt.stats.launches for rt in model.ranks)
    halo_msgs = sum(
        s["value"]
        for s in metrics.get("halo_messages_total", {}).get("samples", [])
        if "value" in s
    )
    return {
        "members": members,
        "elapsed_seconds": elapsed,
        "member_steps_per_sec": members * STEPS / elapsed,
        "launches": int(launches),
        "launches_per_member": launches / members,
        "halo_messages": int(halo_msgs),
        "sim_wall_seconds": max(rt.clock.now for rt in model.ranks),
    }


def test_ensemble_batching(tmp_path, benchmark):
    runs = benchmark.pedantic(
        lambda: {b: _run_batch(b, tmp_path / f"b{b}") for b in MEMBERS},
        rounds=1, iterations=1,
    )

    serial = runs[1]
    result = {
        "schema": "repro-bench-ensemble/1",
        "config": {"steps": STEPS, "shape": list(SHAPE), "ranks": RANKS,
                   "version": "A"},
        "batches": {},
    }
    for b in MEMBERS:
        r = runs[b]
        result["batches"][str(b)] = {
            "members": b,
            "member_steps_per_sec": round(r["member_steps_per_sec"], 2),
            "throughput_vs_serial": round(
                r["member_steps_per_sec"] / serial["member_steps_per_sec"], 3
            ),
            "launches": r["launches"],
            "launches_per_member": round(r["launches_per_member"], 2),
            "launch_amortization": round(
                serial["launches_per_member"] / r["launches_per_member"], 3
            ),
            "halo_messages": r["halo_messages"],
            "sim_wall_seconds": r["sim_wall_seconds"],
        }
    ARTIFACT.write_text(json.dumps(result, indent=2) + "\n")

    t = Table(
        ["B", "member-steps/s", "vs serial", "launches/member",
         "amortization", "halo msgs"],
        title=f"Ensemble batching, {STEPS} steps of {SHAPE} on {RANKS} ranks",
    )
    for b in MEMBERS:
        s = result["batches"][str(b)]
        t.add_row([b, s["member_steps_per_sec"], s["throughput_vs_serial"],
                   s["launches_per_member"], s["launch_amortization"],
                   s["halo_messages"]])
    print_block("ENSEMBLE BATCHING -- member-axis amortization",
                t.render() + f"\nwrote {ARTIFACT}")

    b8 = result["batches"]["8"]
    # batching must amortize launches >= 4x per member at B=8, keep the
    # MPI message count independent of B, and lift member throughput >= 3x
    assert b8["launch_amortization"] >= 4.0
    assert b8["halo_messages"] == serial["halo_messages"]
    assert b8["throughput_vs_serial"] >= 3.0
