"""Ablation: unified-memory effects, isolated one mechanism at a time.

The paper's SV-C control: "We confirmed this by running Code 1 (A) and
Code 2 (AD) with UM and got similar timings to Code 3 (ADU)" -- i.e. UM,
not DC, causes the slowdown. This bench reproduces that control and
sweeps the UM transport parameters.
"""

import pytest
from conftest import print_block

from repro.codes import CodeVersion, runtime_config_for
from repro.mas.model import MasModel, ModelConfig
from repro.perf.calibration import Calibration, MEASURE_SHAPE
from repro.util.tables import Table

FAST = Calibration(pcg_iters=3, sts_stages=3, bench_steps=2)


def _wall(rt_cfg, cal=FAST, **model_kw):
    m = MasModel(
        ModelConfig(
            shape=MEASURE_SHAPE, num_ranks=8,
            pcg_iters=cal.pcg_iters, sts_stages=cal.sts_stages,
            extra_model_arrays=67,
        ),
        rt_cfg,
        cost=cal.cost_model(),
        queue=cal.queue(),
        um_host_mpi_overhead=model_kw.pop("um_host_mpi_overhead", cal.um_host_mpi_overhead),
        um_page_amplification=model_kw.pop("um_page_amplification", cal.um_page_amplification),
        halo_pack_inefficiency=cal.halo_pack_inefficiency,
        halo_buffer_init_fraction=cal.halo_buffer_init_fraction,
        rank_jitter=cal.rank_jitter,
    )
    m.run(1)
    ts = m.run(cal.bench_steps)
    return sum(t.wall for t in ts) / len(ts)


def run_um_control():
    """Code 1 and Code 2 with UM enabled vs Code 3."""
    rows = {}
    rows["code1_manual"] = _wall(runtime_config_for(CodeVersion.A))
    rows["code1_um"] = _wall(runtime_config_for(CodeVersion.A).with_unified_memory())
    rows["code2_um"] = _wall(runtime_config_for(CodeVersion.AD).with_unified_memory())
    rows["code3_adu"] = _wall(runtime_config_for(CodeVersion.ADU))
    return rows


def test_um_is_the_culprit_not_dc(benchmark):
    rows = benchmark.pedantic(run_um_control, rounds=1, iterations=1)
    t = Table(["run", "step wall (ms)"], title="UM control experiment (SV-C)")
    for k, v in rows.items():
        t.add_row([k, v * 1e3])
    print_block("ABLATION -- UM control: Code 1/2 + UM vs Code 3", t.render())
    # Code 1 with UM lands near Code 3, far above manual Code 1
    assert rows["code1_um"] == pytest.approx(rows["code3_adu"], rel=0.10)
    assert rows["code2_um"] == pytest.approx(rows["code3_adu"], rel=0.10)
    assert rows["code1_um"] > 1.5 * rows["code1_manual"]


def run_um_parameter_sweep():
    cfg = runtime_config_for(CodeVersion.ADU)
    out = []
    for amp in (1.0, 2.0, 4.0):
        out.append(("page_amplification", amp, _wall(cfg, um_page_amplification=amp)))
    for ovh in (10e-6, 40e-6, 160e-6):
        out.append(("host_mpi_overhead", ovh, _wall(cfg, um_host_mpi_overhead=ovh)))
    return out


def test_um_parameter_sensitivity(benchmark):
    rows = benchmark.pedantic(run_um_parameter_sweep, rounds=1, iterations=1)
    t = Table(["parameter", "value", "step wall (ms)"],
              title="UM transport parameter sweep (8 GPUs)")
    for name, val, wall in rows:
        t.add_row([name, val, wall * 1e3])
    print_block("ABLATION -- UM transport parameters", t.render())
    # walls must be monotone in each parameter
    amps = [w for n, _v, w in rows if n == "page_amplification"]
    ovhs = [w for n, _v, w in rows if n == "host_mpi_overhead"]
    assert amps == sorted(amps)
    assert ovhs == sorted(ovhs)
