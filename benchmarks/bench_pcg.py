"""PCG solver-family bench: communication avoidance and preconditioning.

Runs the same small multi-rank model under every PCG variant (classic,
Chronopoulos-Gear ``ca``, pipelined) and compares the fused-reduction
payoff: allreduce calls per solve, simulated MPI seconds, and the
solution deviation from the classic reference.  A dense-operator solve
also measures how many iterations the Chebyshev polynomial
preconditioner saves over plain Jacobi at a fixed tolerance.  Results
land in ``BENCH_pcg.json`` at the repo root so PRs can track the
communication model like the other BENCH artifacts.

Run with ``pytest benchmarks/bench_pcg.py -s``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
from conftest import print_block

from repro.codes import CodeVersion, runtime_config_for
from repro.mas.model import MasModel, ModelConfig
from repro.mas.pcg import (
    PCG_VARIANTS,
    chebyshev_preconditioner,
    jacobi_preconditioner,
    numpy_combine,
    numpy_dot,
    pcg_solve,
)
from repro.obs.telemetry import session
from repro.util.tables import Table

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_pcg.json"

STEPS = 2
SHAPE = (8, 6, 12)
RANKS = 2
PCG_ITERS = 4


def _run_variant(variant: str, out_dir: Path) -> dict:
    with session(out_dir) as tel:
        model = MasModel(
            ModelConfig(shape=SHAPE, num_ranks=RANKS, pcg_iters=PCG_ITERS,
                        pcg_variant=variant, sts_stages=3),
            runtime_config_for(CodeVersion.A),
        )
        model.run(STEPS)
        metrics = json.loads(tel.metrics.to_json_text())
    calls = sum(
        s["value"]
        for s in metrics["pcg_allreduce_calls_total"]["samples"]
        if "value" in s
    )
    solves = sum(
        s["value"]
        for s in metrics["pcg_solves_total"]["samples"]
        if "value" in s
    )
    return {
        "allreduce_calls": int(calls),
        "solves": int(solves),
        "calls_per_solve": calls / solves,
        "sim_mpi_seconds": max(rt.clock.mpi_time for rt in model.ranks),
        "sim_wall_seconds": max(rt.clock.now for rt in model.ranks),
        "states": [
            {f: s.get(f).copy() for f in ("vr", "vt", "vp")}
            for s in model.states
        ],
    }


def _max_rel_dev(ref: dict, got: dict) -> float:
    dev = 0.0
    for s_ref, s_got in zip(ref["states"], got["states"]):
        for f, a in s_ref.items():
            b = s_got[f]
            scale = max(float(np.max(np.abs(a))), 1e-30)
            dev = max(dev, float(np.max(np.abs(a - b))) / scale)
    return dev


def _dense_precond_iterations() -> dict:
    """Iterations to 1e-10 on a dense SPD operator, jacobi vs cheby."""
    rng = np.random.default_rng(7)
    n = 48
    m = rng.standard_normal((n, n))
    a_mat = m @ m.T + n * np.eye(n)
    b = rng.standard_normal(n)
    diag = np.diag(a_mat).copy()
    ev = np.linalg.eigvalsh(np.diag(1.0 / np.sqrt(diag)) @ a_mat
                            @ np.diag(1.0 / np.sqrt(diag)))

    def apply_a(v):
        return [a_mat @ v[0]]

    counts = {}
    for name, precond in (
        ("jacobi", jacobi_preconditioner([diag])),
        ("cheby", chebyshev_preconditioner(
            apply_a, [1.0 / diag], degree=4,
            lam_min=float(ev.min()), lam_max=float(ev.max()),
        )),
    ):
        res = pcg_solve(apply_a, [b.copy()], [np.zeros(n)], dot=numpy_dot,
                        precondition=precond, combine=numpy_combine,
                        iterations=200, tol=1e-10)
        assert res.converged, name
        counts[name] = res.iterations
    return counts


def test_pcg_variants(tmp_path, benchmark):
    runs = benchmark.pedantic(
        lambda: {v: _run_variant(v, tmp_path / v) for v in PCG_VARIANTS},
        rounds=1, iterations=1,
    )
    precond_iters = _dense_precond_iterations()

    classic = runs["classic"]
    result = {
        "schema": "repro-bench-pcg/1",
        "config": {"steps": STEPS, "shape": list(SHAPE), "ranks": RANKS,
                   "pcg_iters": PCG_ITERS, "version": "A"},
        "variants": {},
        "precond_iterations_to_1e-10": precond_iters,
        "cheby_iteration_savings": 1.0 - (
            precond_iters["cheby"] / precond_iters["jacobi"]
        ),
    }
    for v in PCG_VARIANTS:
        r = runs[v]
        result["variants"][v] = {
            "allreduce_calls": r["allreduce_calls"],
            "calls_per_solve": round(r["calls_per_solve"], 3),
            "sim_mpi_seconds": r["sim_mpi_seconds"],
            "sim_wall_seconds": r["sim_wall_seconds"],
            "allreduce_reduction_vs_classic": round(
                classic["allreduce_calls"] / r["allreduce_calls"], 3
            ),
            "max_rel_deviation_vs_classic": _max_rel_dev(classic, r),
        }
    ARTIFACT.write_text(json.dumps(result, indent=2) + "\n")

    t = Table(
        ["variant", "allreduce calls", "calls/solve", "sim mpi (ms)",
         "max rel dev vs classic"],
        title=f"PCG variants, {STEPS} steps of {SHAPE} on {RANKS} ranks",
    )
    for v in PCG_VARIANTS:
        s = result["variants"][v]
        t.add_row([v, s["allreduce_calls"], s["calls_per_solve"],
                   s["sim_mpi_seconds"] * 1e3,
                   s["max_rel_deviation_vs_classic"]])
    print_block(
        "PCG SOLVER FAMILY -- communication avoidance",
        t.render() + "\n"
        + f"cheby vs jacobi to 1e-10: {precond_iters['cheby']} vs "
        f"{precond_iters['jacobi']} iterations "
        f"({result['cheby_iteration_savings'] * 100:.0f}% saved)\n"
        f"wrote {ARTIFACT}",
    )

    # the communication-avoiding variants must at least halve the
    # allreduce count and reproduce the classic solution
    for v in ("ca", "pipelined"):
        s = result["variants"][v]
        assert s["allreduce_reduction_vs_classic"] >= 2.0, v
        assert s["max_rel_deviation_vs_classic"] < 1e-10, v
        assert s["sim_mpi_seconds"] < classic["sim_mpi_seconds"], v
    assert precond_iters["cheby"] < precond_iters["jacobi"]
