"""Fig. 2 bench: wall-clock vs GPU count for all six code versions.

Shape requirements asserted (who wins, by how much, where scaling bends);
absolute minutes come from the calibrated machine model and are printed
next to the paper's 1- and 8-GPU anchors.
"""

import pytest
from conftest import print_block

from repro.codes import CodeVersion
from repro.experiments.fig2 import PAPER_WALL, render_fig2, run_fig2

UM = (CodeVersion.ADU, CodeVersion.AD2XU, CodeVersion.D2XU)
MANUAL = (CodeVersion.A, CodeVersion.AD, CodeVersion.D2XAD)


def test_fig2_regeneration(benchmark):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    print_block("FIG. 2 -- wall clock vs # A100 GPUs", render_fig2(result))

    # anchors within 15% of the paper at both ends of every curve
    for v, anchors in PAPER_WALL.items():
        for n, paper in anchors.items():
            assert result.wall(v, n) == pytest.approx(paper, rel=0.15), (v, n)

    # orderings
    for n in (1, 2, 4, 8):
        assert result.wall(CodeVersion.A, n) <= min(
            result.wall(v, n) for v in CodeVersion if v in PAPER_WALL
        ) * 1.001

    # super scaling then dip for the manual-data codes
    for v in MANUAL:
        s = result.series[v]
        assert s.speedup(2) > 2.0
        assert s.speedup(8) > 7.0
        assert s.wall(4) / s.wall(8) < 2.0

    # the abstract's slowdown band for the zero-directive code
    assert 1.25 < result.slowdown_vs_code1(CodeVersion.D2XU, 8) < 3.2
