"""Synthesis bench: directive count vs performance across all versions.

Asserts the paper's bottom line (SVI): the DC + manual-data codes
(Codes 2 and 6) are on the Pareto front -- far fewer directives at
near-original performance -- while the zero-directive route currently
pays the UM toll.
"""

from conftest import print_block

from repro.codes import CodeVersion
from repro.experiments.tradeoff import render_tradeoff, run_tradeoff
from repro.perf.calibration import Calibration

CAL = Calibration(pcg_iters=3, sts_stages=3, bench_steps=1)


def test_tradeoff_synthesis(benchmark):
    result = benchmark.pedantic(
        lambda: run_tradeoff(8, calibration=CAL), rounds=1, iterations=1
    )
    print_block("SYNTHESIS -- directives vs performance", render_tradeoff(result))

    front = result.pareto_front()
    # Code 1 anchors the performance end of the front
    assert CodeVersion.A in front
    # the paper's recommended middle grounds make the front too
    assert CodeVersion.AD in front or CodeVersion.D2XAD in front
    # the zero-directive code anchors the directive end (nothing has fewer)
    assert CodeVersion.D2XU in front
    # the front is a genuine trade-off: as directive counts rise along it,
    # wall time strictly falls (front is ordered by ascending acc lines)
    pts = [result.points[v] for v in front]
    accs = [p.acc_lines for p in pts]
    walls = [p.wall_minutes for p in pts]
    assert accs == sorted(accs)
    assert walls == sorted(walls, reverse=True)
