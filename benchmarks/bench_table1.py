"""Table I bench: regenerate the six-version porting summary.

Runs the full source-transformation pipeline (generate Code 1, derive
Codes 0 and 2-6) and prints measured-vs-paper line counts. The measured
counts must equal the paper's exactly -- asserted here, recorded in
EXPERIMENTS.md.
"""

from conftest import print_block

from repro.experiments.table1 import render_table1, run_table1


def test_table1_regeneration(benchmark):
    rows = benchmark(run_table1)
    print_block("TABLE I -- summary of all MAS code versions", render_table1(rows))
    for row in rows:
        assert row.total_matches, f"{row.tag}: {row.total_lines} != paper"
        assert row.acc_matches, f"{row.tag}: {row.acc_lines} != paper"
