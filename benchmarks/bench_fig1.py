"""Fig. 1 bench: the test-case solution visualization.

Runs the coronal relaxation and renders the temperature cuts of the
paper's Fig. 1; asserts the solution is a physically sane corona.
"""

from conftest import print_block

from repro.experiments.fig1 import render_fig1, run_fig1


def test_fig1_regeneration(benchmark):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    print_block("FIG. 1 -- MAS solution visualization (temperature cuts)", render_fig1(result))

    assert result.corona_heated       # heating produced hot structures
    assert result.stratified          # real spatial structure, not noise
    assert result.diagnostics["max_divb"] < 1e-11   # CT held
    assert result.diagnostics["max_vr"] > 0         # outflow developing
    assert result.meridional_temp.min() > 0         # floors held
