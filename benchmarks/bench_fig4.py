"""Fig. 4 bench: NSIGHT-style viscosity-solver timeline, manual vs UM."""

from conftest import print_block

from repro.experiments.fig4 import render_fig4, run_fig4


def test_fig4_regeneration(benchmark):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    print_block("FIG. 4 -- viscosity solver timeline (8 A100s)", render_fig4(result))

    # the paper's ~3x per-iteration UM penalty (we accept 2x-4x)
    assert 2.0 < result.um_slowdown < 4.0
    # manual data: peer-to-peer transfers only
    assert result.manual_p2p_events > 0
    assert result.manual_staged_events == 0
    # UM: many CPU<->GPU migrations per exchange
    assert result.um_staged_events > result.manual_p2p_events
