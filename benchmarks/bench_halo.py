"""Overlapped-halo + cross-region-fusion bench.

Runs the same small multi-rank Code-1 model in three modes -- the paper's
bulk-synchronous exchange, overlapped exchange with interior/boundary
stencil splitting, and overlap plus the cross-region launch-fusion
window -- and compares the paid halo seconds (vs hidden), the per-step
MPI share, and the plain-category kernel launches per step.  States must
stay bit-identical: both features move cost only.  Results land in
``BENCH_halo.json`` at the repo root so PRs can track the overlap model
like the other BENCH artifacts.

Run with ``pytest benchmarks/bench_halo.py -s``.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import numpy as np
from conftest import print_block

from repro.codes import CodeVersion, runtime_config_for
from repro.mas.model import MasModel, ModelConfig
from repro.obs.telemetry import session
from repro.util.tables import Table

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_halo.json"

STEPS = 2
SHAPE = (8, 6, 12)
RANKS = 2
PCG_ITERS = 4

MODES = {
    "sync": dict(halo_overlap=False, fuse=False),
    "overlap": dict(halo_overlap=True, fuse=False),
    "fusion": dict(halo_overlap=False, fuse=True),
    "overlap+fusion": dict(halo_overlap=True, fuse=True),
}

STATE_FIELDS = ("rho", "temp", "vr", "vt", "vp", "br", "bt", "bp")


def _metric_sum(metrics: dict, name: str, **label_filter) -> float:
    fam = metrics.get(name, {})
    return sum(
        s["value"]
        for s in fam.get("samples", [])
        if "value" in s
        and all(s["labels"].get(k) == v for k, v in label_filter.items())
    )


def _run_mode(halo_overlap: bool, fuse: bool, out_dir: Path) -> dict:
    rt_cfg = runtime_config_for(CodeVersion.A)
    if fuse:
        rt_cfg = replace(rt_cfg, cross_region_fusion=True)
    with session(out_dir) as tel:
        model = MasModel(
            ModelConfig(shape=SHAPE, num_ranks=RANKS, pcg_iters=PCG_ITERS,
                        sts_stages=3, halo_overlap=halo_overlap),
            rt_cfg,
        )
        timings = model.run(STEPS)
        metrics = json.loads(tel.metrics.to_json_text())
    wall = sum(t.wall for t in timings)
    mpi = sum(t.mpi for t in timings)
    return {
        "paid_halo_seconds": _metric_sum(metrics, "halo_exchange_seconds"),
        "hidden_halo_seconds": _metric_sum(metrics, "halo_overlap_seconds"),
        "plain_launches": int(
            _metric_sum(metrics, "kernel_launches_total", category="plain")
        ),
        "sim_wall_seconds": wall,
        "sim_mpi_seconds": mpi,
        "mpi_share": mpi / wall,
        "launches_per_step": sum(t.launches for t in timings) / len(timings),
        "states": [
            {f: s.get(f).copy() for f in STATE_FIELDS} for s in model.states
        ],
    }


def _bit_identical(ref: dict, got: dict) -> bool:
    return all(
        np.array_equal(s_ref[f], s_got[f])
        for s_ref, s_got in zip(ref["states"], got["states"])
        for f in s_ref
    )


def test_halo_overlap_and_fusion(tmp_path, benchmark):
    runs = benchmark.pedantic(
        lambda: {
            mode: _run_mode(cfg["halo_overlap"], cfg["fuse"], tmp_path / mode)
            for mode, cfg in MODES.items()
        },
        rounds=1, iterations=1,
    )
    sync = runs["sync"]

    result = {
        "schema": "repro-bench-halo/1",
        "config": {"steps": STEPS, "shape": list(SHAPE), "ranks": RANKS,
                   "pcg_iters": PCG_ITERS, "version": "A"},
        "modes": {},
    }
    for mode, r in runs.items():
        result["modes"][mode] = {
            "paid_halo_seconds": r["paid_halo_seconds"],
            "hidden_halo_seconds": r["hidden_halo_seconds"],
            "hidden_fraction": (
                r["hidden_halo_seconds"]
                / (r["paid_halo_seconds"] + r["hidden_halo_seconds"])
                if r["hidden_halo_seconds"] else 0.0
            ),
            "plain_launches": r["plain_launches"],
            "launches_per_step": r["launches_per_step"],
            "sim_wall_seconds": r["sim_wall_seconds"],
            "sim_mpi_seconds": r["sim_mpi_seconds"],
            "mpi_share": round(r["mpi_share"], 5),
            "bit_identical_to_sync": _bit_identical(sync, r),
        }
    result["paid_halo_reduction"] = (
        sync["paid_halo_seconds"] / runs["overlap"]["paid_halo_seconds"]
    )
    result["plain_launch_reduction"] = (
        sync["plain_launches"] / runs["fusion"]["plain_launches"]
    )
    ARTIFACT.write_text(json.dumps(result, indent=2) + "\n")

    t = Table(
        ["mode", "paid halo (ms)", "hidden (ms)", "plain launches",
         "mpi share", "sim wall (ms)"],
        title=f"Halo overlap/fusion, {STEPS} steps of {SHAPE} on {RANKS} ranks",
    )
    for mode, s in result["modes"].items():
        t.add_row([mode, s["paid_halo_seconds"] * 1e3,
                   s["hidden_halo_seconds"] * 1e3, s["plain_launches"],
                   f"{s['mpi_share'] * 100:.2f}%",
                   s["sim_wall_seconds"] * 1e3])
    print_block(
        "HALO OVERLAP + CROSS-REGION FUSION",
        t.render() + "\n"
        + f"paid halo seconds reduction (sync/overlap): "
        f"{result['paid_halo_reduction']:.1f}x\n"
        f"plain launch reduction (sync/fusion): "
        f"{result['plain_launch_reduction']:.2f}x\n"
        f"wrote {ARTIFACT}",
    )

    # acceptance: overlap halves the paid exchange cost, fusion halves the
    # plain launch stream, and neither changes a single bit of state
    for mode in ("overlap", "fusion", "overlap+fusion"):
        assert result["modes"][mode]["bit_identical_to_sync"], mode
        assert runs[mode]["sim_wall_seconds"] < sync["sim_wall_seconds"], mode
    assert result["paid_halo_reduction"] >= 2.0
    assert result["plain_launch_reduction"] >= 2.0
    assert runs["overlap"]["hidden_halo_seconds"] > 0
