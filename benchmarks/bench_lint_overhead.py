"""Lint-stack overhead benches: shadow checker and interproc summaries.

``test_shadow_overhead`` measures the host wall-clock of a small run
three ways -- checker detached (the default ``self._shadow is None``
fast path), checker attached with footprint fingerprinting on, and
attached with fingerprinting off (residency/race checks only) -- plus
the raw cost of one detached dispatch check. The ISSUE acceptance bound
is the detached fraction < 1%.

``test_interproc_summary_cache`` measures the whole-program summary
pass of ``repro.analysis.interproc`` cold, warm (content-hash cache),
and incrementally after a one-routine edit, plus the re-lint speedup
the warm cache buys ``analyze_codebase``.

Both merge their results into ``BENCH_lint.json`` at the repo root.
Run with ``pytest benchmarks/bench_lint_overhead.py -s``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import print_block

from repro.analysis.shadow import ShadowChecker
from repro.codes import CodeVersion, runtime_config_for
from repro.mas.model import MasModel, ModelConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_lint.json"

STEPS = 3
SHAPE = (8, 6, 8)
RANKS = 2


def _merge_artifact(update: dict) -> None:
    doc = {"schema": "repro-bench-lint/1"}
    if ARTIFACT.exists():
        doc.update(json.loads(ARTIFACT.read_text()))
    doc.update(update)
    ARTIFACT.write_text(json.dumps(doc, indent=2) + "\n")


def _model() -> MasModel:
    return MasModel(
        ModelConfig(shape=SHAPE, num_ranks=RANKS, pcg_iters=2,
                    sts_stages=2, extra_model_arrays=0),
        runtime_config_for(CodeVersion.A),
    )


def _run(model: MasModel) -> int:
    launches = 0
    for t in model.run(STEPS):
        launches += t.launches
    return launches


def _timed(fn) -> tuple[float, int]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _check_ns(model: MasModel, n: int = 200000) -> float:
    """Nanoseconds for one detached dispatch check (attribute test)."""
    rt = model.ranks[0]
    t0 = time.perf_counter()
    for _ in range(n):
        if rt._shadow is not None:
            raise AssertionError("checker must be detached")
    return (time.perf_counter() - t0) / n * 1e9


def test_shadow_overhead(benchmark):
    _run(_model())  # warm numpy/import caches before timing

    detached_s, launches = benchmark.pedantic(
        lambda: _timed(lambda: _run(_model())), rounds=1, iterations=1
    )

    def attached_run(check_footprint: bool) -> int:
        model = _model()
        for rt in model.ranks:
            rt.attach_shadow(ShadowChecker(check_footprint=check_footprint))
        return _run(model)

    full_s, _ = _timed(lambda: attached_run(True))
    light_s, _ = _timed(lambda: attached_run(False))

    check_ns = _check_ns(_model())
    # one launch-time check + one body wrap per dispatch
    detached_fraction = launches * 2 * check_ns * 1e-9 / detached_s
    result = {
        "config": {"steps": STEPS, "shape": list(SHAPE), "ranks": RANKS,
                   "version": "A"},
        "kernel_launches": launches,
        "detached_seconds": detached_s,
        "attached_light_seconds": light_s,
        "attached_full_seconds": full_s,
        "attached_full_overhead_fraction": full_s / detached_s - 1.0,
        "detached_check_ns": check_ns,
        "detached_check_calls_per_run": launches * 2,
        "detached_overhead_fraction": detached_fraction,
    }
    _merge_artifact(result)

    print_block(
        "SHADOW CHECKER OVERHEAD -- attached vs detached",
        "\n".join(
            [
                f"detached run          {detached_s * 1e3:8.1f} ms "
                f"({launches} launches)",
                f"attached (no prints)  {light_s * 1e3:8.1f} ms "
                f"(residency+races)",
                f"attached (full)       {full_s * 1e3:8.1f} ms "
                f"({result['attached_full_overhead_fraction'] * 100:+.1f}%, "
                f"fingerprinting on)",
                f"detached check        {check_ns:8.1f} ns/call -> "
                f"{detached_fraction * 100:.3f}% of a run",
                f"wrote {ARTIFACT}",
            ]
        ),
    )

    # ISSUE acceptance: the disabled path must stay under 1%
    assert detached_fraction < 0.01


def test_interproc_summary_cache(benchmark):
    from repro.analysis.fortran_lint import analyze_codebase
    from repro.analysis.interproc import clear_summary_cache, summarize
    from repro.fortran.codebase import generate_mas_codebase
    from repro.fortran.pipeline import build_version

    cb = build_version(CodeVersion.A, code1=generate_mas_codebase())

    clear_summary_cache()
    cold_s, cold = benchmark.pedantic(
        lambda: _timed(lambda: summarize(cb)), rounds=1, iterations=1
    )
    assert cold.stats.hits == 0

    warm_s, warm = _timed(lambda: summarize(cb))
    assert warm.stats.misses == 0

    # touch one routine body: only it and its callers should recompute
    target = cb.files[0]
    for i, ln in enumerate(target.lines):
        stripped = ln.strip()
        if "=" in stripped and not stripped.startswith("!"):
            target.lines[i] = f"{ln}  ! bench: touched"
            break
    incr_s, incr = _timed(lambda: summarize(cb))
    assert 0 < incr.stats.misses < len(incr.summaries)

    # re-lint speedup: the summary pass is the only cross-file stage of
    # analyze_codebase, so a warm cache shrinks the whole lint
    clear_summary_cache()
    relint_cold_s, _ = _timed(lambda: analyze_codebase(cb))
    relint_warm_s, _ = _timed(lambda: analyze_codebase(cb))

    result = {
        "interproc": {
            "routines": len(cold.summaries),
            "summarize_cold_seconds": cold_s,
            "summarize_warm_seconds": warm_s,
            "summarize_incremental_seconds": incr_s,
            "incremental_recomputed": incr.stats.misses,
            "relint_cold_seconds": relint_cold_s,
            "relint_warm_seconds": relint_warm_s,
            "relint_speedup": relint_cold_s / relint_warm_s,
        }
    }
    _merge_artifact(result)

    print_block(
        "INTERPROC SUMMARIES -- cold vs cached vs incremental",
        "\n".join(
            [
                f"summarize cold        {cold_s * 1e3:8.1f} ms "
                f"({len(cold.summaries)} routines)",
                f"summarize warm        {warm_s * 1e3:8.1f} ms "
                f"(all {warm.stats.hits} cached)",
                f"summarize after edit  {incr_s * 1e3:8.1f} ms "
                f"({incr.stats.misses} recomputed)",
                f"re-lint cold          {relint_cold_s * 1e3:8.1f} ms",
                f"re-lint warm          {relint_warm_s * 1e3:8.1f} ms "
                f"({relint_cold_s / relint_warm_s:.2f}x)",
                f"wrote {ARTIFACT}",
            ]
        ),
    )
