"""Shadow-checker overhead bench: attached vs detached dispatcher.

Measures the host wall-clock of a small run three ways -- checker
detached (the default ``self._shadow is None`` fast path), checker
attached with footprint fingerprinting on, and attached with
fingerprinting off (residency/race checks only) -- plus the raw cost of
one detached dispatch check. Results land in ``BENCH_lint.json`` at the
repo root; the ISSUE acceptance bound is the detached fraction < 1%.

Run with ``pytest benchmarks/bench_lint_overhead.py -s``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import print_block

from repro.analysis.shadow import ShadowChecker
from repro.codes import CodeVersion, runtime_config_for
from repro.mas.model import MasModel, ModelConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_lint.json"

STEPS = 3
SHAPE = (8, 6, 8)
RANKS = 2


def _model() -> MasModel:
    return MasModel(
        ModelConfig(shape=SHAPE, num_ranks=RANKS, pcg_iters=2,
                    sts_stages=2, extra_model_arrays=0),
        runtime_config_for(CodeVersion.A),
    )


def _run(model: MasModel) -> int:
    launches = 0
    for t in model.run(STEPS):
        launches += t.launches
    return launches


def _timed(fn) -> tuple[float, int]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _check_ns(model: MasModel, n: int = 200000) -> float:
    """Nanoseconds for one detached dispatch check (attribute test)."""
    rt = model.ranks[0]
    t0 = time.perf_counter()
    for _ in range(n):
        if rt._shadow is not None:
            raise AssertionError("checker must be detached")
    return (time.perf_counter() - t0) / n * 1e9


def test_shadow_overhead(benchmark):
    _run(_model())  # warm numpy/import caches before timing

    detached_s, launches = benchmark.pedantic(
        lambda: _timed(lambda: _run(_model())), rounds=1, iterations=1
    )

    def attached_run(check_footprint: bool) -> int:
        model = _model()
        for rt in model.ranks:
            rt.attach_shadow(ShadowChecker(check_footprint=check_footprint))
        return _run(model)

    full_s, _ = _timed(lambda: attached_run(True))
    light_s, _ = _timed(lambda: attached_run(False))

    check_ns = _check_ns(_model())
    # one launch-time check + one body wrap per dispatch
    detached_fraction = launches * 2 * check_ns * 1e-9 / detached_s
    result = {
        "schema": "repro-bench-lint/1",
        "config": {"steps": STEPS, "shape": list(SHAPE), "ranks": RANKS,
                   "version": "A"},
        "kernel_launches": launches,
        "detached_seconds": detached_s,
        "attached_light_seconds": light_s,
        "attached_full_seconds": full_s,
        "attached_full_overhead_fraction": full_s / detached_s - 1.0,
        "detached_check_ns": check_ns,
        "detached_check_calls_per_run": launches * 2,
        "detached_overhead_fraction": detached_fraction,
    }
    ARTIFACT.write_text(json.dumps(result, indent=2) + "\n")

    print_block(
        "SHADOW CHECKER OVERHEAD -- attached vs detached",
        "\n".join(
            [
                f"detached run          {detached_s * 1e3:8.1f} ms "
                f"({launches} launches)",
                f"attached (no prints)  {light_s * 1e3:8.1f} ms "
                f"(residency+races)",
                f"attached (full)       {full_s * 1e3:8.1f} ms "
                f"({result['attached_full_overhead_fraction'] * 100:+.1f}%, "
                f"fingerprinting on)",
                f"detached check        {check_ns:8.1f} ns/call -> "
                f"{detached_fraction * 100:.3f}% of a run",
                f"wrote {ARTIFACT}",
            ]
        ),
    )

    # ISSUE acceptance: the disabled path must stay under 1%
    assert detached_fraction < 0.01
