"""Ablation: the working-set locality model behind Fig. 2's super scaling.

The paper observes Codes 1/2/6 scaling *better than ideal* at 2-4 GPUs.
Our machine model attributes that to sustained bandwidth rising as the
per-GPU working set shrinks (cache/TLB behaviour). This ablation turns
the locality gain off and shows super scaling disappears -- evidence the
model's explanation is load-bearing, not incidental.
"""

from conftest import print_block

from repro.codes import CodeVersion, runtime_config_for
from repro.machine.gpu import LocalityModel
from repro.machine.node import make_delta_node
from repro.mas.model import MasModel, ModelConfig
from repro.perf.calibration import Calibration, MEASURE_SHAPE
from repro.util.tables import Table

CAL = Calibration(pcg_iters=3, sts_stages=3, bench_steps=1)


def _wall(num_ranks: int, gain: float, pressure: float) -> float:
    from dataclasses import replace

    node = make_delta_node()
    for d in node.gpus:
        d.locality = LocalityModel(gain=gain)
    m = MasModel(
        ModelConfig(
            shape=MEASURE_SHAPE, num_ranks=num_ranks,
            pcg_iters=CAL.pcg_iters, sts_stages=CAL.sts_stages,
            extra_model_arrays=67,
        ),
        runtime_config_for(CodeVersion.A),
        node=node,
        cost=replace(CAL.cost_model(), mpi_buffer_pressure=pressure),
        queue=CAL.queue(),
        halo_pack_inefficiency=CAL.halo_pack_inefficiency,
        halo_buffer_init_fraction=CAL.halo_buffer_init_fraction,
        rank_jitter=CAL.rank_jitter,
    )
    m.run(1)
    ts = m.run(CAL.bench_steps)
    return sum(t.wall for t in ts) / len(ts)


def run_locality_ablation():
    """Both working-set mechanisms scale together: the bandwidth boost on
    compute kernels and the memory-pressure relief on buffer kernels."""
    rows = []
    for gain, pressure in ((0.0, 0.0), (0.07, 1.5), (0.14, 3.0)):
        w1 = _wall(1, gain, pressure)
        w2 = _wall(2, gain, pressure)
        w4 = _wall(4, gain, pressure)
        rows.append((gain, w1 / w2, w1 / w4))
    return rows


def test_locality_gain_drives_super_scaling(benchmark):
    rows = benchmark.pedantic(run_locality_ablation, rounds=1, iterations=1)
    t = Table(
        ["working-set effects (gain)", "speedup 1->2", "speedup 1->4"],
        title="Super-scaling ablation (Code 1; pressure scales with gain)",
    )
    for gain, s2, s4 in rows:
        t.add_row([gain, s2, s4])
    print_block("ABLATION -- working-set locality vs super scaling", t.render())

    no_gain, _mid, full = rows[0], rows[1], rows[2]
    # without the locality boost, scaling is sub-linear (overheads only)
    assert no_gain[1] < 2.0 and no_gain[2] < 4.0
    # with the calibrated gain, the paper's super scaling appears
    assert full[1] > 2.0 and full[2] > 4.0
    # and the effect is monotone in the gain
    speedups4 = [r[2] for r in rows]
    assert speedups4 == sorted(speedups4)
