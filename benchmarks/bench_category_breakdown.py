"""Category fingerprints: where each code version spends its step.

The mechanisms the paper names must be visible as category signatures:
DC codes (fission, no async) carry more launch-gap time than Code 1; UM
codes carry page-migration time nobody else has; manual codes' MPI is
pack-dominated while UM codes' MPI is transfer(migration)-dominated.
"""

from conftest import print_block

from repro.codes import CodeVersion
from repro.perf.calibration import Calibration
from repro.perf.categories import measure_categories, render_categories
from repro.runtime.clock import TimeCategory

CAL = Calibration(pcg_iters=3, sts_stages=3, bench_steps=2)


def run_breakdowns():
    return [
        measure_categories(v, 8, calibration=CAL)
        for v in (CodeVersion.A, CodeVersion.AD, CodeVersion.ADU, CodeVersion.D2XU)
    ]


def test_category_fingerprints(benchmark):
    bs = benchmark.pedantic(run_breakdowns, rounds=1, iterations=1)
    print_block("MICRO -- per-step category breakdown (8 GPUs)", render_categories(bs))
    by = {b.version: b for b in bs}

    # compute time is identical maths: within the UM body penalty
    a = by[CodeVersion.A].seconds[TimeCategory.COMPUTE]
    for v, b in by.items():
        assert 0.8 * a < b.seconds[TimeCategory.COMPUTE] < 1.5 * a

    # fission + synchronous launches: DC codes gap more than Code 1
    assert (
        by[CodeVersion.AD].seconds[TimeCategory.LAUNCH]
        > by[CodeVersion.A].seconds[TimeCategory.LAUNCH]
    )
    assert (
        by[CodeVersion.D2XU].seconds[TimeCategory.LAUNCH]
        > by[CodeVersion.A].seconds[TimeCategory.LAUNCH]
    )

    # page migration exists only under UM
    assert by[CodeVersion.A].seconds.get(TimeCategory.UM_FAULT, 0.0) == 0.0
    assert by[CodeVersion.AD].seconds.get(TimeCategory.UM_FAULT, 0.0) == 0.0

    # UM codes' MPI is dominated by migration-laden transfers
    um = by[CodeVersion.ADU]
    assert um.seconds[TimeCategory.MPI_TRANSFER] > um.seconds[TimeCategory.MPI_PACK]
    manual = by[CodeVersion.A]
    assert (
        um.seconds[TimeCategory.MPI_TRANSFER]
        > 5 * manual.seconds[TimeCategory.MPI_TRANSFER]
    )
