"""Telemetry overhead bench: instrumented run, enabled vs disabled.

Measures the host wall-clock of a small fig2-style run three ways --
telemetry disabled (the default no-op path), telemetry enabled in
memory, and enabled with artifact finalization -- plus the raw cost of
one disabled hook (``current()`` + ``enabled`` check). Results land in
``BENCH_telemetry.json`` at the repo root so PRs can track the overhead
like the other BENCH artifacts.

Run with ``pytest benchmarks/bench_obs_overhead.py -s``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import print_block

from repro.codes import CodeVersion, runtime_config_for
from repro.mas.model import MasModel, ModelConfig
from repro.obs.telemetry import NULL, current, session

REPO_ROOT = Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_telemetry.json"

STEPS = 3
SHAPE = (8, 6, 8)
RANKS = 2


def _run_model() -> int:
    model = MasModel(
        ModelConfig(shape=SHAPE, num_ranks=RANKS, pcg_iters=2,
                    sts_stages=2, extra_model_arrays=0),
        runtime_config_for(CodeVersion.A),
    )
    launches = 0
    for t in model.run(STEPS):
        launches += t.launches
    return launches


def _timed(fn) -> tuple[float, int]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _hook_ns(n: int = 50000) -> float:
    t0 = time.perf_counter()
    for _ in range(n):
        tel = current()
        if tel.enabled:
            raise AssertionError("telemetry must be disabled here")
    return (time.perf_counter() - t0) / n * 1e9


def test_telemetry_overhead(tmp_path, benchmark):
    assert current() is NULL
    _run_model()  # warm numpy/import caches before timing

    disabled_s, launches = benchmark.pedantic(
        lambda: _timed(_run_model), rounds=1, iterations=1
    )

    def enabled_run():
        with session(tmp_path / "tel"):
            return _run_model()

    enabled_s, _ = _timed(enabled_run)

    def memory_only():
        with session(tmp_path / "mem") as tel:
            launches = _run_model()
            tel.out_dir = None  # skip artifact writing
            return launches

    memory_s, _ = _timed(memory_only)

    hook_ns = _hook_ns()
    result = {
        "schema": "repro-bench-telemetry/1",
        "config": {"steps": STEPS, "shape": list(SHAPE), "ranks": RANKS,
                   "version": "A"},
        "kernel_launches": launches,
        "disabled_seconds": disabled_s,
        "enabled_memory_seconds": memory_s,
        "enabled_finalized_seconds": enabled_s,
        "enabled_overhead_fraction": memory_s / disabled_s - 1.0,
        "noop_hook_ns": hook_ns,
        "noop_hook_calls_per_run": launches * 4,
        "noop_overhead_fraction": launches * 4 * hook_ns * 1e-9 / disabled_s,
    }
    ARTIFACT.write_text(json.dumps(result, indent=2) + "\n")

    print_block(
        "TELEMETRY OVERHEAD -- enabled vs no-op",
        "\n".join(
            [
                f"disabled run        {disabled_s * 1e3:8.1f} ms ({launches} launches)",
                f"enabled (memory)    {memory_s * 1e3:8.1f} ms "
                f"({result['enabled_overhead_fraction'] * 100:+.1f}%)",
                f"enabled (finalized) {enabled_s * 1e3:8.1f} ms",
                f"no-op hook          {hook_ns:8.1f} ns/call -> "
                f"{result['noop_overhead_fraction'] * 100:.3f}% of a run",
                f"wrote {ARTIFACT}",
            ]
        ),
    )

    # the disabled path must stay effectively free
    assert result["noop_overhead_fraction"] < 0.05
    # enabled telemetry on a tiny run should stay within the same order
    assert memory_s < disabled_s * 3
