"""Ablation: kernel fusion (the first DC cost the paper names, SIV-B).

Runs the same kernel region under OpenACC with fusion on/off and under DC
(forced fission), quantifying the launch-overhead penalty per region size.
"""

from conftest import print_block

from repro.machine.gpu import A100_40GB, GpuDevice
from repro.machine.interconnect import PCIE4_X16
from repro.machine.memory import DeviceMemory
from repro.runtime.clock import SimClock
from repro.runtime.cost import KernelCostModel
from repro.runtime.data_env import DataEnvironment, DataMode
from repro.runtime.doconcurrent import DoConcurrentEngine
from repro.runtime.fusion import plan_fusion
from repro.runtime.kernel import KernelSpec
from repro.runtime.openacc import OpenAccEngine
from repro.runtime.stream import AsyncQueue
from repro.util.tables import Table
from repro.util.units import GB, MiB


def _setup(n_loops, nbytes):
    env = DataEnvironment(
        DataMode.MANUAL, device_memory=DeviceMemory(40 * GB), host_link=PCIE4_X16
    )
    specs = []
    for i in range(n_loops):
        env.register(f"a{i}", nbytes)
        env.enter_data(f"a{i}")
        specs.append(KernelSpec(f"k{i}", writes=(f"a{i}",)))
    return env, specs


def _acc_time(env, specs, *, fusion):
    eng = OpenAccEngine(
        clock=SimClock(), env=env, gpu=GpuDevice(A100_40GB, 0),
        cost=KernelCostModel(), queue=AsyncQueue(), async_launch=False,
    )
    eng.execute_region(plan_fusion(specs, enabled=fusion))
    return eng.clock.now


def _dc_time(env, specs):
    eng = DoConcurrentEngine(
        clock=SimClock(), env=env, gpu=GpuDevice(A100_40GB, 0),
        cost=KernelCostModel(), queue=AsyncQueue(),
    )
    eng.execute_sequence(specs)
    return eng.clock.now


def run_fusion_ablation():
    t = Table(
        ["loops/region", "kernel KiB", "ACC fused", "ACC unfused", "DC fission", "fission penalty"],
        title="Kernel fusion ablation (times in us per region)",
    )
    results = []
    for n_loops in (2, 4, 8, 16):
        for kib in (64, 1024, 262144):
            env, specs = _setup(n_loops, kib * 1024)
            fused = _acc_time(env, specs, fusion=True)
            unfused = _acc_time(env, specs, fusion=False)
            dc = _dc_time(env, specs)
            t.add_row(
                [n_loops, kib, fused * 1e6, unfused * 1e6, dc * 1e6, dc / fused]
            )
            results.append((n_loops, kib, fused, unfused, dc))
    return t, results


def test_fusion_ablation(benchmark):
    t, results = benchmark(run_fusion_ablation)
    print_block("ABLATION -- kernel fusion vs fission", t.render())
    for n_loops, kib, fused, unfused, dc in results:
        assert fused <= unfused <= dc * 1.001
        if kib == 64:  # small kernels: fission hurts most
            assert dc / fused > 1.5
        if kib == 262144:  # paper-scale kernels: launch overhead amortized
            assert dc / fused < 1.2
