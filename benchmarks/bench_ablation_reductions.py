"""Ablation: the three array-reduction strategies (Listings 3-5).

atomic-in-ACC (Code 1-3) vs atomic-in-DC (Code 4) vs the flipped
outer-DC/inner-reduce rewrite (Codes 5-6). The flipped form removes the
atomics' bandwidth penalty, which is why Code 5/6 could drop them without
losing performance (SIV-E).
"""

from conftest import print_block

from repro.machine.gpu import A100_40GB, GpuDevice
from repro.machine.interconnect import PCIE4_X16
from repro.machine.memory import DeviceMemory
from repro.runtime.clock import SimClock
from repro.runtime.config import ArrayReductionStrategy
from repro.runtime.cost import KernelCostModel
from repro.runtime.data_env import DataEnvironment, DataMode
from repro.runtime.doconcurrent import DoConcurrentEngine
from repro.runtime.kernel import KernelSpec, LoopCategory
from repro.runtime.openacc import OpenAccEngine
from repro.runtime.stream import AsyncQueue
from repro.util.tables import Table
from repro.util.units import GB, MiB


def _env(nbytes=256 * MiB):
    env = DataEnvironment(
        DataMode.MANUAL, device_memory=DeviceMemory(40 * GB), host_link=PCIE4_X16
    )
    env.register("field", nbytes)
    env.enter_data("field")
    return env


SPEC = KernelSpec("array_red", category=LoopCategory.ARRAY_REDUCTION, reads=("field",))


def run_reduction_ablation():
    times = {}
    # OpenACC atomic (Listing 3)
    env = _env()
    acc = OpenAccEngine(
        clock=SimClock(), env=env, gpu=GpuDevice(A100_40GB, 0),
        cost=KernelCostModel(), queue=AsyncQueue(),
        array_reduction=ArrayReductionStrategy.ACC_ATOMIC,
    )
    acc.execute_single(SPEC)
    times["acc_atomic (Listing 3)"] = acc.clock.now
    # DC + atomic (Listing 4) and flipped DC (Listing 5)
    for strategy, label in (
        (ArrayReductionStrategy.DC_ATOMIC, "dc_atomic (Listing 4)"),
        (ArrayReductionStrategy.FLIPPED_DC, "flipped_dc (Listing 5)"),
    ):
        env = _env()
        dc = DoConcurrentEngine(
            clock=SimClock(), env=env, gpu=GpuDevice(A100_40GB, 0),
            cost=KernelCostModel(), queue=AsyncQueue(),
            dc2x_reduce=True, array_reduction=strategy,
        )
        dc.execute(SPEC)
        times[label] = dc.clock.now
    return times


def test_reduction_strategies(benchmark):
    times = benchmark(run_reduction_ablation)
    t = Table(["strategy", "kernel time (us)"],
              title="Array-reduction strategy ablation (256 MiB field)")
    for k, v in times.items():
        t.add_row([k, v * 1e6])
    print_block("ABLATION -- array-reduction strategies", t.render())
    # flipped beats both atomic variants (the Code 5 rewrite pays off)
    assert times["flipped_dc (Listing 5)"] < times["dc_atomic (Listing 4)"]
    assert times["flipped_dc (Listing 5)"] < times["acc_atomic (Listing 3)"]
    # the atomic penalty itself is backend-independent (same HBM effect)
    assert abs(
        times["dc_atomic (Listing 4)"] - times["acc_atomic (Listing 3)"]
    ) < 0.05 * times["acc_atomic (Listing 3)"]
