"""Fig. 3 bench: MPI vs non-MPI split at 1 and 8 GPUs, all six codes."""

import pytest
from conftest import print_block

from repro.codes import CodeVersion
from repro.experiments.fig3 import PAPER_BARS, render_fig3, run_fig3


def test_fig3_regeneration(benchmark):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    print_block("FIG. 3 -- run-time split (wall-MPI vs MPI)", render_fig3(result))

    # every bar's wall and non-MPI portion within 15% of the paper
    for n, bars in PAPER_BARS.items():
        for v, (wall, non_mpi) in bars.items():
            b = result.breakdown(n, v)
            assert b.wall_minutes == pytest.approx(wall, rel=0.15), (n, v)
            assert b.non_mpi_minutes == pytest.approx(non_mpi, rel=0.15), (n, v)

    # mechanism assertions
    assert result.um_mpi_blowup(8) > 5.0          # UM MPI explosion at scale
    assert 1.1 < result.um_mpi_blowup(1) < 4.0    # modest at one GPU
    a1 = result.breakdown(1, CodeVersion.A)
    a8 = result.breakdown(8, CodeVersion.A)
    assert a8.mpi_minutes < a1.mpi_minutes / 4    # manual MPI shrinks
    u1 = result.breakdown(1, CodeVersion.ADU)
    u8 = result.breakdown(8, CodeVersion.ADU)
    assert 0.3 < u8.mpi_minutes / u1.mpi_minutes < 1.5  # UM MPI ~constant
