"""Robustness bench: the paper's conclusions under calibration perturbation.

Perturbs every fitted constant of the cost model by 0.5x and 2x and
asserts the two qualitative headlines survive: the zero-directive code is
meaningfully slower than OpenACC at 8 GPUs, and UM blows up MPI time.
"""

from conftest import print_block

from repro.experiments.sensitivity import render_sensitivity, run_sensitivity


def test_conclusions_robust_to_calibration(benchmark):
    points = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    print_block("ROBUSTNESS -- calibration sensitivity sweep", render_sensitivity(points))
    baseline = points[0]
    assert baseline.conclusions_hold
    failures = [p for p in points if not p.conclusions_hold]
    assert not failures, [f"{p.constant} x{p.factor}" for p in failures]
