"""Micro-benchmarks of the MHD kernel stream itself.

Measures the real (host) execution time of the numerical building blocks
at test resolution, plus the per-step simulated kernel/launch statistics
that drive the paper's performance model.
"""

import numpy as np
from conftest import print_block

from repro.codes import CodeVersion, runtime_config_for
from repro.mas import operators as ops
from repro.mas.grid import LocalGrid, SphericalGrid
from repro.mas.initial import dipole_faces
from repro.mas.model import MasModel, ModelConfig
from repro.mpi.decomp import Decomposition3D
from repro.util.tables import Table


def _grid(shape=(32, 24, 48)):
    g = SphericalGrid.build(shape)
    return LocalGrid.from_global(g, Decomposition3D(g.shape, 1), 0, ghost=1)


def test_emf_and_ct_kernel(benchmark):
    grid = _grid()
    rng = np.random.default_rng(0)
    br, bt, bp = dipole_faces(grid)
    vr, vt, vp = (rng.standard_normal(grid.shape) * 0.01 for _ in range(3))

    def work():
        er, et, ep = ops.emf_edges(vr, vt, vp, br, bt, bp, grid, resistivity=1e-4)
        return ops.ct_face_update(er, et, ep, grid)

    dbr, _dbt, _dbp = benchmark(work)
    assert np.isfinite(dbr).all()


def test_upwind_advection_kernel(benchmark):
    grid = _grid()
    rng = np.random.default_rng(1)
    f = 1.0 + rng.random(grid.shape)
    vr, vt, vp = (rng.standard_normal(grid.shape) * 0.1 for _ in range(3))
    out = benchmark(ops.advect_upwind, f, vr, vt, vp, grid)
    assert np.isfinite(out).all()


def test_diffusion_kernel(benchmark):
    grid = _grid()
    f = np.random.default_rng(2).random(grid.shape)
    out = benchmark(ops.diffuse_flux_div, f, grid)
    assert np.isfinite(out).all()


def test_full_step_kernel_statistics(benchmark):
    """Per-step launch counts per code version -- the fission evidence."""
    def measure():
        stats = {}
        for v in (CodeVersion.A, CodeVersion.AD, CodeVersion.D2XU):
            m = MasModel(
                ModelConfig(shape=(10, 8, 16), pcg_iters=3, sts_stages=3,
                            extra_model_arrays=3),
                runtime_config_for(v),
            )
            t = m.step()
            stats[v.name] = (t.launches, m.ranks[0].stats.fused_away)
        return stats

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    t = Table(["code", "launches/step", "loops fused away"],
              title="Kernel-launch statistics per step (1 rank)")
    for k, (launches, fused) in stats.items():
        t.add_row([k, launches, fused])
    print_block("MICRO -- per-step kernel stream", t.render())
    # Code 1 fuses; the DC codes fission into at least as many launches
    assert stats["A"][1] > 0
    assert stats["AD"][0] >= stats["A"][0]
    assert stats["D2XU"][1] == 0
