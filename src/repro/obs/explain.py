"""Hierarchical wall-time regression explanation: ``telemetry --explain``.

``repro telemetry --compare A B`` diffs raw metric series; ``--explain``
answers the question a failing perf-smoke actually raises: *where did the
wall time go?* It loads both runs' step records, spans, kernel counters
and trace lanes, then decomposes the wall-clock delta hierarchically --

    category (compute / mpi_* / launch / memory / host)
      -> phase (depth-1 ``step/*`` spans)
        -> kernel (``kernel_seconds_total{kernel}``)
          -> rank (busy seconds per trace lane)

-- each level sorted by signed contribution to the delta, with its share
of the total. The ``mpi share of delta`` line is the acceptance metric
for the sync-vs-overlap scenario: hidden communication must account for
(almost) the whole gain.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

#: Categories whose sum is "MPI time" in the paper's Fig. 3 accounting.
MPI_CATEGORIES = ("mpi_pack", "mpi_transfer", "mpi_wait")


@dataclass
class RunProfile:
    """One run's wall-time decomposition along every explain axis."""

    name: str
    #: Simulated wall seconds (sum of per-step walls, max over ranks).
    wall: float = 0.0
    #: Mean-over-ranks seconds per clock category, summed over steps.
    categories: dict[str, float] = field(default_factory=dict)
    #: Total simulated seconds per depth-1 step phase (span timebase).
    phases: dict[str, float] = field(default_factory=dict)
    #: Device-busy seconds per kernel (kernel_seconds_total).
    kernels: dict[str, float] = field(default_factory=dict)
    #: Non-wait busy seconds per rank lane (from the Chrome trace).
    ranks: dict[str, float] = field(default_factory=dict)
    #: Streams that were missing or unreadable while loading.
    notes: list[str] = field(default_factory=list)


def load_profile(path: str | Path, *, name: str | None = None) -> RunProfile:
    """Build a :class:`RunProfile` from a finalized telemetry directory.

    Every stream is optional: a missing artifact degrades that axis and
    adds a note instead of failing the whole explanation.
    """
    from repro.obs import telemetry as tmod
    from repro.obs.summary import _read_json, _read_jsonl

    d = Path(path)
    if not d.is_dir():
        raise FileNotFoundError(f"telemetry directory {d} does not exist")
    prof = RunProfile(name=name or str(d))

    steps = [
        r for r in _read_jsonl(d / tmod.LOG_FILE) if r.get("event") == "step"
    ]
    if not steps:
        prof.notes.append(f"no step records in {tmod.LOG_FILE}")
    for r in steps:
        prof.wall += float(r.get("wall", 0.0))
        for cat, v in (r.get("categories") or {}).items():
            prof.categories[cat] = prof.categories.get(cat, 0.0) + float(v)

    spans = _read_jsonl(d / tmod.SPANS_FILE)
    if not spans:
        prof.notes.append(f"no spans in {tmod.SPANS_FILE}")
    for s in spans:
        if s.get("depth") == 1 and str(s.get("name", "")).startswith("step/"):
            if s.get("end") is not None:
                prof.phases[s["name"]] = prof.phases.get(s["name"], 0.0) + float(
                    s.get("duration", 0.0)
                )

    metrics = _read_json(d / tmod.METRICS_JSON_FILE) or {}
    if not metrics:
        prof.notes.append(f"no {tmod.METRICS_JSON_FILE}")
    for sample in (metrics.get("kernel_seconds_total") or {}).get("samples", []):
        kernel = sample.get("labels", {}).get("kernel")
        if kernel:
            prof.kernels[kernel] = prof.kernels.get(kernel, 0.0) + float(
                sample.get("value", 0.0)
            )
    if metrics and not prof.kernels:
        prof.notes.append(
            "no kernel_seconds_total counters (run predates per-kernel "
            "instrumentation)"
        )

    trace = d / tmod.TRACE_FILE
    if trace.is_file():
        try:
            from repro.obs.critpath import load_trace_events

            for e in load_trace_events(trace):
                if e.category == "mpi_wait":
                    continue
                prof.ranks[e.lane] = prof.ranks.get(e.lane, 0.0) + e.duration
        except (json.JSONDecodeError, KeyError, TypeError):
            prof.notes.append(f"unreadable {tmod.TRACE_FILE}")
    else:
        prof.notes.append(f"no {tmod.TRACE_FILE}")
    return prof


@dataclass(frozen=True, slots=True)
class Contribution:
    """One item's contribution to the wall-time delta at one level."""

    name: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a


@dataclass
class Explanation:
    """The decomposed A-vs-B wall delta."""

    a: RunProfile
    b: RunProfile
    categories: list[Contribution]
    phases: list[Contribution]
    kernels: list[Contribution]
    ranks: list[Contribution]

    @property
    def wall_delta(self) -> float:
        return self.b.wall - self.a.wall

    @property
    def mpi_delta(self) -> float:
        """Signed delta of the MPI category group (pack+transfer+wait)."""
        return sum(c.delta for c in self.categories if c.name in MPI_CATEGORIES)

    @property
    def mpi_share_of_delta(self) -> float:
        """Fraction of the wall delta the MPI categories explain.

        The acceptance metric: for the BENCH_halo sync-vs-overlap pair
        this must be >= 0.9 (hidden halo traffic is the whole story).
        """
        if self.wall_delta == 0.0:
            return 0.0
        return self.mpi_delta / self.wall_delta


def _contributions(
    a: Mapping[str, float], b: Mapping[str, float]
) -> list[Contribution]:
    rows = [
        Contribution(k, a.get(k, 0.0), b.get(k, 0.0)) for k in set(a) | set(b)
    ]
    rows = [c for c in rows if c.delta != 0.0 or c.a != 0.0 or c.b != 0.0]
    rows.sort(key=lambda c: (-abs(c.delta), c.name))
    return rows


def explain(a: RunProfile, b: RunProfile) -> Explanation:
    """Decompose ``b.wall - a.wall`` along every loaded axis."""
    return Explanation(
        a=a,
        b=b,
        categories=_contributions(a.categories, b.categories),
        phases=_contributions(a.phases, b.phases),
        kernels=_contributions(a.kernels, b.kernels),
        ranks=_contributions(a.ranks, b.ranks),
    )


def explain_dirs(a_dir: str | Path, b_dir: str | Path) -> Explanation:
    """Load both telemetry directories and explain the delta."""
    return explain(load_profile(a_dir), load_profile(b_dir))


def _level_table(
    title: str,
    rows: list[Contribution],
    wall_delta: float,
    *,
    a_name: str,
    b_name: str,
    top: int,
) -> str | None:
    from repro.util.tables import Table

    if not rows:
        return None
    t = Table(
        ["item", f"{a_name} (ms)", f"{b_name} (ms)", "delta (ms)",
         "share of wall delta"],
        title=title,
    )
    for c in rows[:top]:
        share = c.delta / wall_delta if wall_delta else 0.0
        t.add_row(
            [c.name, c.a * 1e3, c.b * 1e3, f"{c.delta * 1e3:+.3f}",
             f"{share * 100:+6.1f}%"]
        )
    hidden = len(rows) - top
    tail = f"\n({hidden} smaller contributor(s) not shown)" if hidden > 0 else ""
    return t.render() + tail


def render_explain(
    exp: Explanation, *, a_name: str = "A", b_name: str = "B", top: int = 8
) -> str:
    """Full --explain report: header line plus one table per level."""
    wd = exp.wall_delta
    direction = "slower" if wd > 0 else "faster"
    blocks = [
        f"wall-time delta: {a_name} {exp.a.wall * 1e3:.3f} ms -> "
        f"{b_name} {exp.b.wall * 1e3:.3f} ms "
        f"({wd * 1e3:+.3f} ms, {b_name} is "
        f"{abs(wd) / exp.a.wall * 100 if exp.a.wall else 0.0:.1f}% {direction})",
        f"mpi share of delta (pack+transfer+wait): "
        f"{exp.mpi_share_of_delta * 100:.1f}% "
        f"({exp.mpi_delta * 1e3:+.3f} ms of {wd * 1e3:+.3f} ms)",
    ]
    for title, rows in (
        ("By clock category", exp.categories),
        ("By step phase (depth-1 spans)", exp.phases),
        ("By kernel (kernel_seconds_total)", exp.kernels),
        ("By rank lane (non-wait busy seconds)", exp.ranks),
    ):
        block = _level_table(
            title, rows, wd, a_name=a_name, b_name=b_name, top=top
        )
        if block:
            blocks.append(block)
    notes = [f"{exp.a.name}: {n}" for n in exp.a.notes] + [
        f"{exp.b.name}: {n}" for n in exp.b.notes
    ]
    if notes:
        blocks.append("notes:\n" + "\n".join(f"  - {n}" for n in notes))
    return "\n\n".join(blocks)
