"""Cross-run metrics diff: ``repro telemetry --compare A B``.

Loads the ``metrics.json`` snapshot from two telemetry directories and
reports, per (metric, labels) series, how run B moved relative to run A:
counter/gauge value deltas, histogram count and mean shifts.  Sorted by
relative magnitude so the biggest behavioral change between two runs --
a new hot kernel, a regression in bytes moved, a jump in MPI time --
tops the table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

LabelKey = tuple[tuple[str, str], ...]


@dataclass(frozen=True, slots=True)
class MetricDelta:
    """One (metric, labels) series compared across two runs."""

    name: str
    labels: LabelKey
    kind: str  # counter | gauge | histogram
    a: float | None  # None = series absent in that run
    b: float | None
    #: For histograms the primary value is the sample count; the mean
    #: shift rides along so latency changes are visible even when the
    #: count is identical.
    a_mean: float | None = None
    b_mean: float | None = None

    @property
    def delta(self) -> float:
        return (self.b or 0.0) - (self.a or 0.0)

    @property
    def rel(self) -> float:
        """Relative change; ±inf stands in for appear/disappear."""
        if self.b is None:
            return float("-inf")  # series vanished in B
        if self.a in (None, 0.0):
            return float("inf") if self.delta > 0 else 0.0
        return self.delta / abs(self.a)

    @property
    def label_text(self) -> str:
        return ",".join(f"{k}={v}" for k, v in self.labels) or "-"


def _series(metrics: dict) -> dict[tuple[str, LabelKey], tuple[str, dict]]:
    """Flatten a metrics.json dict to {(name, labels): (kind, sample)}."""
    out: dict[tuple[str, LabelKey], tuple[str, dict]] = {}
    for name, fam in (metrics or {}).items():
        kind = fam.get("type", "gauge")
        for sample in fam.get("samples", []):
            key = tuple(sorted(sample.get("labels", {}).items()))
            out[(name, key)] = (kind, sample)
    return out


def compare_metrics(a: dict, b: dict) -> list[MetricDelta]:
    """Diff two metrics.json snapshots series-by-series.

    Unchanged series are dropped; the result is sorted by |relative
    change| descending (appear/disappear first), then name/labels for
    stability.
    """
    sa, sb = _series(a), _series(b)
    deltas: list[MetricDelta] = []
    for key in sorted(set(sa) | set(sb)):
        name, labels = key
        kind = (sa.get(key) or sb.get(key))[0]
        samp_a = sa[key][1] if key in sa else None
        samp_b = sb[key][1] if key in sb else None
        if kind == "histogram":
            def count_mean(s: dict | None) -> tuple[float | None, float | None]:
                if s is None:
                    return None, None
                count = float(s.get("count", 0))
                mean = s.get("sum", 0.0) / count if count else 0.0
                return count, mean

            ca, ma = count_mean(samp_a)
            cb, mb = count_mean(samp_b)
            d = MetricDelta(name, labels, kind, ca, cb, a_mean=ma, b_mean=mb)
            if d.delta == 0.0 and (ma or 0.0) == (mb or 0.0):
                continue
        else:
            va = None if samp_a is None else float(samp_a.get("value", 0.0))
            vb = None if samp_b is None else float(samp_b.get("value", 0.0))
            d = MetricDelta(name, labels, kind, va, vb)
            if d.delta == 0.0:
                continue
        deltas.append(d)
    deltas.sort(key=lambda d: (-abs(d.rel), d.name, d.labels))
    return deltas


def load_metrics(path: str | Path) -> dict:
    """Read ``<dir>/metrics.json`` (or a metrics.json file directly)."""
    from repro.obs import telemetry as tmod

    p = Path(path)
    if p.is_dir():
        p = p / tmod.METRICS_JSON_FILE
    if not p.is_file():
        raise FileNotFoundError(f"no metrics snapshot at {p}")
    return json.loads(p.read_text())


def _fmt(v: float | None) -> str:
    return "-" if v is None else f"{v:.6g}"


def render_compare(
    deltas: Iterable[MetricDelta], *, a_name: str = "A", b_name: str = "B"
) -> str:
    """Table of the diff, biggest relative movers first."""
    from repro.util.tables import Table

    deltas = list(deltas)
    if not deltas:
        return "no metric differences"
    t = Table(
        ["metric", "labels", a_name, b_name, "delta", "rel"],
        title=f"Metrics diff: {a_name} -> {b_name}",
    )
    for d in deltas:
        rel = d.rel
        rel_text = (
            "new" if rel == float("inf")
            else "gone" if rel == float("-inf")
            else f"{rel * 100:+.1f}%"
        )
        a_text, b_text = _fmt(d.a), _fmt(d.b)
        if d.kind == "histogram":
            a_text += f" (mean {_fmt(d.a_mean)})"
            b_text += f" (mean {_fmt(d.b_mean)})"
        t.add_row([d.name, d.label_text, a_text, b_text,
                   f"{d.delta:+.6g}", rel_text])
    return t.render() + f"\n{len(deltas)} series changed"
