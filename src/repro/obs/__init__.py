"""Unified telemetry layer: metrics, span tracing, structured logging.

The observability subsystem the solver/runtime/MPI stack reports into
(see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` -- labeled counters/gauges/histograms with
  Prometheus-text and JSON exporters;
* :mod:`repro.obs.tracing` -- hierarchical spans over simulated time,
  merged into the Chrome trace next to profiler lanes;
* :mod:`repro.obs.runlog` -- structured JSONL run records + manifest;
* :mod:`repro.obs.telemetry` -- the session facade and the global
  :func:`current` accessor instrumented code uses;
* :mod:`repro.obs.summary` -- ``repro telemetry DIR`` table rendering;
* :mod:`repro.obs.compare` -- ``repro telemetry --compare A B`` cross-run
  metrics diff;
* :mod:`repro.obs.critpath` -- cross-rank critical-path extraction and
  blame attribution (``repro critpath DIR``);
* :mod:`repro.obs.explain` -- hierarchical regression explanation
  (``repro telemetry --compare A B --explain``).

Everything is a near-zero-cost no-op unless a session is active.
"""

from repro.obs.compare import (
    MetricDelta,
    compare_metrics,
    load_metrics,
    render_compare,
)
from repro.obs.critpath import (
    CritPathResult,
    analyze_dir,
    analyze_session,
    extract_critical_path,
    render_result,
)
from repro.obs.explain import Explanation, explain, explain_dirs, render_explain
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.runlog import RunLogger, build_manifest, git_sha
from repro.obs.telemetry import (
    NULL,
    NullTelemetry,
    Telemetry,
    activate,
    current,
    deactivate,
    session,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "CritPathResult",
    "DEFAULT_BUCKETS",
    "Explanation",
    "MetricDelta",
    "MetricsRegistry",
    "NULL",
    "NullTelemetry",
    "RunLogger",
    "Span",
    "Telemetry",
    "Tracer",
    "activate",
    "analyze_dir",
    "analyze_session",
    "build_manifest",
    "compare_metrics",
    "current",
    "deactivate",
    "explain",
    "explain_dirs",
    "extract_critical_path",
    "git_sha",
    "load_metrics",
    "parse_prometheus_text",
    "render_compare",
    "render_explain",
    "render_result",
    "session",
]
