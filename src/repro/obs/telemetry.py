"""Telemetry facade: one object the whole stack reports into.

A :class:`Telemetry` bundles the three signal types plus a profiler:

* ``metrics`` -- :class:`~repro.obs.metrics.MetricsRegistry` of labeled
  counters/gauges/histograms (``kernel_launches_total{version,category}``,
  ``halo_bytes_total{rank}``, ``step_seconds`` ...);
* ``tracer`` -- :class:`~repro.obs.tracing.Tracer` of hierarchical spans
  stamped in simulated seconds;
* ``logger`` -- :class:`~repro.obs.runlog.RunLogger` of structured JSONL
  records (one per step, per PCG solve, ...);
* ``profiler`` -- a :class:`~repro.perf.profiler.Profiler` attached to
  every bound model's rank clocks, feeding the merged Chrome trace.

Instrumented code never holds a Telemetry directly: it calls
:func:`current`, which returns the innermost *active* session or the
shared :data:`NULL` no-op when telemetry is disabled (the default). The
no-op path costs one function call and an attribute check, so hot loops
stay hot (benchmarked in ``benchmarks/bench_obs_overhead.py``).

Activate a session around any run with::

    with session("out/", command="run") as tel:
        model = MasModel(...)   # binds itself via current()
        model.run(10)
    # out/ now holds manifest.json, log.jsonl, spans.jsonl,
    # metrics.prom, metrics.json, trace.json
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.runlog import NULL_LOGGER, RunLogger, build_manifest, json_dumps
from repro.obs.tracing import NULL_TRACER, Tracer

#: Files a finalized telemetry directory contains.
MANIFEST_FILE = "manifest.json"
LOG_FILE = "log.jsonl"
SPANS_FILE = "spans.jsonl"
METRICS_PROM_FILE = "metrics.prom"
METRICS_JSON_FILE = "metrics.json"
TRACE_FILE = "trace.json"

#: Rotated metrics snapshots kept on disk (metrics.json.1 .. .K).
METRICS_SNAPSHOT_KEEP = 3


class Telemetry:
    """An active telemetry session collecting metrics, spans and logs."""

    enabled = True

    def __init__(
        self,
        out_dir: str | Path | None = None,
        *,
        flush_every_n: int = 0,
        snapshot_every_n: int = 0,
    ) -> None:
        # Deferred import: repro.perf pulls in the code-version registry,
        # which transitively imports the instrumented runtime modules --
        # importing it at module scope would close an import cycle.
        from repro.perf.profiler import Profiler

        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.logger = RunLogger()
        self.profiler = Profiler()
        #: Extra manifest fields (command, cli args, bound models).
        self.manifest_extra: dict[str, Any] = {"models": []}
        self._models_bound = 0
        #: Main-clock lane per clock id, so overlapped-exchange comm clocks
        #: can attach under ``<lane>:comm``.
        self._clock_lanes: dict[int, str] = {}
        #: Opt-in streaming: >0 appends log records / completed spans to
        #: their JSONL files every N events, so a killed run still leaves
        #: parseable telemetry (finalize rewrites both files in full).
        self.flush_every_n = flush_every_n
        #: Opt-in snapshot rotation: >0 rewrites ``metrics.json`` every N
        #: model steps (rotating prior snapshots to ``metrics.json.1..K``),
        #: the counterpart of JSONL streaming for the *cumulative* signal --
        #: a killed long run keeps a recent counter state on disk.
        self.snapshot_every_n = snapshot_every_n
        self._steps_since_snapshot = 0
        self.snapshots_taken = 0
        if flush_every_n > 0 and self.out_dir is not None:
            self.logger.attach_sink(
                self.out_dir / LOG_FILE, flush_every_n=flush_every_n
            )
            self.tracer.attach_sink(
                self.out_dir / SPANS_FILE, flush_every_n=flush_every_n
            )

    def flush(self) -> dict[str, int]:
        """Force a streaming flush; returns records/spans written."""
        return {"log": self.logger.flush(), "spans": self.tracer.flush()}

    # -- metrics snapshot rotation -------------------------------------------

    def snapshot_metrics(self) -> Path | None:
        """Write ``metrics.json`` now, rotating prior snapshots.

        The existing ``metrics.json`` shifts to ``metrics.json.1``,
        ``.1`` to ``.2``, ... keeping :data:`METRICS_SNAPSHOT_KEEP` old
        snapshots (the oldest falls off). Returns the written path, or
        ``None`` when the session has no output directory.
        """
        if self.out_dir is None:
            return None
        self.out_dir.mkdir(parents=True, exist_ok=True)
        live = self.out_dir / METRICS_JSON_FILE
        if live.exists():
            for k in range(METRICS_SNAPSHOT_KEEP - 1, 0, -1):
                older = self.out_dir / f"{METRICS_JSON_FILE}.{k}"
                if older.exists():
                    older.replace(self.out_dir / f"{METRICS_JSON_FILE}.{k + 1}")
            live.replace(self.out_dir / f"{METRICS_JSON_FILE}.1")
        live.write_text(self.metrics.to_json_text())
        self.snapshots_taken += 1
        return live

    def maybe_snapshot_metrics(self) -> Path | None:
        """Per-step rotation hook: snapshot every ``snapshot_every_n`` steps.

        Called by the model after each recorded step; a no-op until the
        configured cadence is reached (or when rotation is disabled).
        """
        if self.snapshot_every_n <= 0:
            return None
        self._steps_since_snapshot += 1
        if self._steps_since_snapshot < self.snapshot_every_n:
            return None
        self._steps_since_snapshot = 0
        return self.snapshot_metrics()

    # -- model binding -------------------------------------------------------

    def bind_model(self, model: Any) -> str:
        """Hook a MasModel into this session; returns its lane prefix.

        Attaches the profiler to every rank clock (lanes ``m<i>.rank<r>``),
        points the tracer's simulated-time source at the model's clocks,
        and records the model's configuration for the manifest.
        """
        idx = self._models_bound
        self._models_bound += 1
        prefix = f"m{idx}"
        clocks = [rt.clock for rt in model.ranks]
        for r, clock in enumerate(clocks):
            lane = f"{prefix}.rank{r}"
            self.profiler.attach(clock, lane)
            self._clock_lanes[id(clock)] = lane
        self.tracer.time_fn = lambda: max(c.now for c in clocks)
        cfg = model.config
        entry = {
            "index": idx,
            "version": model.rt_config.name,
            "target": model.rt_config.target,
            "unified_memory": model.rt_config.unified_memory,
            "shape": list(cfg.shape),
            "nominal_shape": list(cfg.nominal_shape),
            "num_ranks": cfg.num_ranks,
            "pcg_iters": cfg.pcg_iters,
            "pcg_variant": getattr(cfg, "pcg_variant", "classic"),
            "pcg_precond": getattr(cfg, "pcg_precond", "jacobi"),
            "sts_stages": cfg.sts_stages,
            "machine": _machine_entry(model),
        }
        self.manifest_extra["models"].append(entry)
        self.logger.log("model_created", **entry)
        self.metrics.counter(
            "models_total", "models bound to this telemetry session"
        ).inc()
        return prefix

    def attach_comm_clock(self, main_clock: Any, comm_clock: Any) -> str | None:
        """Profile a detached communication clock under ``<lane>:comm``.

        The overlapped halo exchange charges its pack/wire/unpack cost to
        per-rank communication clocks while the main clocks advance under
        interior compute; attaching them here makes the hidden work
        visible (its own Chrome-trace track, critical-path lane). Returns
        the comm lane, or None when ``main_clock`` is not a bound rank
        clock.
        """
        lane = self._clock_lanes.get(id(main_clock))
        if lane is None:
            return None
        comm_lane = f"{lane}:comm"
        self.profiler.attach(comm_clock, comm_lane)
        return comm_lane

    def detach_comm_clock(self, comm_clock: Any) -> None:
        """Stop profiling a communication clock (events are kept)."""
        self.profiler.detach(comm_clock)

    # -- snapshots & finalization --------------------------------------------

    def build_manifest(self) -> dict[str, Any]:
        """Provenance manifest for this session."""
        return build_manifest(**self.manifest_extra)

    def chrome_trace(self) -> dict:
        """Merged Chrome trace: profiler lanes + tracer spans."""
        from repro.perf.trace_export import to_chrome_trace

        if not self.profiler.events and not self.tracer.spans:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        return to_chrome_trace(self.profiler, spans=self.tracer.spans)

    def finalize(self, out_dir: str | Path | None = None) -> dict[str, Path]:
        """Write every artifact; returns ``{artifact_name: path}``.

        A no-op (returns ``{}``) when no output directory was configured.
        """
        target = Path(out_dir) if out_dir is not None else self.out_dir
        if target is None:
            return {}
        target.mkdir(parents=True, exist_ok=True)
        import json

        paths: dict[str, Path] = {}

        def write(name: str, text: str) -> None:
            p = target / name
            p.write_text(text)
            paths[name] = p

        self._bake_sol_gauges()
        write(MANIFEST_FILE, json_dumps(self.build_manifest()))
        write(LOG_FILE, self.logger.to_jsonl() + "\n" if self.logger.records else "")
        write(SPANS_FILE, self.tracer.to_jsonl() + "\n" if self.tracer.spans else "")
        write(METRICS_PROM_FILE, self.metrics.to_prometheus_text())
        write(METRICS_JSON_FILE, self.metrics.to_json_text())
        write(TRACE_FILE, json.dumps(self.chrome_trace()))
        return paths

    def _bake_sol_gauges(self) -> None:
        """Bake ``kernel_sol_fraction{kernel}`` gauges into the registry.

        Runs at finalize so the exported metrics carry the roofline
        speed-of-light fraction per kernel (cross-run compares see
        efficiency shifts directly). A no-op when no model recorded
        machine peaks or no kernel counters were emitted.
        """
        import json

        from repro.perf.roofline import peaks_from_manifest, sol_fraction_gauges

        peaks = peaks_from_manifest({"models": self.manifest_extra.get("models")})
        if peaks is None:
            return
        fractions = sol_fraction_gauges(
            json.loads(self.metrics.to_json_text()), peaks
        )
        if not fractions:
            return
        gauge = self.metrics.gauge(
            "kernel_sol_fraction",
            "fraction of roofline speed-of-light each kernel reached",
            labelnames=("kernel",),
        )
        for kernel, frac in fractions.items():
            gauge.labels(kernel=kernel).set(frac)


def _machine_entry(model: Any) -> dict[str, Any]:
    """Device peaks of a bound model (roofline speed-of-light input)."""
    rt = model.ranks[0]
    gpu = getattr(rt, "gpu", None)
    if gpu is not None:
        spec = gpu.spec
        return {
            "kind": "gpu",
            "name": spec.name,
            "mem_bandwidth": float(spec.mem_bandwidth),
            "flops": float(spec.flops_fp64),
            "stream_efficiency": float(spec.stream_efficiency),
        }
    spec = getattr(getattr(rt, "cpu_model", None), "spec", None)
    if spec is None:  # pragma: no cover - every runtime has one of the two
        return {}
    return {
        "kind": "cpu",
        "name": getattr(spec, "name", "cpu"),
        "mem_bandwidth": float(getattr(spec, "mem_bandwidth", 0.0)),
        "flops": float(getattr(spec, "flops", 0.0)),
        "stream_efficiency": float(getattr(spec, "stream_efficiency", 1.0)),
    }


class NullTelemetry:
    """The disabled-telemetry singleton: every component is a no-op."""

    __slots__ = ()

    enabled = False
    metrics = NULL_REGISTRY
    tracer = NULL_TRACER
    logger = NULL_LOGGER
    profiler = None
    out_dir = None

    def bind_model(self, model: Any) -> str:
        return ""

    def attach_comm_clock(self, main_clock: Any, comm_clock: Any) -> None:
        return None

    def detach_comm_clock(self, comm_clock: Any) -> None:
        return None

    def build_manifest(self) -> dict:
        return {}

    def chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def finalize(self, out_dir: Any = None) -> dict:
        return {}

    def flush(self) -> dict:
        return {}

    def snapshot_metrics(self) -> None:
        return None

    def maybe_snapshot_metrics(self) -> None:
        return None


NULL = NullTelemetry()

#: Stack of active sessions; instrumented code reads the top via current().
_ACTIVE: list[Telemetry] = []


def current() -> Telemetry | NullTelemetry:
    """The innermost active telemetry session, or the shared no-op."""
    return _ACTIVE[-1] if _ACTIVE else NULL


def activate(telemetry: Telemetry) -> Telemetry:
    """Push a session onto the active stack; returns it."""
    _ACTIVE.append(telemetry)
    return telemetry


def deactivate(telemetry: Telemetry) -> None:
    """Pop a session (it need not be the innermost)."""
    for i in range(len(_ACTIVE) - 1, -1, -1):
        if _ACTIVE[i] is telemetry:
            del _ACTIVE[i]
            return
    raise ValueError("telemetry session is not active")


@contextmanager
def session(
    out_dir: str | Path | None,
    *,
    flush_every_n: int = 0,
    snapshot_every_n: int = 0,
    **manifest_extra: Any,
) -> Iterator[Telemetry | NullTelemetry]:
    """Activate a telemetry session; finalize to ``out_dir`` on exit.

    With ``out_dir=None`` (or an empty string -- an empty ``--telemetry``
    value must not scatter artifacts into the CWD) nothing is activated
    and the shared no-op is yielded, so callers can wrap code
    unconditionally::

        with session(args.telemetry, command="fig2"):
            run_fig2()

    ``flush_every_n > 0`` turns on streaming JSONL (see
    :attr:`Telemetry.flush_every_n`); ``snapshot_every_n > 0`` turns on
    metrics snapshot rotation (see :meth:`Telemetry.maybe_snapshot_metrics`).
    """
    if out_dir is None or str(out_dir) == "":
        yield NULL
        return
    tel = Telemetry(
        out_dir, flush_every_n=flush_every_n, snapshot_every_n=snapshot_every_n
    )
    tel.manifest_extra.update(manifest_extra)
    activate(tel)
    try:
        yield tel
    finally:
        deactivate(tel)
        tel.finalize()
