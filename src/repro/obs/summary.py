"""Summarize a telemetry directory into human-readable tables.

``repro telemetry DIR`` reads the artifacts a finalized
:class:`~repro.obs.telemetry.Telemetry` session wrote (manifest, JSONL
log, spans, metrics snapshot) and renders: run provenance, per-step
statistics, the hottest span names by total simulated time, and the
counter/gauge/histogram values -- the quick "what did this run do and
where did the time go" view without opening Perfetto.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs import telemetry as tmod
from repro.util.tables import Table


def _read_json(path: Path) -> Any:
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


def _read_jsonl(path: Path) -> list[dict]:
    if not path.is_file():
        return []
    out = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return out


def _manifest_block(manifest: dict | None) -> str:
    if not manifest:
        return "manifest: (missing)"
    lines = ["run manifest:"]
    for key in ("command", "git_sha", "python", "numpy", "seed"):
        if key in manifest and manifest[key] is not None:
            lines.append(f"  {key:8s} {manifest[key]}")
    models = manifest.get("models") or []
    for m in models:
        lines.append(
            f"  model    #{m.get('index', '?')} {m.get('version', '?')}"
            f" shape={tuple(m.get('shape', ()))} ranks={m.get('num_ranks', '?')}"
            f" um={m.get('unified_memory')}"
        )
    return "\n".join(lines)


def _steps_table(records: list[dict]) -> str | None:
    steps = [r for r in records if r.get("event") == "step"]
    if not steps:
        return None
    t = Table(
        ["steps", "mean dt", "mean wall (ms)", "mean mpi (ms)", "mean compute (ms)",
         "launches"],
        title="Per-step records (log.jsonl)",
    )

    def mean(key: str) -> float:
        vals = [float(r[key]) for r in steps if key in r]
        return sum(vals) / len(vals) if vals else 0.0

    t.add_row(
        [
            len(steps),
            f"{mean('dt'):.5f}",
            mean("wall") * 1e3,
            mean("mpi") * 1e3,
            mean("compute") * 1e3,
            int(sum(r.get("launches", 0) for r in steps)),
        ]
    )
    return t.render()


def _mpi_share_block(records: list[dict]) -> str | None:
    """MPI split of the mean step: pack / transfer / wait shares.

    Overlapped-exchange runs show their gain here: hidden communication
    leaves the wall (and the ``mpi_wait`` share collapses), while
    ``halo_overlap_seconds`` in the metrics snapshot records how much was
    hidden.
    """
    steps = [r for r in records if r.get("event") == "step" and r.get("categories")]
    if not steps:
        return None
    n = len(steps)
    wall = sum(float(r.get("wall", 0.0)) for r in steps) / n
    if wall <= 0.0:
        return None
    t = Table(
        ["category", "mean per step (ms)", "share of step"],
        title="MPI time by category (mean over steps)",
    )
    total = 0.0
    for cat in ("mpi_pack", "mpi_transfer", "mpi_wait"):
        v = sum(float(r["categories"].get(cat, 0.0)) for r in steps) / n
        total += v
        t.add_row([cat, v * 1e3, f"{100.0 * v / wall:5.1f}%"])
    t.add_row(["mpi_total", total * 1e3, f"{100.0 * total / wall:5.1f}%"])
    return t.render()


def _spans_table(spans: list[dict], top: int = 12) -> str | None:
    if not spans:
        return None
    agg: dict[str, tuple[int, float]] = {}
    for s in spans:
        if s.get("end") is None:
            continue
        n, total = agg.get(s["name"], (0, 0.0))
        agg[s["name"]] = (n + 1, total + float(s.get("duration", 0.0)))
    if not agg:
        return None
    t = Table(
        ["span", "count", "total (ms)", "mean (ms)"],
        title=f"Hottest spans by total simulated time (top {top})",
    )
    for name, (n, total) in sorted(agg.items(), key=lambda kv: -kv[1][1])[:top]:
        t.add_row([name, n, total * 1e3, total / n * 1e3])
    return t.render()


#: Per-kernel roofline families: one sample per kernel spec, dozens per
#: run -- they would drown the snapshot table and have their own renderer
#: (``repro critpath DIR``).
_ROOFLINE_FAMILIES = frozenset({
    "kernel_seconds_total", "kernel_bytes_total", "kernel_flops_total",
    "kernel_calls_total", "kernel_sol_fraction",
})


def _metrics_table(metrics: dict | None, top: int = 30) -> str | None:
    if not metrics:
        return None
    t = Table(["metric", "labels", "value"], title="Metrics snapshot")
    rows = 0
    skipped = 0
    for name in sorted(metrics):
        if name in _ROOFLINE_FAMILIES:
            skipped += 1
            continue
        fam = metrics[name]
        for sample in fam.get("samples", []):
            labels = ",".join(f"{k}={v}" for k, v in sample.get("labels", {}).items())
            if fam.get("type") == "histogram":
                count = sample.get("count", 0)
                mean = sample.get("sum", 0.0) / count if count else 0.0
                value = f"count={count} mean={mean:.6g}"
            else:
                value = f"{sample.get('value', 0.0):.6g}"
            t.add_row([name, labels or "-", value])
            rows += 1
            if rows >= top:
                break
        if rows >= top:
            break
    if not rows:
        return None
    out = t.render()
    if skipped:
        out += (
            f"\n({skipped} per-kernel roofline families omitted; "
            "see: repro critpath DIR)"
        )
    return out


def _ensemble_table(records: list[dict]) -> str | None:
    """Per-member convergence table for sweep runs.

    Built from the ``sweep_member`` rows ``repro sweep`` logs at run end;
    absent for scalar runs.
    """
    rows = [r for r in records if r.get("event") == "sweep_member"]
    if not rows:
        return None
    base = ("event", "ts", "member", "sim_time", "dt", "pcg_iterations",
            "pcg_converged", "pcg_breakdown")
    vary_cols = [k for k in rows[0] if k not in base]
    t = Table(["member", *vary_cols, "sim_time", "pcg_iters", "converged",
               "breakdown"])
    for r in sorted(rows, key=lambda r: r.get("member", 0)):
        t.add_row(
            [
                r.get("member"),
                *(f"{r[k]:.6g}" for k in vary_cols),
                f"{r.get('sim_time', 0.0):.5f}",
                r.get("pcg_iterations", 0),
                r.get("pcg_converged", 0),
                "yes" if r.get("pcg_breakdown") else "no",
            ]
        )
    return "per-member convergence (ensemble sweep):\n" + t.render()


def _critpath_block(d: Path) -> str | None:
    """Compact per-model critical-path table, from the Chrome trace.

    Needs ``trace.json`` (the merged event stream); quietly absent when
    the trace was not written or cannot be analyzed -- the summary is a
    best-effort view, never a gate.
    """
    trace = d / tmod.TRACE_FILE
    if not trace.is_file():
        return None
    try:
        from repro.obs.critpath import analyze_dir, render_compact

        results = analyze_dir(d)
    except Exception:
        return None
    if not results:
        return None
    return render_compact(results) + (
        "\n(full attribution: repro critpath " + str(d) + ")"
    )


def summarize_dir(path: str | Path) -> str:
    """Render the summary for one telemetry directory.

    Degrades gracefully: a directory that lost streams (e.g. rotated
    metrics snapshots survive but ``spans.jsonl`` was pruned) still
    summarizes whatever is present, with a note per missing stream
    instead of a silent hole.
    """
    d = Path(path)
    if not d.is_dir():
        raise FileNotFoundError(f"telemetry directory {d} does not exist")
    manifest = _read_json(d / tmod.MANIFEST_FILE)
    records = _read_jsonl(d / tmod.LOG_FILE)
    spans = _read_jsonl(d / tmod.SPANS_FILE)
    metrics = _read_json(d / tmod.METRICS_JSON_FILE)

    notes: list[str] = []
    if not (d / tmod.SPANS_FILE).is_file():
        notes.append(f"note: missing stream {tmod.SPANS_FILE} (span tables skipped)")
    if not (d / tmod.LOG_FILE).is_file():
        notes.append(f"note: missing stream {tmod.LOG_FILE} (step tables skipped)")
    if metrics is None:
        # Fall back to the newest rotated snapshot a long run left behind.
        for i in range(1, tmod.METRICS_SNAPSHOT_KEEP + 1):
            rotated = d / f"{tmod.METRICS_JSON_FILE}.{i}"
            metrics = _read_json(rotated)
            if metrics is not None:
                notes.append(
                    f"note: {tmod.METRICS_JSON_FILE} missing; showing rotated "
                    f"snapshot {rotated.name} (run may have ended mid-write)"
                )
                break
        else:
            notes.append(f"note: missing stream {tmod.METRICS_JSON_FILE}")

    blocks = [f"telemetry summary: {d}", _manifest_block(manifest)]
    if notes:
        blocks.append("\n".join(notes))
    for builder, arg in (
        (_steps_table, records),
        (_mpi_share_block, records),
        (_ensemble_table, records),
        (_spans_table, spans),
        (_metrics_table, metrics),
        (_critpath_block, d),
    ):
        try:
            block = builder(arg)
        except Exception as exc:  # torn stream; summarize the rest anyway
            block = f"note: {builder.__name__} failed on partial data ({exc})"
        if block:
            blocks.append(block)
    trace = d / tmod.TRACE_FILE
    if trace.is_file():
        blocks.append(
            f"chrome trace: {trace} (open at https://ui.perfetto.dev, "
            f"{trace.stat().st_size} bytes)"
        )
    return "\n\n".join(blocks)
