"""Metrics registry: labeled counters, gauges, and histograms.

Prometheus-flavoured but dependency-free. A :class:`MetricsRegistry` holds
metric *families* (one per metric name); each family holds one child per
label combination. The hot paths register families lazily and bump the
children, e.g.::

    reg.counter("kernel_launches_total", labelnames=("version", "category"))
    reg.counter("kernel_launches_total").labels(version="A", category="plain").inc()

Two exporters cover the production question ("what is this run doing?")
and the tracking question ("how does this run compare to last PR?"):
:meth:`MetricsRegistry.to_prometheus_text` and
:meth:`MetricsRegistry.to_json`. :func:`parse_prometheus_text` reads the
text format back for round-trip tests and the ``repro telemetry``
summarizer.

The ``Null*`` twins at the bottom are the disabled-telemetry fast path:
every method is a ``pass``, so instrumented code costs one attribute
lookup and a no-op call when no telemetry session is active.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Iterable, Mapping

#: Default histogram buckets (seconds): spans simulated per-step walls
#: (tens of ms) through projected full-run minutes.
DEFAULT_BUCKETS = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_VALID_KINDS = ("counter", "gauge", "histogram")


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Gauge:
    """Value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        self.sum += v
        self.count += 1
        self.counts[bisect.bisect_left(self.buckets, v)] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip((*self.buckets, math.inf), self.counts):
            running += c
            out.append((bound, running))
        return out

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class MetricFamily:
    """All children of one metric name, keyed by label values."""

    __slots__ = ("name", "kind", "help", "labelnames", "children", "_buckets")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if not name or any(ch in name for ch in ' {}"\n'):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self._buckets = buckets

    def labels(self, **labels: str) -> Counter | Gauge | Histogram:
        """Child for one label combination (created on first use)."""
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}"
            )
        key = tuple(str(labels[k]) for k in self.labelnames)
        child = self.children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self._buckets)
            self.children[key] = child
        return child

    # Label-free conveniences: family acts as its own () child.
    def inc(self, amount: float = 1.0) -> None:
        """Bump the label-free child (counter/gauge)."""
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        """Set the label-free child (gauge)."""
        self.labels().set(value)

    def observe(self, value: float) -> None:
        """Observe into the label-free child (histogram)."""
        self.labels().observe(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(names: Iterable[str], values: Iterable[str]) -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return repr(bound)


class MetricsRegistry:
    """Namespace of metric families with lazy registration."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # -- registration -------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        fam = self._families.get(name)
        if fam is None:
            fam = MetricFamily(name, kind, help, labelnames, buckets)
            self._families[name] = fam
            return fam
        if fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, not {kind}"
            )
        if labelnames and fam.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{fam.labelnames}, not {tuple(labelnames)}"
            )
        if help and not fam.help:
            fam.help = help
        return fam

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._family(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family."""
        return self._family(name, "histogram", help, labelnames, buckets)

    # -- access -------------------------------------------------------------

    def get(self, name: str) -> MetricFamily | None:
        """Family by name, or None."""
        return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        """All families, sorted by name."""
        return [self._families[k] for k in sorted(self._families)]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    # -- exporters ----------------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format."""
        lines: list[str] = []
        for fam in self.families():
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for key in sorted(fam.children):
                child = fam.children[key]
                base = _label_str(fam.labelnames, key)
                if isinstance(child, Histogram):
                    for bound, cum in child.cumulative():
                        le = _label_str(
                            (*fam.labelnames, "le"), (*key, _fmt_bound(bound))
                        )
                        lines.append(f"{fam.name}_bucket{le} {cum}")
                    lines.append(f"{fam.name}_sum{base} {child.sum!r}")
                    lines.append(f"{fam.name}_count{base} {child.count}")
                else:
                    lines.append(f"{fam.name}{base} {child.value!r}")
        return "\n".join(lines) + "\n" if lines else ""

    def to_json(self) -> dict:
        """JSON-friendly snapshot of every family."""
        out: dict[str, dict] = {}
        for fam in self.families():
            samples = []
            for key in sorted(fam.children):
                child = fam.children[key]
                labels = dict(zip(fam.labelnames, key))
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": {
                                _fmt_bound(b): c for b, c in child.cumulative()
                            },
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[fam.name] = {
                "type": fam.kind,
                "help": fam.help,
                "labelnames": list(fam.labelnames),
                "samples": samples,
            }
        return out

    def to_json_text(self) -> str:
        """Serialized :meth:`to_json` (stable key order)."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def parse_prometheus_text(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text back to ``{(name, ((label, value), ...)): v}``.

    Supports exactly the subset :meth:`to_prometheus_text` emits (no
    escaped quotes *inside* parsing beyond undoing our own escaping).
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, _, value = line.rpartition(" ")
        if "{" in body:
            name, _, rest = body.partition("{")
            rest = rest.rstrip("}")
            labels = []
            for part in _split_labels(rest):
                lname, _, lval = part.partition("=")
                lval = lval.strip('"')
                lval = (
                    lval.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
                labels.append((lname, lval))
            key = (name, tuple(labels))
        else:
            key = (body, ())
        out[key] = float(value)
    return out


def _split_labels(body: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    parts, depth, cur = [], False, []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and depth and i + 1 < len(body):
            cur.append(ch)
            cur.append(body[i + 1])
            i += 2
            continue
        if ch == '"':
            depth = not depth
        if ch == "," and not depth:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
        i += 1
    if cur:
        parts.append("".join(cur))
    return [p for p in parts if p]


# -- disabled-telemetry fast path --------------------------------------------


class NullMetricFamily:
    """No-op family: every operation does nothing and returns itself."""

    __slots__ = ()

    def labels(self, **labels: str) -> "NullMetricFamily":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_FAMILY = NullMetricFamily()


class NullMetricsRegistry:
    """Registry twin whose families are all the shared no-op family."""

    __slots__ = ()

    def counter(self, name: str, help: str = "", labelnames=()) -> NullMetricFamily:
        return _NULL_FAMILY

    def gauge(self, name: str, help: str = "", labelnames=()) -> NullMetricFamily:
        return _NULL_FAMILY

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> NullMetricFamily:
        return _NULL_FAMILY

    def get(self, name: str) -> None:
        return None

    def families(self) -> list:
        return []

    def __contains__(self, name: str) -> bool:
        return False

    def to_prometheus_text(self) -> str:
        return ""

    def to_json(self) -> dict:
        return {}

    def to_json_text(self) -> str:
        return "{}"


NULL_REGISTRY = NullMetricsRegistry()
