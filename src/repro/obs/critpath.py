"""Cross-rank critical-path reconstruction over telemetry traces.

A run's profiler lanes (one per rank, plus ``:comm`` lanes for PR 6's
detached overlapped-exchange clocks) tile simulated time completely: every
second on every rank is an event with a category and label. The *critical
path* is the chain of events that actually determined the wall clock --
compute on the slowest rank, the unhidden part of a halo exchange, an
allreduce butterfly -- extracted by walking backward from the last event:

* on a working event, the path consumes it and steps to its start;
* on an ``mpi_wait`` event, the wait is *caused elsewhere*: the walker
  jumps to the lane whose non-wait event covers that moment (the barrier
  laggard, or the same rank's detached communication clock during a
  ``halo_wait_residual``). These jumps are exactly the dependency edges
  the instrumentation encodes: halo ``begin -> finish`` pairs, allreduce
  rendezvous barriers, per-queue launch order;
* a wait with no working peer anywhere is genuine cost (every rank
  blocked on the same wire) and stays on the path.

By construction the extracted path tiles ``[t0, t1]`` -- its total equals
the simulated wall time (asserted to <=1% in tests and the CI gate), so
attributing the path per rank x category x kernel is a *decomposition* of
the wall clock, not a sample of it. ``repro critpath DIR`` renders the
tables; ``summarize_dir`` embeds the compact form.
"""

from __future__ import annotations

import json
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

#: Category value whose time is caused by another lane (jump candidates).
WAIT_CATEGORY = "mpi_wait"

#: Lane suffix of detached communication clocks (overlapped exchanges).
COMM_SUFFIX = ":comm"

#: Synthetic category for unattributed holes in a lane's timeline.
IDLE_CATEGORY = "idle"

#: Blame groups, in render order.
BLAME_GROUPS = (
    "compute", "halo", "collectives", "launch", "memory", "mpi_other", "host",
    IDLE_CATEGORY,
)

_MEMORY_CATEGORIES = frozenset({"h2d", "d2h", "um_fault"})
_MPI_CATEGORIES = frozenset({"mpi_pack", "mpi_transfer", "mpi_wait"})


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One categorized time slice on one lane (model-relative seconds)."""

    lane: str
    start: float
    duration: float
    category: str
    label: str

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One attributed stretch of the critical path."""

    lane: str
    start: float
    end: float
    category: str
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


def blame_group(category: str, label: str) -> str:
    """Map one (category, label) to its blame group.

    ``halo`` collects everything the exchange engine charges (pack/unpack
    kernels, wire time, buffer init, posting/finish overhead, exchange
    barriers); ``collectives`` the allreduce family; the rest fall back to
    category-level groups.
    """
    if label.startswith(("halo_", "msg_")) or label.startswith("launch(halo_"):
        return "halo"
    if label.startswith("allreduce"):
        return "collectives"
    if category == "compute":
        return "compute"
    if category == "launch":
        return "launch"
    if category in _MEMORY_CATEGORIES:
        return "memory"
    if category in _MPI_CATEGORIES:
        return "mpi_other"
    if category == IDLE_CATEGORY:
        return IDLE_CATEGORY
    return "host"


def lane_model(lane: str) -> str:
    """Model prefix of a lane (``m0.rank1:comm`` -> ``m0``)."""
    return lane.split(".", 1)[0] if "." in lane else ""


def lane_rank(lane: str) -> int:
    """Rank index of a lane (``m0.rank1:comm`` -> 1); -1 if unparseable."""
    tail = lane.rsplit(".", 1)[-1]
    if tail.endswith(COMM_SUFFIX):
        tail = tail[: -len(COMM_SUFFIX)]
    if tail.startswith("rank"):
        try:
            return int(tail[4:])
        except ValueError:
            return -1
    return -1


class _Lane:
    """Per-lane event index supporting covering-event queries."""

    __slots__ = ("name", "events", "starts", "last_end")

    def __init__(self, name: str, events: list[TraceEvent]) -> None:
        self.name = name
        self.events = sorted(events, key=lambda e: (e.start, e.end))
        self.starts = [e.start for e in self.events]
        self.last_end = max(e.end for e in self.events)

    def covering(self, t: float, eps: float) -> TraceEvent | None:
        """The event containing ``t`` (start < t <= end), else None."""
        idx = bisect_left(self.starts, t - eps) - 1
        if idx < 0:
            return None
        e = self.events[idx]
        return e if e.end >= t - eps else None

    def latest_ending_before(self, t: float, eps: float) -> TraceEvent | None:
        """The latest event ending at or before ``t``, else None."""
        idx = bisect_left(self.starts, t + eps) - 1
        for i in range(idx, -1, -1):
            if self.events[i].end <= t + eps:
                return self.events[i]
        return None


@dataclass
class CritPathResult:
    """Critical path and derived attribution for one model."""

    model: str
    num_ranks: int
    t0: float
    t1: float
    segments: list[PathSegment]
    #: Non-wait busy seconds per rank (imbalance input).
    busy_by_rank: dict[int, float]
    #: mpi_wait seconds per rank (stragglers pay none; peers pay all).
    idle_by_rank: dict[int, float]
    #: mpi_wait seconds per phase, summed over ranks.
    idle_by_phase: dict[str, float] = field(default_factory=dict)
    #: Path seconds per phase (span attribution, when spans are available).
    path_by_phase: dict[str, float] = field(default_factory=dict)

    @property
    def wall(self) -> float:
        """Simulated wall clock of the model (last end - first start)."""
        return self.t1 - self.t0

    @property
    def path_total(self) -> float:
        """Total attributed path length (== wall up to float eps)."""
        return sum(s.duration for s in self.segments)

    @property
    def coverage(self) -> float:
        """path_total / wall; the <=1% acceptance invariant."""
        return self.path_total / self.wall if self.wall > 0 else 1.0

    @property
    def by_category(self) -> dict[str, float]:
        """``critical_path_seconds{category}``."""
        out: dict[str, float] = {}
        for s in self.segments:
            out[s.category] = out.get(s.category, 0.0) + s.duration
        return out

    @property
    def by_rank(self) -> dict[int, float]:
        """Path seconds attributed to each rank's lanes."""
        out: dict[int, float] = {}
        for s in self.segments:
            out.setdefault(lane_rank(s.lane), 0.0)
            out[lane_rank(s.lane)] += s.duration
        return out

    @property
    def by_blame(self) -> dict[str, float]:
        """Path seconds per blame group (halo / collectives / compute...)."""
        out: dict[str, float] = {}
        for s in self.segments:
            g = blame_group(s.category, s.label)
            out[g] = out.get(g, 0.0) + s.duration
        return out

    def blame_share(self, group: str) -> float:
        """Fraction of the critical path in one blame group (CI gate)."""
        total = self.path_total
        return self.by_blame.get(group, 0.0) / total if total > 0 else 0.0

    def top_contributors(self, n: int = 10) -> list[dict[str, Any]]:
        """Hottest (label, category) path contributors with rank blame."""
        agg: dict[tuple[str, str], dict[str, Any]] = {}
        for s in self.segments:
            key = (s.label or s.category, s.category)
            entry = agg.setdefault(
                key,
                {"label": key[0], "category": s.category, "seconds": 0.0,
                 "ranks": {}},
            )
            entry["seconds"] += s.duration
            r = lane_rank(s.lane)
            entry["ranks"][r] = entry["ranks"].get(r, 0.0) + s.duration
        rows = sorted(agg.values(), key=lambda e: -e["seconds"])[:n]
        for e in rows:
            e["rank"] = max(e["ranks"], key=e["ranks"].get)
            e["share"] = e["seconds"] / self.path_total if self.path_total else 0.0
        return rows

    @property
    def load_imbalance_ratio(self) -> float:
        """max rank busy time / mean rank busy time (1.0 = balanced)."""
        busy = [v for v in self.busy_by_rank.values() if v >= 0.0]
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable summary (the ``--json`` artifact body)."""
        return {
            "model": self.model,
            "num_ranks": self.num_ranks,
            "wall_seconds": self.wall,
            "path_seconds": self.path_total,
            "coverage": self.coverage,
            "load_imbalance_ratio": self.load_imbalance_ratio,
            "critical_path_seconds": self.by_category,
            "blame": self.by_blame,
            "blame_share": {g: self.blame_share(g) for g in self.by_blame},
            "by_rank": {str(k): v for k, v in self.by_rank.items()},
            "idle_by_rank": {str(k): v for k, v in self.idle_by_rank.items()},
            "idle_by_phase": self.idle_by_phase,
            "path_by_phase": self.path_by_phase,
            "top_contributors": [
                {k: v for k, v in e.items() if k != "ranks"}
                for e in self.top_contributors()
            ],
        }


# -- extraction ---------------------------------------------------------------


def extract_critical_path(
    events: Sequence[TraceEvent], *, eps: float = 1e-12
) -> list[PathSegment]:
    """Backward-walk the critical path through one model's lanes.

    ``events`` must all belong to one model (main and ``:comm`` lanes).
    Returns segments in increasing time order, tiling ``[t0, t1]``.
    """
    events = [e for e in events if e.duration > 0.0]
    if not events:
        return []
    by_lane: dict[str, list[TraceEvent]] = {}
    for e in events:
        by_lane.setdefault(e.lane, []).append(e)
    lanes = {name: _Lane(name, evs) for name, evs in by_lane.items()}
    t0 = min(e.start for e in events)
    t1 = max(e.end for e in events)
    lane = max(lanes.values(), key=lambda ln: ln.last_end).name

    segments: list[PathSegment] = []
    t = t1
    guard = 10 * len(events) + 100
    while t > t0 + eps and guard > 0:
        guard -= 1
        e = lanes[lane].covering(t, eps)
        if e is None:
            # Hole on this lane. Another lane may still be busy at t (the
            # walker stepped onto a comm lane that attached mid-run);
            # prefer continuing on a covering lane (non-wait first) ...
            cover = cover_key = None
            for ln in lanes.values():
                cand = ln.covering(t, eps)
                if cand is None:
                    continue
                key = (cand.category != WAIT_CATEGORY, cand.end, cand.lane)
                if cover is None or key > cover_key:
                    cover, cover_key = cand, key
            if cover is not None:
                lane = cover.lane
                continue
            # ... else resume from the latest-ending event anywhere at or
            # before t, attributing the hole as idle.
            best = None
            for ln in lanes.values():
                cand = ln.latest_ending_before(t, eps)
                if cand is not None and (best is None or cand.end > best.end):
                    best = cand
            if best is None:
                segments.append(PathSegment(lane, t0, t, IDLE_CATEGORY, ""))
                break
            if best.end < t - eps:
                segments.append(
                    PathSegment(best.lane, best.end, t, IDLE_CATEGORY, "")
                )
            t = min(t, best.end)
            lane = best.lane
            continue
        if e.category == WAIT_CATEGORY:
            blocker = _find_blocker(lanes, lane, t, eps)
            if blocker is not None:
                lane = blocker.lane
                continue
        seg_start = max(e.start, t0)
        if t - seg_start > eps:
            segments.append(PathSegment(lane, seg_start, t, e.category, e.label))
        t = seg_start
    segments.reverse()
    return segments


def _find_blocker(
    lanes: Mapping[str, _Lane], current: str, t: float, eps: float
) -> TraceEvent | None:
    """The non-wait event on another lane covering ``t`` (the cause of a
    wait on ``current``), preferring the latest-ending candidate."""
    best: TraceEvent | None = None
    for name, ln in lanes.items():
        if name == current:
            continue
        cand = ln.covering(t, eps)
        if cand is None or cand.category == WAIT_CATEGORY:
            continue
        if best is None or (cand.end, cand.lane) > (best.end, best.lane):
            best = cand
    return best


# -- phase attribution --------------------------------------------------------


def _phase_windows(
    spans: Sequence[Mapping[str, Any]], model: str, single_model: bool
) -> list[tuple[float, float, str]]:
    """Phase windows (depth-1 ``step/*`` and ``setup/*`` spans) for one model.

    Spans carry their model via a ``model`` attr on the enclosing ``step``
    span (walked through ``parent_id``); dirs written before that
    annotation existed fall back to "all spans" when the session bound a
    single model, and to no phase attribution otherwise.
    """
    by_id = {s.get("span_id"): s for s in spans}

    def span_model(s: Mapping[str, Any]) -> str | None:
        seen = 0
        while s is not None and seen < 64:
            m = (s.get("attrs") or {}).get("model")
            if m is not None:
                return str(m)
            s = by_id.get(s.get("parent_id"))
            seen += 1
        return None

    windows: list[tuple[float, float, str]] = []
    for s in spans:
        name = s.get("name", "")
        if s.get("end") is None:
            continue
        is_phase = (s.get("depth") == 1 and name.startswith("step/")) or (
            s.get("depth") == 0 and name.startswith("setup/")
        )
        if not is_phase:
            continue
        m = span_model(s)
        if m is None and not single_model:
            continue
        if m is not None and m != model:
            continue
        insort(windows, (float(s["start"]), float(s["end"]), name))
    return windows


def _phase_split(
    windows: list[tuple[float, float, str]], start: float, end: float
) -> list[tuple[str, float]]:
    """Split ``[start, end]`` across the sorted phase windows.

    Seconds outside every window accrue to ``(outside phases)`` -- long
    segments spanning a phase boundary are clipped, not midpoint-binned.
    """
    out: list[tuple[str, float]] = []
    t = start
    idx = max(0, bisect_left(windows, (t, float("inf"), "")) - 1)
    for w0, w1, name in windows[idx:]:
        if w1 <= t:
            continue
        if w0 >= end:
            break
        if w0 > t:
            out.append(("(outside phases)", w0 - t))
            t = w0
        take = min(w1, end) - t
        if take > 0:
            out.append((name, take))
            t += take
        if t >= end:
            break
    if t < end:
        out.append(("(outside phases)", end - t))
    return out


# -- analysis entry points ----------------------------------------------------


def analyze_events(
    events: Iterable[TraceEvent],
    *,
    spans: Sequence[Mapping[str, Any]] = (),
) -> dict[str, CritPathResult]:
    """Critical-path analysis per model over a mixed event stream."""
    by_model: dict[str, list[TraceEvent]] = {}
    for e in events:
        by_model.setdefault(lane_model(e.lane), []).append(e)
    by_model.pop("", None)
    results: dict[str, CritPathResult] = {}
    single = len(by_model) == 1
    for model, evs in sorted(by_model.items()):
        segments = extract_critical_path(evs)
        busy: dict[int, float] = {}
        idle: dict[int, float] = {}
        ranks: set[int] = set()
        windows = _phase_windows(spans, model, single)
        idle_by_phase: dict[str, float] = {}
        for e in evs:
            r = lane_rank(e.lane)
            ranks.add(r)
            if e.lane.endswith(COMM_SUFFIX):
                continue
            if e.category == WAIT_CATEGORY:
                idle[r] = idle.get(r, 0.0) + e.duration
                if windows:
                    for ph, sec in _phase_split(windows, e.start, e.end):
                        idle_by_phase[ph] = idle_by_phase.get(ph, 0.0) + sec
            else:
                busy[r] = busy.get(r, 0.0) + e.duration
        path_by_phase: dict[str, float] = {}
        if windows:
            for s in segments:
                for ph, sec in _phase_split(windows, s.start, s.end):
                    path_by_phase[ph] = path_by_phase.get(ph, 0.0) + sec
        results[model] = CritPathResult(
            model=model,
            num_ranks=len([r for r in ranks if r >= 0]),
            t0=min(e.start for e in evs),
            t1=max(e.end for e in evs),
            segments=segments,
            busy_by_rank=busy,
            idle_by_rank=idle,
            idle_by_phase=idle_by_phase,
            path_by_phase=path_by_phase,
        )
    return results


def events_from_profiler(profiler: Any) -> list[TraceEvent]:
    """Adapt live :class:`~repro.perf.profiler.ProfileEvent` records."""
    return [
        TraceEvent(
            lane=e.lane,
            start=e.start,
            duration=e.duration,
            category=e.category.value,
            label=e.label,
        )
        for e in profiler.events
    ]


def analyze_session(tel: Any) -> dict[str, CritPathResult]:
    """Analyze a live telemetry session (no artifacts needed)."""
    spans = [s.to_dict() for s in tel.tracer.spans]
    return analyze_events(events_from_profiler(tel.profiler), spans=spans)


def load_trace_events(path: str | Path) -> list[TraceEvent]:
    """Read profiler (and comm) lanes back out of a ``trace.json``.

    Span events (pid 0) are skipped; ``:mem`` sub-lanes merge back into
    their rank lane; ``:comm`` lanes stay distinct.
    """
    from repro.perf.trace_export import SPAN_PID

    data = json.loads(Path(path).read_text())
    lanes: dict[tuple[int, int], str] = {}
    for ev in data.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            lanes[(ev["pid"], ev["tid"])] = ev["args"]["name"]
    out: list[TraceEvent] = []
    for ev in data.get("traceEvents", []):
        if ev.get("ph") != "X" or ev.get("pid") == SPAN_PID:
            continue
        lane = lanes.get((ev["pid"], ev["tid"]), f"pid{ev['pid']}.tid{ev['tid']}")
        if lane.endswith(":mem"):
            lane = lane[: -len(":mem")]
        out.append(
            TraceEvent(
                lane=lane,
                start=ev["ts"] / 1e6,
                duration=ev.get("dur", 0.0) / 1e6,
                category=ev.get("args", {}).get("category", "host"),
                label=ev.get("name", ""),
            )
        )
    return out


def analyze_dir(path: str | Path) -> dict[str, CritPathResult]:
    """Critical-path analysis of a finalized telemetry directory."""
    from repro.obs import telemetry as tmod

    d = Path(path)
    trace = d / tmod.TRACE_FILE
    if not trace.is_file():
        raise FileNotFoundError(f"no {tmod.TRACE_FILE} in {d}")
    events = load_trace_events(trace)
    spans: list[dict] = []
    spans_file = d / tmod.SPANS_FILE
    if spans_file.is_file():
        for line in spans_file.read_text().splitlines():
            line = line.strip()
            if line:
                try:
                    spans.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    return analyze_events(events, spans=spans)


# -- rendering ----------------------------------------------------------------


def render_result(result: CritPathResult, *, top: int = 10) -> str:
    """Full tables for one model's critical path."""
    from repro.util.tables import Table

    blocks = [
        f"critical path [{result.model}]: wall {result.wall * 1e3:.3f} ms, "
        f"path {result.path_total * 1e3:.3f} ms "
        f"(coverage {result.coverage * 100:.2f}%), "
        f"{result.num_ranks} rank(s), "
        f"load_imbalance_ratio {result.load_imbalance_ratio:.3f}"
    ]

    t = Table(
        ["category", "path (ms)", "share"],
        title="critical_path_seconds by category",
    )
    for cat, sec in sorted(result.by_category.items(), key=lambda kv: -kv[1]):
        t.add_row([cat, sec * 1e3, f"{sec / result.path_total * 100:5.1f}%"])
    blocks.append(t.render())

    t = Table(
        ["blame", "path (ms)", "share"], title="Blame groups on the path"
    )
    for g in BLAME_GROUPS:
        sec = result.by_blame.get(g)
        if sec:
            t.add_row([g, sec * 1e3, f"{result.blame_share(g) * 100:5.1f}%"])
    blocks.append(t.render())

    t = Table(
        ["label", "category", "worst rank", "path (ms)", "share"],
        title=f"Top path contributors (top {top})",
    )
    for e in result.top_contributors(top):
        t.add_row(
            [e["label"], e["category"], e["rank"], e["seconds"] * 1e3,
             f"{e['share'] * 100:5.1f}%"]
        )
    blocks.append(t.render())

    if result.path_by_phase:
        t = Table(
            ["phase", "path (ms)", "idle across ranks (ms)"],
            title="Per-phase path and idle time",
        )
        for ph, sec in sorted(result.path_by_phase.items(), key=lambda kv: -kv[1]):
            t.add_row([ph, sec * 1e3, result.idle_by_phase.get(ph, 0.0) * 1e3])
        blocks.append(t.render())

    if result.idle_by_rank:
        parts = ", ".join(
            f"rank{r}={v * 1e3:.3f}ms"
            for r, v in sorted(result.idle_by_rank.items())
        )
        blocks.append(f"idle (mpi_wait) by rank: {parts}")
    return "\n\n".join(blocks)


def render_compact(results: Mapping[str, CritPathResult]) -> str:
    """One-row-per-model table (embedded by ``summarize_dir``)."""
    from repro.util.tables import Table

    t = Table(
        ["model", "ranks", "wall (ms)", "path (ms)", "coverage", "top blame",
         "halo share", "imbalance"],
        title="Critical path per model",
    )
    for model, r in results.items():
        blame = r.by_blame
        top = max(blame, key=blame.get) if blame else "-"
        t.add_row(
            [
                model,
                r.num_ranks,
                r.wall * 1e3,
                r.path_total * 1e3,
                f"{r.coverage * 100:.2f}%",
                f"{top} {r.blame_share(top) * 100:.1f}%" if blame else "-",
                f"{r.blame_share('halo') * 100:.1f}%",
                f"{r.load_imbalance_ratio:.3f}",
            ]
        )
    return t.render()


def results_to_json(results: Mapping[str, CritPathResult]) -> dict[str, Any]:
    """The ``repro critpath --json`` document."""
    return {
        "schema": "repro-critpath/1",
        "models": {m: r.to_json() for m, r in results.items()},
    }
