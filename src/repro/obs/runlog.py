"""Structured JSONL run logging and the run manifest.

:class:`RunLogger` accumulates structured records -- dicts with an
``event`` discriminator plus arbitrary fields -- and serializes them one
JSON object per line. The model emits one ``step`` record per step (dt,
wall, mpi, per-category simulated seconds), the PCG solver one
``pcg_solve`` record per solve, etc.; ``repro telemetry DIR`` aggregates
them back into tables.

:func:`build_manifest` captures run provenance: CLI command and
arguments, code version(s), grid, seed, git SHA, interpreter and numpy
versions. The manifest is what makes two ``BENCH_*.json`` /
telemetry directories comparable across PRs.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from pathlib import Path
from typing import Any


def _json_default(o: Any) -> Any:
    item = getattr(o, "item", None)  # numpy scalars -> python scalars
    if callable(item):
        return item()
    if isinstance(o, (set, frozenset, tuple)):
        return list(o)
    return str(o)


def json_dumps(obj: Any) -> str:
    """JSON serialization tolerant of numpy scalars and odd types."""
    return json.dumps(obj, default=_json_default)


class RunLogger:
    """Append-only structured log, serialized as JSONL.

    By default records accumulate in memory and are written once at
    session finalization. :meth:`attach_sink` turns on streaming: records
    append to a JSONL file as they arrive (every ``flush_every_n``
    records, or on explicit :meth:`flush`), so a run killed mid-flight
    still leaves a parseable log -- every flushed line is a complete JSON
    object. A record mutated *after* it was flushed keeps its old content
    on disk until finalization rewrites the file.
    """

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []
        self._sink: Path | None = None
        self.flush_every_n = 0
        self._flushed = 0

    def attach_sink(self, path: str | Path, *, flush_every_n: int = 0) -> None:
        """Stream records to ``path`` (truncated now), flushing every N."""
        self._sink = Path(path)
        self._sink.parent.mkdir(parents=True, exist_ok=True)
        self._sink.write_text("")
        self.flush_every_n = flush_every_n
        self._flushed = 0

    def log(self, event: str, **fields: Any) -> dict[str, Any]:
        """Append one record; returns it (mutating it later is visible)."""
        rec: dict[str, Any] = {"event": event, **fields}
        self.records.append(rec)
        if (
            self._sink is not None
            and self.flush_every_n > 0
            and len(self.records) - self._flushed >= self.flush_every_n
        ):
            self.flush()
        return rec

    def flush(self) -> int:
        """Append every not-yet-flushed record to the sink; returns count."""
        if self._sink is None:
            return 0
        pending = self.records[self._flushed :]
        if not pending:
            return 0
        with self._sink.open("a") as fh:
            for r in pending:
                fh.write(json_dumps(r) + "\n")
        self._flushed = len(self.records)
        return len(pending)

    def by_event(self, event: str) -> list[dict[str, Any]]:
        """All records with the given event type."""
        return [r for r in self.records if r.get("event") == event]

    def to_jsonl(self) -> str:
        """One JSON object per line."""
        return "\n".join(json_dumps(r) for r in self.records)


class NullRunLogger:
    """Logger twin for disabled telemetry."""

    __slots__ = ()

    records: tuple = ()
    flush_every_n = 0

    def log(self, event: str, **fields: Any) -> None:
        return None

    def attach_sink(self, path: Any, *, flush_every_n: int = 0) -> None:
        return None

    def flush(self) -> int:
        return 0

    def by_event(self, event: str) -> tuple:
        return ()

    def to_jsonl(self) -> str:
        return ""


NULL_LOGGER = NullRunLogger()


def git_sha(cwd: str | Path | None = None) -> str | None:
    """HEAD commit of the enclosing repo, or None outside git / on error."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else str(Path(__file__).resolve().parent),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def build_manifest(**extra: Any) -> dict[str, Any]:
    """Provenance manifest: environment + whatever the caller adds.

    ``extra`` typically carries ``command`` (CLI subcommand), ``cli``
    (parsed arguments) and ``models`` (per-model config recorded by
    :meth:`~repro.obs.telemetry.Telemetry.bind_model`).
    """
    from repro.util.rng import ROOT_SEED

    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    manifest: dict[str, Any] = {
        "schema": "repro-telemetry-manifest/1",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "numpy": numpy_version,
        "seed": ROOT_SEED,
        "git_sha": git_sha(),
        "argv": list(sys.argv),
    }
    manifest.update(extra)
    return manifest
