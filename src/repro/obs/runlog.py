"""Structured JSONL run logging and the run manifest.

:class:`RunLogger` accumulates structured records -- dicts with an
``event`` discriminator plus arbitrary fields -- and serializes them one
JSON object per line. The model emits one ``step`` record per step (dt,
wall, mpi, per-category simulated seconds), the PCG solver one
``pcg_solve`` record per solve, etc.; ``repro telemetry DIR`` aggregates
them back into tables.

:func:`build_manifest` captures run provenance: CLI command and
arguments, code version(s), grid, seed, git SHA, interpreter and numpy
versions. The manifest is what makes two ``BENCH_*.json`` /
telemetry directories comparable across PRs.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from pathlib import Path
from typing import Any


def _json_default(o: Any) -> Any:
    item = getattr(o, "item", None)  # numpy scalars -> python scalars
    if callable(item):
        return item()
    if isinstance(o, (set, frozenset, tuple)):
        return list(o)
    return str(o)


def json_dumps(obj: Any) -> str:
    """JSON serialization tolerant of numpy scalars and odd types."""
    return json.dumps(obj, default=_json_default)


class RunLogger:
    """Append-only structured log, serialized as JSONL."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def log(self, event: str, **fields: Any) -> dict[str, Any]:
        """Append one record; returns it (mutating it later is visible)."""
        rec: dict[str, Any] = {"event": event, **fields}
        self.records.append(rec)
        return rec

    def by_event(self, event: str) -> list[dict[str, Any]]:
        """All records with the given event type."""
        return [r for r in self.records if r.get("event") == event]

    def to_jsonl(self) -> str:
        """One JSON object per line."""
        return "\n".join(json_dumps(r) for r in self.records)


class NullRunLogger:
    """Logger twin for disabled telemetry."""

    __slots__ = ()

    records: tuple = ()

    def log(self, event: str, **fields: Any) -> None:
        return None

    def by_event(self, event: str) -> tuple:
        return ()

    def to_jsonl(self) -> str:
        return ""


NULL_LOGGER = NullRunLogger()


def git_sha(cwd: str | Path | None = None) -> str | None:
    """HEAD commit of the enclosing repo, or None outside git / on error."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else str(Path(__file__).resolve().parent),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def build_manifest(**extra: Any) -> dict[str, Any]:
    """Provenance manifest: environment + whatever the caller adds.

    ``extra`` typically carries ``command`` (CLI subcommand), ``cli``
    (parsed arguments) and ``models`` (per-model config recorded by
    :meth:`~repro.obs.telemetry.Telemetry.bind_model`).
    """
    from repro.util.rng import ROOT_SEED

    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    manifest: dict[str, Any] = {
        "schema": "repro-telemetry-manifest/1",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "numpy": numpy_version,
        "seed": ROOT_SEED,
        "git_sha": git_sha(),
        "argv": list(sys.argv),
    }
    manifest.update(extra)
    return manifest
