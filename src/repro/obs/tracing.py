"""Hierarchical span tracing over simulated time.

A :class:`Tracer` records nested :class:`Span`\\ s::

    with tracer.span("step/viscosity/pcg", component="vr"):
        ...

Nesting is tracked with an explicit stack, so every span knows its parent
(``parent_id``) and depth -- that is the context propagation: any code
called inside a ``with tracer.span(...)`` block lands under the caller's
span without plumbing arguments through (the halo exchanger's spans nest
under whichever step phase triggered the exchange).

Spans are stamped with *simulated* seconds by default: ``time_fn`` is
rebound to the active model's rank clocks (max over ranks) when a
:class:`~repro.obs.telemetry.Telemetry` session binds a model, so spans
share a timebase with :class:`~repro.perf.profiler.Profiler` events and
merge into one Chrome trace (see :mod:`repro.perf.trace_export`). Host
wall-clock duration is recorded separately per span (``host_seconds``)
for overhead analysis.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator


@dataclass(slots=True)
class Span:
    """One completed (or still-open) traced region."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    depth: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Host wall-clock seconds spent inside the span (not simulated time).
    host_seconds: float = 0.0

    @property
    def duration(self) -> float:
        """Simulated duration (0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSONL record for this span."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "attrs": self.attrs,
            "host_seconds": self.host_seconds,
        }


class _SpanContext:
    """Context manager closing one span; reusable across ``with`` blocks."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, *exc: object) -> bool:
        self._span.host_seconds = time.perf_counter() - self._t0
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects hierarchical spans with a pluggable time source."""

    def __init__(self, time_fn: Callable[[], float] | None = None) -> None:
        #: Simulated-time source; rebound by Telemetry.bind_model.
        self.time_fn: Callable[[], float] = time_fn or (lambda: 0.0)
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self._sink: Path | None = None
        self.flush_every_n = 0
        self._unflushed: list[Span] = []

    def attach_sink(self, path: str | Path, *, flush_every_n: int = 0) -> None:
        """Stream *completed* spans to ``path`` (truncated now) as JSONL.

        Spans land in close order (only a closed span has its duration),
        flushed every ``flush_every_n`` closes or on explicit
        :meth:`flush`; each line is a complete JSON object, so a killed
        run still leaves a parseable file. Finalization rewrites the file
        in start order, normalizing streamed and non-streamed runs.
        """
        self._sink = Path(path)
        self._sink.parent.mkdir(parents=True, exist_ok=True)
        self._sink.write_text("")
        self.flush_every_n = flush_every_n
        self._unflushed = []

    def flush(self) -> int:
        """Append every closed-but-unflushed span to the sink."""
        if self._sink is None or not self._unflushed:
            return 0
        with self._sink.open("a") as fh:
            for s in self._unflushed:
                fh.write(json.dumps(s.to_dict(), default=_json_default) + "\n")
        n = len(self._unflushed)
        self._unflushed = []
        return n

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a span; close it by exiting the returned context manager."""
        parent = self._stack[-1] if self._stack else None
        s = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            name=name,
            start=self.time_fn(),
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(s)
        self._stack.append(s)
        return _SpanContext(self, s)

    def _close(self, span: Span) -> None:
        span.end = self.time_fn()
        # tolerate exceptions unwinding several frames at once
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self._sink is not None:
            self._unflushed.append(span)
            if (
                self.flush_every_n > 0
                and len(self._unflushed) >= self.flush_every_n
            ):
                self.flush()

    def current(self) -> Span | None:
        """Innermost open span (the propagation context), or None."""
        return self._stack[-1] if self._stack else None

    def completed(self) -> list[Span]:
        """Spans that have been closed."""
        return [s for s in self.spans if s.end is not None]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of ``span``."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def to_jsonl(self) -> str:
        """One JSON object per line, in start order."""
        return "\n".join(json.dumps(s.to_dict(), default=_json_default) for s in self.spans)

    def by_name(self) -> dict[str, list[Span]]:
        """Completed spans grouped by name."""
        out: dict[str, list[Span]] = {}
        for s in self.completed():
            out.setdefault(s.name, []).append(s)
        return out


def _json_default(o: Any) -> Any:
    item = getattr(o, "item", None)  # numpy scalars
    if callable(item):
        return item()
    return str(o)


def iter_roots(spans: list[Span]) -> Iterator[Span]:
    """Top-level spans (no parent)."""
    return (s for s in spans if s.parent_id is None)


# -- disabled-telemetry fast path --------------------------------------------


class _NullSpanContext:
    """Shared, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Tracer twin for disabled telemetry: spans cost one no-op call."""

    __slots__ = ()

    spans: tuple = ()
    time_fn = staticmethod(lambda: 0.0)
    flush_every_n = 0

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def attach_sink(self, path: Any, *, flush_every_n: int = 0) -> None:
        return None

    def flush(self) -> int:
        return 0

    def current(self) -> None:
        return None

    def completed(self) -> tuple:
        return ()

    def to_jsonl(self) -> str:
        return ""

    def by_name(self) -> dict:
        return {}


NULL_TRACER = NullTracer()
