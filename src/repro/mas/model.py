"""Top-level MAS-analog model: physics + runtime + MPI orchestration.

One :class:`MasModel` owns the global grid, its domain decomposition, one
:class:`~repro.runtime.dispatcher.RankRuntime` per simulated MPI rank, and
the per-rank states. :meth:`step` advances the full thermodynamic MHD
system one step, issuing every array operation as a runtime kernel so that
the six code versions of Table I accrue their distinct simulated costs
while computing bit-identical physics.

Step sequence (mirroring MAS's semi-implicit loop, paper SIII):

1. halo exchange + physical boundaries for all state fields
2. CFL timestep (local reduction kernel + MPI allreduce-min)
3. continuity and temperature advection (explicit upwind)
4. momentum predictor (pressure gradient, gravity, Lorentz force)
5. implicit viscosity solve per velocity component (PCG, Fig. 4's solver)
6. induction via constrained transport (exactly divergence-free)
7. thermal conduction (RKL2 super time-stepping)
8. radiative losses + coronal heating, then floors
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.machine.cluster import GpuCluster
from repro.machine.cpu import CpuNodeModel, EPYC_7742_NODE
from repro.machine.interconnect import DELTA_INTERCONNECT, SLINGSHOT
from repro.machine.node import GpuNode, make_delta_node
from repro.mas import operators as ops
from repro.mas.boundary import BoundaryProfiles, apply_boundaries, apply_centered_boundary
from repro.mas.conduction import conduction_rhs, max_diffusivity
from repro.mas.constants import PhysicsParams
from repro.mas.grid import LocalGrid, SphericalGrid
from repro.mas.initial import initialize
from repro.mas.pcg import (
    PCG_VARIANTS,
    PRECONDITIONERS,
    chebyshev_preconditioner,
    jacobi_spectral_bounds,
    pcg_solve,
    pcg_solve_batched,
    pcg_solve_ca,
    pcg_solve_ca_batched,
    pcg_solve_pipelined,
    pcg_solve_pipelined_batched,
)
from repro.mas.radiation import energy_source_rate, heating_profile
from repro.mas.state import EnsembleState, MhdState
from repro.mas.semi_implicit import max_wave_speed, si_coefficient
from repro.mas.sts import explicit_parabolic_dt, rkl2_advance, stages_for_dt
from repro.mas.viscosity import implicit_matvec, jacobi_diagonal
from repro.mpi.collectives import (
    allreduce_many,
    allreduce_many_begin,
    allreduce_many_finish,
    allreduce_max,
    allreduce_min,
    allreduce_sum,
)
from repro.mpi.decomp import Decomposition3D
from repro.mpi.halo import HaloExchanger, HaloSpec
from repro.obs.telemetry import current as _telemetry
from repro.mpi.transport import TransportKind, make_transport
from repro.runtime.clock import TimeCategory
from repro.runtime.config import RuntimeConfig
from repro.runtime.cost import KernelCostModel
from repro.runtime.data_env import DataEnvironment, DataMode
from repro.runtime.dispatcher import RankRuntime
from repro.runtime.kernel import KernelSpec
from repro.runtime.launch import bind_devices, devices_for_binding
from repro.runtime.stream import AsyncQueue

#: Paper-scale problem: 36 million cells (SV-A).
NOMINAL_SHAPE_PAPER = (150, 300, 800)

#: Work arrays every rank registers besides the 8 state fields.
WORK_ARRAYS = (
    "wrk_pres", "wrk_divv",
    "wrk_adv_r", "wrk_adv_t", "wrk_adv_p",
    "wrk_lor_r", "wrk_lor_t", "wrk_lor_p",
    "pcg_r", "pcg_z", "pcg_p", "pcg_ap", "pcg_diag",
    "pcg_s", "pcg_q", "pcg_az",
    "sts_y", "sts_l",
    "emf_r", "emf_t", "emf_p",
    "heat", "diag_flux",
)

#: PCG recurrence roles -> (written array, read array) of the axpy kernel.
#: Naming each recurrence's own arrays (instead of charging every axpy to
#: pcg_p/pcg_z) makes back-to-back axpys of different recurrences
#: data-independent, so the cross-region fusion window can collapse them.
_AXPY_ROLES = {
    ("p", "u"): ("pcg_p", "pcg_z"),
    ("s", "w"): ("pcg_s", "pcg_ap"),
    ("q", "m"): ("pcg_q", "pcg_z"),
    ("z", "n"): ("pcg_az", "pcg_ap"),
}

#: Parameters a sweep may vary per ensemble member.  ``b0`` and
#: ``perturbation`` enter the initial condition; ``viscosity`` and
#: ``resistivity`` broadcast as (B,1,1,1) coefficient arrays through the
#: implicit solve and EMF assembly.  (Other :class:`PhysicsParams` fields
#: feed scalar control logic -- CFL constants, floors, stage sizing --
#: and are deliberately not per-member.)
ENSEMBLE_VARY_PARAMS = ("b0", "perturbation", "viscosity", "resistivity")


@dataclass(frozen=True)
class ModelConfig:
    """Physics/problem configuration (identical across code versions)."""

    shape: tuple[int, int, int] = (16, 12, 24)
    nominal_shape: tuple[int, int, int] = NOMINAL_SHAPE_PAPER
    num_ranks: int = 1
    params: PhysicsParams = field(default_factory=PhysicsParams)
    #: Fixed PCG iterations per velocity component (paper-scale work; see
    #: repro.perf.calibration.PCG_ITERS_PAPER).
    pcg_iters: int = 10
    #: PCG solver variant: "classic" (reference, 3 allreduces/iter), "ca"
    #: (Chronopoulos-Gear, 1 fused allreduce/iter) or "pipelined"
    #: (Ghysels-Vanroose, the fused allreduce overlaps the matvec when the
    #: runtime has async queues).
    pcg_variant: str = "classic"
    #: Preconditioner: "jacobi" (diagonal) or "cheby" (Chebyshev polynomial
    #: over the Jacobi-scaled operator, no extra halo exchanges).
    pcg_precond: str = "jacobi"
    #: Early-exit tolerance on the relative residual (0 = fixed-iteration
    #: paper-scale semantics; variants may set > 0 to report own counts).
    pcg_tol: float = 0.0
    #: Chebyshev preconditioner polynomial degree (pcg_precond="cheby").
    cheby_degree: int = 3
    #: Fixed RKL2 stage count (None = size stages from stability each step).
    sts_stages: int | None = 8
    #: Override the CFL timestep (tests / fixed-cost benchmarking).
    fixed_dt: float | None = None
    b0: float = 1.0
    #: Additional registered model arrays standing in for the full CORHEL
    #: physics complement's memory footprint (MAS holds ~100 3-D arrays;
    #: the paper sized 36M cells to nearly fill a 40GB A100). The default
    #: keeps 8 state + len(WORK_ARRAYS) + extra at the calibrated 98.
    extra_model_arrays: int = 67
    #: Overlap halo exchanges with interior compute: exchanges post on a
    #: detached communication timeline at ``exchange_begin`` while stencil
    #: kernels split into an interior pass (issued immediately) and a thin
    #: boundary-shell pass (issued at ``exchange_finish``). Takes effect
    #: only when the runtime has async queues
    #: (``RuntimeConfig.supports_halo_overlap``); physics is bit-identical
    #: either way.
    halo_overlap: bool = False
    #: Enable the semi-implicit wave stabilization (repro.mas.semi_implicit);
    #: off by default so the paper-calibrated kernel stream is unchanged.
    semi_implicit: bool = False
    #: Strength of the semi-implicit operator (0 disables, ~1 stabilizes
    #: the full wave CFL).
    si_theta: float = 1.0
    #: Maximum factor dt may grow between steps (production codes ramp the
    #: step up slowly after transients; shrinking is never limited).
    dt_growth_limit: float = 1.25
    #: Initial non-axisymmetric density perturbation amplitude.
    perturbation: float = 0.02
    #: Ensemble batch size B.  1 keeps the legacy scalar 3-D state layout
    #: (bit-identical to the pre-ensemble code path); B > 1 prepends a
    #: member axis to every state/work array so one kernel advances all
    #: members at once -- launches and halo messages amortize ~B-fold.
    ensemble_size: int = 1
    #: Per-member parameter overrides for sweeps, as
    #: ``((name, (v_0, ..., v_{B-1})), ...)`` with names from
    #: :data:`ENSEMBLE_VARY_PARAMS`.
    ensemble_vary: tuple = ()

    def __post_init__(self) -> None:
        if any(n < 4 for n in self.shape):
            raise ValueError("each axis needs at least 4 cells")
        if self.num_ranks < 1:
            raise ValueError("need at least one rank")
        if self.pcg_iters < 1:
            raise ValueError("pcg_iters must be >= 1")
        if self.pcg_variant not in PCG_VARIANTS:
            raise ValueError(
                f"pcg_variant must be one of {PCG_VARIANTS}, got {self.pcg_variant!r}"
            )
        if self.pcg_precond not in PRECONDITIONERS:
            raise ValueError(
                f"pcg_precond must be one of {PRECONDITIONERS}, "
                f"got {self.pcg_precond!r}"
            )
        if self.pcg_tol < 0:
            raise ValueError("pcg_tol cannot be negative")
        if self.cheby_degree < 1:
            raise ValueError("cheby_degree must be >= 1")
        if self.sts_stages is not None and self.sts_stages < 2:
            raise ValueError("RKL2 needs at least 2 stages")
        if self.extra_model_arrays < 0:
            raise ValueError("extra_model_arrays cannot be negative")
        if self.si_theta < 0:
            raise ValueError("si_theta cannot be negative")
        if self.dt_growth_limit <= 1.0:
            raise ValueError("dt_growth_limit must exceed 1")
        if self.ensemble_size < 1:
            raise ValueError("ensemble_size must be >= 1")
        for entry in self.ensemble_vary:
            name, values = entry
            if name not in ENSEMBLE_VARY_PARAMS:
                raise ValueError(
                    f"cannot vary {name!r} per member; choose from "
                    f"{ENSEMBLE_VARY_PARAMS}"
                )
            if len(values) != self.ensemble_size:
                raise ValueError(
                    f"vary {name!r} needs {self.ensemble_size} values, "
                    f"got {len(values)}"
                )


@dataclass(slots=True)
class StepTiming:
    """Simulated-time accounting for one step (deltas, max over ranks for
    wall, mean over ranks for the MPI split as in Fig. 3)."""

    dt: float
    wall: float
    mpi: float
    compute: float
    launches: int

    @property
    def non_mpi(self) -> float:
        """Fig. 3's green bar share of this step."""
        return self.wall - self.mpi


class MasModel:
    """A runnable MAS-analog instance under one code-version runtime."""

    def __init__(
        self,
        config: ModelConfig,
        runtime_config: RuntimeConfig,
        *,
        node: GpuNode | None = None,
        cluster: "GpuCluster | None" = None,
        cpu_model: CpuNodeModel | None = None,
        cost: KernelCostModel | None = None,
        queue: AsyncQueue | None = None,
        um_host_mpi_overhead: float = 30e-6,
        um_page_amplification: float = 8.0,
        halo_pack_inefficiency: float = 1.0,
        halo_buffer_init_fraction: float = 0.0,
        rank_jitter: float = 0.015,
    ) -> None:
        self.config = config
        self.rt_config = runtime_config
        #: Simulated physical time; a (B,) array in ensemble runs (members
        #: advance under their own CFL steps).
        self.time: float | np.ndarray = 0.0
        self.steps_taken = 0
        self._last_dt: float | np.ndarray | None = None
        #: Ensemble batching: B > 1 switches every state/work array to the
        #: member-batched 4-D layout.  B == 1 keeps the scalar arrays and
        #: the exact pre-ensemble code path.
        self.ensemble = config.ensemble_size > 1
        self._vary = {
            name: np.asarray(values, dtype=float)
            for name, values in config.ensemble_vary
        }
        #: Members frozen by a PCG rho-breakdown (sticky across steps).
        self._member_breakdown = np.zeros(config.ensemble_size, dtype=bool)
        #: Cumulative per-member PCG iteration / tol-convergence counters.
        self._member_pcg_iterations = np.zeros(config.ensemble_size, dtype=int)
        self._member_pcg_converged = np.zeros(config.ensemble_size, dtype=int)
        #: Overlapped halo exchanges: requested by the model config AND
        #: supported by the runtime (codes without async queues degrade
        #: gracefully to bulk-synchronous exchanges).
        self.halo_overlap = config.halo_overlap and runtime_config.supports_halo_overlap
        #: Boundary-shell passes deferred until their exchange finishes.
        self._deferred_shell: list[tuple] = []
        n = config.num_ranks

        self.grid = SphericalGrid.build(config.shape)
        self.decomp = Decomposition3D(config.shape, n)
        self.nominal_decomp = Decomposition3D(
            config.nominal_shape, n, dims=self.decomp.dims
        )
        self.local_grids = [
            LocalGrid.from_global(self.grid, self.decomp, r, ghost=1) for r in range(n)
        ]

        base_cost = cost or KernelCostModel()
        queue = queue or AsyncQueue()

        # -- rank runtimes -----------------------------------------------------
        self.ranks: list[RankRuntime] = []
        self.rank_nodes: list[int] | None = None
        if runtime_config.target == "gpu":
            if cluster is not None:
                # multi-node run: node-major placement, fabric across nodes
                self.node = cluster.nodes[0]
                self.cluster = cluster
                self.rank_nodes = cluster.rank_node_map(n)
                devices = [cluster.device_of(r) for r in range(n)]
            else:
                self.node = node or make_delta_node()
                self.cluster = None
                binding = bind_devices(self.node, n, runtime_config.device_binding)
                devices = devices_for_binding(self.node, binding)
            mode = DataMode.UNIFIED if runtime_config.unified_memory else DataMode.MANUAL
            for r in range(n):
                env = DataEnvironment(
                    mode,
                    device_memory=devices[r].memory,
                    host_link=self.node.interconnect.host,
                )
                rank_cost = replace(
                    base_cost, body_scale=1.0 + rank_jitter * r / max(1, n - 1)
                )
                self.ranks.append(
                    RankRuntime(
                        runtime_config,
                        env=env,
                        gpu=devices[r],
                        num_ranks=n,
                        cost=rank_cost,
                        queue=queue,
                    )
                )
            kind = (
                TransportKind.UM_STAGED
                if runtime_config.unified_memory
                else TransportKind.CUDA_AWARE_P2P
            )
            self.transport = make_transport(
                kind,
                interconnect=self.node.interconnect,
                host_mpi_overhead=um_host_mpi_overhead,
                page_amplification=um_page_amplification,
            )
            self.reduce_link = (
                self.node.interconnect.host
                if runtime_config.unified_memory
                else self.node.interconnect.peer
            )
        else:
            self.node = None
            self.cluster = None
            cpu = cpu_model or CpuNodeModel(EPYC_7742_NODE)
            for r in range(n):
                rank_cost = replace(
                    base_cost, body_scale=1.0 + rank_jitter * r / max(1, n - 1)
                )
                self.ranks.append(
                    RankRuntime(
                        runtime_config,
                        cpu_model=cpu,
                        num_ranks=n,
                        cost=rank_cost,
                        queue=queue,
                    )
                )
            self.transport = make_transport(TransportKind.CPU_FABRIC, fabric=SLINGSHOT)
            self.reduce_link = SLINGSHOT

        # -- states, boundary profiles, work arrays -----------------------------
        if self.ensemble:
            nb = config.ensemble_size
            b0s = self._vary.get("b0", np.full(nb, config.b0))
            perts = self._vary.get(
                "perturbation", np.full(nb, config.perturbation)
            )
            # Each member initializes exactly as its scalar run would, then
            # the members stack into one (B, ...) array per field.
            self.states = [
                EnsembleState.stack(
                    [
                        initialize(
                            g,
                            config.params,
                            b0=float(b0s[b]),
                            perturbation=float(perts[b]),
                        )
                        for b in range(nb)
                    ]
                )
                for g in self.local_grids
            ]
        else:
            self.states = [
                initialize(
                    g,
                    config.params,
                    b0=config.b0,
                    perturbation=config.perturbation,
                )
                for g in self.local_grids
            ]
        self._register_arrays()
        self.profiles = [BoundaryProfiles.capture(s) for s in self.states]
        self.heating = [heating_profile(g, config.params) for g in self.local_grids]

        self.halo = HaloExchanger(
            self.decomp,
            self.transport,
            self.ranks,
            nominal_decomp=self.nominal_decomp,
            pack_inefficiency=halo_pack_inefficiency,
            buffer_init_fraction=halo_buffer_init_fraction,
            rank_nodes=self.rank_nodes,
            # Batched runs move every member's ghost layer in the SAME
            # message: payloads widen B-fold, message COUNT is unchanged.
            element_bytes=8 * config.ensemble_size,
        )
        # Register with the active telemetry session (no-op by default):
        # attaches the session profiler to the rank clocks, rebinds the span
        # tracer's simulated-time source, and records the model
        # configuration in the run manifest.
        self._tel_prefix = _telemetry().bind_model(self)
        with _telemetry().tracer.span(
            "setup/initial_exchange", model=self._tel_prefix
        ):
            # Pre-register halo staging buffers for every field the step
            # loop exchanges (state + solver iterates): registration costs
            # land in setup, so step walls stay state-independent.
            self.halo.ensure_buffers(
                (*self._CENTERED, *(f for f, _ in self._FACES), "pcg_p", "sts_y")
            )
            self._exchange_state()
            self._apply_boundaries()

    # ------------------------------------------------------------------ setup

    def _nominal_bytes(self, rank: int, staggered_axis: int | None = None) -> int:
        shape = list(self.nominal_decomp.local_shape(rank))
        if staggered_axis is not None:
            shape[staggered_axis] += 1
        cells = shape[0] * shape[1] * shape[2]
        # Ensemble runs: one registered array holds all B members, so its
        # nominal footprint (and thus every kernel's byte cost) scales by
        # B while the LAUNCH count stays that of a scalar run -- the
        # per-member amortization the batching buys.
        return cells * 8 * self.config.ensemble_size

    def _register_arrays(self) -> None:
        um = self.rt_config.unified_memory
        for r, rt in enumerate(self.ranks):
            state = self.states[r]
            names = [
                ("rho", None), ("temp", None), ("vr", None), ("vt", None),
                ("vp", None), ("br", 0), ("bt", 1), ("bp", 2),
            ]
            for name, stag in names:
                rt.register_array(
                    name, self._nominal_bytes(r, stag), state.get(name)
                )
                self._maybe_init_kernel(rt, name)
            for name in WORK_ARRAYS:
                rt.register_array(name, self._nominal_bytes(r))
                self._maybe_init_kernel(rt, name)
            for i in range(self.config.extra_model_arrays):
                rt.register_array(f"model_aux_{i}", self._nominal_bytes(r))
            if um and self.rt_config.duplicate_cpu_routines:
                # Codes with duplicate CPU-only setup routines pre-touch the
                # state on the device before the time loop, hiding the
                # first-touch faults in setup rather than step one.
                for name, _ in names:
                    for c in rt.env.prepare_kernel(
                        KernelSpec("setup_touch", reads=(name,))
                    ):
                        rt.clock.advance(c.seconds, TimeCategory.HOST, c.label)

    def _maybe_init_kernel(self, rt: RankRuntime, name: str) -> None:
        """Code 6's wrapper create+init routines add one init kernel per
        array the original code never zeroed (SIV-F)."""
        if self.rt_config.wrapper_init_kernels:
            rt.loop(KernelSpec(f"wrapper_init_{name}", writes=(name,)))

    # ----------------------------------------------------------- communication

    _CENTERED = ("rho", "temp", "vr", "vt", "vp")
    _FACES = (("br", 0), ("bt", 1), ("bp", 2))

    def _state_items(self, names: tuple[str, ...] | None = None) -> list:
        """Batched-exchange items for the (selected) state fields."""
        items: list = []
        for name in self._CENTERED:
            if names is None or name in names:
                items.append((name, [s.get(name) for s in self.states], None))
        for name, axis in self._FACES:
            if names is None or name in names:
                items.append((name, [s.get(name) for s in self.states], axis))
        return items

    def _exchange_state(self, names: tuple[str, ...] | None = None) -> None:
        self.halo.exchange_many(self._state_items(names))

    def _exchange_state_begin(self, names: tuple[str, ...] | None = None):
        """Start the state exchange; overlapped when the model supports it.

        Returns the :class:`~repro.mpi.halo.PendingExchange` to pass to
        :meth:`_finish_exchange` (already complete when overlap is off).
        """
        return self.halo.exchange_begin_many(
            self._state_items(names), overlap=self.halo_overlap
        )

    def _exchange_centered(self, name: str, arrays: list[np.ndarray]) -> None:
        self.halo.exchange(name, arrays)

    # -- interior/boundary stencil splitting -----------------------------------

    def _stencil_loop(self, r: int, rt: RankRuntime, spec: KernelSpec, *, entry=None):
        """Issue one stencil kernel, split when overlapping an exchange.

        Without overlap this is ``entry(spec)`` (default ``rt.loop``).
        With overlap the kernel splits into an interior pass issued now
        (carrying the full numpy body -- payloads already moved at
        ``exchange_begin``, so numerics are unchanged) and a thin
        boundary-shell pass deferred until :meth:`_finish_exchange`; the
        two work fractions sum to the original, conserving traffic.
        """
        entry = entry or rt.loop
        if not self.halo_overlap:
            return entry(spec)
        fi, fs = ops.overlap_split_fractions(self.nominal_decomp.local_shape(r))
        if fs <= 0.0:  # pragma: no cover - degenerate nominal extents
            return entry(spec)
        result = entry(
            replace(
                spec,
                name=f"{spec.name}_interior",
                work_fraction=spec.work_fraction * fi,
            )
        )
        self._deferred_shell.append(
            (
                entry,
                replace(
                    spec,
                    name=f"{spec.name}_shell",
                    work_fraction=spec.work_fraction * fs,
                    body=None,
                ),
            )
        )
        return result

    def _flush_shell(self) -> None:
        """Issue all deferred boundary-shell passes (ghosts now costed)."""
        shells, self._deferred_shell = self._deferred_shell, []
        for entry, spec in shells:
            entry(spec)

    def _finish_exchange(self, pending) -> None:
        """Wait for an overlapped exchange, then run the boundary shells."""
        if pending is not None:
            self.halo.exchange_finish(pending)
        self._flush_shell()

    def _apply_boundaries(self) -> None:
        for r, rt in enumerate(self.ranks):
            state, grid, prof = self.states[r], self.local_grids[r], self.profiles[r]

            def body(state=state, grid=grid, prof=prof, r=r) -> None:
                apply_boundaries(state, grid, self.decomp, r, prof)

            # apply_boundaries fills ghosts of ALL state fields, including
            # the face-centered B components (the shadow checker flags the
            # narrower declaration as footprint drift). The byte count stays
            # pinned to the calibrated 13-array footprint: ghost fills of B
            # reuse cache lines the velocity reflection already streamed.
            state_bytes = sum(
                rt.env.nominal_bytes(n)
                for n in ("rho", "temp", "vr", "vt", "vp", "br", "bt", "bp")
            )
            rt.loop(
                KernelSpec(
                    "boundary_fill",
                    reads=("rho", "temp", "vr", "vt", "vp", "br", "bt", "bp"),
                    writes=("rho", "temp", "vr", "vt", "vp", "br", "bt", "bp"),
                    work_fraction=min(1.0, 4.0 / self.config.nominal_shape[0]),
                    bytes_override=state_bytes * 13.0 / 8.0,
                    body=body,
                )
            )

    # ------------------------------------------------------------------- step

    def compute_dt(self) -> float | np.ndarray:
        """CFL timestep: local fast-speed reduction + global min.

        The returned step is additionally rate-limited: it may grow by at
        most ``dt_growth_limit`` per step (it shrinks freely).  Ensemble
        runs return a per-member ``(B,)`` step (elementwise global min --
        a converged/stiff member never throttles the others' physics).
        """
        if self.config.fixed_dt is not None:
            return self.config.fixed_dt
        locals_ = []
        for r, rt in enumerate(self.ranks):
            state, grid = self.states[r], self.local_grids[r]
            p = self.config.params

            def body(state=state, grid=grid, p=p) -> float | np.ndarray:
                i = grid.interior()
                bcr, bct, bcp = ops.face_to_center(state.br, state.bt, state.bp)
                rho = np.maximum(state.rho[i], p.rho_floor)
                va2 = (bcr[i] ** 2 + bct[i] ** 2 + bcp[i] ** 2) / rho
                cs2 = p.sound_speed_sq(np.maximum(state.temp[i], p.temp_floor))
                vmag = np.sqrt(
                    state.vr[i] ** 2 + state.vt[i] ** 2 + state.vp[i] ** 2
                )
                speed = vmag + np.sqrt(va2 + cs2)
                if speed.ndim > 3:  # batched: one max per member
                    return p.cfl * grid.min_cell_extent / speed.max(
                        axis=(-3, -2, -1)
                    )
                return p.cfl * grid.min_cell_extent / float(speed.max())

            # MAS's remaining `kernels` regions wrap Fortran intrinsics like
            # MINVAL (SIV-B); the CFL minimum is exactly that construct, so
            # it goes through kernels_region (Code 5 expands it into an
            # explicit DC reduction loop).
            locals_.append(
                rt.kernels_region(
                    KernelSpec(
                        "cfl_minval",
                        reads=("rho", "temp", "vr", "vt", "vp", "br", "bt", "bp"),
                        body=body,
                    )
                )
            )
        dt = allreduce_min(
            self.ranks,
            locals_,
            self.reduce_link,
            nbytes=8 * self.config.ensemble_size,
            unified_memory=self.rt_config.unified_memory,
        )
        if not isinstance(dt, np.ndarray):
            dt = float(dt)
        if self._last_dt is not None:
            limit = self._last_dt * self.config.dt_growth_limit
            dt = np.minimum(dt, limit) if isinstance(dt, np.ndarray) else min(dt, limit)
        self._last_dt = dt
        return dt

    @staticmethod
    def _dt_field(dt: float | np.ndarray) -> float | np.ndarray:
        """A per-member quantity reshaped to broadcast against batched
        ``(B, nr, nt, np)`` state arrays; scalars pass through."""
        if isinstance(dt, np.ndarray):
            return dt[:, None, None, None]
        return dt

    def step(self) -> StepTiming:
        """Advance the full system one step; returns timing deltas."""
        tel = _telemetry()
        for rt in self.ranks:
            rt.sync()
        t0 = [rt.clock.now for rt in self.ranks]
        mpi0 = [rt.clock.mpi_time for rt in self.ranks]
        comp0 = [rt.clock.by_category.get(TimeCategory.COMPUTE, 0.0) for rt in self.ranks]
        launches0 = sum(rt.stats.launches for rt in self.ranks)
        cat0 = [dict(rt.clock.by_category) for rt in self.ranks] if tel.enabled else None

        span = tel.tracer.span
        with span("step", index=self.steps_taken, model=self._tel_prefix):
            with span("step/exchange"):
                self._wrapper_inits()
                # Overlapped mode: packs/messages post on a detached
                # communication timeline here; the boundary fill, CFL
                # reduction and interior hydro/momentum passes below hide
                # it, and _momentum_predictor collects the remainder.
                pending = self._exchange_state_begin()
                self._apply_boundaries()
            with span("step/cfl"):
                dt = self.compute_dt()
            with span("step/hydro"):
                self._hydro_advance(dt)
                self._shell_diagnostics()
            with span("step/momentum"):
                self._momentum_predictor(dt, pending)
            with span("step/semi_implicit"):
                self._semi_implicit_solve(dt)
            with span("step/viscosity"):
                self._viscosity_solve(dt)
            with span("step/exchange"):
                pending_v = self._exchange_state_begin(names=("vr", "vt", "vp"))
                self._apply_boundaries()
            with span("step/induction"):
                self._induction(dt, pending_v)
            with span("step/conduction"):
                self._conduction(dt)
            with span("step/sources"):
                self._energy_sources(dt)
                self._floors()

        self.time = self.time + dt
        self.steps_taken += 1
        for rt in self.ranks:
            rt.sync()
        wall = max(rt.clock.now - t for rt, t in zip(self.ranks, t0))
        mpi = float(
            np.mean([rt.clock.mpi_time - m for rt, m in zip(self.ranks, mpi0)])
        )
        comp = float(
            np.mean(
                [
                    rt.clock.by_category.get(TimeCategory.COMPUTE, 0.0) - c
                    for rt, c in zip(self.ranks, comp0)
                ]
            )
        )
        launches = sum(rt.stats.launches for rt in self.ranks) - launches0
        timing = StepTiming(
            dt=float(np.min(dt)), wall=wall, mpi=mpi, compute=comp,
            launches=launches,
        )
        if tel.enabled:
            self._record_step(tel, timing, cat0)
        return timing

    def _record_step(self, tel, timing: StepTiming, cat0: list[dict]) -> None:
        """Per-step metrics and one structured JSONL record."""
        n = len(self.ranks)
        categories: dict[str, float] = {}
        for r, rt in enumerate(self.ranks):
            for cat, t in rt.clock.by_category.items():
                delta = t - cat0[r].get(cat, 0.0)
                categories[cat.value] = categories.get(cat.value, 0.0) + delta / n
        tel.metrics.counter("steps_total", "model steps completed").inc()
        tel.metrics.histogram(
            "step_seconds", "simulated wall seconds per step (max over ranks)"
        ).observe(timing.wall)
        tel.metrics.gauge("sim_dt", "last CFL timestep (simulation units)").set(
            timing.dt
        )
        sim_time = float(np.min(np.asarray(self.time)))
        tel.metrics.gauge("sim_time", "simulated physical time").set(sim_time)
        extra: dict = {}
        if self.ensemble:
            nb = self.config.ensemble_size
            active = nb - int(self._member_breakdown.sum())
            tel.metrics.gauge(
                "ensemble_members", "ensemble batch size B"
            ).set(float(nb))
            tel.metrics.gauge(
                "ensemble_members_active",
                "members not frozen by a PCG rho-breakdown",
            ).set(float(active))
            extra = {"ensemble_members": nb, "ensemble_members_active": active}
        tel.logger.log(
            "step",
            step=self.steps_taken - 1,
            dt=float(timing.dt),
            wall=float(timing.wall),
            mpi=float(timing.mpi),
            compute=float(timing.compute),
            launches=int(timing.launches),
            sim_time=sim_time,
            categories=categories,
            **extra,
        )
        tel.maybe_snapshot_metrics()

    def run(self, n_steps: int) -> list[StepTiming]:
        """Advance ``n_steps`` steps, returning per-step timings."""
        if n_steps < 1:
            raise ValueError("need at least one step")
        return [self.step() for _ in range(n_steps)]

    # ------------------------------------------------------------ step pieces

    def _wrapper_inits(self) -> None:
        """Code 6's wrapper create+init routines zero every temporary on
        creation, adding initialization kernels per step that the original
        code did not have -- the paper's explanation for Code 6 trailing
        Code 2 slightly (SV-C)."""
        if not self.rt_config.wrapper_init_kernels:
            return
        for rt in self.ranks:
            with rt.region():
                for name in WORK_ARRAYS:
                    rt.loop(KernelSpec(f"wrapper_zero_{name}", writes=(name,)))

    def _hydro_advance(self, dt: float | np.ndarray) -> None:
        p = self.config.params
        dt = self._dt_field(dt)
        for r, rt in enumerate(self.ranks):
            state, grid = self.states[r], self.local_grids[r]
            work: dict[str, np.ndarray] = {}

            def pres_body(state=state, work=work, p=p) -> None:
                work["pres"] = p.pressure(state.rho, state.temp)

            def divv_body(state=state, grid=grid, work=work) -> None:
                work["divv"] = ops.div_center(state.vr, state.vt, state.vp, grid)

            with rt.region():
                rt.loop(KernelSpec("eos_pressure", reads=("rho", "temp"),
                                   writes=("wrk_pres",), body=pres_body))
                self._stencil_loop(r, rt, KernelSpec(
                    "velocity_divergence", reads=("vr", "vt", "vp"),
                    writes=("wrk_divv",), body=divv_body))

            def continuity_body(state=state, grid=grid, dt=dt, p=p) -> None:
                div_rho_v = ops.advect_upwind(
                    state.rho, state.vr, state.vt, state.vp, grid
                )
                i = grid.interior()
                state.rho[i] -= dt * div_rho_v[i]
                np.maximum(state.rho[i], p.rho_floor, out=state.rho[i])

            self._stencil_loop(r, rt, KernelSpec(
                "continuity", reads=("rho", "vr", "vt", "vp"),
                writes=("rho",), body=continuity_body))

            def temp_adv_body(state=state, grid=grid, work=work, dt=dt, p=p) -> None:
                div_tv = ops.advect_upwind(
                    state.temp, state.vr, state.vt, state.vp, grid
                )
                i = grid.interior()
                # v.grad T = div(T v) - T div v; compression adds (gamma-1) T div v
                state.temp[i] -= dt * (
                    div_tv[i] - state.temp[i] * work["divv"][i]
                    + (p.gamma - 1.0) * state.temp[i] * work["divv"][i]
                )
                np.maximum(state.temp[i], p.temp_floor, out=state.temp[i])

            self._stencil_loop(r, rt, KernelSpec(
                "temp_advection",
                reads=("temp", "vr", "vt", "vp", "wrk_divv"),
                writes=("temp",), body=temp_adv_body))
            # pressure/divv reused by the momentum predictor this step
            setattr(self, f"_work_{r}", work)

    def _shell_diagnostics(self) -> None:
        """Per-shell mass-flux profile: MAS's array-reduction pattern.

        flux(i) = sum_{j,k} rho*vr*A_r accumulates many (j,k) contributions
        into each radial bin -- Listing 3's atomic array reduction, which
        Code 4 keeps as atomics inside DC (Listing 4) and Codes 5/6 flip
        into an outer DC with an inner serialized reduce (Listing 5).
        """
        self._last_flux_profile = []
        for r, rt in enumerate(self.ranks):
            state, grid = self.states[r], self.local_grids[r]

            def body(state=state, grid=grid) -> np.ndarray:
                i = grid.interior()
                rhovr = state.rho[i] * state.vr[i]
                area = grid.area_r[1:-1][:, 1:-1, 1:-1][: rhovr.shape[-3]]
                # one radial profile per member in batched runs
                return (rhovr * area).sum(axis=(-2, -1))

            self._last_flux_profile.append(
                rt.array_reduction(
                    KernelSpec(
                        "shell_mass_flux",
                        reads=("rho", "vr"),
                        writes=("diag_flux",),
                        body=body,
                    )
                )
            )

    def _momentum_predictor(self, dt: float | np.ndarray, pending=None) -> None:
        p = self.config.params
        dt = self._dt_field(dt)
        for r, rt in enumerate(self.ranks):
            state, grid = self.states[r], self.local_grids[r]
            work = getattr(self, f"_work_{r}")

            def lorentz_body(state=state, grid=grid, work=work) -> None:
                work["lor"] = ops.lorentz_force(state.br, state.bt, state.bp, grid)

            self._stencil_loop(r, rt, KernelSpec(
                "lorentz_force", reads=("br", "bt", "bp"),
                writes=("wrk_lor_r", "wrk_lor_t", "wrk_lor_p"),
                body=lorentz_body))

            def adv_body(state=state, grid=grid, work=work) -> None:
                work["adv"] = tuple(
                    ops.advect_upwind(v, state.vr, state.vt, state.vp, grid)
                    - v * ops.div_center(state.vr, state.vt, state.vp, grid)
                    for v in (state.vr, state.vt, state.vp)
                )

            self._stencil_loop(r, rt, KernelSpec(
                "momentum_advection", reads=("vr", "vt", "vp"),
                writes=("wrk_adv_r", "wrk_adv_t", "wrk_adv_p"),
                body=adv_body))

        # The start-of-step state exchange must complete before the
        # velocity updates below; every interior pass so far hid it.
        self._finish_exchange(pending)

        for r, rt in enumerate(self.ranks):
            state, grid = self.states[r], self.local_grids[r]
            work = getattr(self, f"_work_{r}")

            def update_bodies(state=state, grid=grid, work=work, dt=dt, p=p):
                gp = ops.grad_center(work["pres"], grid)
                i = grid.interior()
                rho_i = np.maximum(state.rho[i], p.rho_floor)
                grav_i = (p.gravity / grid.rc[i[-3]] ** 2)[:, None, None]
                lor = work["lor"]
                adv = work["adv"]

                def upd_vr() -> None:
                    state.vr[i] += dt * (
                        -adv[0][i] - gp[0][i] / rho_i + lor[0][i] / rho_i - grav_i
                    )

                def upd_vt() -> None:
                    state.vt[i] += dt * (-adv[1][i] - gp[1][i] / rho_i + lor[1][i] / rho_i)

                def upd_vp() -> None:
                    state.vp[i] += dt * (-adv[2][i] - gp[2][i] / rho_i + lor[2][i] / rho_i)

                return upd_vr, upd_vt, upd_vp

            upd_vr, upd_vt, upd_vp = update_bodies()
            reads = ("wrk_pres", "rho", "wrk_lor_r", "wrk_lor_t", "wrk_lor_p",
                     "wrk_adv_r", "wrk_adv_t", "wrk_adv_p")
            with rt.region():
                rt.loop(KernelSpec("update_vr", reads=reads, writes=("vr",), body=upd_vr))
                rt.loop(KernelSpec("update_vt", reads=reads, writes=("vt",), body=upd_vt))
                rt.loop(KernelSpec("update_vp", reads=reads, writes=("vp",), body=upd_vp))

    # -- implicit velocity solves (viscosity & semi-implicit) ------------------------

    def _viscosity_solve(self, dt: float | np.ndarray) -> None:
        nu = self._vary_param("viscosity", self.config.params.viscosity)
        if np.all(np.asarray(nu) == 0.0):
            return
        self._implicit_velocity_solve(nu, dt, "visc")

    def _vary_param(self, name: str, default: float) -> float | np.ndarray:
        """Per-member (B,) values of a swept parameter, or its scalar."""
        vals = self._vary.get(name)
        return default if vals is None else vals

    def _semi_implicit_solve(self, dt: float | np.ndarray) -> None:
        """MAS's semi-implicit wave stabilization (see repro.mas.semi_implicit)."""
        if not self.config.semi_implicit:
            return
        locals_ = [
            rt.scalar_reduction(
                KernelSpec(
                    "si_wave_speed",
                    reads=("rho", "temp", "vr", "vt", "vp", "br", "bt", "bp"),
                    body=lambda state=self.states[r], grid=self.local_grids[r]: max_wave_speed(
                        state, grid, self.config.params
                    ),
                    tags=frozenset({"semi_implicit"}),
                )
            )
            for r, rt in enumerate(self.ranks)
        ]
        c_max = allreduce_max(
            self.ranks,
            locals_,
            self.reduce_link,
            nbytes=8 * self.config.ensemble_size,
            unified_memory=self.rt_config.unified_memory,
        )
        coeff = si_coefficient(c_max, dt, self.config.si_theta)
        if np.any(np.asarray(coeff) > 0.0):
            self._implicit_velocity_solve(coeff, dt, "si")

    def _implicit_velocity_solve(
        self, nu: float | np.ndarray, dt: float | np.ndarray, tag: str
    ) -> None:
        """(I - dt nu Lap) v = v* per component via the selected PCG variant.

        Per-member ``nu``/``dt`` broadcast as (B,1,1,1) coefficient fields:
        each member sees exactly the scalar operator its serial run would,
        but every matvec/axpy kernel covers the whole batch.
        """
        tracer = _telemetry().tracer
        nu = self._dt_field(nu)
        dt = self._dt_field(dt)
        diags = [jacobi_diagonal(g, nu, dt) for g in self.local_grids]
        cost_tag = "viscosity" if tag == "visc" else "semi_implicit"
        precondition = self._make_preconditioner(diags, nu, dt, tag, cost_tag)

        for comp in ("vr", "vt", "vp"):
            arrays = [s.get(comp) for s in self.states]
            rhs = [a.copy() for a in arrays]
            anti = comp == "vt"

            def apply_a(xs, comp=comp, anti=anti):
                pend = self.halo.exchange_begin(
                    "pcg_p", xs, overlap=self.halo_overlap
                )
                out = []
                for r, rt in enumerate(self.ranks):
                    grid = self.local_grids[r]

                    def body(x=xs[r], grid=grid, r=r, anti=anti):
                        apply_centered_boundary(
                            x, self.decomp, r, antisymmetric_theta=anti
                        )
                        return implicit_matvec(x, grid, nu, dt)

                    out.append(
                        self._stencil_loop(r, rt, KernelSpec(
                            f"{tag}_matvec_{comp}",
                            reads=("pcg_p", "rho"),
                            writes=("pcg_ap",),
                            body=body,
                            tags=frozenset({cost_tag}),
                        ))
                    )
                self._finish_exchange(pend)
                return out

            def _pair_dot(x, y):
                """One (pair of) interior dot(s): float, or (B,) per member.

                The per-member values are each computed by the same
                ``np.vdot`` over the same elements as the member's serial
                run -- bitwise-identical reductions, one kernel.
                """
                if x.ndim == 3:
                    return float(np.vdot(x, y).real)
                return np.array(
                    [float(np.vdot(xb, yb).real) for xb, yb in zip(x, y)]
                )

            def dot(a, b):
                locals_ = []
                for r, rt in enumerate(self.ranks):
                    i = self.local_grids[r].interior()

                    def body(x=a[r], y=b[r], i=i):
                        return _pair_dot(x[i], y[i])

                    locals_.append(
                        rt.scalar_reduction(
                            KernelSpec(f"{tag}_dot", reads=("pcg_r", "pcg_z"), body=body,
                                       tags=frozenset({cost_tag}))
                        )
                    )
                total = allreduce_sum(
                    self.ranks,
                    locals_,
                    self.reduce_link,
                    nbytes=8 * self.config.ensemble_size,
                    unified_memory=self.rt_config.unified_memory,
                )
                return total if isinstance(total, np.ndarray) else float(total)

            def dot_many_local(pairs):
                """Per-rank partial dots for one fused reduction.

                Scalar runs contribute a (k,) vector; ensemble runs a
                (k, B) matrix -- still ONE collective either way.
                """
                locals_ = []
                for r, rt in enumerate(self.ranks):
                    i = self.local_grids[r].interior()

                    def body(pairs=pairs, r=r, i=i) -> np.ndarray:
                        return np.array(
                            [_pair_dot(a[r][i], b[r][i]) for a, b in pairs]
                        )

                    locals_.append(
                        rt.scalar_reduction(
                            KernelSpec(f"{tag}_dot_many", reads=("pcg_r", "pcg_z"),
                                       body=body, tags=frozenset({cost_tag}))
                        )
                    )
                return locals_

            def dot_many(pairs):
                return allreduce_many(
                    self.ranks,
                    dot_many_local(pairs),
                    self.reduce_link,
                    unified_memory=self.rt_config.unified_memory,
                )

            def dot_many_begin(pairs):
                return allreduce_many_begin(
                    self.ranks,
                    dot_many_local(pairs),
                    self.reduce_link,
                    unified_memory=self.rt_config.unified_memory,
                )

            def combine(ys, alpha, zs, roles=("p", "u")):
                wname, rname = _AXPY_ROLES[roles]
                for r, rt in enumerate(self.ranks):
                    def body(y=ys[r], z=zs[r], alpha=alpha) -> None:
                        y += alpha * z

                    rt.loop(
                        KernelSpec(f"{tag}_axpy_{roles[0]}",
                                   reads=(wname, rname),
                                   writes=(wname,), body=body,
                                   tags=frozenset({cost_tag}))
                    )

            variant = self.config.pcg_variant
            with tracer.span(f"step/{cost_tag}/pcg", component=comp,
                             variant=variant):
                if variant == "classic":
                    solver = pcg_solve_batched if self.ensemble else pcg_solve
                    result = solver(
                        apply_a,
                        rhs,
                        arrays,
                        dot=dot,
                        precondition=precondition,
                        combine=combine,
                        iterations=self.config.pcg_iters,
                        tol=self.config.pcg_tol,
                    )
                elif variant == "ca":
                    solver = (
                        pcg_solve_ca_batched if self.ensemble else pcg_solve_ca
                    )
                    result = solver(
                        apply_a,
                        rhs,
                        arrays,
                        dot_many=dot_many,
                        precondition=precondition,
                        combine=combine,
                        iterations=self.config.pcg_iters,
                        tol=self.config.pcg_tol,
                    )
                else:
                    overlap = self.rt_config.supports_pipelined_reductions
                    solver = (
                        pcg_solve_pipelined_batched
                        if self.ensemble
                        else pcg_solve_pipelined
                    )
                    result = solver(
                        apply_a,
                        rhs,
                        arrays,
                        dot_many=dot_many,
                        precondition=precondition,
                        combine=combine,
                        iterations=self.config.pcg_iters,
                        tol=self.config.pcg_tol,
                        dot_many_begin=dot_many_begin if overlap else None,
                        dot_many_finish=(
                            allreduce_many_finish if overlap else None
                        ),
                    )
                if self.ensemble:
                    self._member_breakdown |= result.breakdown
                    self._member_pcg_iterations += result.iterations
                    self._member_pcg_converged += result.converged.astype(int)
                else:
                    self._member_breakdown |= result.breakdown
                    self._member_pcg_iterations += result.iterations
                    self._member_pcg_converged += int(result.converged)

    def _make_preconditioner(self, diags, nu: float, dt: float,
                             tag: str, cost_tag: str):
        """Build the selected preconditioner as a kernel-charged closure.

        Jacobi issues one ``{tag}_precond`` kernel per rank per application.
        Chebyshev additionally issues ``degree - 1`` rank-local
        ``{tag}_precond_matvec`` stencil kernels -- no halo exchanges and no
        reductions, so it adds zero MPI while damping the whole bounded
        spectrum.  The ghost zones of the inverse diagonal are zeroed so the
        polynomial acts on a purely rank-local linear operator (ghost cells
        are annihilated instead of coupling in stale, asymmetric values),
        and the upper spectral bound carries a safety margin: the Chebyshev
        polynomial stays positive below the interval but can change sign
        above it, so overestimating ``lam_max`` is safe while undershooting
        it would make the preconditioner indefinite.
        """
        if self.config.pcg_precond == "cheby":
            inv_diags = []
            for r, d in enumerate(diags):
                inv = np.zeros_like(d)
                i = self.local_grids[r].interior()
                inv[i] = 1.0 / d[i]
                inv_diags.append(inv)
            lam_min, lam_max = jacobi_spectral_bounds(diags)

            def local_matvec(xs):
                out = []
                for r, rt in enumerate(self.ranks):
                    grid = self.local_grids[r]

                    def body(x=xs[r], grid=grid):
                        return implicit_matvec(x, grid, nu, dt)

                    out.append(
                        rt.loop(
                            KernelSpec(f"{tag}_precond_matvec",
                                       reads=("pcg_z", "pcg_diag"),
                                       writes=("pcg_ap",), body=body,
                                       tags=frozenset({cost_tag}))
                        )
                    )
                return out

            cheby = chebyshev_preconditioner(
                local_matvec,
                inv_diags,
                degree=self.config.cheby_degree,
                lam_min=lam_min,
                lam_max=1.05 * lam_max,
            )

            def precondition(rs):
                zs = cheby(rs)  # charges the polynomial's matvec kernels
                out = []
                for r, rt in enumerate(self.ranks):
                    def body(z=zs[r]):
                        return z

                    out.append(
                        rt.loop(
                            KernelSpec(f"{tag}_precond",
                                       reads=("pcg_r", "pcg_diag"),
                                       writes=("pcg_z",), body=body,
                                       tags=frozenset({cost_tag}))
                        )
                    )
                return out

            return precondition

        def precondition(rs):
            out = []
            for r, rt in enumerate(self.ranks):
                def body(x=rs[r], d=diags[r]):
                    return x / d

                out.append(
                    rt.loop(
                        KernelSpec(f"{tag}_precond", reads=("pcg_r", "pcg_diag"),
                                   writes=("pcg_z",), body=body,
                                   tags=frozenset({cost_tag}))
                    )
                )
            return out

        return precondition

    # -- induction -------------------------------------------------------------------

    def _induction(self, dt: float | np.ndarray, pending=None) -> None:
        dt = self._dt_field(dt)
        eta = self._dt_field(
            self._vary_param("resistivity", self.config.params.resistivity)
        )
        all_emfs: list[dict[str, tuple]] = []
        for r, rt in enumerate(self.ranks):
            state, grid = self.states[r], self.local_grids[r]
            emfs: dict[str, tuple] = {}
            all_emfs.append(emfs)

            def emf_body(state=state, grid=grid, emfs=emfs, eta=eta) -> None:
                emfs["e"] = ops.emf_edges(
                    state.vr, state.vt, state.vp,
                    state.br, state.bt, state.bp,
                    grid, resistivity=eta,
                )

            # The EMF assembly calls pure interpolation/staggering routines
            # (MAS's s2c/interp family): an OpenACC `routine` loop that
            # Codes 5/6 handle by inlining (-Minline).
            self._stencil_loop(r, rt, KernelSpec(
                "emf_edges",
                reads=("vr", "vt", "vp", "br", "bt", "bp"),
                writes=("emf_r", "emf_t", "emf_p"),
                body=emf_body), entry=rt.routine_loop)

        # The mid-step velocity exchange completes before the CT updates.
        self._finish_exchange(pending)

        for r, rt in enumerate(self.ranks):
            state, grid = self.states[r], self.local_grids[r]
            emfs = all_emfs[r]

            def ct_bodies(state=state, grid=grid, emfs=emfs, dt=dt):
                def make(which: int, arr: np.ndarray, axis: int):
                    def body() -> None:
                        db = ops.ct_face_update(*emfs["e"], grid)[which]
                        fi = grid.face_interior(axis)
                        arr[fi] += dt * db[fi]
                    return body
                return (
                    make(0, state.br, 0),
                    make(1, state.bt, 1),
                    make(2, state.bp, 2),
                )

            b_r, b_t, b_p = ct_bodies()
            reads = ("emf_r", "emf_t", "emf_p")
            with rt.region():
                rt.loop(KernelSpec("ct_update_br", reads=reads, writes=("br",), body=b_r))
                rt.loop(KernelSpec("ct_update_bt", reads=reads, writes=("bt",), body=b_t))
                rt.loop(KernelSpec("ct_update_bp", reads=reads, writes=("bp",), body=b_p))

    # -- conduction (STS) ---------------------------------------------------------------

    def _conduction(self, dt: float | np.ndarray) -> None:
        p = self.config.params
        if p.kappa0 == 0.0:
            return
        if self.config.sts_stages is not None:
            s = self.config.sts_stages
        else:
            kmax = max(
                max_diffusivity(self.states[r].temp, self.states[r].rho, p)
                for r in range(len(self.ranks))
            )
            dte = explicit_parabolic_dt(
                min(g.min_cell_extent for g in self.local_grids), max(kmax, 1e-30)
            )
            # Batched runs share one stage count sized for the widest
            # member step (conservative: more stages only adds stability).
            dt_max = float(np.max(dt))
            s = stages_for_dt(dt_max, dte) if dt_max > dte else 2
        dt = self._dt_field(dt)

        temps = [st.temp for st in self.states]

        def apply_l(us):
            pend = self.halo.exchange_begin("sts_y", us, overlap=self.halo_overlap)
            out = []
            for r, rt in enumerate(self.ranks):
                grid = self.local_grids[r]
                state = self.states[r]

                def body(u=us[r], grid=grid, state=state, r=r):
                    apply_centered_boundary(u, self.decomp, r)
                    return conduction_rhs(u, state.rho, grid, p)

                out.append(
                    self._stencil_loop(r, rt, KernelSpec(
                        "conduction_rhs", reads=("sts_y", "rho"),
                        writes=("sts_l",), body=body,
                        tags=frozenset({"conduction"})))
                )
            self._finish_exchange(pend)
            return out

        def on_stage(j: int) -> None:
            # stage-combination axpy kernels
            for rt in self.ranks:
                rt.loop(KernelSpec("sts_combine", reads=("sts_y", "sts_l"),
                                   writes=("sts_y",), tags=frozenset({"conduction"})))

        advanced = rkl2_advance(apply_l, temps, dt, s, on_stage=on_stage)
        for st, new in zip(self.states, advanced):
            np.maximum(new, p.temp_floor, out=new)
            st.temp[:] = new

    # -- sources & floors -------------------------------------------------------------

    def _energy_sources(self, dt: float | np.ndarray) -> None:
        p = self.config.params
        dt = self._dt_field(dt)
        for r, rt in enumerate(self.ranks):
            state, grid = self.states[r], self.local_grids[r]
            heat = self.heating[r]

            def body(state=state, heat=heat, dt=dt, p=p) -> None:
                rate = energy_source_rate(state.rho, state.temp, heat, p)
                state.temp += dt * rate
                np.maximum(state.temp, p.temp_floor, out=state.temp)

            rt.loop(KernelSpec("radiation_heating", reads=("rho", "temp", "heat"),
                               writes=("temp",), body=body))

    def _floors(self) -> None:
        p = self.config.params
        for r, rt in enumerate(self.ranks):
            state = self.states[r]

            def body(state=state, p=p) -> None:
                np.maximum(state.rho, p.rho_floor, out=state.rho)
                np.maximum(state.temp, p.temp_floor, out=state.temp)

            rt.loop(KernelSpec("apply_floors", reads=("rho", "temp"),
                               writes=("rho", "temp"), body=body))

    # ------------------------------------------------------------------ reporting

    def wall_time(self) -> float:
        """Simulated wall-clock so far (max over ranks)."""
        for rt in self.ranks:
            rt.sync()
        return max(rt.clock.now for rt in self.ranks)

    def mpi_time(self) -> float:
        """Mean simulated MPI time across ranks (Fig. 3 accounting)."""
        for rt in self.ranks:
            rt.sync()
        return float(np.mean([rt.clock.mpi_time for rt in self.ranks]))

    def ensemble_report(self) -> list[dict]:
        """One row per ensemble member: swept parameter values, simulated
        time reached, and cumulative PCG convergence counters.  Works for
        scalar runs too (a single row)."""
        nb = self.config.ensemble_size
        times = np.broadcast_to(
            np.asarray(self.time, dtype=float).reshape(-1), (nb,)
        )
        dts = (
            None
            if self._last_dt is None
            else np.broadcast_to(
                np.asarray(self._last_dt, dtype=float).reshape(-1), (nb,)
            )
        )
        rows = []
        for b in range(nb):
            row: dict = {"member": b}
            for name, values in self._vary.items():
                row[name] = float(values[b])
            row.update(
                sim_time=float(times[b]),
                dt=None if dts is None else float(dts[b]),
                pcg_iterations=int(self._member_pcg_iterations[b]),
                pcg_converged=int(self._member_pcg_converged[b]),
                pcg_breakdown=bool(self._member_breakdown[b]),
            )
            rows.append(row)
        return rows

    def diagnostics(self) -> dict[str, float]:
        """Physics diagnostics aggregated over ranks (interior cells)."""
        total_mass = 0.0
        max_divb = 0.0
        max_v = 0.0
        for r in range(len(self.ranks)):
            grid, state = self.local_grids[r], self.states[r]
            i = grid.interior()
            total_mass += float((state.rho[i] * grid.volume[i]).sum())
            divb = ops.div_face(state.br, state.bt, state.bp, grid)
            max_divb = max(max_divb, float(np.abs(divb[i]).max()))
            max_v = max(max_v, float(np.abs(state.vr[i]).max()))
        return {"mass": total_mass, "max_divb": max_divb, "max_vr": max_v}
