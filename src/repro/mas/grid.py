"""Non-uniform staggered spherical grids.

Geometry of the MAS discretization (paper SIII): a logically rectangular
grid in (r, theta, phi), non-uniform in r and theta, periodic in phi, with
a small polar cutout (theta in [eps, pi - eps]) as in global coronal
models. Magnetic field components live on cell faces (constrained
transport); plasma variables live at cell centers.

:class:`SphericalGrid` is the global grid; :class:`LocalGrid` is one MPI
rank's block with ghost-extended coordinates and cached metric arrays
(face areas, cell volumes, edge lengths) used by the finite-volume
operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.mas.stretch import geometric_spacing, uniform_spacing
from repro.mpi.decomp import Decomposition3D


@dataclass(frozen=True)
class SphericalGrid:
    """Global grid defined by its edge coordinate arrays."""

    r_edges: np.ndarray
    t_edges: np.ndarray
    p_edges: np.ndarray

    def __post_init__(self) -> None:
        for name, e in (("r", self.r_edges), ("t", self.t_edges), ("p", self.p_edges)):
            if e.ndim != 1 or e.size < 2:
                raise ValueError(f"{name}_edges must be a 1-D array of >= 2 edges")
            if np.any(np.diff(e) <= 0):
                raise ValueError(f"{name}_edges must be strictly increasing")
        if self.r_edges[0] <= 0:
            raise ValueError("inner radius must be positive")
        if self.t_edges[0] <= 0 or self.t_edges[-1] >= np.pi:
            raise ValueError("theta must exclude the poles (polar cutout)")
        if not np.isclose(self.p_edges[-1] - self.p_edges[0], 2 * np.pi):
            raise ValueError("phi must span exactly 2*pi (periodic)")

    @classmethod
    def build(
        cls,
        shape: tuple[int, int, int],
        *,
        r_range: tuple[float, float] = (1.0, 2.5),
        r_ratio: float = 1.03,
        pole_cutout: float = 0.15,
    ) -> "SphericalGrid":
        """Standard coronal grid: stretched r, uniform theta/phi."""
        nr, nt, np_ = shape
        return cls(
            r_edges=geometric_spacing(r_range[0], r_range[1], nr, r_ratio),
            t_edges=uniform_spacing(pole_cutout, np.pi - pole_cutout, nt),
            p_edges=uniform_spacing(0.0, 2 * np.pi, np_),
        )

    @property
    def shape(self) -> tuple[int, int, int]:
        """Cell counts (nr, nt, np)."""
        return (self.r_edges.size - 1, self.t_edges.size - 1, self.p_edges.size - 1)

    @property
    def num_cells(self) -> int:
        """Total cell count."""
        nr, nt, np_ = self.shape
        return nr * nt * np_


def _extend_edges(edges: np.ndarray, g: int, *, periodic: bool, span: float = 0.0) -> np.ndarray:
    """Ghost-extend an edge array by ``g`` edges on each side.

    Periodic axes wrap widths across the ``span``; others mirror the
    boundary cell widths outward.
    """
    if g < 0:
        raise ValueError("ghost depth cannot be negative")
    if g == 0:
        return edges.copy()
    widths = np.diff(edges)
    if periodic:
        lo_w = widths[-g:]
        hi_w = widths[:g]
    else:
        lo_w = widths[:g][::-1]
        hi_w = widths[-g:][::-1]
    lo = edges[0] - np.cumsum(lo_w[::-1])[::-1]
    hi = edges[-1] + np.cumsum(hi_w)
    return np.concatenate([lo, edges, hi])


@dataclass(frozen=True)
class LocalGrid:
    """One rank's block with ghost-extended coordinates and metrics.

    All metric arrays cover the ghosted extent so stencils can be applied
    up to (but not into) the outermost ghost layer without special cases.
    """

    re: np.ndarray  # ghosted r edges, length nrg + 1
    te: np.ndarray  # ghosted theta edges, length ntg + 1
    pe: np.ndarray  # ghosted phi edges, length npg + 1
    ghost: int
    interior_shape: tuple[int, int, int]

    @classmethod
    def from_global(
        cls, grid: SphericalGrid, decomp: Decomposition3D, rank: int, *, ghost: int = 1
    ) -> "LocalGrid":
        """Carve a rank's block out of the global grid, ghost-extended."""
        if decomp.global_shape != grid.shape:
            raise ValueError(
                f"decomposition shape {decomp.global_shape} != grid shape {grid.shape}"
            )
        b = decomp.bounds(rank)
        g = ghost

        def cut(edges: np.ndarray, lo: int, hi: int, periodic: bool, span: float) -> np.ndarray:
            n = edges.size - 1
            if g == 0:
                return edges[lo : hi + 1].copy()
            ext = _extend_edges(edges, g, periodic=periodic, span=span)
            # ext index of global edge m is m + g
            return ext[lo : hi + 2 * g + 1].copy()

        re = cut(grid.r_edges, b[0][0], b[0][1], False, 0.0)
        te = cut(grid.t_edges, b[1][0], b[1][1], False, 0.0)
        pe = cut(grid.p_edges, b[2][0], b[2][1], True, 2 * np.pi)
        return cls(
            re=re,
            te=te,
            pe=pe,
            ghost=g,
            interior_shape=decomp.local_shape(rank),
        )

    # -- shapes -------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int, int]:
        """Ghosted cell counts (nrg, ntg, npg)."""
        return (self.re.size - 1, self.te.size - 1, self.pe.size - 1)

    def centered_shape(self) -> tuple[int, int, int]:
        """Shape of a ghosted cell-centered array."""
        return self.shape

    def face_shape(self, axis: int) -> tuple[int, int, int]:
        """Shape of a ghosted face array staggered along ``axis``."""
        s = list(self.shape)
        s[axis] += 1
        return tuple(s)  # type: ignore[return-value]

    def interior(self) -> tuple:
        """Index selecting the interior of a ghosted centered array.

        The tuple is ``(Ellipsis, slice_r, slice_t, slice_p)``: the
        leading Ellipsis makes the same index work on scalar 3-D arrays
        and member-batched 4-D arrays (the spatial axes are always the
        trailing three). The spatial slices sit at positions -3..-1.
        """
        g = self.ghost
        return (Ellipsis, *(slice(g, n + g) for n in self.interior_shape))

    def face_interior(self, axis: int) -> tuple:
        """Index selecting interior faces of a face array (incl. both
        boundary faces along the staggered axis); Ellipsis-prefixed like
        :meth:`interior` so it applies to batched arrays too."""
        g = self.ghost
        out = []
        for a, n in enumerate(self.interior_shape):
            out.append(slice(g, n + g + (1 if a == axis else 0)))
        return (Ellipsis, *out)

    # -- 1-D coordinates ------------------------------------------------------

    @cached_property
    def rc(self) -> np.ndarray:
        """Ghosted r cell centers."""
        return 0.5 * (self.re[:-1] + self.re[1:])

    @cached_property
    def tc(self) -> np.ndarray:
        """Ghosted theta cell centers."""
        return 0.5 * (self.te[:-1] + self.te[1:])

    @cached_property
    def pc(self) -> np.ndarray:
        """Ghosted phi cell centers."""
        return 0.5 * (self.pe[:-1] + self.pe[1:])

    @cached_property
    def dr(self) -> np.ndarray:
        """Radial cell widths."""
        return np.diff(self.re)

    @cached_property
    def dt(self) -> np.ndarray:
        """Theta cell widths."""
        return np.diff(self.te)

    @cached_property
    def dp(self) -> np.ndarray:
        """Phi cell widths."""
        return np.diff(self.pe)

    # -- metric arrays ----------------------------------------------------------

    @cached_property
    def _dcos(self) -> np.ndarray:
        return np.cos(self.te[:-1]) - np.cos(self.te[1:])

    @cached_property
    def _r2h(self) -> np.ndarray:
        """(r_{i+1}^2 - r_i^2)/2 per cell."""
        return 0.5 * (self.re[1:] ** 2 - self.re[:-1] ** 2)

    @cached_property
    def _r3t(self) -> np.ndarray:
        """(r_{i+1}^3 - r_i^3)/3 per cell."""
        return (self.re[1:] ** 3 - self.re[:-1] ** 3) / 3.0

    @cached_property
    def volume(self) -> np.ndarray:
        """Cell volumes, ghosted shape."""
        return (
            self._r3t[:, None, None]
            * self._dcos[None, :, None]
            * self.dp[None, None, :]
        )

    @cached_property
    def area_r(self) -> np.ndarray:
        """r-face areas, shape (nrg+1, ntg, npg)."""
        return (
            (self.re**2)[:, None, None]
            * self._dcos[None, :, None]
            * self.dp[None, None, :]
        )

    @cached_property
    def area_t(self) -> np.ndarray:
        """theta-face areas, shape (nrg, ntg+1, npg)."""
        return (
            self._r2h[:, None, None]
            * np.sin(self.te)[None, :, None]
            * self.dp[None, None, :]
        )

    @cached_property
    def area_p(self) -> np.ndarray:
        """phi-face areas, shape (nrg, ntg, npg+1)."""
        return (
            self._r2h[:, None, None]
            * self.dt[None, :, None]
            * np.ones_like(self.pe)[None, None, :]
        )

    @cached_property
    def len_r(self) -> np.ndarray:
        """r-edge lengths at (r-cell, theta-edge, phi-edge): (nrg, ntg+1, npg+1)."""
        return np.broadcast_to(
            self.dr[:, None, None],
            (self.dr.size, self.te.size, self.pe.size),
        ).copy()

    @cached_property
    def len_t(self) -> np.ndarray:
        """theta-edge lengths at (r-edge, theta-cell, phi-edge): (nrg+1, ntg, npg+1)."""
        return self.re[:, None, None] * self.dt[None, :, None] * np.ones_like(self.pe)[None, None, :]

    @cached_property
    def len_p(self) -> np.ndarray:
        """phi-edge lengths at (r-edge, theta-edge, phi-cell): (nrg+1, ntg+1, npg)."""
        return (
            self.re[:, None, None]
            * np.sin(self.te)[None, :, None]
            * self.dp[None, None, :]
        )

    @cached_property
    def min_cell_extent(self) -> float:
        """Smallest physical cell extent (interior), for CFL."""
        g = self.ghost
        sl = slice(g, -g) if g else slice(None)
        dr = self.dr[sl].min()
        rdt = (self.rc[:, None] * self.dt[None, :])[sl, sl].min()
        rsdp = (
            self.rc[:, None, None]
            * np.sin(self.tc)[None, :, None]
            * self.dp[None, None, :]
        )[sl, sl, sl].min()
        return float(min(dr, rdt, rsdp))
