"""Physical boundary conditions (ghost filling).

Applied after halo exchange: ranks owning a global domain boundary fill
the ghost layers the exchange left untouched. phi is periodic and fully
handled by the exchanger.

* inner r (solar surface): line-tied -- fixed (rho, T) from the boundary
  profile, velocity reflected to zero at the surface.
* outer r: zero-gradient open boundary.
* theta cutouts: reflective (v_theta antisymmetric, everything else
  symmetric).

Face fields only ever have *ghost* faces filled here (zero-gradient);
interior faces -- including the boundary faces themselves -- are evolved
exclusively by the CT update so the divergence-free invariant survives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mas.grid import LocalGrid
from repro.mas.state import MhdState
from repro.mpi.decomp import Decomposition3D


@dataclass(frozen=True)
class BoundaryProfiles:
    """Frozen inner-boundary (solar surface) values per rank."""

    rho_inner: np.ndarray  # shape (..., ntg, npg): boundary cell values
    temp_inner: np.ndarray

    @classmethod
    def capture(cls, state: MhdState) -> "BoundaryProfiles":
        """Freeze the initial first-interior-shell values as the BC.

        Batched states capture per-member profiles (leading member axis).
        """
        return cls(
            rho_inner=state.rho[..., 1, :, :].copy(),
            temp_inner=state.temp[..., 1, :, :].copy(),
        )


def _owns(decomp: Decomposition3D, rank: int, axis: int, direction: int) -> bool:
    """True if this rank's block touches the global boundary on that face."""
    return decomp.neighbor(rank, axis, direction) is None


def apply_boundaries(
    state: MhdState,
    grid: LocalGrid,
    decomp: Decomposition3D,
    rank: int,
    profiles: BoundaryProfiles,
) -> None:
    """Fill physical-boundary ghosts of all state arrays in place."""
    if grid.ghost != 1:
        raise ValueError("boundary conditions assume one ghost layer")

    # ---- inner r (axis 0, low) -------------------------------------------------
    if _owns(decomp, rank, 0, -1):
        state.rho[..., 0, :, :] = profiles.rho_inner
        state.temp[..., 0, :, :] = profiles.temp_inner
        state.vr[..., 0, :, :] = -state.vr[..., 1, :, :]
        state.vt[..., 0, :, :] = -state.vt[..., 1, :, :]
        state.vp[..., 0, :, :] = -state.vp[..., 1, :, :]
        state.br[..., 0, :, :] = state.br[..., 1, :, :]
        state.bt[..., 0, :, :] = state.bt[..., 1, :, :]
        state.bp[..., 0, :, :] = state.bp[..., 1, :, :]

    # ---- outer r (axis 0, high): zero-gradient ----------------------------------
    if _owns(decomp, rank, 0, 1):
        for name in ("rho", "temp", "vr", "vt", "vp", "br", "bt", "bp"):
            a = state.get(name)
            a[..., -1, :, :] = a[..., -2, :, :]
        # open boundary: forbid inflow through the outer shell
        outer = state.vr[..., -1, :, :]
        np.maximum(outer, 0.0, out=outer)

    # ---- theta cutouts (axis 1): reflective ---------------------------------------
    for direction, ghost_i, mirror_i in ((-1, 0, 1), (1, -1, -2)):
        if not _owns(decomp, rank, 1, direction):
            continue
        for name in ("rho", "temp", "vr", "vp", "br", "bt", "bp"):
            a = state.get(name)
            a[..., :, ghost_i, :] = a[..., :, mirror_i, :]
        state.vt[..., :, ghost_i, :] = -state.vt[..., :, mirror_i, :]


def apply_centered_boundary(
    arr: np.ndarray,
    decomp: Decomposition3D,
    rank: int,
    *,
    antisymmetric_theta: bool = False,
) -> None:
    """Zero-gradient (or theta-reflective) ghost fill for one work array.

    Used by solver work vectors (PCG residuals, STS stages) that need valid
    ghosts but have no physical boundary data of their own.
    """
    if _owns(decomp, rank, 0, -1):
        arr[..., 0, :, :] = arr[..., 1, :, :]
    if _owns(decomp, rank, 0, 1):
        arr[..., -1, :, :] = arr[..., -2, :, :]
    for direction, ghost_i, mirror_i in ((-1, 0, 1), (1, -1, -2)):
        if _owns(decomp, rank, 1, direction):
            if antisymmetric_theta:
                arr[..., :, ghost_i, :] = -arr[..., :, mirror_i, :]
            else:
                arr[..., :, ghost_i, :] = arr[..., :, mirror_i, :]
