"""Spitzer-like thermal conduction, advanced with RKL2 STS.

The thermodynamic MHD model's stiffest parabolic term: kappa(T) ~ T^{5/2}.
MAS advances it with super time-stepping rather than implicit solves
(paper ref [25]); each RKL2 stage is one conduction-operator application
(one halo exchange plus stencil kernels).

The reproduction uses an isotropic kappa(T); MAS's field-aligned anisotropy
changes the stencil's coefficients, not its data traffic, which is what the
performance model consumes. Documented in DESIGN.md S2.
"""

from __future__ import annotations

import numpy as np

from repro.mas.constants import PhysicsParams
from repro.mas.grid import LocalGrid
from repro.mas.operators import diffuse_flux_div, harmonic_face_coeff


def kappa_centered(temp: np.ndarray, params: PhysicsParams) -> np.ndarray:
    """kappa(T) = kappa0 * T^{5/2} at cell centers, floored for safety."""
    t = np.maximum(temp, params.temp_floor)
    return params.kappa0 * t**2.5


def conduction_rhs(
    temp: np.ndarray, rho: np.ndarray, grid: LocalGrid, params: PhysicsParams
) -> np.ndarray:
    """dT/dt = (gamma-1)/rho * div(kappa(T) grad T)."""
    kap = kappa_centered(temp, params)
    flux_div = diffuse_flux_div(temp, grid, harmonic_face_coeff(kap))
    out = np.zeros_like(temp)
    inner = (Ellipsis, slice(1, -1), slice(1, -1), slice(1, -1))
    out[inner] = (
        (params.gamma - 1.0)
        * flux_div[inner]
        / np.maximum(rho[inner], params.rho_floor)
    )
    return out


def max_diffusivity(temp: np.ndarray, rho: np.ndarray, params: PhysicsParams) -> float:
    """Largest effective diffusion coefficient, for STS stage sizing."""
    kap = kappa_centered(temp[..., 1:-1, 1:-1, 1:-1], params)
    rho_i = np.maximum(rho[..., 1:-1, 1:-1, 1:-1], params.rho_floor)
    return float(((params.gamma - 1.0) * kap / rho_i).max())
