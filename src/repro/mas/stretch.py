"""Non-uniform mesh spacing generators.

MAS uses a logically rectangular *non-uniform* spherical grid (paper SIII):
radially stretched to concentrate cells near the solar surface where
gradients are steep, and optionally clustered in theta. These generators
produce edge coordinates; the grid object derives centers and metric
factors.
"""

from __future__ import annotations

import numpy as np


def uniform_spacing(lo: float, hi: float, n: int) -> np.ndarray:
    """``n + 1`` uniformly spaced edges over [lo, hi]."""
    if n < 1:
        raise ValueError("need at least one cell")
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    return np.linspace(lo, hi, n + 1)


def geometric_spacing(lo: float, hi: float, n: int, ratio: float = 1.03) -> np.ndarray:
    """``n + 1`` edges with geometrically growing cell widths.

    ``ratio`` is the width growth factor per cell; 1.0 degenerates to
    uniform. MAS-like radial grids use a few percent growth so the first
    cells at the solar surface are much finer than the outer boundary.
    """
    if n < 1:
        raise ValueError("need at least one cell")
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    if ratio <= 0:
        raise ValueError("ratio must be positive")
    if abs(ratio - 1.0) < 1e-12:
        return uniform_spacing(lo, hi, n)
    widths = ratio ** np.arange(n)
    widths *= (hi - lo) / widths.sum()
    edges = np.empty(n + 1)
    edges[0] = lo
    np.cumsum(widths, out=edges[1:])
    edges[1:] += lo
    edges[-1] = hi  # kill accumulation error exactly
    return edges


def cluster_spacing(
    lo: float, hi: float, n: int, *, center: float, strength: float = 2.0
) -> np.ndarray:
    """Edges clustered around ``center`` via a tanh mapping.

    Used for theta grids that resolve e.g. the heliospheric current sheet
    near the equator. ``strength`` of 0 degenerates to uniform.
    """
    if n < 1:
        raise ValueError("need at least one cell")
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    if not lo <= center <= hi:
        raise ValueError("cluster center must lie inside the interval")
    if strength < 0:
        raise ValueError("strength cannot be negative")
    if strength == 0:
        return uniform_spacing(lo, hi, n)
    s = np.linspace(-1.0, 1.0, n + 1)
    c = 2.0 * (center - lo) / (hi - lo) - 1.0  # center in [-1, 1]
    # Blend of linear and cubic around the cluster center: the mapping's
    # derivative has its minimum at the center, so cell widths shrink
    # there. alpha in (0, 1) keeps it strictly monotone.
    alpha = strength / (1.0 + strength)
    half = max(1.0 - c, 1.0 + c)
    u = (s - c) / half
    mapped = c + half * ((1.0 - alpha) * u + alpha * u**3)
    edges = lo + (mapped - mapped[0]) / (mapped[-1] - mapped[0]) * (hi - lo)
    edges[0], edges[-1] = lo, hi
    if np.any(np.diff(edges) <= 0):
        raise ValueError("clustering too strong: non-monotone edges")
    return edges
