"""Viscous operator and its implicit-solve pieces.

MAS treats viscosity implicitly; the resulting SPD system is solved by PCG
with a point-Jacobi preconditioner (paper refs [22], [25]). This module
supplies the operator application and the diagonal estimate; the model
wires them into `repro.mas.pcg` with kernel-wrapped closures (one halo
exchange per operator application -- the pattern Fig. 4 profiles).
"""

from __future__ import annotations

import numpy as np

from repro.mas.grid import LocalGrid
from repro.mas.operators import diffuse_flux_div


def viscous_rhs(
    v: np.ndarray, grid: LocalGrid, nu: float | np.ndarray
) -> np.ndarray:
    """Explicit viscous acceleration nu * div(grad v) (componentwise).

    ``nu`` may be a per-member array broadcastable against ``v`` (shape
    ``(B, 1, 1, 1)`` for a batched state).
    """
    if np.any(np.asarray(nu) < 0):
        raise ValueError("viscosity cannot be negative")
    return nu * diffuse_flux_div(v, grid)


def implicit_matvec(
    v: np.ndarray,
    grid: LocalGrid,
    nu: float | np.ndarray,
    dt: float | np.ndarray,
) -> np.ndarray:
    """Backward-Euler operator A v = v - dt * nu * Lap(v).

    Valid on interior cells; the rim is passed through unchanged (identity)
    so the operator stays SPD on the solved subspace.
    """
    if np.any(np.asarray(dt) < 0):
        raise ValueError("dt cannot be negative")
    out = v - dt * viscous_rhs(v, grid, nu)
    # rim: diffuse_flux_div already leaves the rim zero, so out = v there.
    return out


def jacobi_diagonal(
    grid: LocalGrid, nu: float | np.ndarray, dt: float | np.ndarray
) -> np.ndarray:
    """Diagonal of the backward-Euler viscous operator, for Jacobi PCG.

    diag(A) = 1 + dt*nu/V * sum_faces(A_face / d_centerline). Rim cells get
    1 (identity rows). Array-valued ``nu``/``dt`` (per ensemble member,
    spatial dims of size one) yield a member-batched diagonal.
    """
    scale = np.asarray(dt * nu)
    diag = np.ones(np.broadcast_shapes(scale.shape, grid.shape))
    d_r = np.diff(grid.rc)[:, None, None]
    d_t = (grid.rc[:, None] * np.diff(grid.tc)[None, :])[:, :, None]
    d_p = (
        grid.rc[:, None, None]
        * np.sin(grid.tc)[None, :, None]
        * np.diff(grid.pc)[None, None, :]
    )
    ar = grid.area_r[1:-1] / d_r
    at = grid.area_t[:, 1:-1] / d_t
    ap = grid.area_p[:, :, 1:-1] / d_p
    inner = (slice(1, -1), slice(1, -1), slice(1, -1))
    total = (
        (ar[:-1] + ar[1:])[:, 1:-1, 1:-1]
        + (at[:, :-1] + at[:, 1:])[1:-1, :, 1:-1]
        + (ap[:, :, :-1] + ap[:, :, 1:])[1:-1, 1:-1, :]
    )
    diag[(Ellipsis, *inner)] += dt * nu * total / grid.volume[inner]
    return diag


def viscous_timescale(grid: LocalGrid, nu: float | np.ndarray) -> float:
    """Explicit stability limit the implicit solve is buying us out of.

    For per-member ``nu`` the largest member coefficient (the most
    restrictive explicit limit) sets the timescale.
    """
    if np.any(np.asarray(nu) <= 0):
        raise ValueError("viscosity must be positive for a timescale")
    return grid.min_cell_extent**2 / (6.0 * float(np.max(nu)))
