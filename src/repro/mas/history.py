"""Run-history diagnostics: the MAS "history file" analog.

Production MAS writes scalar diagnostics every step (energies, fluxes,
timestep); CORHEL users read them to judge relaxation convergence. This
module computes the energy budget from the state and records per-step
time series that examples/tests can assert on and render.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mas.constants import PhysicsParams
from repro.mas.grid import LocalGrid
from repro.mas.model import MasModel, StepTiming
from repro.mas.operators import face_to_center
from repro.mas.state import MhdState
from repro.util.ascii_plot import AsciiLinePlot


@dataclass(frozen=True, slots=True)
class EnergyBudget:
    """Volume-integrated energies (interior cells, code units)."""

    kinetic: float
    magnetic: float
    thermal: float
    mass: float

    @property
    def total(self) -> float:
        """Total energy content."""
        return self.kinetic + self.magnetic + self.thermal


def energy_budget(
    state: MhdState, grid: LocalGrid, params: PhysicsParams
) -> EnergyBudget:
    """Compute one rank's interior energy budget."""
    i = grid.interior()
    vol = grid.volume[i]
    rho = state.rho[i]
    v2 = state.vr[i] ** 2 + state.vt[i] ** 2 + state.vp[i] ** 2
    bcr, bct, bcp = face_to_center(state.br, state.bt, state.bp)
    b2 = bcr[i] ** 2 + bct[i] ** 2 + bcp[i] ** 2
    thermal = rho * state.temp[i] / (params.gamma - 1.0)
    return EnergyBudget(
        kinetic=float((0.5 * rho * v2 * vol).sum()),
        magnetic=float((0.5 * b2 * vol).sum()),
        thermal=float((thermal * vol).sum()),
        mass=float((rho * vol).sum()),
    )


def model_energy_budget(model: MasModel) -> EnergyBudget:
    """Aggregate the budget across all ranks of a model."""
    parts = [
        energy_budget(model.states[r], model.local_grids[r], model.config.params)
        for r in range(len(model.ranks))
    ]
    return EnergyBudget(
        kinetic=sum(p.kinetic for p in parts),
        magnetic=sum(p.magnetic for p in parts),
        thermal=sum(p.thermal for p in parts),
        mass=sum(p.mass for p in parts),
    )


@dataclass(slots=True)
class HistoryRecord:
    """One step's scalar diagnostics."""

    step: int
    time: float
    dt: float
    wall_seconds: float
    kinetic: float
    magnetic: float
    thermal: float
    mass: float
    max_divb: float
    max_vr: float


@dataclass
class RunHistory:
    """Records diagnostics per step while driving a model."""

    model: MasModel
    records: list[HistoryRecord] = field(default_factory=list)

    def step(self) -> HistoryRecord:
        """Advance one step and record diagnostics."""
        timing: StepTiming = self.model.step()
        e = model_energy_budget(self.model)
        d = self.model.diagnostics()
        rec = HistoryRecord(
            step=self.model.steps_taken,
            time=self.model.time,
            dt=timing.dt,
            wall_seconds=timing.wall,
            kinetic=e.kinetic,
            magnetic=e.magnetic,
            thermal=e.thermal,
            mass=e.mass,
            max_divb=d["max_divb"],
            max_vr=d["max_vr"],
        )
        self.records.append(rec)
        return rec

    def run(self, n_steps: int) -> list[HistoryRecord]:
        """Advance and record ``n_steps`` steps."""
        if n_steps < 1:
            raise ValueError("need at least one step")
        return [self.step() for _ in range(n_steps)]

    def series(self, name: str) -> tuple[list[float], list[float]]:
        """(times, values) of one recorded quantity."""
        if not self.records:
            raise ValueError("no history recorded yet")
        if not hasattr(self.records[0], name):
            raise AttributeError(f"unknown history quantity {name!r}")
        return (
            [r.time for r in self.records],
            [getattr(r, name) for r in self.records],
        )

    def to_csv(self) -> str:
        """History file as CSV (the hist.dat analog)."""
        cols = ["step", "time", "dt", "wall_seconds", "kinetic", "magnetic",
                "thermal", "mass", "max_divb", "max_vr"]
        out = [",".join(cols)]
        for r in self.records:
            out.append(",".join(f"{getattr(r, c):.10g}" for c in cols))
        return "\n".join(out)

    def render(self, *names: str, width: int = 64, height: int = 14) -> str:
        """ASCII time-series plot of recorded quantities."""
        plot = AsciiLinePlot(
            width=width, height=height, logx=False, logy=False,
            title="run history", xlabel="time (code units)",
        )
        for name in names or ("kinetic", "thermal"):
            times, vals = self.series(name)
            plot.add_series(name, times, vals)
        return plot.render()
