"""RKL2 super time-stepping for parabolic operators.

MAS advances thermal conduction (and other parabolic terms) with explicit
super time-stepping instead of implicit Krylov solves (paper ref [25],
Caplan et al. 2017). RKL2 is a Runge-Kutta-Legendre scheme: ``s`` cheap
explicit stages cover a parabolic step of length ~s^2 * dt_explicit,
each stage being one operator application plus a halo exchange -- a very
characteristic kernel stream in the profiler.

Coefficients follow Meyer, Balsara & Aslam (2014).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

RankArrays = list[np.ndarray]


@dataclass(frozen=True, slots=True)
class Rkl2Coefficients:
    """Stage coefficients mu~, mu_j, nu_j, gamma~ for RKL2 with s stages."""

    s: int
    mu_tilde: np.ndarray
    mu: np.ndarray
    nu: np.ndarray
    gamma_tilde: np.ndarray

    @property
    def stability_factor(self) -> float:
        """Parabolic step multiple over explicit: (s^2 + s - 2) / 4."""
        return (self.s**2 + self.s - 2) / 4.0


def rkl2_coefficients(s: int) -> Rkl2Coefficients:
    """Compute RKL2 coefficients for ``s >= 2`` stages."""
    if s < 2:
        raise ValueError("RKL2 needs at least 2 stages")
    j = np.arange(s + 1, dtype=float)
    b = np.empty(s + 1)
    b[:2] = 1.0 / 3.0
    jj = j[2:]
    b[2:] = (jj**2 + jj - 2.0) / (2.0 * jj * (jj + 1.0))
    a = 1.0 - b
    w1 = 4.0 / (s**2 + s - 2.0)

    mu_tilde = np.zeros(s + 1)
    mu = np.zeros(s + 1)
    nu = np.zeros(s + 1)
    gamma_tilde = np.zeros(s + 1)
    mu_tilde[1] = b[1] * w1
    for jj_ in range(2, s + 1):
        mu[jj_] = (2.0 * jj_ - 1.0) / jj_ * b[jj_] / b[jj_ - 1]
        nu[jj_] = -(jj_ - 1.0) / jj_ * b[jj_] / b[jj_ - 2]
        mu_tilde[jj_] = mu[jj_] * w1
        gamma_tilde[jj_] = -a[jj_ - 1] * mu_tilde[jj_]
    return Rkl2Coefficients(s, mu_tilde, mu, nu, gamma_tilde)


def rkl2_advance(
    apply_l: Callable[[RankArrays], RankArrays],
    u: RankArrays,
    dt: float | np.ndarray,
    s: int,
    *,
    on_stage: Callable[[int], None] | None = None,
) -> RankArrays:
    """Advance du/dt = L(u) by ``dt`` with an s-stage RKL2 super step.

    ``apply_l`` is called once per stage (plus once for the initial
    operator evaluation); ``on_stage`` is a hook the model uses to account
    stage bookkeeping. Returns the advanced per-rank arrays (inputs are not
    mutated). ``dt`` may be a per-member array broadcastable against the
    state arrays (shape ``(B, 1, 1, 1)``).
    """
    if np.any(np.asarray(dt) < 0):
        raise ValueError("dt cannot be negative")
    c = rkl2_coefficients(s)
    y0 = [a.copy() for a in u]
    l0 = apply_l(y0)
    yjm2 = y0
    yjm1 = [a + c.mu_tilde[1] * dt * b for a, b in zip(y0, l0)]
    if on_stage is not None:
        on_stage(1)
    for j in range(2, s + 1):
        lj = apply_l(yjm1)
        yj = [
            c.mu[j] * a1
            + c.nu[j] * a2
            + (1.0 - c.mu[j] - c.nu[j]) * a0
            + c.mu_tilde[j] * dt * lj_
            + c.gamma_tilde[j] * dt * l0_
            for a1, a2, a0, lj_, l0_ in zip(yjm1, yjm2, y0, lj, l0)
        ]
        yjm2, yjm1 = yjm1, yj
        if on_stage is not None:
            on_stage(j)
    return yjm1


def explicit_parabolic_dt(min_extent: float, max_coeff: float, safety: float = 0.4) -> float:
    """Stability limit of a plain explicit step for diffusion coeff kappa."""
    if min_extent <= 0:
        raise ValueError("extent must be positive")
    if max_coeff <= 0:
        raise ValueError("coefficient must be positive")
    return safety * min_extent**2 / (2.0 * 3.0 * max_coeff)


def stages_for_dt(dt_super: float, dt_explicit: float, *, max_stages: int = 200) -> int:
    """Smallest stage count whose RKL2 stability covers dt_super."""
    if dt_super <= 0 or dt_explicit <= 0:
        raise ValueError("time steps must be positive")
    ratio = dt_super / dt_explicit
    s = 2
    while (s**2 + s - 2) / 4.0 < ratio:
        s += 1
        if s > max_stages:
            raise ValueError(
                f"RKL2 would need more than {max_stages} stages "
                f"(dt ratio {ratio:.1f}); reduce the step"
            )
    return s
