"""Magnetic field-line tracing and open/closed classification.

The CORHEL workflow the paper describes (SIII) uses MAS solutions to map
coronal structure: field lines traced from the solar surface either close
back down (closed loops, hot streamers) or reach the outer boundary (open
flux, coronal holes, the solar-wind source). This module implements the
tracer over our face-staggered fields: midpoint (RK2) integration of
dx/ds = B/|B| through a trilinearly interpolated cell-centered field.

For a dipole the open/closed boundary has a closed form -- field lines
with footpoint colatitude theta0 close below r_max when
sin^2(theta0) > 1/r_max -- which the tests check the tracer against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.mas.grid import LocalGrid
from repro.mas.operators import face_to_center
from repro.mas.state import MhdState


class FieldLineFate(enum.Enum):
    """Where a traced field line ended up."""

    CLOSED = "closed"      # returned to the inner boundary
    OPEN = "open"          # reached the outer boundary
    STALLED = "stalled"    # |B| ~ 0 or step budget exhausted


@dataclass(frozen=True)
class FieldLine:
    """One traced line: its sample points and classification."""

    points: np.ndarray  # (n, 3): r, theta, phi
    fate: FieldLineFate

    @property
    def max_r(self) -> float:
        """Apex radius of the line."""
        return float(self.points[:, 0].max())

    @property
    def length(self) -> float:
        """Approximate arc length (sum of Cartesian segment lengths)."""
        xyz = _sph_to_cart(self.points)
        return float(np.linalg.norm(np.diff(xyz, axis=0), axis=1).sum())


def _sph_to_cart(pts: np.ndarray) -> np.ndarray:
    r, t, p = pts[:, 0], pts[:, 1], pts[:, 2]
    return np.stack(
        [r * np.sin(t) * np.cos(p), r * np.sin(t) * np.sin(p), r * np.cos(t)],
        axis=1,
    )


class FieldLineTracer:
    """Traces lines through one rank's (ghosted) field arrays.

    Single-rank analysis tool: gather the global field first for
    decomposed runs (see `repro.mas.validate.gather_global`).
    """

    def __init__(self, grid: LocalGrid, state: MhdState) -> None:
        self.grid = grid
        self.bcr, self.bct, self.bcp = face_to_center(state.br, state.bt, state.bp)
        self.r_lo = float(grid.re[grid.ghost])
        self.r_hi = float(grid.re[-1 - grid.ghost])
        self.t_lo = float(grid.te[grid.ghost])
        self.t_hi = float(grid.te[-1 - grid.ghost])

    # -- interpolation ------------------------------------------------------

    def _interp(self, r: float, t: float, p: float) -> np.ndarray:
        """Trilinear interpolation of the centered B at one point."""
        g = self.grid
        p = p % (2 * np.pi)

        def locate(coords: np.ndarray, x: float) -> tuple[int, float]:
            i = int(np.clip(np.searchsorted(coords, x) - 1, 0, coords.size - 2))
            f = (x - coords[i]) / (coords[i + 1] - coords[i])
            return i, float(np.clip(f, 0.0, 1.0))

        i, fr = locate(g.rc, r)
        j, ft = locate(g.tc, t)
        k, fp = locate(g.pc, p)
        out = np.zeros(3)
        for n, comp in enumerate((self.bcr, self.bct, self.bcp)):
            c00 = comp[i, j, k] * (1 - fr) + comp[i + 1, j, k] * fr
            c10 = comp[i, j + 1, k] * (1 - fr) + comp[i + 1, j + 1, k] * fr
            c01 = comp[i, j, k + 1] * (1 - fr) + comp[i + 1, j, k + 1] * fr
            c11 = comp[i, j + 1, k + 1] * (1 - fr) + comp[i + 1, j + 1, k + 1] * fr
            c0 = c00 * (1 - ft) + c10 * ft
            c1 = c01 * (1 - ft) + c11 * ft
            out[n] = c0 * (1 - fp) + c1 * fp
        return out

    def _rhs(self, pos: np.ndarray, sign: float) -> np.ndarray | None:
        b = self._interp(*pos)
        mag = np.linalg.norm(b)
        if mag < 1e-12:
            return None
        bhat = sign * b / mag
        r, t, _ = pos
        # d(r, theta, phi)/ds of a unit step along bhat in physical space
        return np.array(
            [bhat[0], bhat[1] / r, bhat[2] / (r * max(np.sin(t), 1e-10))]
        )

    # -- tracing -------------------------------------------------------------

    def trace(
        self,
        r0: float,
        t0: float,
        p0: float,
        *,
        step: float = 0.02,
        max_steps: int = 4000,
        direction: int = +1,
    ) -> FieldLine:
        """Trace one line from (r0, t0, p0) along +/-B (midpoint RK2)."""
        if direction not in (+1, -1):
            raise ValueError("direction must be +1 (along B) or -1")
        if step <= 0:
            raise ValueError("step must be positive")
        pos = np.array([r0, t0, p0], dtype=float)
        pts = [pos.copy()]
        fate = FieldLineFate.STALLED
        for _ in range(max_steps):
            k1 = self._rhs(pos, direction)
            if k1 is None:
                break
            mid = pos + 0.5 * step * k1
            mid[1] = np.clip(mid[1], self.t_lo, self.t_hi)
            k2 = self._rhs(mid, direction)
            if k2 is None:
                break
            pos = pos + step * k2
            pos[1] = np.clip(pos[1], self.t_lo, self.t_hi)
            pts.append(pos.copy())
            if pos[0] >= self.r_hi:
                fate = FieldLineFate.OPEN
                break
            if pos[0] <= self.r_lo and len(pts) > 3:
                fate = FieldLineFate.CLOSED
                break
        return FieldLine(points=np.array(pts), fate=fate)

    def classify_footpoint(self, t0: float, p0: float, **kw) -> FieldLineFate:
        """Open/closed fate of the surface footpoint at (t0, p0).

        Traces along the direction in which B points away from the
        surface (outward radial component).
        """
        r0 = self.r_lo + 1e-3
        b = self._interp(r0, t0, p0)
        direction = +1 if b[0] >= 0 else -1
        return self.trace(r0, t0, p0, direction=direction, **kw).fate

    def open_flux_map(
        self, n_theta: int = 16, n_phi: int = 8, **kw
    ) -> np.ndarray:
        """Boolean (n_theta, n_phi) map: True where the surface is open."""
        thetas = np.linspace(self.t_lo + 0.02, self.t_hi - 0.02, n_theta)
        phis = np.linspace(0, 2 * np.pi, n_phi, endpoint=False)
        out = np.zeros((n_theta, n_phi), dtype=bool)
        for j, t0 in enumerate(thetas):
            for k, p0 in enumerate(phis):
                out[j, k] = self.classify_footpoint(t0, p0, **kw) is FieldLineFate.OPEN
        return out


def dipole_open_boundary_colatitude(r_max: float) -> float:
    """Analytic open/closed boundary colatitude of a dipole.

    A dipole line with footpoint colatitude theta0 reaches apex
    r = 1/sin^2(theta0); it stays below r_max (closed) iff
    sin^2(theta0) > 1/r_max.
    """
    if r_max <= 1.0:
        raise ValueError("outer boundary must exceed the surface radius")
    return float(np.arcsin(np.sqrt(1.0 / r_max)))
