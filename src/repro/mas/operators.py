"""Finite-difference / finite-volume operators on the spherical grid.

All functions are pure numpy on ghosted arrays; the model layer wraps them
in runtime kernels for cost accounting. Stencils are one cell wide, so one
ghost layer suffices. Outputs are full-shape arrays whose one-cell rim is
not meaningful; callers update interior slices only.

Conventions: the trailing three axes of every array are (r, theta, phi);
a leading ensemble-member axis may precede them (see
:mod:`repro.mas.state`), and every operator here is polymorphic over it.
Face arrays are one longer along their stagger axis; edge arrays (EMFs,
currents) are one longer along the two transverse axes. 1-D grid metric
arrays broadcast with trailing-axis alignment (``rc[:, None, None]`` has
shape ``(nr, 1, 1)``), so they apply unchanged to batched arrays.
"""

from __future__ import annotations

import numpy as np

from repro.mas.grid import LocalGrid


def _ax(f: np.ndarray, axis: int) -> int:
    """Absolute axis of spatial axis ``axis`` (0=r, 1=theta, 2=phi)."""
    return f.ndim - 3 + axis


def _avg(f: np.ndarray, axis: int) -> np.ndarray:
    """Midpoint average between consecutive entries along spatial ``axis``."""
    a = _ax(f, axis)
    lo = [slice(None)] * f.ndim
    hi = [slice(None)] * f.ndim
    lo[a] = slice(None, -1)
    hi[a] = slice(1, None)
    return 0.5 * (f[tuple(lo)] + f[tuple(hi)])


def _diff(f: np.ndarray, axis: int) -> np.ndarray:
    """Forward difference along spatial ``axis`` (length shrinks by one)."""
    return np.diff(f, axis=_ax(f, axis))


def overlap_split_fractions(
    local_shape: tuple[int, int, int],
    *,
    depth: int = 1,
    axes: tuple[int, ...] = (0, 1, 2),
) -> tuple[float, float]:
    """Work fractions ``(interior, shell)`` of an interior/boundary split.

    A stencil kernel overlapped with a halo exchange runs first on the
    cells at least ``depth`` away from every exchanged face (no ghost
    dependence), then on the remaining boundary shell once the exchange
    finished. Fractions are of the *nominal* (paper-scale) local shape and
    always sum to 1, so the split conserves total kernel traffic exactly.
    Both fractions stay positive: even a degenerate extent keeps one
    interior plane so neither sub-kernel violates ``work_fraction > 0``.
    """
    if depth < 1:
        raise ValueError("split depth must be >= 1")
    fi = 1.0
    for axis, n in enumerate(local_shape):
        if n < 1:
            raise ValueError("local shape extents must be positive")
        if axis in axes:
            fi *= max(n - 2 * depth, 1) / n
    return fi, 1.0 - fi


# -- gradients of centered scalars ---------------------------------------------


def grad_center(f: np.ndarray, grid: LocalGrid) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Physical gradient (d/dr, 1/r d/dt, 1/(r sin t) d/dp) at centers."""
    gr = np.gradient(f, grid.rc, axis=_ax(f, 0))
    gt = np.gradient(f, grid.tc, axis=_ax(f, 1)) / grid.rc[:, None, None]
    gp = np.gradient(f, grid.pc, axis=_ax(f, 2)) / (
        grid.rc[:, None, None] * np.sin(grid.tc)[None, :, None]
    )
    return gr, gt, gp


# -- finite-volume divergence of a centered vector ------------------------------

#: Interior index of the trailing three (spatial) axes.
_INNER = (Ellipsis, slice(1, -1), slice(1, -1), slice(1, -1))


def _face_interp(f: np.ndarray, centers: np.ndarray, faces: np.ndarray, axis: int) -> np.ndarray:
    """Linear interpolation of centered values to internal face positions.

    Second-order on non-uniform grids, unlike the midpoint average (which
    carries an O(stretch-ratio) error that never converges under
    refinement at fixed ratio).
    """
    w = (faces[1:-1] - centers[:-1]) / (centers[1:] - centers[:-1])
    shape = [1, 1, 1]
    shape[axis] = w.size
    w = w.reshape(shape)
    a = _ax(f, axis)
    lo = [slice(None)] * f.ndim
    hi = [slice(None)] * f.ndim
    lo[a] = slice(None, -1)
    hi[a] = slice(1, None)
    return (1.0 - w) * f[tuple(lo)] + w * f[tuple(hi)]


def div_center(
    vr: np.ndarray, vt: np.ndarray, vp: np.ndarray, grid: LocalGrid
) -> np.ndarray:
    """FV divergence of a cell-centered vector; valid away from the rim."""
    out = np.zeros_like(vr)
    fr = _face_interp(vr, grid.rc, grid.re, 0) * grid.area_r[1:-1]
    ft = _face_interp(vt, grid.tc, grid.te, 1) * grid.area_t[:, 1:-1]
    fp = _face_interp(vp, grid.pc, grid.pe, 2) * grid.area_p[:, :, 1:-1]
    out[_INNER] = (
        _diff(fr, 0)[..., :, 1:-1, 1:-1]
        + _diff(ft, 1)[..., 1:-1, :, 1:-1]
        + _diff(fp, 2)[..., 1:-1, 1:-1, :]
    ) / grid.volume[1:-1, 1:-1, 1:-1]
    return out


# -- upwind advection ------------------------------------------------------------


def advect_upwind(
    f: np.ndarray,
    vr: np.ndarray,
    vt: np.ndarray,
    vp: np.ndarray,
    grid: LocalGrid,
) -> np.ndarray:
    """FV upwind divergence of the flux f*v: returns div(f v) at centers.

    First-order donor-cell, unconditionally TVD -- the robust transport
    choice for a reproduction focused on kernel streams, not shock
    sharpness.
    """
    out = np.zeros_like(f)

    def face_flux(v: np.ndarray, axis: int, area: np.ndarray) -> np.ndarray:
        vbar = _avg(v, axis)
        a = _ax(f, axis)
        lo = [slice(None)] * f.ndim
        hi = [slice(None)] * f.ndim
        lo[a] = slice(None, -1)
        hi[a] = slice(1, None)
        fup = np.where(vbar > 0.0, f[tuple(lo)], f[tuple(hi)])
        return vbar * fup * area

    fr = face_flux(vr, 0, grid.area_r[1:-1])
    ft = face_flux(vt, 1, grid.area_t[:, 1:-1])
    fp = face_flux(vp, 2, grid.area_p[:, :, 1:-1])
    out[_INNER] = (
        _diff(fr, 0)[..., :, 1:-1, 1:-1]
        + _diff(ft, 1)[..., 1:-1, :, 1:-1]
        + _diff(fp, 2)[..., 1:-1, 1:-1, :]
    ) / grid.volume[1:-1, 1:-1, 1:-1]
    return out


# -- diffusion (viscosity / conduction building block) ---------------------------


def diffuse_flux_div(
    f: np.ndarray, grid: LocalGrid, coeff_face: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
) -> np.ndarray:
    """FV div(c grad f) at centers with face coefficients.

    ``coeff_face`` holds coefficients on internal faces per axis (shapes of
    ``_avg(f, axis)``); ``None`` means unit coefficient.
    """
    out = np.zeros_like(f)

    # physical distances between adjacent cell centers
    d_r = np.diff(grid.rc)[:, None, None]
    d_t = (grid.rc[:, None] * np.diff(grid.tc)[None, :])[:, :, None]
    d_p = (
        grid.rc[:, None, None]
        * np.sin(grid.tc)[None, :, None]
        * np.diff(grid.pc)[None, None, :]
    )

    gr = _diff(f, 0) / d_r
    gt = _diff(f, 1) / d_t
    gp = _diff(f, 2) / d_p
    if coeff_face is not None:
        cr, ct, cp = coeff_face
        gr = gr * cr
        gt = gt * ct
        gp = gp * cp
    fr = gr * grid.area_r[1:-1]
    ft = gt * grid.area_t[:, 1:-1]
    fp = gp * grid.area_p[:, :, 1:-1]
    out[_INNER] = (
        _diff(fr, 0)[..., :, 1:-1, 1:-1]
        + _diff(ft, 1)[..., 1:-1, :, 1:-1]
        + _diff(fp, 2)[..., 1:-1, 1:-1, :]
    ) / grid.volume[1:-1, 1:-1, 1:-1]
    return out


def harmonic_face_coeff(
    c: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Harmonic mean of a positive centered coefficient onto internal faces."""
    if np.any(c <= 0):
        raise ValueError("harmonic mean requires positive coefficients")

    def h(axis: int) -> np.ndarray:
        a = _ax(c, axis)
        lo = [slice(None)] * c.ndim
        hi = [slice(None)] * c.ndim
        lo[a] = slice(None, -1)
        hi[a] = slice(1, None)
        x, y = c[tuple(lo)], c[tuple(hi)]
        return 2.0 * x * y / (x + y)

    return h(0), h(1), h(2)


# -- staggered field machinery (constrained transport) ----------------------------


def face_to_center(
    br: np.ndarray, bt: np.ndarray, bp: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Average face fields to cell centers (simple two-point mean)."""
    return _avg(br, 0), _avg(bt, 1), _avg(bp, 2)


def div_face(br: np.ndarray, bt: np.ndarray, bp: np.ndarray, grid: LocalGrid) -> np.ndarray:
    """Exact FV divergence of a face field -- the CT invariant.

    Valid on every ghosted cell (face arrays cover all cells).
    """
    return (
        _diff(br * grid.area_r, 0)
        + _diff(bt * grid.area_t, 1)
        + _diff(bp * grid.area_p, 2)
    ) / grid.volume


def emf_edges(
    vr: np.ndarray,
    vt: np.ndarray,
    vp: np.ndarray,
    br: np.ndarray,
    bt: np.ndarray,
    bp: np.ndarray,
    grid: LocalGrid,
    *,
    resistivity: float | np.ndarray = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Electric field E = -v x B + eta J on cell edges.

    Returns (Er, Et, Ep) with spatial shapes (nc, ne, ne), (ne, nc, ne),
    (ne, ne, nc) per axis (ne = nc + 1 edges). Rim entries (where the
    averaging stencil leaves the ghosted block) are zero; interior face
    updates never read them. ``resistivity`` may be a per-member array
    broadcastable against the edge arrays (e.g. shape ``(B, 1, 1, 1)``).
    """
    lead = vr.shape[:-3]
    nrg, ntg, npg = vr.shape[-3:]
    er = np.zeros(lead + (nrg, ntg + 1, npg + 1))
    et = np.zeros(lead + (nrg + 1, ntg, npg + 1))
    ep = np.zeros(lead + (nrg + 1, ntg + 1, npg))

    # -- Ep at (r-edge, theta-edge, phi-center): -(vr*Bt - vt*Br)
    vr_e = _avg(_avg(vr, 0), 1)                  # (nrg-1, ntg-1, npg)
    vt_e = _avg(_avg(vt, 0), 1)
    bt_e = _avg(bt, 0)[..., :, 1:-1, :]          # faces avg along r, theta-edges 1..ntg-1
    br_e = _avg(br, 1)[..., 1:-1, :, :]          # faces avg along theta, r-edges 1..nrg-1
    ep[..., 1:-1, 1:-1, :] = -(vr_e * bt_e - vt_e * br_e)

    # -- Er at (r-center, theta-edge, phi-edge): -(vt*Bp - vp*Bt) + eta*Jr
    vt_e = _avg(_avg(vt, 1), 2)
    vp_e = _avg(_avg(vp, 1), 2)
    bp_e = _avg(bp, 1)[..., :, :, 1:-1]
    bt_e = _avg(bt, 2)[..., :, 1:-1, :]
    er_core = -(vt_e * bp_e - vp_e * bt_e)
    er[..., :, 1:-1, 1:-1] = er_core

    # -- Et at (r-edge, theta-center, phi-edge): -(vp*Br - vr*Bp) + eta*Jt
    vp_e = _avg(_avg(vp, 0), 2)
    vr_e = _avg(_avg(vr, 0), 2)
    br_e = _avg(br, 2)[..., 1:-1, :, :]
    bp_e = _avg(bp, 0)[..., :, :, 1:-1]
    et_core = -(vp_e * br_e - vr_e * bp_e)
    et[..., 1:-1, :, 1:-1] = et_core

    if np.any(np.asarray(resistivity) > 0.0):
        jr, jt, jp = current_edges(br, bt, bp, grid)
        er += resistivity * jr
        et += resistivity * jt
        ep += resistivity * jp
    return er, et, ep


def current_edges(
    br: np.ndarray, bt: np.ndarray, bp: np.ndarray, grid: LocalGrid
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Discrete J = curl(B) on edges (first order, rim zeroed)."""
    lead = br.shape[:-3]
    nrg, ntg, npg = br.shape[-3] - 1, bt.shape[-2] - 1, bp.shape[-1] - 1
    jr = np.zeros(lead + (nrg, ntg + 1, npg + 1))
    jt = np.zeros(lead + (nrg + 1, ntg, npg + 1))
    jp = np.zeros(lead + (nrg + 1, ntg + 1, npg))

    sin_tc = np.sin(grid.tc)
    sin_te = np.sin(grid.te)

    # Jr = 1/(r sin t) [ d(sin t Bp)/dt - dBt/dp ] at (rc, te, pe)
    d_sbp = _diff(sin_tc[None, :, None] * bp, 1)[..., :, :, 1:-1] / np.diff(grid.tc)[None, :, None]
    d_bt = _diff(bt, 2)[..., :, 1:-1, :] / np.diff(grid.pc)[None, None, :]
    jr[..., :, 1:-1, 1:-1] = (d_sbp - d_bt) / (
        grid.rc[:, None, None] * sin_te[None, 1:-1, None]
    )

    # Jt = 1/(r sin t) dBr/dp - 1/r d(r Bp)/dr at (re, tc, pe)
    d_br = _diff(br, 2)[..., 1:-1, :, :] / np.diff(grid.pc)[None, None, :]
    d_rbp = _diff(grid.rc[:, None, None] * bp, 0)[..., :, :, 1:-1] / np.diff(grid.rc)[:, None, None]
    jt[..., 1:-1, :, 1:-1] = d_br / (
        grid.re[1:-1, None, None] * sin_tc[None, :, None]
    ) - d_rbp / grid.re[1:-1, None, None]

    # Jp = 1/r [ d(r Bt)/dr - dBr/dt ] at (re, te, pc)
    d_rbt = _diff(grid.rc[:, None, None] * bt, 0)[..., :, 1:-1, :] / np.diff(grid.rc)[:, None, None]
    d_br2 = _diff(br, 1)[..., 1:-1, :, :] / np.diff(grid.tc)[None, :, None]
    jp[..., 1:-1, 1:-1, :] = (d_rbt - d_br2) / grid.re[1:-1, None, None]
    return jr, jt, jp


def ct_face_update(
    er: np.ndarray,
    et: np.ndarray,
    ep: np.ndarray,
    grid: LocalGrid,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """dB/dt on faces from edge EMF circulation (exactly divergence-free).

    Faraday's law in integral form: dB_a * A_a = -circulation of E around
    the face, with the cyclic orientation (r, theta, phi).
    """
    lr = grid.len_r
    lt = grid.len_t
    lp = grid.len_p

    circ_r = _diff(ep * lp, 1) - _diff(et * lt, 2)   # (nrg+1, ntg, npg)
    circ_t = _diff(er * lr, 2) - _diff(ep * lp, 0)   # (nrg, ntg+1, npg)
    circ_p = _diff(et * lt, 0) - _diff(er * lr, 1)   # (nrg, ntg, npg+1)

    with np.errstate(divide="ignore", invalid="ignore"):
        dbr = -circ_r / grid.area_r
        dbt = -circ_t / grid.area_t
        dbp = -circ_p / grid.area_p
    # polar-cutout faces have finite area here (cutout excludes sin=0), but
    # guard anyway for degenerate test grids
    for a in (dbr, dbt, dbp):
        np.nan_to_num(a, copy=False, posinf=0.0, neginf=0.0)
    return dbr, dbt, dbp


def lorentz_force(
    br: np.ndarray, bt: np.ndarray, bp: np.ndarray, grid: LocalGrid
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """J x B at cell centers (first order).

    J is the edge current averaged to centers; B is the face field averaged
    to centers.
    """
    jr_e, jt_e, jp_e = current_edges(br, bt, bp, grid)
    # average edge currents to centers: two transverse averages each
    jr = _avg(_avg(jr_e, 1), 2)
    jt = _avg(_avg(jt_e, 0), 2)
    jp = _avg(_avg(jp_e, 0), 1)
    bcr, bct, bcp = face_to_center(br, bt, bp)
    fr = jt * bcp - jp * bct
    ft = jp * bcr - jr * bcp
    fp = jr * bct - jt * bcr
    return fr, ft, fp
