"""Radiative losses and parameterized coronal heating.

The remaining pieces of the thermodynamic energy equation (paper SV-A's
"full thermodynamic MHD physics model"): optically thin radiative losses
Q = lambda0 rho^2 Lambda(T) and an exponentially stratified coronal
heating function H(r). Both are pointwise kernels (no halo traffic).
"""

from __future__ import annotations

import numpy as np

from repro.mas.constants import PhysicsParams
from repro.mas.grid import LocalGrid

#: Temperature (normalized) at which the loss function peaks.
LAMBDA_PEAK_T = 0.8


def loss_function(temp: np.ndarray) -> np.ndarray:
    """Smooth peaked Lambda(T) standing in for the tabulated loss curve.

    Lambda(T) = (T/Tpk) * exp(1 - T/Tpk): rises ~linearly at low T, peaks
    at Tpk, decays beyond -- the qualitative shape of CHIANTI-style curves
    that matters for the thermal instability dynamics.
    """
    x = np.maximum(temp, 0.0) / LAMBDA_PEAK_T
    return x * np.exp(1.0 - x)


def radiative_loss(
    rho: np.ndarray, temp: np.ndarray, params: PhysicsParams
) -> np.ndarray:
    """Energy loss rate Q_rad = lambda0 * rho^2 * Lambda(T)."""
    return params.lambda0 * rho**2 * loss_function(temp)


def heating_profile(grid: LocalGrid, params: PhysicsParams) -> np.ndarray:
    """Volumetric heating H(r) = h0 exp(-(r-1)/h_scale), ghosted shape."""
    prof = params.h0 * np.exp(-(grid.rc - 1.0) / params.h_scale)
    return np.broadcast_to(prof[:, None, None], grid.shape).copy()


def energy_source_rate(
    rho: np.ndarray,
    temp: np.ndarray,
    heating: np.ndarray,
    params: PhysicsParams,
) -> np.ndarray:
    """dT/dt from (heating - radiation): (gamma-1) (H - Q) / rho."""
    q = radiative_loss(rho, temp, params)
    return (params.gamma - 1.0) * (heating - q) / np.maximum(rho, params.rho_floor)
