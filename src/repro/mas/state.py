"""MHD state containers.

Plasma variables (rho, T, v) are cell-centered; the magnetic field is
face-staggered for constrained transport. All arrays carry one ghost
layer; the model's halo/boundary machinery keeps ghosts coherent.

Ensemble batching: every state array may carry a leading *member* axis
``B`` in front of the three spatial axes, so one numpy kernel advances
all ensemble members at once. All numeric code in this package treats
the trailing three axes as spatial (``a[..., i, j, k]`` indexing,
negative/trailing-relative ``axis`` arguments), which makes the same
code path handle both the scalar 3-D layout (``B`` absent -- the
bit-identical legacy path) and the batched 4-D layout.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator, Sequence

import numpy as np

from repro.mas.grid import LocalGrid

#: Names of cell-centered state arrays, in canonical order.
CENTERED_FIELDS = ("rho", "temp", "vr", "vt", "vp")
#: Names of face-staggered field arrays and their stagger axis.
FACE_FIELDS = (("br", 0), ("bt", 1), ("bp", 2))
#: All state array names.
ALL_FIELDS = CENTERED_FIELDS + tuple(n for n, _ in FACE_FIELDS)

#: Stagger axis per field name (None for cell-centered fields).
STAGGER_AXES = {name: None for name in CENTERED_FIELDS}
STAGGER_AXES.update({name: axis for name, axis in FACE_FIELDS})


def stagger_axis(name: str) -> int | None:
    """Spatial stagger axis of a state field (None if cell-centered)."""
    if name not in STAGGER_AXES:
        raise KeyError(f"unknown state field {name!r}")
    return STAGGER_AXES[name]


@dataclass(slots=True)
class MhdState:
    """One rank's ghosted state arrays (optionally member-batched)."""

    rho: np.ndarray
    temp: np.ndarray
    vr: np.ndarray
    vt: np.ndarray
    vp: np.ndarray
    br: np.ndarray
    bt: np.ndarray
    bp: np.ndarray

    @classmethod
    def allocate(
        cls, grid: LocalGrid, dtype=np.float64, *, members: int | None = None
    ) -> "MhdState":
        """Zero-initialized state with the grid's ghosted shapes.

        ``members=None`` keeps the legacy 3-D layout; ``members=B``
        prepends a leading batch axis of length B to every array.
        """
        if members is not None and members < 1:
            raise ValueError("members must be >= 1")
        lead = () if members is None else (members,)
        c = lead + grid.centered_shape()
        return cls(
            rho=np.zeros(c, dtype),
            temp=np.zeros(c, dtype),
            vr=np.zeros(c, dtype),
            vt=np.zeros(c, dtype),
            vp=np.zeros(c, dtype),
            br=np.zeros(lead + grid.face_shape(0), dtype),
            bt=np.zeros(lead + grid.face_shape(1), dtype),
            bp=np.zeros(lead + grid.face_shape(2), dtype),
        )

    @property
    def members(self) -> int | None:
        """Batch size B, or None for the scalar 3-D layout."""
        return None if self.rho.ndim == 3 else int(self.rho.shape[0])

    def member_view(self, b: int) -> "MhdState":
        """Zero-copy 3-D view of member ``b`` of a batched state."""
        if self.members is None:
            raise ValueError("state is not batched")
        return MhdState(**{f.name: getattr(self, f.name)[b] for f in fields(self)})

    def member_views(self) -> Iterator["MhdState"]:
        """Iterate zero-copy member views of a batched state."""
        for b in range(self.members or 0):
            yield self.member_view(b)

    @classmethod
    def stack(cls, states: Sequence["MhdState"]) -> "MhdState":
        """Batch B scalar states into one 4-D state (copies)."""
        if not states:
            raise ValueError("cannot stack an empty member list")
        if any(s.members is not None for s in states):
            raise ValueError("can only stack scalar (3-D) states")
        return cls(
            **{
                f.name: np.stack([getattr(s, f.name) for s in states])
                for f in fields(states[0])
            }
        )

    def copy(self) -> "MhdState":
        """Deep copy of every array (dtype and batch layout preserved)."""
        return type(self)(
            **{f.name: getattr(self, f.name).copy() for f in fields(self)}
        )

    def get(self, name: str) -> np.ndarray:
        """Array by field name."""
        if name not in ALL_FIELDS:
            raise KeyError(f"unknown state field {name!r}")
        return getattr(self, name)

    def nbytes(self) -> int:
        """Total payload bytes across all arrays."""
        return sum(getattr(self, f.name).nbytes for f in fields(self))

    def assert_finite(self) -> None:
        """Raise if any array contains non-finite interior values."""
        for f in fields(self):
            a = getattr(self, f.name)
            # ghost rims may legitimately hold unset values; check core
            core = a[..., 1:-1, 1:-1, 1:-1]
            if not np.all(np.isfinite(core)):
                raise FloatingPointError(f"non-finite values in {f.name}")


class EnsembleState(MhdState):
    """A member-batched :class:`MhdState` (leading axis = ensemble members).

    Behaviourally identical to a batched ``MhdState``; the subclass only
    marks intent at allocation sites and requires the batch axis.
    """

    __slots__ = ()

    @classmethod
    def allocate(
        cls, grid: LocalGrid, dtype=np.float64, *, members: int | None = None
    ) -> "EnsembleState":
        if members is None:
            raise ValueError("EnsembleState.allocate requires members")
        return super().allocate(grid, dtype, members=members)  # type: ignore[return-value]
