"""MHD state containers.

Plasma variables (rho, T, v) are cell-centered; the magnetic field is
face-staggered for constrained transport. All arrays carry one ghost
layer; the model's halo/boundary machinery keeps ghosts coherent.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.mas.grid import LocalGrid

#: Names of cell-centered state arrays, in canonical order.
CENTERED_FIELDS = ("rho", "temp", "vr", "vt", "vp")
#: Names of face-staggered field arrays and their stagger axis.
FACE_FIELDS = (("br", 0), ("bt", 1), ("bp", 2))
#: All state array names.
ALL_FIELDS = CENTERED_FIELDS + tuple(n for n, _ in FACE_FIELDS)


@dataclass(slots=True)
class MhdState:
    """One rank's ghosted state arrays."""

    rho: np.ndarray
    temp: np.ndarray
    vr: np.ndarray
    vt: np.ndarray
    vp: np.ndarray
    br: np.ndarray
    bt: np.ndarray
    bp: np.ndarray

    @classmethod
    def allocate(cls, grid: LocalGrid, dtype=np.float64) -> "MhdState":
        """Zero-initialized state with the grid's ghosted shapes."""
        c = grid.centered_shape()
        return cls(
            rho=np.zeros(c, dtype),
            temp=np.zeros(c, dtype),
            vr=np.zeros(c, dtype),
            vt=np.zeros(c, dtype),
            vp=np.zeros(c, dtype),
            br=np.zeros(grid.face_shape(0), dtype),
            bt=np.zeros(grid.face_shape(1), dtype),
            bp=np.zeros(grid.face_shape(2), dtype),
        )

    def copy(self) -> "MhdState":
        """Deep copy of every array."""
        return MhdState(**{f.name: getattr(self, f.name).copy() for f in fields(self)})

    def get(self, name: str) -> np.ndarray:
        """Array by field name."""
        if name not in ALL_FIELDS:
            raise KeyError(f"unknown state field {name!r}")
        return getattr(self, name)

    def nbytes(self) -> int:
        """Total payload bytes across all arrays."""
        return sum(getattr(self, f.name).nbytes for f in fields(self))

    def assert_finite(self) -> None:
        """Raise if any array contains non-finite interior values."""
        for f in fields(self):
            a = getattr(self, f.name)
            # ghost rims may legitimately hold unset values; check core
            core = a[1:-1, 1:-1, 1:-1]
            if not np.all(np.isfinite(core)):
                raise FloatingPointError(f"non-finite values in {f.name}")
