"""Physics parameters in MAS-style normalized units.

Lengths in solar radii, density/temperature/field normalized to coronal
base values. The defaults describe a quasi-steady coronal background like
the paper's test case (SV-A): a thermodynamic MHD model with viscosity,
resistivity, field-aligned thermal conduction, radiative losses, and a
parameterized coronal heating function.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PhysicsParams:
    """All dimensionless knobs of the MHD model."""

    #: Ratio of specific heats; 5/3 for the thermodynamic model.
    gamma: float = 5.0 / 3.0
    #: Kinematic viscosity (normalized); solved implicitly.
    viscosity: float = 5.0e-3
    #: Resistivity (normalized); explicit in the induction equation.
    resistivity: float = 1.0e-4
    #: Spitzer-like conduction coefficient: kappa(T) = kappa0 * T^{5/2}.
    kappa0: float = 2.0e-3
    #: Radiative loss coefficient: Q_rad = lambda0 * rho^2 * Lambda(T).
    lambda0: float = 1.0e-2
    #: Coronal heating amplitude: H(r) = h0 * exp(-(r-1)/h_scale).
    h0: float = 5.0e-3
    h_scale: float = 0.7
    #: Gravity amplitude at r=1 (normalized GM/Rs).
    gravity: float = 0.823
    #: CFL safety factor for the explicit advance.
    cfl: float = 0.35
    #: Floor values to keep the model physical on coarse test grids.
    rho_floor: float = 1.0e-6
    temp_floor: float = 1.0e-4

    def __post_init__(self) -> None:
        if self.gamma <= 1.0:
            raise ValueError("gamma must exceed 1")
        for name in ("viscosity", "resistivity", "kappa0", "lambda0", "h0"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")
        if not 0 < self.cfl < 1:
            raise ValueError("cfl must be in (0, 1)")
        if self.rho_floor <= 0 or self.temp_floor <= 0:
            raise ValueError("floors must be positive")

    def pressure(self, rho, temp):
        """Equation of state: normalized ideal gas, p = rho * T."""
        return rho * temp

    def sound_speed_sq(self, temp):
        """gamma * T in normalized units."""
        return self.gamma * temp
