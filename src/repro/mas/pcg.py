"""Preconditioned conjugate gradient family over distributed arrays.

MAS solves its implicit (viscosity, semi-implicit) operators with PCG
(paper refs [22], [25]); each iteration applies the operator (one halo
exchange + stencil kernels) and takes global dot products (MPI
allreduces). Fig. 4 profiles exactly these iterations, and the Fig. 3
MPI breakdown pins a large share of the solve on those latency-dominated
collectives. Three variants attack that cost:

* :func:`pcg_solve` -- **classic** PCG (the reference): three blocking
  allreduces per iteration (p.Ap, the residual norm, and r.z);
* :func:`pcg_solve_ca` -- **communication-avoiding** PCG
  (Chronopoulos--Gear recurrences): the per-iteration dot products are
  fused into ONE batched allreduce (``allreduce_many``), so each
  iteration pays one collective latency instead of three;
* :func:`pcg_solve_pipelined` -- **pipelined** PCG (Ghysels--Vanroose):
  the single fused allreduce is additionally posted *nonblocking* and
  overlapped with the preconditioner + operator application, hiding the
  collective entirely when the matvec is longer than the latency.

All three produce identical iterates in exact arithmetic; the variant
property tests pin them to the classic solution within tight tolerance.

On the preconditioner axis, :func:`jacobi_preconditioner` (diagonal
scaling) is joined by :func:`chebyshev_preconditioner`, a fixed
polynomial in the Jacobi-scaled operator whose spectral bounds come from
the diagonal alone (:func:`jacobi_spectral_bounds`) -- stronger
smoothing per iteration with no extra halo exchanges.

The solvers are generic: they work on *lists of per-rank arrays* and
receive callbacks for the operator, dot product(s), and preconditioner,
so they can be unit-tested with plain numpy closures and driven by the
model with kernel-wrapped closures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.obs.telemetry import current as _telemetry

RankArrays = list[np.ndarray]

#: Pairs of rank-array vectors whose dot products are fused into one
#: batched reduction.
DotPairs = Sequence[tuple[RankArrays, RankArrays]]

#: Solver variants selectable per run (``--pcg``).
PCG_VARIANTS = ("classic", "ca", "pipelined")

#: Preconditioners selectable per run (``--precond``).
PRECONDITIONERS = ("jacobi", "cheby")

#: Relative-magnitude breakdown floor for the rho = (r, z) inner product:
#: rho this far below its initial value has lost all relative magnitude.
PCG_BREAKDOWN_REL = float(np.finfo(float).eps) ** 2 * 1e-3

#: Relative residual below which a vanished rho is *over-convergence*,
#: not breakdown. Fixed-iteration paper-scale solves keep polishing an
#: already-converged system, driving rho arbitrarily small while the
#: residual sits at the machine-precision floor; that must keep iterating
#: (the calibrated cost model counts those kernels). Only a rho collapse
#: while the residual is still large is a true breakdown.
PCG_STAGNATION_RESIDUAL = 1e-12


def _rho_breakdown(rho: float, rho0: float, res_norm: float) -> bool:
    """True when the rho recurrence denominator is unusable.

    For an SPD operator and preconditioner rho is positive until the
    residual is exactly zero, so a non-finite, negative, exactly-zero
    (with residual remaining), or relative-magnitude-collapsed rho while
    unconverged means the recurrence has broken down -- the caller
    returns a non-converged result instead of silently zeroing the
    search direction.
    """
    if not np.isfinite(rho) or rho < 0.0:
        return True
    if rho == 0.0:
        return res_norm > 0.0
    return abs(rho) <= PCG_BREAKDOWN_REL * rho0 and res_norm > PCG_STAGNATION_RESIDUAL


@dataclass(slots=True)
class PcgResult:
    """Outcome of a PCG solve."""

    iterations: int
    residual_norm: float
    converged: bool
    #: True when the solve stopped because a recurrence denominator lost
    #: all relative magnitude (returned instead of silently restarting).
    breakdown: bool = False
    variant: str = "classic"
    #: Global reductions (allreduce latencies) this solve issued; the CA
    #: and pipelined variants fuse several dot products per call.
    allreduce_calls: int = 0


def _observe_solve(result: PcgResult) -> PcgResult:
    """Record the finished solve in the active telemetry session."""
    tel = _telemetry()
    if tel.enabled:
        tel.metrics.counter("pcg_solves_total", "PCG solves completed").inc()
        tel.metrics.counter(
            "pcg_iterations_total", "PCG iterations across all solves"
        ).inc(result.iterations)
        tel.metrics.counter(
            "pcg_variant_solves_total",
            "PCG solves completed, by solver variant",
            labelnames=("variant",),
        ).labels(variant=result.variant).inc()
        tel.metrics.histogram(
            "pcg_residual_norm", "relative residual at solve end",
            buckets=(1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0),
        ).observe(result.residual_norm)
        tel.logger.log(
            "pcg_solve",
            iterations=result.iterations,
            residual_norm=result.residual_norm,
            converged=result.converged,
            breakdown=result.breakdown,
            variant=result.variant,
            allreduce_calls=result.allreduce_calls,
        )
    return result


def _count_allreduce(variant: str) -> None:
    """Count one global reduction issued by a PCG solve."""
    tel = _telemetry()
    if tel.enabled:
        tel.metrics.counter(
            "pcg_allreduce_calls_total",
            "global reductions (allreduce latencies) issued by PCG solves",
            labelnames=("variant",),
        ).labels(variant=variant).inc()


def _validate(rhs: RankArrays, x: RankArrays, iterations: int) -> None:
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if len(rhs) != len(x):
        raise ValueError("rhs and x must have the same rank count")


# --------------------------------------------------------------------------
# classic PCG (the reference solver)
# --------------------------------------------------------------------------

def pcg_solve(
    apply_a: Callable[[RankArrays], RankArrays],
    rhs: RankArrays,
    x: RankArrays,
    *,
    dot: Callable[[RankArrays, RankArrays], float],
    precondition: Callable[[RankArrays], RankArrays],
    combine: Callable[[RankArrays, float, RankArrays, tuple[str, str]], None],
    iterations: int,
    tol: float = 0.0,
) -> PcgResult:
    """Run classic PCG for a fixed iteration budget (optional tol exit).

    ``apply_a`` must be linear and SPD w.r.t. ``dot``. ``combine(y, a, z)``
    performs ``y += a * z`` in place per rank (the model wraps it in an
    axpy kernel). ``x`` is updated in place.

    The paper-scale iteration count is *fixed* (see
    `repro.perf.calibration`): at test resolutions PCG would converge in
    fewer iterations than at 36M cells, and the cost model must reflect
    paper-scale work. Pass ``tol > 0`` for physics-only use.

    A loss of all relative magnitude in the rho = (r, z) recurrence
    denominator returns a non-converged result with ``breakdown=True``
    (it previously zeroed the search direction silently).
    """
    _validate(rhs, x, iterations)
    calls = 0

    def gdot(a: RankArrays, b: RankArrays) -> float:
        nonlocal calls
        calls += 1
        _count_allreduce("classic")
        return dot(a, b)

    # r = rhs - A x
    ax = apply_a(x)
    r = [b - a for b, a in zip(rhs, ax)]
    z = precondition(r)
    p = [zi.copy() for zi in z]
    rz = gdot(r, z)
    rz0 = abs(rz)
    rhs_norm = np.sqrt(max(gdot(rhs, rhs), 1e-300))

    res_norm = np.sqrt(max(gdot(r, r), 0.0)) / rhs_norm
    if rz == 0.0:
        # r = 0 under an SPD preconditioner: already solved (or rhs = 0).
        return _observe_solve(
            PcgResult(0, float(res_norm), res_norm == 0.0,
                      breakdown=res_norm != 0.0, allreduce_calls=calls)
        )
    it = 0
    for it in range(1, iterations + 1):
        ap = apply_a(p)
        pap = gdot(p, ap)
        if pap <= 0:
            if res_norm > PCG_STAGNATION_RESIDUAL:
                raise np.linalg.LinAlgError(
                    f"PCG operator not positive definite: p.Ap = {pap}"
                )
            # Exactly-converged fixed-iteration solve (p collapsed to 0):
            # keep issuing the budgeted kernels with a zero step.
            alpha = 0.0
        else:
            alpha = rz / pap
        for xi, pi in zip(x, p):
            xi += alpha * pi
        for ri, api in zip(r, ap):
            ri -= alpha * api
        res_norm = np.sqrt(max(gdot(r, r), 0.0)) / rhs_norm
        if tol > 0.0 and res_norm < tol:
            return _observe_solve(
                PcgResult(it, float(res_norm), True, allreduce_calls=calls)
            )
        z = precondition(r)
        rz_new = gdot(r, z)
        if _rho_breakdown(rz_new, rz0, res_norm):
            # The beta denominator is unusable: return a non-converged
            # result instead of silently zeroing the search direction
            # (the old `beta = 0 if rz == 0` restart).
            return _observe_solve(
                PcgResult(it, float(res_norm), tol > 0.0 and res_norm < tol,
                          breakdown=True, allreduce_calls=calls)
            )
        # rz > 0 unless the solve converged *exactly* (res_norm == 0, the
        # one non-broken way rho reaches 0); a zero beta is then exact.
        beta = rz_new / rz if rz > 0.0 else 0.0
        rz = rz_new
        for pi in p:
            pi *= beta
        combine(p, 1.0, z, ("p", "u"))  # p = z + beta * p
    return _observe_solve(
        PcgResult(it, float(res_norm), tol > 0.0 and res_norm < tol,
                  allreduce_calls=calls)
    )


# --------------------------------------------------------------------------
# communication-avoiding PCG (Chronopoulos--Gear)
# --------------------------------------------------------------------------

def pcg_solve_ca(
    apply_a: Callable[[RankArrays], RankArrays],
    rhs: RankArrays,
    x: RankArrays,
    *,
    dot_many: Callable[[DotPairs], Sequence[float]],
    precondition: Callable[[RankArrays], RankArrays],
    combine: Callable[[RankArrays, float, RankArrays, tuple[str, str]], None],
    iterations: int,
    tol: float = 0.0,
    variant: str = "ca",
) -> PcgResult:
    """Chronopoulos--Gear PCG: one fused allreduce per iteration.

    Mathematically identical to classic PCG (same Krylov iterates in
    exact arithmetic), but the recurrences are rearranged so gamma =
    (r, u), delta = (w, u) and the monitoring norm (r, r) are all
    available at the same point and reduce in a single ``dot_many`` call.
    Costs one extra operator application per *solve* (not per iteration)
    and one extra kernel-charged axpy per iteration (the s = A p
    recurrence).
    """
    _validate(rhs, x, iterations)
    calls = 0

    def gdots(pairs: DotPairs) -> tuple[float, ...]:
        nonlocal calls
        calls += 1
        _count_allreduce(variant)
        return tuple(float(v) for v in dot_many(pairs))

    ax = apply_a(x)
    r = [b - a for b, a in zip(rhs, ax)]
    u = precondition(r)
    w = apply_a(u)
    gamma, delta, rr, bb = gdots(((r, u), (w, u), (r, r), (rhs, rhs)))
    rhs_norm = np.sqrt(max(bb, 1e-300))
    res_norm = np.sqrt(max(rr, 0.0)) / rhs_norm
    if gamma == 0.0:
        return _observe_solve(
            PcgResult(0, float(res_norm), res_norm == 0.0,
                      breakdown=res_norm != 0.0, variant=variant,
                      allreduce_calls=calls)
        )
    if delta <= 0:
        raise np.linalg.LinAlgError(
            f"PCG operator not positive definite: u.Au = {delta}"
        )
    gamma0 = abs(gamma)
    alpha = gamma / delta
    beta = 0.0
    p = [np.zeros_like(ui) for ui in u]
    s = [np.zeros_like(wi) for wi in w]

    it = 0
    for it in range(1, iterations + 1):
        for pi in p:
            pi *= beta
        combine(p, 1.0, u, ("p", "u"))  # p = u + beta * p
        for si in s:
            si *= beta
        combine(s, 1.0, w, ("s", "w"))  # s = w + beta * s  (s = A p by linearity)
        for xi, pi in zip(x, p):
            xi += alpha * pi
        for ri, si in zip(r, s):
            ri -= alpha * si
        u = precondition(r)
        w = apply_a(u)
        gamma_new, delta, rr = gdots(((r, u), (w, u), (r, r)))
        res_norm = np.sqrt(max(rr, 0.0)) / rhs_norm
        if tol > 0.0 and res_norm < tol:
            return _observe_solve(
                PcgResult(it, float(res_norm), True, variant=variant,
                          allreduce_calls=calls)
            )
        if _rho_breakdown(gamma_new, gamma0, res_norm):
            return _observe_solve(
                PcgResult(it, float(res_norm), tol > 0.0 and res_norm < tol,
                          breakdown=True, variant=variant,
                          allreduce_calls=calls)
            )
        beta_new = gamma_new / gamma if gamma > 0.0 else 0.0
        denom = delta - beta_new * gamma_new / alpha
        if denom > 0:
            beta = beta_new
            alpha = gamma_new / denom
        elif res_norm > PCG_STAGNATION_RESIDUAL:
            raise np.linalg.LinAlgError(
                f"PCG operator not positive definite: p.Ap = {denom}"
            )
        # else: over-converged -- the recurrences see pure rounding noise;
        # keep the previous step sizes and burn the fixed budget (the cost
        # model counts those kernels).
        gamma = gamma_new
    return _observe_solve(
        PcgResult(it, float(res_norm), tol > 0.0 and res_norm < tol,
                  variant=variant, allreduce_calls=calls)
    )


# --------------------------------------------------------------------------
# pipelined PCG (Ghysels--Vanroose)
# --------------------------------------------------------------------------

def pcg_solve_pipelined(
    apply_a: Callable[[RankArrays], RankArrays],
    rhs: RankArrays,
    x: RankArrays,
    *,
    dot_many: Callable[[DotPairs], Sequence[float]],
    precondition: Callable[[RankArrays], RankArrays],
    combine: Callable[[RankArrays, float, RankArrays, tuple[str, str]], None],
    iterations: int,
    tol: float = 0.0,
    dot_many_begin: Callable[[DotPairs], Any] | None = None,
    dot_many_finish: Callable[[Any], Sequence[float]] | None = None,
    variant: str = "pipelined",
) -> PcgResult:
    """Pipelined PCG: the fused allreduce overlaps the matvec.

    Ghysels--Vanroose recurrences: each iteration posts its single fused
    reduction *before* applying the preconditioner and operator, and
    collects it afterwards, so the collective hides behind the compute.
    ``dot_many_begin``/``dot_many_finish`` post and complete the
    nonblocking reduction (the model wires them to
    ``allreduce_many_begin``/``allreduce_many_finish`` when the runtime
    has async launch queues); when absent, the solver degrades gracefully
    to one *blocking* fused reduction per iteration -- CA-style
    communication volume without the overlap.

    Costs one extra preconditioner application and matvec per solve, and
    three extra kernel-charged axpys per iteration (the q, z, s
    recurrences), in exchange for hiding every per-iteration collective.
    """
    _validate(rhs, x, iterations)
    if (dot_many_begin is None) != (dot_many_finish is None):
        raise ValueError("dot_many_begin and dot_many_finish come as a pair")
    calls = 0

    def begin(pairs: DotPairs) -> Any:
        nonlocal calls
        calls += 1
        _count_allreduce(variant)
        if dot_many_begin is None:
            return dot_many(pairs)
        return dot_many_begin(pairs)

    def finish(handle: Any) -> tuple[float, ...]:
        if dot_many_finish is None:
            return tuple(float(v) for v in handle)
        return tuple(float(v) for v in dot_many_finish(handle))

    ax = apply_a(x)
    r = [b - a for b, a in zip(rhs, ax)]
    u = precondition(r)
    w = apply_a(u)
    p = [np.zeros_like(ui) for ui in u]
    s = [np.zeros_like(ui) for ui in u]
    q = [np.zeros_like(ui) for ui in u]
    z = [np.zeros_like(ui) for ui in u]

    gamma = gamma0 = alpha = 0.0
    rhs_norm = 1.0
    res_norm = np.inf
    it = 0
    for it in range(1, iterations + 1):
        pairs: list[tuple[RankArrays, RankArrays]] = [(r, u), (w, u), (r, r)]
        if it == 1:
            pairs.append((rhs, rhs))
        handle = begin(pairs)
        m = precondition(w)     # overlapped with the in-flight reduction
        n = apply_a(m)
        values = finish(handle)
        gamma_new, delta, rr = values[0], values[1], values[2]
        if it == 1:
            rhs_norm = np.sqrt(max(values[3], 1e-300))
            gamma0 = abs(gamma_new)
        res_norm = np.sqrt(max(rr, 0.0)) / rhs_norm
        if tol > 0.0 and res_norm < tol:
            # (r, r) is the residual *entering* this iteration, achieved
            # by the previous iteration's updates.
            return _observe_solve(
                PcgResult(it - 1, float(res_norm), True, variant=variant,
                          allreduce_calls=calls)
            )
        if gamma_new == 0.0 and it == 1:
            return _observe_solve(
                PcgResult(0, float(res_norm), res_norm == 0.0,
                          breakdown=res_norm != 0.0, variant=variant,
                          allreduce_calls=calls)
            )
        if it == 1:
            if delta <= 0:
                raise np.linalg.LinAlgError(
                    f"PCG operator not positive definite: u.Au = {delta}"
                )
            beta = 0.0
            alpha = gamma_new / delta
        else:
            if _rho_breakdown(gamma_new, gamma0, res_norm):
                return _observe_solve(
                    PcgResult(it - 1, float(res_norm),
                              tol > 0.0 and res_norm < tol, breakdown=True,
                              variant=variant, allreduce_calls=calls)
                )
            beta_new = gamma_new / gamma if gamma > 0.0 else 0.0
            denom = delta - beta_new * gamma_new / alpha
            if denom > 0:
                beta = beta_new
                alpha = gamma_new / denom
            elif res_norm > PCG_STAGNATION_RESIDUAL:
                raise np.linalg.LinAlgError(
                    f"PCG operator not positive definite: p.Ap = {denom}"
                )
            # else: over-converged noise -- keep the previous step sizes
        gamma = gamma_new
        for zi in z:
            zi *= beta
        combine(z, 1.0, n, ("z", "n"))  # z = n + beta * z  (z = A q)
        for qi in q:
            qi *= beta
        combine(q, 1.0, m, ("q", "m"))  # q = m + beta * q  (q = M^-1 s)
        for si in s:
            si *= beta
        combine(s, 1.0, w, ("s", "w"))  # s = w + beta * s  (s = A p)
        for pi in p:
            pi *= beta
        combine(p, 1.0, u, ("p", "u"))  # p = u + beta * p
        for xi, pi in zip(x, p):
            xi += alpha * pi
        for ri, si in zip(r, s):
            ri -= alpha * si
        for ui, qi in zip(u, q):
            ui -= alpha * qi
        for wi, zi in zip(w, z):
            wi -= alpha * zi
    return _observe_solve(
        PcgResult(it, float(res_norm), tol > 0.0 and res_norm < tol,
                  variant=variant, allreduce_calls=calls)
    )


# --------------------------------------------------------------------------
# reference (single-process) callbacks
# --------------------------------------------------------------------------

def numpy_dot(a: RankArrays, b: RankArrays) -> float:
    """Reference dot product (single-process, no cost accounting)."""
    return float(sum(np.vdot(x, y).real for x, y in zip(a, b)))


def numpy_dot_many(pairs: DotPairs) -> tuple[float, ...]:
    """Reference batched dot product (what one fused allreduce returns)."""
    return tuple(numpy_dot(a, b) for a, b in pairs)


def numpy_combine(
    y: RankArrays, alpha: float, z: RankArrays,
    roles: tuple[str, str] | None = None,
) -> None:
    """Reference in-place axpy (``roles`` names the recurrence for cost
    layers that issue per-role kernels; ignored here)."""
    for yi, zi in zip(y, z):
        yi += alpha * zi


# --------------------------------------------------------------------------
# preconditioners
# --------------------------------------------------------------------------

def jacobi_preconditioner(diag: RankArrays) -> Callable[[RankArrays], RankArrays]:
    """Jacobi (diagonal) preconditioner from per-rank diagonal estimates."""
    for d in diag:
        if np.any(d <= 0):
            raise ValueError("Jacobi preconditioner needs a positive diagonal")
    inv = [1.0 / d for d in diag]

    def apply(r: RankArrays) -> RankArrays:
        return [ri * ii for ri, ii in zip(r, inv)]

    return apply


def jacobi_spectral_bounds(diag: RankArrays) -> tuple[float, float]:
    """Gershgorin bounds on the Jacobi-scaled operator, from the diagonal.

    Valid for the model's backward-Euler operators ``I + dt*c*L`` (unit
    row sums, non-positive off-diagonals): each row's off-diagonal mass
    is ``d_i - 1``, so the spectrum of ``D^-1 A`` lies within
    ``[1/max(d), 2 - 1/max(d)]`` -- computable with no operator
    applications and no halo exchanges.
    """
    dmax = max(float(np.max(d)) for d in diag)
    dmin = min(float(np.min(d)) for d in diag)
    if dmin <= 0:
        raise ValueError("spectral bounds need a positive diagonal")
    lo = 1.0 / dmax
    return lo, max(2.0 - lo, lo)


def chebyshev_preconditioner(
    apply_a: Callable[[RankArrays], RankArrays],
    inv_diag: RankArrays,
    *,
    degree: int = 3,
    lam_min: float,
    lam_max: float,
) -> Callable[[RankArrays], RankArrays]:
    """Chebyshev polynomial preconditioner over the Jacobi-scaled operator.

    Applies ``degree`` steps of the standard Chebyshev semi-iteration for
    ``A z = r`` with eigenvalue bounds ``[lam_min, lam_max]`` of
    ``D^-1 A`` (e.g. from :func:`jacobi_spectral_bounds`).  The result is
    a *fixed* polynomial ``z = p(D^-1 A) D^-1 r`` that is symmetric
    positive definite whenever the bounds cover the spectrum, so PCG
    convergence theory still applies -- but each application damps the
    whole bounded spectrum rather than only rescaling rows, cutting PCG
    iterations at fixed residual.

    ``apply_a`` applies the *unscaled* operator; the model passes a
    rank-local matvec, so preconditioning adds ``degree - 1`` stencil
    kernels and ZERO halo exchanges or reductions.  ``inv_diag`` entries
    may be zero to mask degrees of freedom out of the polynomial (the
    model zeroes ghost zones, which the rank-local matvec would otherwise
    couple in asymmetrically).
    """
    if degree < 1:
        raise ValueError("Chebyshev degree must be >= 1")
    if not (0.0 < lam_min <= lam_max):
        raise ValueError("need 0 < lam_min <= lam_max")
    for ii in inv_diag:
        if np.any(~np.isfinite(ii)) or np.any(ii < 0):
            raise ValueError(
                "Chebyshev preconditioner needs a nonnegative diagonal"
            )
    theta = 0.5 * (lam_max + lam_min)
    delta = 0.5 * (lam_max - lam_min)

    def apply(r: RankArrays) -> RankArrays:
        g = [ri * ii for ri, ii in zip(r, inv_diag)]   # D^-1 r
        d = [gi / theta for gi in g]
        z = [di.copy() for di in d]
        if degree == 1 or delta <= 1e-12 * theta:
            return z
        sigma = theta / delta
        rho = 1.0 / sigma
        for _ in range(degree - 1):
            az = apply_a(z)
            res = [gi - ii * azi for gi, ii, azi in zip(g, inv_diag, az)]
            rho_new = 1.0 / (2.0 * sigma - rho)
            d = [
                rho_new * rho * di + (2.0 * rho_new / delta) * resi
                for di, resi in zip(d, res)
            ]
            z = [zi + di for zi, di in zip(z, d)]
            rho = rho_new
        return z

    return apply


# --------------------------------------------------------------------------
# ensemble-batched solvers (leading member axis, per-member masking)
# --------------------------------------------------------------------------
#
# The batched solvers advance all B ensemble members of a member-batched
# state in one set of rank arrays (shape ``(B, ...spatial)``): every
# operator application, preconditioner and axpy is ONE kernel for the
# whole batch, and the per-iteration dot products reduce as length-B
# vectors through the same fused collectives -- so launch count and
# allreduce count are independent of B. Per-member scalars (alpha, beta,
# gamma, residual norms) are ``(B,)`` arrays; a member that converges
# under ``tol`` or trips the rho-breakdown guard is *frozen* via a mask
# (its effective alpha/beta become zero) exactly where its serial solve
# would have returned, so it never stalls the batch and its solution
# matches the serial member run.

#: Per-member batched dot: returns a ``(B,)`` array.
BatchDot = Callable[[RankArrays, RankArrays], np.ndarray]

#: Per-member batched fused dots: returns a ``(k, B)`` array.
BatchDotMany = Callable[[DotPairs], np.ndarray]


@dataclass(slots=True)
class PcgBatchResult:
    """Outcome of one ensemble-batched PCG solve (per-member arrays)."""

    iterations: np.ndarray      # (B,) int: per-member iteration counts
    residual_norm: np.ndarray   # (B,): per-member final relative residuals
    converged: np.ndarray       # (B,) bool
    breakdown: np.ndarray       # (B,) bool
    variant: str = "classic"
    #: Global reductions issued for the whole batch (independent of B).
    allreduce_calls: int = 0

    @property
    def members(self) -> int:
        return int(self.iterations.size)

    def member(self, b: int) -> PcgResult:
        """Scalar view of member ``b``'s outcome."""
        return PcgResult(
            iterations=int(self.iterations[b]),
            residual_norm=float(self.residual_norm[b]),
            converged=bool(self.converged[b]),
            breakdown=bool(self.breakdown[b]),
            variant=self.variant,
            allreduce_calls=self.allreduce_calls,
        )


def _observe_batch_solve(result: PcgBatchResult) -> PcgBatchResult:
    """Record a finished batched solve: aggregate + per-member counters."""
    tel = _telemetry()
    if tel.enabled:
        tel.metrics.counter("pcg_solves_total", "PCG solves completed").inc()
        tel.metrics.counter(
            "pcg_iterations_total", "PCG iterations across all solves"
        ).inc(int(result.iterations.max(initial=0)))
        tel.metrics.counter(
            "pcg_variant_solves_total",
            "PCG solves completed, by solver variant",
            labelnames=("variant",),
        ).labels(variant=result.variant).inc()
        member_iters = tel.metrics.counter(
            "pcg_member_iterations_total",
            "PCG iterations a member stayed active for, by ensemble member",
            labelnames=("member",),
        )
        member_conv = tel.metrics.counter(
            "pcg_member_converged_total",
            "PCG solves a member converged in, by ensemble member",
            labelnames=("member",),
        )
        member_bd = tel.metrics.counter(
            "pcg_member_breakdown_total",
            "PCG solves a member hit the rho-breakdown guard in, by member",
            labelnames=("member",),
        )
        hist = tel.metrics.histogram(
            "pcg_residual_norm", "relative residual at solve end",
            buckets=(1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0),
        )
        for b in range(result.members):
            member_iters.labels(member=str(b)).inc(int(result.iterations[b]))
            if result.converged[b]:
                member_conv.labels(member=str(b)).inc()
            if result.breakdown[b]:
                member_bd.labels(member=str(b)).inc()
            hist.observe(float(result.residual_norm[b]))
        tel.logger.log(
            "pcg_solve",
            iterations=int(result.iterations.max(initial=0)),
            residual_norm=float(result.residual_norm.max(initial=0.0)),
            converged=bool(result.converged.all()),
            breakdown=bool(result.breakdown.any()),
            variant=result.variant,
            allreduce_calls=result.allreduce_calls,
            ensemble_members=result.members,
            member_iterations=[int(v) for v in result.iterations],
            member_residual_norm=[float(v) for v in result.residual_norm],
            member_converged=[bool(v) for v in result.converged],
            member_breakdown=[bool(v) for v in result.breakdown],
        )
    return result


def _rho_breakdown_mask(
    rho: np.ndarray, rho0: np.ndarray, res_norm: np.ndarray
) -> np.ndarray:
    """Elementwise (per-member) form of :func:`_rho_breakdown`."""
    rho = np.asarray(rho)
    bad = ~np.isfinite(rho) | (rho < 0.0)
    zero = (rho == 0.0) & (res_norm > 0.0)
    collapsed = (
        (rho != 0.0)
        & (np.abs(rho) <= PCG_BREAKDOWN_REL * rho0)
        & (res_norm > PCG_STAGNATION_RESIDUAL)
    )
    return bad | zero | collapsed


def _bcol(v: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape a ``(B,)`` per-member scalar for broadcasting against
    ``(B, ...spatial)`` arrays of ``ndim`` axes."""
    return v.reshape(v.shape + (1,) * (ndim - 1))


def _safe_div(num: np.ndarray, den: np.ndarray, ok: np.ndarray) -> np.ndarray:
    """``num/den`` where ``ok``, 0 elsewhere (no spurious warnings)."""
    return np.where(ok, num / np.where(ok, den, 1.0), 0.0)


def pcg_solve_batched(
    apply_a: Callable[[RankArrays], RankArrays],
    rhs: RankArrays,
    x: RankArrays,
    *,
    dot: BatchDot,
    precondition: Callable[[RankArrays], RankArrays],
    combine: Callable[[RankArrays, float, RankArrays, tuple[str, str]], None],
    iterations: int,
    tol: float = 0.0,
) -> PcgBatchResult:
    """Classic PCG over a member-batched system with per-member masking.

    Control flow mirrors :func:`pcg_solve` member-by-member: a member
    whose serial solve would have returned (tol reached, rho breakdown,
    zero initial rho) freezes -- its effective alpha/beta are masked to
    zero from that point on, so ``x`` stops changing for it while the
    remaining members keep iterating. An active member with an indefinite
    operator still raises, exactly as its serial solve would.
    """
    _validate(rhs, x, iterations)
    calls = 0

    def gdot(a: RankArrays, b: RankArrays) -> np.ndarray:
        nonlocal calls
        calls += 1
        _count_allreduce("classic")
        return np.asarray(dot(a, b), dtype=float)

    ax = apply_a(x)
    r = [b - a for b, a in zip(rhs, ax)]
    z = precondition(r)
    p = [zi.copy() for zi in z]
    rz = gdot(r, z)
    nb = rz.size
    rz0 = np.abs(rz)
    rhs_norm = np.sqrt(np.maximum(gdot(rhs, rhs), 1e-300))
    res_norm = np.sqrt(np.maximum(gdot(r, r), 0.0)) / rhs_norm

    active = np.ones(nb, dtype=bool)
    converged = np.zeros(nb, dtype=bool)
    breakdown = np.zeros(nb, dtype=bool)
    iters = np.zeros(nb, dtype=int)

    zero0 = rz == 0.0
    converged |= zero0 & (res_norm == 0.0)
    breakdown |= zero0 & (res_norm != 0.0)
    active &= ~zero0

    ndim = x[0].ndim
    for it in range(1, iterations + 1):
        if not active.any():
            break
        ap = apply_a(p)
        pap = gdot(p, ap)
        indefinite = active & (pap <= 0) & (res_norm > PCG_STAGNATION_RESIDUAL)
        if indefinite.any():
            b = int(np.argmax(indefinite))
            raise np.linalg.LinAlgError(
                f"PCG operator not positive definite for member {b}: "
                f"p.Ap = {pap[b]}"
            )
        alpha = _safe_div(rz, pap, active & (pap > 0))
        a_col = _bcol(alpha, ndim)
        for xi, pi in zip(x, p):
            xi += a_col * pi
        for ri, api in zip(r, ap):
            ri -= a_col * api
        res_new = np.sqrt(np.maximum(gdot(r, r), 0.0)) / rhs_norm
        res_norm = np.where(active, res_new, res_norm)
        iters = np.where(active, it, iters)
        if tol > 0.0:
            newly = active & (res_norm < tol)
            converged |= newly
            active &= ~newly
        if not active.any():
            break
        z = precondition(r)
        rz_new = gdot(r, z)
        broke = active & _rho_breakdown_mask(rz_new, rz0, res_norm)
        breakdown |= broke
        active &= ~broke
        beta = _safe_div(rz_new, rz, active & (rz > 0.0))
        rz = np.where(active, rz_new, rz)
        b_col = _bcol(beta, ndim)
        for pi in p:
            pi *= b_col
        combine(p, 1.0, z, ("p", "u"))  # p = z + beta * p
    return _observe_batch_solve(
        PcgBatchResult(iters, res_norm, converged, breakdown,
                       variant="classic", allreduce_calls=calls)
    )


def pcg_solve_ca_batched(
    apply_a: Callable[[RankArrays], RankArrays],
    rhs: RankArrays,
    x: RankArrays,
    *,
    dot_many: BatchDotMany,
    precondition: Callable[[RankArrays], RankArrays],
    combine: Callable[[RankArrays, float, RankArrays, tuple[str, str]], None],
    iterations: int,
    tol: float = 0.0,
    variant: str = "ca",
) -> PcgBatchResult:
    """Chronopoulos--Gear PCG over a member-batched system.

    One fused allreduce per iteration for the whole batch: ``dot_many``
    returns a ``(k, B)`` array -- k fused dot products, each a length-B
    per-member vector -- reduced in a single collective. Masking follows
    :func:`pcg_solve_batched`.
    """
    _validate(rhs, x, iterations)
    calls = 0

    def gdots(pairs: DotPairs) -> np.ndarray:
        nonlocal calls
        calls += 1
        _count_allreduce(variant)
        return np.asarray(dot_many(pairs), dtype=float)

    ax = apply_a(x)
    r = [b - a for b, a in zip(rhs, ax)]
    u = precondition(r)
    w = apply_a(u)
    gamma, delta, rr, bb = gdots(((r, u), (w, u), (r, r), (rhs, rhs)))
    nb = gamma.size
    rhs_norm = np.sqrt(np.maximum(bb, 1e-300))
    res_norm = np.sqrt(np.maximum(rr, 0.0)) / rhs_norm

    active = np.ones(nb, dtype=bool)
    converged = np.zeros(nb, dtype=bool)
    breakdown = np.zeros(nb, dtype=bool)
    iters = np.zeros(nb, dtype=int)

    zero0 = gamma == 0.0
    converged |= zero0 & (res_norm == 0.0)
    breakdown |= zero0 & (res_norm != 0.0)
    active &= ~zero0
    indefinite = active & (delta <= 0)
    if indefinite.any():
        b = int(np.argmax(indefinite))
        raise np.linalg.LinAlgError(
            f"PCG operator not positive definite for member {b}: "
            f"u.Au = {delta[b]}"
        )
    gamma0 = np.abs(gamma)
    alpha = _safe_div(gamma, delta, active)
    beta = np.zeros(nb)
    p = [np.zeros_like(ui) for ui in u]
    s = [np.zeros_like(wi) for wi in w]

    ndim = x[0].ndim
    for it in range(1, iterations + 1):
        if not active.any():
            break
        a_col = _bcol(np.where(active, alpha, 0.0), ndim)
        b_col = _bcol(np.where(active, beta, 0.0), ndim)
        for pi in p:
            pi *= b_col
        combine(p, 1.0, u, ("p", "u"))  # p = u + beta * p
        for si in s:
            si *= b_col
        combine(s, 1.0, w, ("s", "w"))  # s = w + beta * s (s = A p)
        for xi, pi in zip(x, p):
            xi += a_col * pi
        for ri, si in zip(r, s):
            ri -= a_col * si
        u = precondition(r)
        w = apply_a(u)
        gamma_new, delta, rr = gdots(((r, u), (w, u), (r, r)))
        res_norm = np.where(
            active, np.sqrt(np.maximum(rr, 0.0)) / rhs_norm, res_norm
        )
        iters = np.where(active, it, iters)
        if tol > 0.0:
            newly = active & (res_norm < tol)
            converged |= newly
            active &= ~newly
        broke = active & _rho_breakdown_mask(gamma_new, gamma0, res_norm)
        breakdown |= broke
        active &= ~broke
        if not active.any():
            break
        beta_new = _safe_div(gamma_new, gamma, active & (gamma > 0.0))
        denom = delta - beta_new * gamma_new / np.where(alpha != 0.0, alpha, 1.0)
        ok = denom > 0
        indefinite = active & ~ok & (res_norm > PCG_STAGNATION_RESIDUAL)
        if indefinite.any():
            b = int(np.argmax(indefinite))
            raise np.linalg.LinAlgError(
                f"PCG operator not positive definite for member {b}: "
                f"p.Ap = {denom[b]}"
            )
        upd = active & ok
        beta = np.where(upd, beta_new, beta)
        alpha = np.where(upd, _safe_div(gamma_new, denom, upd), alpha)
        # over-converged members (denom <= 0 at noise level) keep their
        # previous step sizes and burn the fixed budget, as in the serial
        # solver.
        gamma = np.where(active, gamma_new, gamma)
    return _observe_batch_solve(
        PcgBatchResult(iters, res_norm, converged, breakdown,
                       variant=variant, allreduce_calls=calls)
    )


def pcg_solve_pipelined_batched(
    apply_a: Callable[[RankArrays], RankArrays],
    rhs: RankArrays,
    x: RankArrays,
    *,
    dot_many: BatchDotMany,
    precondition: Callable[[RankArrays], RankArrays],
    combine: Callable[[RankArrays, float, RankArrays, tuple[str, str]], None],
    iterations: int,
    tol: float = 0.0,
    dot_many_begin: Callable[[DotPairs], Any] | None = None,
    dot_many_finish: Callable[[Any], np.ndarray] | None = None,
    variant: str = "pipelined",
) -> PcgBatchResult:
    """Ghysels--Vanroose pipelined PCG over a member-batched system.

    The per-iteration fused length-``k*B`` reduction is posted
    nonblocking and overlapped with the preconditioner + matvec of the
    whole batch; masking follows :func:`pcg_solve_batched`.
    """
    _validate(rhs, x, iterations)
    if (dot_many_begin is None) != (dot_many_finish is None):
        raise ValueError("dot_many_begin and dot_many_finish come as a pair")
    calls = 0

    def begin(pairs: DotPairs) -> Any:
        nonlocal calls
        calls += 1
        _count_allreduce(variant)
        if dot_many_begin is None:
            return np.asarray(dot_many(pairs), dtype=float)
        return dot_many_begin(pairs)

    def finish(handle: Any) -> np.ndarray:
        if dot_many_finish is None:
            return np.asarray(handle, dtype=float)
        return np.asarray(dot_many_finish(handle), dtype=float)

    ax = apply_a(x)
    r = [b - a for b, a in zip(rhs, ax)]
    u = precondition(r)
    w = apply_a(u)
    p = [np.zeros_like(ui) for ui in u]
    s = [np.zeros_like(ui) for ui in u]
    q = [np.zeros_like(ui) for ui in u]
    z = [np.zeros_like(ui) for ui in u]

    nb = None
    active = converged = breakdown = iters = None
    gamma = gamma0 = alpha = beta = None
    rhs_norm = res_norm = None

    ndim = x[0].ndim
    it = 0
    for it in range(1, iterations + 1):
        pairs: list[tuple[RankArrays, RankArrays]] = [(r, u), (w, u), (r, r)]
        if it == 1:
            pairs.append((rhs, rhs))
        handle = begin(pairs)
        m = precondition(w)     # overlapped with the in-flight reduction
        n = apply_a(m)
        values = finish(handle)
        gamma_new, delta, rr = values[0], values[1], values[2]
        if it == 1:
            nb = gamma_new.size
            rhs_norm = np.sqrt(np.maximum(values[3], 1e-300))
            gamma0 = np.abs(gamma_new)
            active = np.ones(nb, dtype=bool)
            converged = np.zeros(nb, dtype=bool)
            breakdown = np.zeros(nb, dtype=bool)
            iters = np.zeros(nb, dtype=int)
            res_norm = np.sqrt(np.maximum(rr, 0.0)) / rhs_norm
            gamma = np.zeros(nb)
            alpha = np.zeros(nb)
            beta = np.zeros(nb)
        else:
            res_norm = np.where(
                active, np.sqrt(np.maximum(rr, 0.0)) / rhs_norm, res_norm
            )
        if tol > 0.0:
            # (r, r) is the residual *entering* this iteration.
            newly = active & (res_norm < tol)
            converged |= newly
            active &= ~newly
        if it == 1:
            zero0 = active & (gamma_new == 0.0)
            converged |= zero0 & (res_norm == 0.0)
            breakdown |= zero0 & (res_norm != 0.0)
            active &= ~zero0
            indefinite = active & (delta <= 0)
            if indefinite.any():
                b = int(np.argmax(indefinite))
                raise np.linalg.LinAlgError(
                    f"PCG operator not positive definite for member {b}: "
                    f"u.Au = {delta[b]}"
                )
            alpha = _safe_div(gamma_new, delta, active)
        else:
            broke = active & _rho_breakdown_mask(gamma_new, gamma0, res_norm)
            breakdown |= broke
            active &= ~broke
            beta_new = _safe_div(gamma_new, gamma, active & (gamma > 0.0))
            denom = delta - beta_new * gamma_new / np.where(
                alpha != 0.0, alpha, 1.0
            )
            ok = denom > 0
            indefinite = active & ~ok & (res_norm > PCG_STAGNATION_RESIDUAL)
            if indefinite.any():
                b = int(np.argmax(indefinite))
                raise np.linalg.LinAlgError(
                    f"PCG operator not positive definite for member {b}: "
                    f"p.Ap = {denom[b]}"
                )
            upd = active & ok
            beta = np.where(upd, beta_new, beta)
            alpha = np.where(upd, _safe_div(gamma_new, denom, upd), alpha)
        gamma = np.where(active, gamma_new, gamma)
        if not active.any():
            break
        iters = np.where(active, it, iters)
        a_col = _bcol(np.where(active, alpha, 0.0), ndim)
        b_col = _bcol(np.where(active, beta, 0.0), ndim)
        for zi in z:
            zi *= b_col
        combine(z, 1.0, n, ("z", "n"))  # z = n + beta * z  (z = A q)
        for qi in q:
            qi *= b_col
        combine(q, 1.0, m, ("q", "m"))  # q = m + beta * q  (q = M^-1 s)
        for si in s:
            si *= b_col
        combine(s, 1.0, w, ("s", "w"))  # s = w + beta * s  (s = A p)
        for pi in p:
            pi *= b_col
        combine(p, 1.0, u, ("p", "u"))  # p = u + beta * p
        for xi, pi in zip(x, p):
            xi += a_col * pi
        for ri, si in zip(r, s):
            ri -= a_col * si
        for ui, qi in zip(u, q):
            ui -= a_col * qi
        for wi, zi in zip(w, z):
            wi -= a_col * zi
    return _observe_batch_solve(
        PcgBatchResult(iters, res_norm, converged, breakdown,
                       variant=variant, allreduce_calls=calls)
    )


#: Batched solver per variant name (mirrors ``PCG_VARIANTS``).
PCG_BATCHED_SOLVERS = {
    "classic": pcg_solve_batched,
    "ca": pcg_solve_ca_batched,
    "pipelined": pcg_solve_pipelined_batched,
}


def numpy_dot_batched(a: RankArrays, b: RankArrays) -> np.ndarray:
    """Reference per-member dot product over batched rank arrays."""
    total = None
    for xi, yi in zip(a, b):
        v = (xi * yi).sum(axis=tuple(range(1, xi.ndim)))
        total = v if total is None else total + v
    return np.asarray(total, dtype=float)


def numpy_dot_many_batched(pairs: DotPairs) -> np.ndarray:
    """Reference batched fused dots: a ``(k, B)`` array."""
    return np.stack([numpy_dot_batched(a, b) for a, b in pairs])
