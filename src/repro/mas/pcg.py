"""Preconditioned conjugate gradient over distributed arrays.

MAS solves its implicit (viscosity, semi-implicit) operators with PCG
(paper refs [22], [25]); each iteration applies the operator (one halo
exchange + stencil kernels) and takes two global dot products (MPI
allreduces). Fig. 4 profiles exactly these iterations.

The solver is generic: it works on *lists of per-rank arrays* and receives
callbacks for the operator, dot product, and preconditioner, so it can be
unit-tested with plain numpy closures and driven by the model with
kernel-wrapped closures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.obs.telemetry import current as _telemetry

RankArrays = list[np.ndarray]


@dataclass(slots=True)
class PcgResult:
    """Outcome of a PCG solve."""

    iterations: int
    residual_norm: float
    converged: bool


def _observe_solve(result: PcgResult) -> PcgResult:
    """Record the finished solve in the active telemetry session."""
    tel = _telemetry()
    if tel.enabled:
        tel.metrics.counter("pcg_solves_total", "PCG solves completed").inc()
        tel.metrics.counter(
            "pcg_iterations_total", "PCG iterations across all solves"
        ).inc(result.iterations)
        tel.metrics.histogram(
            "pcg_residual_norm", "relative residual at solve end",
            buckets=(1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0),
        ).observe(result.residual_norm)
        tel.logger.log(
            "pcg_solve",
            iterations=result.iterations,
            residual_norm=result.residual_norm,
            converged=result.converged,
        )
    return result


def pcg_solve(
    apply_a: Callable[[RankArrays], RankArrays],
    rhs: RankArrays,
    x: RankArrays,
    *,
    dot: Callable[[RankArrays, RankArrays], float],
    precondition: Callable[[RankArrays], RankArrays],
    combine: Callable[[RankArrays, float, RankArrays], None],
    iterations: int,
    tol: float = 0.0,
) -> PcgResult:
    """Run PCG for a fixed iteration budget (optionally early-exit on tol).

    ``apply_a`` must be linear and SPD w.r.t. ``dot``. ``combine(y, a, z)``
    performs ``y += a * z`` in place per rank (the model wraps it in an
    axpy kernel). ``x`` is updated in place.

    The paper-scale iteration count is *fixed* (see
    `repro.perf.calibration`): at test resolutions PCG would converge in
    fewer iterations than at 36M cells, and the cost model must reflect
    paper-scale work. Pass ``tol > 0`` for physics-only use.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if len(rhs) != len(x):
        raise ValueError("rhs and x must have the same rank count")

    # r = rhs - A x
    ax = apply_a(x)
    r = [b - a for b, a in zip(rhs, ax)]
    z = precondition(r)
    p = [zi.copy() for zi in z]
    rz = dot(r, z)
    rhs_norm = np.sqrt(max(dot(rhs, rhs), 1e-300))

    it = 0
    res_norm = np.sqrt(max(dot(r, r), 0.0)) / rhs_norm
    for it in range(1, iterations + 1):
        ap = apply_a(p)
        pap = dot(p, ap)
        if pap <= 0:
            raise np.linalg.LinAlgError(
                f"PCG operator not positive definite: p.Ap = {pap}"
            )
        alpha = rz / pap
        for xi, pi in zip(x, p):
            xi += alpha * pi
        for ri, api in zip(r, ap):
            ri -= alpha * api
        res_norm = np.sqrt(max(dot(r, r), 0.0)) / rhs_norm
        if tol > 0.0 and res_norm < tol:
            return _observe_solve(PcgResult(it, float(res_norm), True))
        z = precondition(r)
        rz_new = dot(r, z)
        beta = rz_new / rz if rz != 0 else 0.0
        rz = rz_new
        for pi in p:
            pi *= beta
        combine(p, 1.0, z)  # p = z + beta * p
    return _observe_solve(
        PcgResult(it, float(res_norm), tol > 0.0 and res_norm < tol)
    )


def numpy_dot(a: RankArrays, b: RankArrays) -> float:
    """Reference dot product (single-process, no cost accounting)."""
    return float(sum(np.vdot(x, y).real for x, y in zip(a, b)))


def numpy_combine(y: RankArrays, alpha: float, z: RankArrays) -> None:
    """Reference in-place axpy."""
    for yi, zi in zip(y, z):
        yi += alpha * zi


def jacobi_preconditioner(diag: RankArrays) -> Callable[[RankArrays], RankArrays]:
    """Jacobi (diagonal) preconditioner from per-rank diagonal estimates."""
    for d in diag:
        if np.any(d <= 0):
            raise ValueError("Jacobi preconditioner needs a positive diagonal")
    inv = [1.0 / d for d in diag]

    def apply(r: RankArrays) -> RankArrays:
        return [ri * ii for ri, ii in zip(r, inv)]

    return apply
