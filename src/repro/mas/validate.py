"""Solution validation across code versions and rank counts.

The paper validated every code version's solution against the original
"to within solver tolerances" (SV-A). Our runtimes execute identical numpy
bodies, so cross-version agreement is *bit-exact*; cross-rank-count
agreement (1 rank vs N ranks) holds to accumulated floating-point
reassociation, checked with a tight relative tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.mas.state import ALL_FIELDS, MhdState


def max_rel_diff(a: np.ndarray, b: np.ndarray) -> float:
    """max |a-b| / max(|a|, |b|, tiny) over the common interior."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    scale = max(float(np.abs(a).max()), float(np.abs(b).max()), 1e-300)
    return float(np.abs(a - b).max()) / scale


def compare_states(a: MhdState, b: MhdState, *, interior_only: bool = True) -> dict[str, float]:
    """Per-field max relative differences between two rank states."""
    out = {}
    for name in ALL_FIELDS:
        x, y = a.get(name), b.get(name)
        if interior_only:
            x, y = x[1:-1, 1:-1, 1:-1], y[1:-1, 1:-1, 1:-1]
        out[name] = max_rel_diff(x, y)
    return out


def gather_global(states, decomp, field: str, face_axis: int | None = None) -> np.ndarray:
    """Reassemble a global interior array from per-rank ghosted arrays.

    For face fields, the shared boundary faces are written twice -- by
    construction they agree, so last-writer-wins is safe.
    """
    shape = list(decomp.global_shape)
    if face_axis is not None:
        shape[face_axis] += 1
    out = np.empty(tuple(shape))
    for r in decomp.iter_ranks():
        b = decomp.bounds(r)
        sl_global = []
        sl_local = []
        a = states[r].get(field)
        for axis in range(3):
            lo, hi = b[axis]
            n = hi - lo
            extra = 1 if axis == face_axis else 0
            sl_global.append(slice(lo, hi + extra))
            sl_local.append(slice(1, 1 + n + extra))
        out[tuple(sl_global)] = a[tuple(sl_local)]
    return out


def states_equivalent(
    states_a, decomp_a, states_b, decomp_b, *, tol: float = 1e-10
) -> dict[str, float]:
    """Compare two runs (possibly different rank counts) field by field.

    Returns per-field max relative differences; raises if the global grids
    disagree in shape.
    """
    if decomp_a.global_shape != decomp_b.global_shape:
        raise ValueError("runs discretize different global grids")
    face_axes = {"br": 0, "bt": 1, "bp": 2}
    gathered = {
        name: (
            gather_global(states_a, decomp_a, name, face_axes.get(name)),
            gather_global(states_b, decomp_b, name, face_axes.get(name)),
        )
        for name in ALL_FIELDS
    }
    # normalize by the solution scale so a field that is physically ~0
    # (pure roundoff noise) cannot register a spurious "relative" error
    scale = max(
        max(float(np.abs(a).max()), float(np.abs(b).max()))
        for a, b in gathered.values()
    )
    scale = max(scale, 1e-300)
    diffs = {
        name: float(np.abs(a - b).max()) / scale for name, (a, b) in gathered.items()
    }
    bad = {k: v for k, v in diffs.items() if v > tol}
    if bad:
        raise AssertionError(f"solutions diverge beyond tol={tol}: {bad}")
    return diffs
