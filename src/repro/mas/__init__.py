"""The MAS-analog solar MHD code.

A real, runnable thermodynamic MHD solver standing in for the 70k-line
Fortran MAS (paper SIII): logically rectangular non-uniform staggered
spherical grid, finite-difference/finite-volume discretizations, explicit
ideal-MHD advance with constrained transport (exact div(B) preservation),
implicit viscosity via preconditioned conjugate gradient, thermal
conduction advanced with RKL2 super time-stepping (paper ref [25]),
radiative losses and coronal heating.

Every array operation is issued through `repro.runtime` kernels, so the six
code versions of Table I execute the identical numerics while accruing
different simulated cost -- exactly the porting situation of the paper.
"""

from repro.mas.constants import PhysicsParams
from repro.mas.stretch import cluster_spacing, geometric_spacing, uniform_spacing
from repro.mas.grid import LocalGrid, SphericalGrid
from repro.mas.state import MhdState
from repro.mas.model import MasModel, ModelConfig, StepTiming, NOMINAL_SHAPE_PAPER
from repro.mas.validate import compare_states, max_rel_diff, states_equivalent
from repro.mas.checkpoint import load_checkpoint, read_info, save_checkpoint
from repro.mas.history import EnergyBudget, RunHistory, model_energy_budget
from repro.mas.fieldlines import FieldLineFate, FieldLineTracer

__all__ = [
    "PhysicsParams",
    "geometric_spacing",
    "uniform_spacing",
    "cluster_spacing",
    "SphericalGrid",
    "LocalGrid",
    "MhdState",
    "MasModel",
    "ModelConfig",
    "StepTiming",
    "NOMINAL_SHAPE_PAPER",
    "compare_states",
    "max_rel_diff",
    "states_equivalent",
    "save_checkpoint",
    "load_checkpoint",
    "read_info",
    "RunHistory",
    "EnergyBudget",
    "model_energy_budget",
    "FieldLineTracer",
    "FieldLineFate",
]
