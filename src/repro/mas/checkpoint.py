"""Checkpoint / restart: save and restore a run's physical state.

MAS production runs write HDF5 restarts (the synthetic codebase's
``write_restart`` with its ``update host`` directives); here we persist
the per-rank state arrays plus enough metadata to refuse mismatched
restores. The simulated-performance state (clocks, counters) is *not*
checkpointed -- a restarted run measures fresh, exactly like a restarted
MAS run does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.mas.model import MasModel
from repro.mas.state import ALL_FIELDS, stagger_axis

#: Format version for forward-compat checks.
CHECKPOINT_FORMAT = 1


class CheckpointError(RuntimeError):
    """Raised when a restart file cannot be applied to a model."""


def _jsonable(v):
    """float / (B,) array / None -> a JSON-serializable value."""
    if v is None:
        return None
    if isinstance(v, np.ndarray):
        return [float(x) for x in v]
    return float(v)


def _from_jsonable(v):
    """Inverse of :func:`_jsonable` (lists come back as (B,) arrays)."""
    if v is None:
        return None
    if isinstance(v, list):
        return np.asarray(v, dtype=float)
    return float(v)


@dataclass(frozen=True, slots=True)
class CheckpointInfo:
    """Metadata stored alongside the arrays."""

    format: int
    shape: tuple[int, int, int]
    num_ranks: int
    #: Simulated time; a length-B list for ensemble runs (members advance
    #: under their own CFL steps).
    time: float | list
    steps_taken: int
    #: Timestep controller state (the dt growth limiter's memory); None in
    #: a never-stepped model, a length-B list for ensemble runs.
    last_dt: float | list | None = None
    #: Ensemble batch size the run was checkpointed at (1 = scalar).
    ensemble_size: int = 1
    #: Array dtype name; restores refuse a silent cast.
    dtype: str = "float64"
    #: Stagger axis per field name (None = cell-centered), so a restore
    #: can verify the staggering convention instead of trusting shapes.
    stagger: dict | None = None

    def to_json(self) -> str:
        """Serialize for embedding in the npz."""
        return json.dumps(
            {
                "format": self.format,
                "shape": list(self.shape),
                "num_ranks": self.num_ranks,
                "time": self.time,
                "steps_taken": self.steps_taken,
                "last_dt": self.last_dt,
                "ensemble_size": self.ensemble_size,
                "dtype": self.dtype,
                "stagger": self.stagger,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "CheckpointInfo":
        """Inverse of :meth:`to_json`."""
        d = json.loads(text)
        return cls(
            format=d["format"],
            shape=tuple(d["shape"]),
            num_ranks=d["num_ranks"],
            time=d["time"],
            steps_taken=d["steps_taken"],
            last_dt=d.get("last_dt"),
            ensemble_size=d.get("ensemble_size", 1),
            dtype=d.get("dtype", "float64"),
            stagger=d.get("stagger"),
        )


def save_checkpoint(model: MasModel, path: str | Path) -> CheckpointInfo:
    """Write the model's physical state to an ``.npz`` file.

    Under manual data management this is where MAS pays ``update host``
    transfers for every array; the simulated cost is charged to the rank
    clocks (category D2H) so checkpoint cadence shows up in timings.
    """
    info = CheckpointInfo(
        format=CHECKPOINT_FORMAT,
        shape=model.config.shape,
        num_ranks=model.config.num_ranks,
        time=_jsonable(model.time),
        steps_taken=model.steps_taken,
        last_dt=_jsonable(model._last_dt),
        ensemble_size=model.config.ensemble_size,
        dtype=str(model.states[0].rho.dtype.name),
        stagger={name: stagger_axis(name) for name in ALL_FIELDS},
    )
    arrays: dict[str, np.ndarray] = {"_meta": np.frombuffer(info.to_json().encode(), dtype=np.uint8)}
    for r, state in enumerate(model.states):
        for name in ALL_FIELDS:
            arrays[f"rank{r}_{name}"] = state.get(name)
        # the I/O path copies every field to the host first
        for name in ALL_FIELDS:
            model.ranks[r].update_host(name)
    np.savez_compressed(Path(path), **arrays)
    return info


def read_info(path: str | Path) -> CheckpointInfo:
    """Read only the metadata of a checkpoint."""
    with np.load(Path(path)) as data:
        if "_meta" not in data:
            raise CheckpointError(f"{path}: not a repro checkpoint")
        info = CheckpointInfo.from_json(bytes(data["_meta"]).decode())
    if info.format != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: format {info.format}, this build reads {CHECKPOINT_FORMAT}"
        )
    return info


def load_checkpoint(model: MasModel, path: str | Path) -> CheckpointInfo:
    """Restore a model's physical state in place.

    The model must have been built with the same grid shape and rank
    count; restores into a mismatched configuration are refused.
    """
    info = read_info(path)
    if info.shape != model.config.shape:
        raise CheckpointError(
            f"checkpoint grid {info.shape} != model grid {model.config.shape}"
        )
    if info.num_ranks != model.config.num_ranks:
        raise CheckpointError(
            f"checkpoint has {info.num_ranks} ranks, model has {model.config.num_ranks}"
        )
    if info.ensemble_size != model.config.ensemble_size:
        raise CheckpointError(
            f"checkpoint has {info.ensemble_size} ensemble member(s), "
            f"model has {model.config.ensemble_size}"
        )
    if info.stagger is not None:
        for name in ALL_FIELDS:
            if info.stagger.get(name) != stagger_axis(name):
                raise CheckpointError(
                    f"{name}: checkpoint stagger axis {info.stagger.get(name)} "
                    f"!= this build's {stagger_axis(name)}"
                )
    with np.load(Path(path)) as data:
        for r, state in enumerate(model.states):
            for name in ALL_FIELDS:
                key = f"rank{r}_{name}"
                if key not in data:
                    raise CheckpointError(f"{path}: missing array {key}")
                arr = data[key]
                target = state.get(name)
                if arr.shape != target.shape:
                    raise CheckpointError(
                        f"{key}: shape {arr.shape} != expected {target.shape}"
                    )
                if arr.dtype != target.dtype:
                    raise CheckpointError(
                        f"{key}: dtype {arr.dtype} != expected {target.dtype}"
                    )
                target[:] = arr
            # restart pushes everything back to the device
            for name in ALL_FIELDS:
                model.ranks[r].update_device(name)
    model.time = _from_jsonable(info.time)
    model.steps_taken = info.steps_taken
    model._last_dt = _from_jsonable(info.last_dt)
    return info
