"""Checkpoint / restart: save and restore a run's physical state.

MAS production runs write HDF5 restarts (the synthetic codebase's
``write_restart`` with its ``update host`` directives); here we persist
the per-rank state arrays plus enough metadata to refuse mismatched
restores. The simulated-performance state (clocks, counters) is *not*
checkpointed -- a restarted run measures fresh, exactly like a restarted
MAS run does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.mas.model import MasModel
from repro.mas.state import ALL_FIELDS

#: Format version for forward-compat checks.
CHECKPOINT_FORMAT = 1


class CheckpointError(RuntimeError):
    """Raised when a restart file cannot be applied to a model."""


@dataclass(frozen=True, slots=True)
class CheckpointInfo:
    """Metadata stored alongside the arrays."""

    format: int
    shape: tuple[int, int, int]
    num_ranks: int
    time: float
    steps_taken: int
    #: Timestep controller state (the dt growth limiter's memory); None in
    #: a never-stepped model.
    last_dt: float | None = None

    def to_json(self) -> str:
        """Serialize for embedding in the npz."""
        return json.dumps(
            {
                "format": self.format,
                "shape": list(self.shape),
                "num_ranks": self.num_ranks,
                "time": self.time,
                "steps_taken": self.steps_taken,
                "last_dt": self.last_dt,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "CheckpointInfo":
        """Inverse of :meth:`to_json`."""
        d = json.loads(text)
        return cls(
            format=d["format"],
            shape=tuple(d["shape"]),
            num_ranks=d["num_ranks"],
            time=d["time"],
            steps_taken=d["steps_taken"],
            last_dt=d.get("last_dt"),
        )


def save_checkpoint(model: MasModel, path: str | Path) -> CheckpointInfo:
    """Write the model's physical state to an ``.npz`` file.

    Under manual data management this is where MAS pays ``update host``
    transfers for every array; the simulated cost is charged to the rank
    clocks (category D2H) so checkpoint cadence shows up in timings.
    """
    info = CheckpointInfo(
        format=CHECKPOINT_FORMAT,
        shape=model.config.shape,
        num_ranks=model.config.num_ranks,
        time=model.time,
        steps_taken=model.steps_taken,
        last_dt=model._last_dt,
    )
    arrays: dict[str, np.ndarray] = {"_meta": np.frombuffer(info.to_json().encode(), dtype=np.uint8)}
    for r, state in enumerate(model.states):
        for name in ALL_FIELDS:
            arrays[f"rank{r}_{name}"] = state.get(name)
        # the I/O path copies every field to the host first
        for name in ALL_FIELDS:
            model.ranks[r].update_host(name)
    np.savez_compressed(Path(path), **arrays)
    return info


def read_info(path: str | Path) -> CheckpointInfo:
    """Read only the metadata of a checkpoint."""
    with np.load(Path(path)) as data:
        if "_meta" not in data:
            raise CheckpointError(f"{path}: not a repro checkpoint")
        info = CheckpointInfo.from_json(bytes(data["_meta"]).decode())
    if info.format != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: format {info.format}, this build reads {CHECKPOINT_FORMAT}"
        )
    return info


def load_checkpoint(model: MasModel, path: str | Path) -> CheckpointInfo:
    """Restore a model's physical state in place.

    The model must have been built with the same grid shape and rank
    count; restores into a mismatched configuration are refused.
    """
    info = read_info(path)
    if info.shape != model.config.shape:
        raise CheckpointError(
            f"checkpoint grid {info.shape} != model grid {model.config.shape}"
        )
    if info.num_ranks != model.config.num_ranks:
        raise CheckpointError(
            f"checkpoint has {info.num_ranks} ranks, model has {model.config.num_ranks}"
        )
    with np.load(Path(path)) as data:
        for r, state in enumerate(model.states):
            for name in ALL_FIELDS:
                key = f"rank{r}_{name}"
                if key not in data:
                    raise CheckpointError(f"{path}: missing array {key}")
                arr = data[key]
                target = state.get(name)
                if arr.shape != target.shape:
                    raise CheckpointError(
                        f"{key}: shape {arr.shape} != expected {target.shape}"
                    )
                target[:] = arr
            # restart pushes everything back to the device
            for name in ALL_FIELDS:
                model.ranks[r].update_device(name)
    model.time = info.time
    model.steps_taken = info.steps_taken
    model._last_dt = info.last_dt
    return info
