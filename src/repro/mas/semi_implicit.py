"""Semi-implicit wave stabilization (the Mikic/Linker operator).

MAS combines explicit and implicit time stepping (SIII): besides the
implicit viscosity, a semi-implicit operator smooths the velocity update
so the step is not limited by the fastest wave CFL. We implement the
classic reduced form: after the explicit momentum predictor, solve

    (I - theta * (c_max * dt)^2 * Lap) v_new = v*

per component -- an SPD system sharing the PCG/Jacobi machinery of the
viscosity solve. The operator damps exactly the wave modes the explicit
step cannot resolve; as dt -> 0 it reduces to the identity.
"""

from __future__ import annotations

import numpy as np

from repro.mas.grid import LocalGrid
from repro.mas.operators import diffuse_flux_div
from repro.mas.viscosity import jacobi_diagonal


def si_coefficient(
    c_max: float | np.ndarray, dt: float | np.ndarray, theta: float = 1.0
):
    """Effective diffusivity of the semi-implicit operator.

    ``theta`` ~ 1 stabilizes the full wave CFL; larger values over-smooth,
    0 disables the operator. Per-member (array) wave speeds and steps
    yield a per-member coefficient.
    """
    if np.any(np.asarray(c_max) < 0) or np.any(np.asarray(dt) < 0):
        raise ValueError("wave speed and dt must be non-negative")
    if theta < 0:
        raise ValueError("theta cannot be negative")
    if isinstance(c_max, np.ndarray) or isinstance(dt, np.ndarray):
        return theta * (c_max * dt) ** 2 / np.maximum(dt, 1e-300)
    return theta * (c_max * dt) ** 2 / max(dt, 1e-300)


def si_matvec(
    v: np.ndarray,
    grid: LocalGrid,
    coeff: float | np.ndarray,
    dt: float | np.ndarray,
) -> np.ndarray:
    """Apply (I - dt * coeff * Lap) -- same SPD shape as the viscous
    backward-Euler operator (coeff plays the role of a viscosity)."""
    if np.any(np.asarray(coeff) < 0) or np.any(np.asarray(dt) < 0):
        raise ValueError("coefficient and dt must be non-negative")
    return v - dt * coeff * diffuse_flux_div(v, grid)


def si_diagonal(
    grid: LocalGrid, coeff: float | np.ndarray, dt: float | np.ndarray
) -> np.ndarray:
    """Jacobi diagonal of the semi-implicit operator."""
    return jacobi_diagonal(grid, coeff, dt)


def max_wave_speed(state, grid: LocalGrid, params) -> float | np.ndarray:
    """Fast magnetosonic estimate over the interior (per rank).

    Batched states yield a per-member ``(B,)`` array (max over the
    spatial axes only); scalar states keep the float return.
    """
    from repro.mas.operators import face_to_center

    i = grid.interior()
    bcr, bct, bcp = face_to_center(state.br, state.bt, state.bp)
    rho = np.maximum(state.rho[i], params.rho_floor)
    va2 = (bcr[i] ** 2 + bct[i] ** 2 + bcp[i] ** 2) / rho
    cs2 = params.sound_speed_sq(np.maximum(state.temp[i], params.temp_floor))
    speed = np.sqrt(va2 + cs2)
    if speed.ndim == 3:
        return float(speed.max())
    return speed.max(axis=(-3, -2, -1))
