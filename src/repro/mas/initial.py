"""Initial conditions: stratified corona threaded by a dipole field.

The magnetic field is initialized from the vector potential of a dipole,
circulated around faces exactly as the CT update circulates EMFs -- so the
initial discrete div(B) is zero to machine precision and stays zero.

The plasma starts as a hydrostatic-like stratified atmosphere with a
small solar-wind-ish radial outflow seed, the generic quasi-steady coronal
background setup of the paper's test case (SV-A, ref [26]).
"""

from __future__ import annotations

import numpy as np

from repro.mas.constants import PhysicsParams
from repro.mas.grid import LocalGrid
from repro.mas.state import MhdState


def dipole_faces(
    grid: LocalGrid, moment: float = 1.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Face-averaged dipole field from the vector potential A_phi.

    A_phi = m sin(theta) / r^2 gives B_r = 2 m cos(theta)/r^3,
    B_theta = m sin(theta)/r^3. Circulating A around each face yields the
    exact face-averaged flux, hence machine-zero discrete divergence.
    """
    re = grid.re[:, None]
    te = grid.te[None, :]
    # A_phi * l_phi on the (r-edge, theta-edge) lattice; the phi edge length
    # is r sin(t) dphi, so A.l = m sin^2(t)/r * dphi.
    a_lp = moment * np.sin(te) ** 2 / re  # (nrg+1, ntg+1), per unit dphi
    dphi = grid.dp[None, None, :]

    # Br * area_r = + d(A_phi l_phi)/dtheta  (circulation around r-face)
    circ_r = np.diff(a_lp, axis=1)[:, :, None] * dphi
    br = circ_r / grid.area_r
    # Bt * area_t = - d(A_phi l_phi)/dr      (circulation around t-face)
    circ_t = -np.diff(a_lp, axis=0)[:, :, None] * dphi
    bt = circ_t / grid.area_t
    bp = np.zeros(grid.face_shape(2))
    return br, bt, bp


def stratified_atmosphere(
    grid: LocalGrid, params: PhysicsParams
) -> tuple[np.ndarray, np.ndarray]:
    """(rho, T) of an isothermal-ish hydrostatic corona.

    rho(r) = exp(lambda (1/r - 1)) with lambda = gravity / T0; T uniform.
    Not an exact numerical equilibrium (the relaxation run *is* the
    experiment), but close enough that the explicit advance is stable from
    step one.
    """
    t0 = 1.0
    lam = params.gravity / t0
    rho = np.exp(lam * (1.0 / grid.rc - 1.0))[:, None, None] * np.ones(grid.shape)
    temp = np.full(grid.shape, t0)
    return rho, np.ascontiguousarray(temp)


def wind_seed(grid: LocalGrid, amplitude: float = 1.0e-3) -> np.ndarray:
    """Small radial outflow seed, ramping up away from the surface."""
    prof = amplitude * (1.0 - 1.0 / grid.rc)  # zero at r=1
    return prof[:, None, None] * np.ones(grid.shape)


def initialize(
    grid: LocalGrid,
    params: PhysicsParams,
    *,
    b0: float = 1.0,
    perturbation: float = 0.02,
) -> MhdState:
    """Build the full initial state for one rank.

    ``perturbation`` adds a low-order longitudinal density modulation so
    the problem is genuinely 3-D (an axisymmetric dipole would leave the
    phi dynamics at roundoff level), mirroring the paper's test case which
    uses an observed, non-axisymmetric magnetic map.
    """
    state = MhdState.allocate(grid)
    rho, temp = stratified_atmosphere(grid, params)
    if perturbation:
        mod = 1.0 + perturbation * (
            np.cos(2.0 * grid.pc)[None, None, :]
            * np.sin(grid.tc)[None, :, None]
            * np.ones((grid.shape[0], 1, 1))
        )
        rho = rho * mod
    state.rho[:] = rho
    state.temp[:] = temp
    state.vr[:] = wind_seed(grid)
    br, bt, bp = dipole_faces(grid, moment=b0)
    state.br[:] = br
    state.bt[:] = bt
    state.bp[:] = bp
    return state
