"""Deterministic RNG plumbing.

Everything stochastic in the reproduction (synthetic codebase layout, MHD
initial perturbations, load-imbalance jitter) flows from named, seeded
generators so every table and figure regenerates bit-identically.
"""

from __future__ import annotations

import zlib

import numpy as np

#: Root seed for the whole reproduction. Changing it changes cosmetic
#: details (e.g. which synthetic module a loop lands in) but must not change
#: any headline number; tests enforce that invariance for the metrics layer.
ROOT_SEED = 0x4D41_5320  # "MAS "


def make_rng(name: str, seed: int = ROOT_SEED) -> np.random.Generator:
    """Create a generator whose stream is a pure function of (seed, name)."""
    if not name:
        raise ValueError("rng name must be non-empty")
    tag = zlib.crc32(name.encode("utf-8"))
    return np.random.default_rng(np.random.SeedSequence([seed, tag]))


def spawn_rngs(name: str, n: int, seed: int = ROOT_SEED) -> list[np.random.Generator]:
    """Create ``n`` independent child generators (e.g. one per MPI rank)."""
    if n < 0:
        raise ValueError("cannot spawn a negative number of generators")
    tag = zlib.crc32(name.encode("utf-8"))
    seq = np.random.SeedSequence([seed, tag])
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def member_rng(name: str, member: int, seed: int = ROOT_SEED) -> np.random.Generator:
    """The RNG stream of ONE ensemble member.

    Seed derivation: the stream of member ``b`` is
    ``SeedSequence(entropy=[seed, crc32(name)], spawn_key=(b,))`` -- the
    same child that ``SeedSequence([seed, crc32(name)]).spawn(n)[b]``
    yields for any ``n > b``.  Consequences, both load-bearing for
    ensemble reproducibility:

    - *independence*: members never share or overlap streams, so a
      batched B-member run draws exactly what B serial runs would;
    - *member-count stability*: member 3's stream is identical in a
      4-member and an 8-member sweep, so widening an ensemble never
      perturbs existing members.
    """
    if not name:
        raise ValueError("rng name must be non-empty")
    if member < 0:
        raise ValueError("member index cannot be negative")
    tag = zlib.crc32(name.encode("utf-8"))
    seq = np.random.SeedSequence(entropy=[seed, tag], spawn_key=(member,))
    return np.random.default_rng(seq)


def member_rngs(
    name: str, members: int, seed: int = ROOT_SEED
) -> list[np.random.Generator]:
    """One independent stream per ensemble member (see :func:`member_rng`)."""
    if members < 0:
        raise ValueError("cannot create a negative number of generators")
    return [member_rng(name, b, seed) for b in range(members)]
