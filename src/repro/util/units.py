"""Unit constants and human-readable formatting.

The paper mixes decimal (GB/s memory bandwidth) and binary (GiB/s, 40GB HBM)
units; keeping both explicit avoids the classic 7% calibration error.
"""

from __future__ import annotations

from dataclasses import dataclass

# Decimal (SI) byte units -- used for bandwidths quoted by vendors.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Binary byte units -- used for memory capacities and some CPU bandwidths.
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30
TiB = 1 << 40

#: Seconds in a minute (wall-clock tables in the paper are in minutes).
MINUTE = 60.0


def minutes(m: float) -> float:
    """Convert minutes to seconds (the simulator's base time unit)."""
    return m * MINUTE


def seconds_to_minutes(s: float) -> float:
    """Convert seconds to minutes for paper-style reporting."""
    return s / MINUTE


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``1.50 GiB``."""
    n = float(n)
    for suffix, unit in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= unit:
            return f"{n / unit:.2f} {suffix}"
    return f"{n:.0f} B"


def fmt_rate(bytes_per_s: float) -> str:
    """Format a bandwidth in decimal units, e.g. ``1555.0 GB/s``."""
    return f"{bytes_per_s / GB:.1f} GB/s"


def fmt_duration(seconds: float) -> str:
    """Format a duration adaptively (us / ms / s / min)."""
    s = float(seconds)
    if s < 0:
        return "-" + fmt_duration(-s)
    if s < 1e-3:
        return f"{s * 1e6:.1f} us"
    if s < 1.0:
        return f"{s * 1e3:.2f} ms"
    if s < MINUTE:
        return f"{s:.2f} s"
    return f"{s / MINUTE:.2f} min"


@dataclass(frozen=True, slots=True)
class Quantity:
    """A value with a unit label, for self-describing experiment outputs.

    Comparisons and arithmetic are intentionally not implemented: a Quantity
    is a *report-layer* object. Unwrap ``.value`` for math.
    """

    value: float
    unit: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.value:g} {self.unit}"

    def rounded(self, ndigits: int = 2) -> "Quantity":
        """Return a copy with ``value`` rounded for table display."""
        return Quantity(round(self.value, ndigits), self.unit)
