"""ASCII renderings of the paper's figures.

Three renderers cover everything the evaluation section plots:

* :class:`AsciiLinePlot` -- log-log scaling curves (Fig. 2).
* :class:`AsciiBarChart` -- stacked wall/MPI bars (Fig. 3).
* :class:`AsciiTimeline` -- NSIGHT-style event lanes (Fig. 4).

These are presentation-layer only; the underlying numbers always come from
`repro.experiments` so they can be asserted in tests independent of
rendering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


@dataclass(slots=True)
class _Series:
    label: str
    xs: list[float]
    ys: list[float]
    marker: str


class AsciiLinePlot:
    """A log-log (or linear) multi-series line plot drawn with characters."""

    def __init__(
        self,
        *,
        width: int = 72,
        height: int = 24,
        logx: bool = True,
        logy: bool = True,
        title: str = "",
        xlabel: str = "",
        ylabel: str = "",
    ) -> None:
        if width < 16 or height < 8:
            raise ValueError("plot area too small to be legible")
        self.width = width
        self.height = height
        self.logx = logx
        self.logy = logy
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self._series: list[_Series] = []

    _MARKERS = "ox+*#@%&"

    def add_series(
        self, label: str, xs: Sequence[float], ys: Sequence[float], marker: str | None = None
    ) -> None:
        """Add one labelled series; x and y must be positive when log-scaled."""
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if not xs:
            raise ValueError("empty series")
        if self.logx and min(xs) <= 0:
            raise ValueError("log-x plot requires positive x values")
        if self.logy and min(ys) <= 0:
            raise ValueError("log-y plot requires positive y values")
        if marker is None:
            marker = self._MARKERS[len(self._series) % len(self._MARKERS)]
        self._series.append(_Series(label, list(map(float, xs)), list(map(float, ys)), marker))

    def _tx(self, v: float) -> float:
        return math.log10(v) if self.logx else v

    def _ty(self, v: float) -> float:
        return math.log10(v) if self.logy else v

    def render(self) -> str:
        """Render all series onto one character grid with a legend."""
        if not self._series:
            raise ValueError("nothing to plot")
        xs_all = [self._tx(x) for s in self._series for x in s.xs]
        ys_all = [self._ty(y) for s in self._series for y in s.ys]
        x0, x1 = min(xs_all), max(xs_all)
        y0, y1 = min(ys_all), max(ys_all)
        if x1 == x0:
            x1 = x0 + 1.0
        if y1 == y0:
            y1 = y0 + 1.0

        grid = [[" "] * self.width for _ in range(self.height)]

        def place(x: float, y: float, ch: str) -> None:
            col = round((self._tx(x) - x0) / (x1 - x0) * (self.width - 1))
            row = round((self._ty(y) - y0) / (y1 - y0) * (self.height - 1))
            grid[self.height - 1 - row][col] = ch

        for s in self._series:
            # connect consecutive points with interpolated dots, then markers
            for (xa, ya), (xb, yb) in zip(zip(s.xs, s.ys), zip(s.xs[1:], s.ys[1:])):
                steps = self.width // max(1, len(s.xs) - 1)
                for i in range(1, steps):
                    f = i / steps
                    xi = 10 ** ((1 - f) * self._tx(xa) + f * self._tx(xb)) if self.logx else (
                        (1 - f) * xa + f * xb
                    )
                    yi = 10 ** ((1 - f) * self._ty(ya) + f * self._ty(yb)) if self.logy else (
                        (1 - f) * ya + f * yb
                    )
                    place(xi, yi, ".")
            for x, y in zip(s.xs, s.ys):
                place(x, y, s.marker)

        lines = []
        if self.title:
            lines.append(self.title.center(self.width + 2))
        for row in grid:
            lines.append("|" + "".join(row) + "|")
        lines.append("+" + "-" * self.width + "+")
        if self.xlabel:
            lines.append(self.xlabel.center(self.width + 2))
        lines.append("legend: " + "  ".join(f"{s.marker}={s.label}" for s in self._series))
        if self.ylabel:
            lines.insert(1 if self.title else 0, f"[y: {self.ylabel}]")
        return "\n".join(lines)


class AsciiBarChart:
    """Grouped, optionally-stacked horizontal bar chart (for Fig. 3).

    Each group is one code version; each group holds (segment label, value)
    pairs that are stacked left-to-right with distinct fill characters.
    """

    _FILLS = "#=+*~%o"

    def __init__(self, *, width: int = 60, title: str = "", unit: str = "") -> None:
        self.width = width
        self.title = title
        self.unit = unit
        self._groups: list[tuple[str, list[tuple[str, float]]]] = []

    def add_group(self, label: str, segments: Sequence[tuple[str, float]]) -> None:
        """Add one bar made of stacked (label, value) segments."""
        for name, v in segments:
            if v < 0:
                raise ValueError(f"negative segment {name!r}: {v}")
        self._groups.append((label, [(str(n), float(v)) for n, v in segments]))

    def render(self) -> str:
        """Render the chart with a shared scale across groups."""
        if not self._groups:
            raise ValueError("nothing to chart")
        totals = [sum(v for _, v in segs) for _, segs in self._groups]
        vmax = max(totals) or 1.0
        label_w = max(len(lbl) for lbl, _ in self._groups)
        seg_names: list[str] = []
        for _, segs in self._groups:
            for name, _ in segs:
                if name not in seg_names:
                    seg_names.append(name)
        fills = {name: self._FILLS[i % len(self._FILLS)] for i, name in enumerate(seg_names)}

        lines = []
        if self.title:
            lines.append(self.title)
        for (label, segs), total in zip(self._groups, totals):
            bar = ""
            for name, v in segs:
                n = round(v / vmax * self.width)
                bar += fills[name] * n
            lines.append(f"{label.rjust(label_w)} |{bar}  {total:.1f} {self.unit}".rstrip())
        lines.append(
            "legend: " + "  ".join(f"{fills[n]}={n}" for n in seg_names)
        )
        return "\n".join(lines)


@dataclass(slots=True)
class TimelineEvent:
    """One box on a timeline lane: [start, end) with a category glyph."""

    lane: str
    start: float
    end: float
    category: str

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("event ends before it starts")


class AsciiTimeline:
    """NSIGHT-Systems-like lane rendering of profiler events (Fig. 4)."""

    _GLYPHS = {
        "kernel": "K",
        "p2p": "P",
        "h2d": "^",
        "d2h": "v",
        "mpi_wait": "w",
        "um_fault": "F",
        "idle": " ",
        "host": "h",
    }

    def __init__(self, *, width: int = 100, title: str = "") -> None:
        self.width = width
        self.title = title
        self._events: list[TimelineEvent] = []

    def add_event(self, lane: str, start: float, end: float, category: str) -> None:
        """Record one event; unknown categories render as '?'."""
        self._events.append(TimelineEvent(lane, start, end, category))

    def render(self, *, t0: float | None = None, t1: float | None = None) -> str:
        """Render lanes over the [t0, t1] window (defaults: full extent)."""
        if not self._events:
            raise ValueError("no events to render")
        if t0 is None:
            t0 = min(e.start for e in self._events)
        if t1 is None:
            t1 = max(e.end for e in self._events)
        if t1 <= t0:
            t1 = t0 + 1e-12
        lanes: dict[str, list[TimelineEvent]] = {}
        for e in self._events:
            lanes.setdefault(e.lane, []).append(e)
        lane_w = max(len(name) for name in lanes)

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(
            " " * (lane_w + 2)
            + f"t={t0:.4g}s".ljust(self.width // 2)
            + f"t={t1:.4g}s".rjust(self.width - self.width // 2)
        )
        for name in sorted(lanes):
            row = [" "] * self.width
            for e in sorted(lanes[name], key=lambda ev: ev.start):
                if e.end <= t0 or e.start >= t1:
                    continue
                c0 = int((max(e.start, t0) - t0) / (t1 - t0) * self.width)
                c1 = int((min(e.end, t1) - t0) / (t1 - t0) * self.width)
                glyph = self._GLYPHS.get(e.category, "?")
                for c in range(c0, max(c0 + 1, c1)):
                    if c < self.width:
                        row[c] = glyph
            lines.append(f"{name.rjust(lane_w)} |" + "".join(row))
        used = {e.category for e in self._events}
        lines.append(
            "legend: "
            + "  ".join(f"{self._GLYPHS.get(c, '?')}={c}" for c in sorted(used) if c != "idle")
        )
        return "\n".join(lines)


class AsciiHeatmap:
    """2-D scalar field rendering with a density ramp (for Fig. 1's cuts).

    Values map onto a dark-to-bright character ramp; optional row/column
    coordinate labels mark the physical axes.
    """

    RAMP = " .:-=+*#%@"

    def __init__(self, *, width: int = 72, title: str = "") -> None:
        if width < 8:
            raise ValueError("heatmap too narrow to be legible")
        self.width = width
        self.title = title

    def render(
        self,
        values,
        *,
        row_labels=None,
        col_axis: str = "",
        vmin: float | None = None,
        vmax: float | None = None,
    ) -> str:
        """Render a 2-D array (rows x cols), resampled to the width."""
        import numpy as np

        a = np.asarray(values, dtype=float)
        if a.ndim != 2:
            raise ValueError("heatmap needs a 2-D array")
        if not np.isfinite(a).all():
            raise ValueError("heatmap values must be finite")
        lo = float(a.min()) if vmin is None else vmin
        hi = float(a.max()) if vmax is None else vmax
        if hi <= lo:
            hi = lo + 1.0
        # nearest-neighbour resample columns onto the character width
        cols = np.linspace(0, a.shape[1] - 1, self.width).round().astype(int)
        lines = []
        if self.title:
            lines.append(self.title)
        for r in range(a.shape[0]):
            row = a[r, cols]
            idx = ((row - lo) / (hi - lo) * (len(self.RAMP) - 1)).clip(
                0, len(self.RAMP) - 1
            )
            text = "".join(self.RAMP[int(i)] for i in idx)
            label = ""
            if row_labels is not None:
                label = f"{row_labels[r]:>8} "
            lines.append(f"{label}|{text}|")
        if col_axis:
            pad = " " * (9 if row_labels is not None else 0)
            lines.append(pad + col_axis.center(self.width + 2))
        lines.append(
            f"scale: '{self.RAMP[0]}'={lo:.3g}  ..  '{self.RAMP[-1]}'={hi:.3g}"
        )
        return "\n".join(lines)
