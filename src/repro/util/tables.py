"""Minimal monospace table renderer for experiment output.

The benchmark harness prints paper-style tables (Table I, II, III) to stdout;
this renderer keeps them aligned without pulling in external dependencies.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class Table:
    """An append-only table with a header row and aligned column rendering.

    >>> t = Table(["code", "wall (min)"], title="Table III")
    >>> t.add_row(["1 (A)", 725.54])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(
        self,
        columns: Sequence[str],
        *,
        title: str | None = None,
        align: Sequence[str] | None = None,
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        if align is None:
            align = ["l"] + ["r"] * (len(columns) - 1)
        if len(align) != len(columns):
            raise ValueError("align must have one entry per column")
        for a in align:
            if a not in ("l", "r", "c"):
                raise ValueError(f"unknown alignment {a!r}")
        self.align = list(align)
        self._rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        """Append a row; values are stringified with float rounding."""
        cells = [self._fmt(v) for v in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append(cells)

    @staticmethod
    def _fmt(v: Any) -> str:
        if isinstance(v, bool):
            return "yes" if v else "no"
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    @property
    def rows(self) -> list[list[str]]:
        """Rendered string cells (copy; mutation does not affect the table)."""
        return [list(r) for r in self._rows]

    def render(self) -> str:
        """Render the table as a monospace string block."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            out = []
            for cell, w, a in zip(cells, widths, self.align):
                if a == "l":
                    out.append(cell.ljust(w))
                elif a == "r":
                    out.append(cell.rjust(w))
                else:
                    out.append(cell.center(w))
            return "| " + " | ".join(out) + " |"

        sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.columns))
        lines.append(sep)
        lines.extend(fmt_row(r) for r in self._rows)
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as simple CSV (no quoting of embedded commas needed here)."""
        out = [",".join(self.columns)]
        out.extend(",".join(r) for r in self._rows)
        return "\n".join(out)
