"""Shared utilities: units, table rendering, ASCII plotting, seeded RNG.

These are deliberately dependency-light helpers used by every other
subsystem. Nothing in here knows about MHD, GPUs, or Fortran.
"""

from repro.util.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    Quantity,
    fmt_bytes,
    fmt_duration,
    fmt_rate,
    minutes,
    seconds_to_minutes,
)
from repro.util.tables import Table
from repro.util.ascii_plot import AsciiBarChart, AsciiLinePlot, AsciiTimeline
from repro.util.rng import make_rng, spawn_rngs

__all__ = [
    "GB",
    "GiB",
    "KB",
    "KiB",
    "MB",
    "MiB",
    "Quantity",
    "fmt_bytes",
    "fmt_duration",
    "fmt_rate",
    "minutes",
    "seconds_to_minutes",
    "Table",
    "AsciiBarChart",
    "AsciiLinePlot",
    "AsciiTimeline",
    "make_rng",
    "spawn_rngs",
]
