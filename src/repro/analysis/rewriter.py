"""Conflict-aware application of fix edit sets to a codebase.

:func:`apply_fixes` is the only thing that ever turns a
:class:`~repro.analysis.fixes.Fix` into mutated source.  Its contract:

* **dedup** -- identical edits (two findings proposing the same repair,
  e.g. UM201+UM202 both covering one array) collapse to one application;
* **conflict detection** -- two *different* edits touching overlapping
  line ranges are refused as a pair: the first (in deterministic order)
  wins, the loser is reported in :attr:`ApplyReport.conflicts`;
* **stable anchoring** -- an edit only applies while the lines it was
  derived against are still there (``TextEdit.anchor``); anything else
  is skipped as stale, never mis-applied at a shifted offset;
* **idempotence** -- applying the same fix set twice is a no-op: the
  second pass finds every anchor gone (the repair replaced it) and skips.
  ``tests/analysis/test_rewriter.py`` asserts all four properties.

Application order is bottom-up per file so earlier edits never shift the
line numbers later edits were computed against.  When a telemetry
session is active the counters ``fix_edits_applied_total{rule}``,
``fix_conflicts_total`` and ``fix_stale_total`` record what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.fixes import Fix, TextEdit
from repro.fortran.source import Codebase


@dataclass(slots=True)
class ApplyReport:
    """What one :func:`apply_fixes` call did."""

    applied: list[TextEdit] = field(default_factory=list)
    skipped_stale: list[TextEdit] = field(default_factory=list)
    conflicts: list[tuple[TextEdit, TextEdit]] = field(default_factory=list)
    deduped: int = 0

    @property
    def clean(self) -> bool:
        """Every edit applied: nothing stale, nothing conflicting."""
        return not self.skipped_stale and not self.conflicts

    def summary(self) -> str:
        parts = [f"{len(self.applied)} edits applied"]
        if self.deduped:
            parts.append(f"{self.deduped} duplicates merged")
        if self.conflicts:
            parts.append(f"{len(self.conflicts)} conflicts refused")
        if self.skipped_stale:
            parts.append(f"{len(self.skipped_stale)} stale edits skipped")
        return ", ".join(parts)


def _overlaps(a: TextEdit, b: TextEdit) -> bool:
    """True when two distinct edits cannot both apply.

    Replacement ranges conflict when they intersect.  An insertion
    conflicts with a replacement that deletes the line it anchors to
    (strictly inside or at the start of the deleted range), but two
    insertions at the same point coexist, and an insertion exactly at
    the first deleted line of a replacement is ambiguous -- refused.
    """
    if a.is_insertion and b.is_insertion:
        return False
    if a.is_insertion or b.is_insertion:
        ins, rep = (a, b) if a.is_insertion else (b, a)
        return rep.start <= ins.start <= rep.end
    return a.start <= b.end and b.start <= a.end


def _anchored(cb: Codebase, edit: TextEdit) -> bool:
    """Anchor lines still present exactly where the edit expects them."""
    try:
        lines = cb.file(edit.file).lines
    except KeyError:
        return False
    if edit.is_insertion:
        if not edit.anchor:
            return edit.start <= len(lines)
        return (edit.start < len(lines)
                and (lines[edit.start],) == edit.anchor)
    if edit.end >= len(lines):
        return False
    if not edit.anchor:  # anchorless (e.g. read back from SARIF): bounds only
        return True
    return tuple(lines[edit.start : edit.end + 1]) == edit.anchor


def _record(rule_of: dict[TextEdit, str], report: ApplyReport) -> None:
    """Bump the fix-application telemetry counters (no-op when disabled)."""
    from repro.obs import current

    tel = current()
    if not tel.enabled:
        return
    applied = tel.metrics.counter(
        "fix_edits_applied_total", "fix edits applied by rule",
        labelnames=("rule",),
    )
    for e in report.applied:
        applied.labels(rule=rule_of.get(e, "unknown")).inc()
    if report.conflicts:
        tel.metrics.counter(
            "fix_conflicts_total", "overlapping fix edits refused"
        ).inc(len(report.conflicts))
    if report.skipped_stale:
        tel.metrics.counter(
            "fix_stale_total", "fix edits skipped on stale anchors"
        ).inc(len(report.skipped_stale))


def apply_fixes(cb: Codebase, fixes: list[Fix]) -> ApplyReport:
    """Apply every applicable fix edit to ``cb`` in place."""
    report = ApplyReport()
    rule_of: dict[TextEdit, str] = {}
    unique: list[TextEdit] = []
    seen: set[TextEdit] = set()
    for fx in fixes:
        for e in fx.edits:
            if e in seen:
                report.deduped += 1
                continue
            seen.add(e)
            rule_of[e] = fx.rule_id
            unique.append(e)

    by_file: dict[str, list[TextEdit]] = {}
    for e in unique:
        by_file.setdefault(e.file, []).append(e)

    for fname in sorted(by_file):
        edits = sorted(
            by_file[fname],
            key=lambda e: (e.start, e.end, e.replacement),
        )
        # conflict pass against the edits already accepted for this file
        accepted: list[TextEdit] = []
        for e in edits:
            clash = next((a for a in accepted if _overlaps(a, e)), None)
            if clash is not None:
                report.conflicts.append((clash, e))
                continue
            accepted.append(e)
        # anchor pass against the *pre-application* file state (all edits
        # were computed against it), then bottom-up application
        anchored = []
        for e in accepted:
            (anchored if _anchored(cb, e) else report.skipped_stale).append(e)
        for e in sorted(anchored, key=lambda e: (e.start, e.end), reverse=True):
            lines = cb.file(e.file).lines
            lines[e.start : e.end + 1] = list(e.replacement)
            report.applied.append(e)

    _record(rule_of, report)
    return report


def apply_finding_fixes(cb: Codebase, findings: list) -> ApplyReport:
    """Apply the fixes attached to a finding list (unfixed ones skipped)."""
    return apply_fixes(cb, [f.fix for f in findings if f.fix is not None])
