"""Static + runtime DC-safety analysis (see docs/ANALYSIS.md).

Only the pure, dependency-light core is imported eagerly here:
``repro.runtime`` imports :mod:`repro.analysis.dependence` for its hazard
logic, so this package's ``__init__`` must not import back into the
runtime (or anything that does). Front ends are explicit imports:

* ``repro.analysis.fortran_lint`` -- static analyzer over Fortran sources;
* ``repro.analysis.shadow`` -- runtime shadow checker for the dispatcher;
* ``repro.analysis.report`` -- findings table / JSON / SARIF exporters;
* ``repro.analysis.fixtures`` -- seeded-bug and clean test corpora.
"""

from repro.analysis.dependence import Hazard, depends, hazards_between
from repro.analysis.findings import (
    Finding,
    Rule,
    RULES,
    Severity,
    count_by_severity,
    max_severity,
    sort_findings,
)

__all__ = [
    "Hazard",
    "depends",
    "hazards_between",
    "Finding",
    "Rule",
    "RULES",
    "Severity",
    "count_by_severity",
    "max_severity",
    "sort_findings",
]
