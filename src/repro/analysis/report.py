"""Finding exporters: terminal table, JSON, and SARIF 2.1.0.

The SARIF export is the CI-facing artifact: GitHub's code-scanning upload
and most editors consume it directly, so ``repro lint --sarif out.sarif``
is all a pipeline needs to annotate a PR with analyzer findings.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.analysis.findings import (
    Finding,
    RULES,
    count_by_severity,
    sort_findings,
)


def render_findings(findings: Iterable[Finding]) -> str:
    """Severity-ranked table plus a one-line summary."""
    from repro.util.tables import Table

    ranked = sort_findings(findings)
    if not ranked:
        return "no findings"
    t = Table(["severity", "rule", "location", "message"])
    for f in ranked:
        loc = f"{f.file}:{f.line}" if f.line else f.file
        t.add_row([f.severity.name.lower(), f.rule_id, loc, f.message])
    counts = count_by_severity(ranked)
    summary = ", ".join(
        f"{n} {name.lower()}{'s' if n != 1 else ''}"
        for name, n in counts.items()
        if n
    )
    return t.render() + f"\n{len(ranked)} findings: {summary}"


def findings_to_json(findings: Iterable[Finding]) -> str:
    """Machine-readable dump (stable ordering)."""
    ranked = sort_findings(findings)
    payload = {
        "findings": [
            {
                "rule": f.rule_id,
                "severity": f.severity.name.lower(),
                "title": f.rule.title,
                "file": f.file,
                "line": f.line,
                "message": f.message,
                **({"context": f.context} if f.context else {}),
            }
            for f in ranked
        ],
        "counts": {
            k.lower(): v for k, v in count_by_severity(ranked).items()
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def findings_to_sarif(
    findings: Iterable[Finding], *, tool_version: str = "1.0"
) -> str:
    """Minimal valid SARIF 2.1.0 log with one run."""
    ranked = sort_findings(findings)
    used_rules = sorted({f.rule_id for f in ranked})
    rules = [
        {
            "id": rid,
            "name": RULES[rid].title.title().replace(" ", ""),
            "shortDescription": {"text": RULES[rid].title},
            "fullDescription": {"text": RULES[rid].summary},
            "defaultConfiguration": {
                "level": RULES[rid].severity.sarif_level
            },
        }
        for rid in used_rules
    ]
    rule_index = {rid: i for i, rid in enumerate(used_rules)}
    results = []
    for f in ranked:
        result = {
            "ruleId": f.rule_id,
            "ruleIndex": rule_index[f.rule_id],
            "level": f.severity.sarif_level,
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.file},
                        "region": {"startLine": max(f.line, 1)},
                    }
                }
            ],
        }
        results.append(result)
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
