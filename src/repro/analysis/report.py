"""Finding exporters: terminal table, JSON, and SARIF 2.1.0.

The SARIF export is the CI-facing artifact: GitHub's code-scanning upload
and most editors consume it directly, so ``repro lint --sarif out.sarif``
is all a pipeline needs to annotate a PR with analyzer findings.  Findings
carrying a :class:`~repro.analysis.fixes.Fix` export it under SARIF's
``fixes`` property (``artifactChanges``/``replacements``), so the CI
artifact ships the machine-applicable patches too;
:func:`sarif_to_edits` is the matching minimal reader, used by the
round-trip regression test and by anyone consuming the artifact outside
this repo.

Exports are byte-stable: findings are fully ordered
(:func:`~repro.analysis.findings.sort_findings`), dictionaries are
serialized with sorted keys, and nothing time- or environment-dependent
is embedded.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.analysis.findings import (
    Finding,
    RULES,
    count_by_severity,
    sort_findings,
)


def render_findings(findings: Iterable[Finding]) -> str:
    """Severity-ranked table plus a one-line summary."""
    from repro.util.tables import Table

    ranked = sort_findings(findings)
    if not ranked:
        return "no findings"
    t = Table(["severity", "rule", "location", "message"])
    for f in ranked:
        loc = f"{f.file}:{f.line}" if f.line else f.file
        t.add_row([f.severity.name.lower(), f.rule_id, loc, f.message])
    counts = count_by_severity(ranked)
    summary = ", ".join(
        f"{n} {name.lower()}{'s' if n != 1 else ''}"
        for name, n in counts.items()
        if n
    )
    return t.render() + f"\n{len(ranked)} findings: {summary}"


def findings_to_json(findings: Iterable[Finding]) -> str:
    """Machine-readable dump (stable ordering)."""
    ranked = sort_findings(findings)
    payload = {
        "findings": [
            {
                "rule": f.rule_id,
                "severity": f.severity.name.lower(),
                "title": f.rule.title,
                "file": f.file,
                "line": f.line,
                "message": f.message,
                **({"context": f.context} if f.context else {}),
                **(
                    {
                        "related": [
                            {"file": r.file, "line": r.line,
                             "message": r.message}
                            for r in f.related
                        ]
                    }
                    if f.related
                    else {}
                ),
            }
            for f in ranked
        ],
        "counts": {
            k.lower(): v for k, v in count_by_severity(ranked).items()
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_replacement(edit) -> dict:
    """One SARIF ``replacement`` for a line-based :class:`TextEdit`.

    Deletions/replacements use a whole-line ``deletedRegion``; pure
    insertions use the zero-width region convention (``startColumn ==
    endColumn == 1`` on the line the text lands in front of).
    """
    if edit.is_insertion:
        region = {
            "startLine": edit.start + 1,
            "startColumn": 1,
            "endLine": edit.start + 1,
            "endColumn": 1,
        }
    else:
        region = {"startLine": edit.start + 1, "endLine": edit.end + 1}
    rep: dict = {"deletedRegion": region}
    if edit.replacement:
        rep["insertedContent"] = {"text": "\n".join(edit.replacement) + "\n"}
    return rep


def _sarif_fix(fix) -> dict:
    """SARIF ``fix`` object: description plus per-file artifact changes."""
    by_file: dict[str, list] = {}
    for e in fix.edits:
        by_file.setdefault(e.file, []).append(e)
    return {
        "description": {"text": fix.description},
        "artifactChanges": [
            {
                "artifactLocation": {"uri": fname},
                "replacements": [_sarif_replacement(e) for e in edits],
            }
            for fname, edits in sorted(by_file.items())
        ],
    }


def findings_to_sarif(
    findings: Iterable[Finding], *, tool_version: str = "1.0"
) -> str:
    """Minimal valid SARIF 2.1.0 log with one run."""
    ranked = sort_findings(findings)
    used_rules = sorted({f.rule_id for f in ranked})
    rules = [
        {
            "id": rid,
            "name": RULES[rid].title.title().replace(" ", ""),
            "shortDescription": {"text": RULES[rid].title},
            "fullDescription": {"text": RULES[rid].summary},
            "defaultConfiguration": {
                "level": RULES[rid].severity.sarif_level
            },
        }
        for rid in used_rules
    ]
    rule_index = {rid: i for i, rid in enumerate(used_rules)}
    results = []
    for f in ranked:
        result = {
            "ruleId": f.rule_id,
            "ruleIndex": rule_index[f.rule_id],
            "level": f.severity.sarif_level,
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.file},
                        "region": {"startLine": max(f.line, 1)},
                    }
                }
            ],
        }
        if f.related:
            result["relatedLocations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": r.file},
                        "region": {"startLine": max(r.line, 1)},
                    },
                    **({"message": {"text": r.message}} if r.message else {}),
                }
                for r in f.related
            ]
        if f.fix is not None:
            result["fixes"] = [_sarif_fix(f.fix)]
        results.append(result)
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def sarif_to_edits(sarif_text: str) -> list:
    """Minimal SARIF ``fixes`` reader: parse back the edits we export.

    Returns the :class:`~repro.analysis.fixes.TextEdit` list encoded in a
    log produced by :func:`findings_to_sarif` (anchors are not encoded in
    SARIF, so the returned edits carry empty anchors and apply
    unconditionally).  Used by the round-trip regression test: export,
    re-read, apply, and the re-lint must come back clean.
    """
    from repro.analysis.fixes import TextEdit

    log = json.loads(sarif_text)
    edits: list[TextEdit] = []
    seen: set[tuple] = set()
    for run in log.get("runs", []):
        for result in run.get("results", []):
            for fix in result.get("fixes", []):
                for change in fix.get("artifactChanges", []):
                    uri = change["artifactLocation"]["uri"]
                    for rep in change.get("replacements", []):
                        region = rep["deletedRegion"]
                        start = region["startLine"] - 1
                        inserted = rep.get("insertedContent", {}).get(
                            "text", ""
                        )
                        repl = (
                            tuple(inserted.split("\n")[:-1])
                            if inserted
                            else ()
                        )
                        zero_width = (
                            region.get("startColumn") == 1
                            and region.get("endColumn") == 1
                            and region.get("endLine") == region["startLine"]
                        )
                        end = start - 1 if zero_width else region["endLine"] - 1
                        key = (uri, start, end, repl)
                        if key in seen:
                            continue
                        seen.add(key)
                        edits.append(
                            TextEdit(
                                file=uri, start=start, end=end,
                                replacement=repl,
                            )
                        )
    return edits


def sarif_to_findings(sarif_text: str) -> list[Finding]:
    """Minimal SARIF ``results`` reader: the inverse of
    :func:`findings_to_sarif` for the fields findings render with
    (rule/file/line/message) plus ``relatedLocations``.  Fixes are
    recovered separately by :func:`sarif_to_edits`; anchors and context
    are not encoded in SARIF and come back empty.  Used by the
    round-trip regression test: export, re-read, and the related
    evidence locations must survive unchanged.
    """
    from repro.analysis.findings import RelatedLocation

    log = json.loads(sarif_text)
    out: list[Finding] = []
    for run in log.get("runs", []):
        for result in run.get("results", []):
            locs = result.get("locations", [])
            phys = locs[0].get("physicalLocation", {}) if locs else {}
            related = tuple(
                RelatedLocation(
                    file=r.get("physicalLocation", {})
                    .get("artifactLocation", {})
                    .get("uri", ""),
                    line=r.get("physicalLocation", {})
                    .get("region", {})
                    .get("startLine", 0),
                    message=r.get("message", {}).get("text", ""),
                )
                for r in result.get("relatedLocations", [])
            )
            out.append(
                Finding(
                    rule_id=result.get("ruleId", ""),
                    file=phys.get("artifactLocation", {}).get("uri", ""),
                    line=phys.get("region", {}).get("startLine", 0),
                    message=result.get("message", {}).get("text", ""),
                    related=related,
                )
            )
    return out


def explain_rule(rule_id: str) -> str:
    """Human-readable catalog entry for ``repro lint --explain RULE``."""
    from repro.analysis.fixes import FIXABLE_RULES

    rule = RULES.get(rule_id.upper())
    if rule is None:
        known = ", ".join(sorted(RULES))
        return f"unknown rule {rule_id!r}; known rules: {known}"
    lines = [
        f"{rule.id}: {rule.title}",
        f"  severity:  {rule.severity.name.lower()}",
        f"  auto-fix:  {'yes (repro lint --fix)' if rule.id in FIXABLE_RULES else 'no (report-only)'}",
        f"  suppress:  !repro: disable={rule.id} on the flagged line",
        "",
        f"  {rule.summary}",
    ]
    catalog = _catalog_entry(rule.id)
    if catalog:
        lines += ["", "  from docs/ANALYSIS.md:", f"    {catalog}"]
    return "\n".join(lines)


def _catalog_entry(rule_id: str) -> str:
    """The rule's row in the docs/ANALYSIS.md catalog table, if present."""
    from pathlib import Path

    doc = Path(__file__).resolve().parents[3] / "docs" / "ANALYSIS.md"
    try:
        text = doc.read_text()
    except OSError:
        return ""
    for line in text.splitlines():
        if line.lstrip().startswith(f"| {rule_id}"):
            cells = [c.strip() for c in line.strip().strip("|").split("|")]
            return " -- ".join(c.replace("`", "") for c in cells if c)
    return ""
