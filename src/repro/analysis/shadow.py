"""Runtime shadow checker: validates KernelSpecs against reality.

Attached to a :class:`~repro.runtime.dispatcher.RankRuntime`, the checker
watches every dispatch and produces the ``RT3xx`` findings:

* **residency** (``RT301``/``RT302``): every declared read/write must name
  a registered array, and in MANUAL data mode must be device-resident at
  launch (the ``default(present)`` failure the paper keeps to catch);
* **races** (``RT310``): kernels in flight on *different* async queues
  whose declared footprints carry a RAW/WAR/WAW hazard with no intervening
  wait -- the bug class async(1)/async(2) splitting introduces;
* **footprint drift** (``RT320``/``RT321``): when a spec carries a numpy
  body, the checker fingerprints every materialized array before and after
  the body runs; mutations outside ``writes`` are undeclared writes, and
  declared writes that never change are drift that inflates dependence
  edges (fusion barriers, race edges) downstream.

The checker is *opt-in*: the dispatcher holds ``None`` by default and the
hot path costs a single attribute test (same discipline as the telemetry
no-op; the disabled overhead is asserted <1% in ``tests/analysis`` and
recorded in ``BENCH_lint.json``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analysis.dependence import base_name, hazards_between
from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.data_env import DataEnvironment
    from repro.runtime.kernel import KernelSpec


def _fingerprint(data: Any) -> bytes:
    """Cheap content hash of one numpy array."""
    h = hashlib.blake2b(digest_size=16)
    h.update(data.tobytes())
    return h.digest()


@dataclass(slots=True)
class _InFlight:
    """One launched-but-not-synced kernel on an async queue."""

    name: str
    queue: int
    reads: tuple[str, ...]
    writes: tuple[str, ...]


@dataclass(slots=True)
class ShadowChecker:
    """Dispatcher-attached validator producing RT3xx findings."""

    check_residency: bool = True
    check_races: bool = True
    check_footprint: bool = True
    #: In-flight window; real queues are bounded, and an unbounded window
    #: would accumulate stale race edges across waits the model layer
    #: performs implicitly (CPU fallbacks, region flushes).
    max_in_flight: int = 64
    findings: list[Finding] = field(default_factory=list)
    _in_flight: list[_InFlight] = field(default_factory=list)
    _seen: set[tuple] = field(default_factory=set)
    #: (kernel, array) -> was the declared write ever observed to change
    #: the array? Aggregated so idempotent writes (ghost refills with
    #: identical values) don't read as drift; RT321 fires at report().
    _write_obs: dict = field(default_factory=dict)

    # -- findings plumbing ---------------------------------------------------

    def _emit(
        self, rule_id: str, message: str, *, site: str, context: str = ""
    ) -> None:
        key = (rule_id, site, message)
        if key in self._seen:
            return  # same kernel/pattern every step: report once
        self._seen.add(key)
        self.findings.append(Finding(rule_id, site, 0, message, context=context))

    # -- dispatcher hooks ----------------------------------------------------

    def on_launch(
        self,
        spec: "KernelSpec",
        env: "DataEnvironment",
        *,
        async_launch: bool,
        queue: int | None = None,
    ) -> None:
        """Validate one kernel at its dispatch point."""
        from repro.runtime.data_env import DataMode

        if self.check_residency:
            for name in spec.arrays:
                if name not in env:
                    self._emit(
                        "RT301",
                        f"kernel declares {name!r}, which is not registered "
                        "in the data environment",
                        site=spec.name,
                        context=name,
                    )
                elif env.mode is DataMode.MANUAL and not env.is_present(name):
                    self._emit(
                        "RT302",
                        f"kernel launched while {name!r} is not device-"
                        "resident (manual data mode)",
                        site=spec.name,
                        context=name,
                    )
        if self.check_races:
            q = queue if queue is not None else _queue_of(spec)
            if async_launch:
                for other in self._in_flight:
                    if other.queue == q:
                        continue  # same queue serializes
                    hz = hazards_between(
                        other.reads, other.writes, spec.reads, spec.writes
                    )
                    if hz:
                        kinds = "/".join(sorted(h.name for h in hz))
                        self._emit(
                            "RT310",
                            f"{kinds} hazard with {other.name!r} in flight on "
                            f"queue {other.queue} (this kernel is on queue "
                            f"{q}) with no intervening wait",
                            site=spec.name,
                            context=f"async:{q}",
                        )
                self._in_flight.append(
                    _InFlight(spec.name, q, spec.reads, spec.writes)
                )
                if len(self._in_flight) > self.max_in_flight:
                    del self._in_flight[0]

    def run_body(self, spec: "KernelSpec", env: "DataEnvironment") -> Any:
        """Run the spec's body, fingerprinting materialized arrays around it."""
        if not self.check_footprint or spec.body is None:
            return spec.run_body()
        tracked: dict[str, bytes] = {}
        for name in env.names():
            data = env.array(name).data
            if data is not None:
                tracked[name] = _fingerprint(data)
        result = spec.run_body()
        # Footprints are per logical array; region-qualified write tokens
        # ("rho@g2m") declare a write to their base array.
        declared_writes = {base_name(w) for w in spec.writes}
        changed: set[str] = set()
        for name, before in tracked.items():
            data = env.array(name).data
            if data is not None and _fingerprint(data) != before:
                changed.add(name)
        # Undeclared mutations are only attributable when every declared
        # write is backed by tracked storage. A spec writing an *untracked*
        # logical array (data=None) may legitimately reach it through
        # aliased storage -- e.g. the PCG iterate "pcg_p" IS the velocity
        # array at test scale, exactly as MAS solves in place -- so a
        # tracked array changing there is not evidence of a bad spec.
        aliasing_possible = any(
            name in env and env.array(name).data is None
            for name in declared_writes
        )
        if not aliasing_possible:
            for name in sorted(changed - declared_writes):
                self._emit(
                    "RT320",
                    f"body mutated {name!r}, which the spec does not declare "
                    "in writes",
                    site=spec.name,
                    context=name,
                )
        for name in declared_writes & set(tracked):
            key = (spec.name, name)
            self._write_obs[key] = self._write_obs.get(key, False) or (
                name in changed
            )
        return result

    def sync(self, queue: int | None = None) -> None:
        """A wait: retire in-flight kernels (all queues, or one)."""
        if queue is None:
            self._in_flight.clear()
        else:
            self._in_flight = [f for f in self._in_flight if f.queue != queue]

    # -- reporting -----------------------------------------------------------

    def report(self, *, source: str = "runtime") -> list[Finding]:
        """Severity-ranked findings; bumps lint_findings_total.

        Folds in the aggregated footprint-drift notes: a declared write
        that *no* launch of a kernel ever performed is drift (RT321);
        one that changed the array at least once is live.
        """
        from repro.analysis.findings import record_findings, sort_findings

        for (kernel, name), ever_changed in sorted(self._write_obs.items()):
            if not ever_changed:
                self._emit(
                    "RT321",
                    f"spec declares a write to {name!r} no launch ever "
                    "performed",
                    site=kernel,
                    context=name,
                )
        out = sort_findings(self.findings)
        record_findings(out, source=source)
        return out


def _queue_of(spec: "KernelSpec") -> int:
    """Async queue id from an ``async:N`` tag (0 = the default queue)."""
    for tag in spec.tags:
        if tag.startswith("async:"):
            try:
                return int(tag.split(":", 1)[1])
            except ValueError:
                return 0
    return 0


def shadow_smoke(version: str = "A", steps: int = 2) -> list[Finding]:
    """Run a tiny model with the shadow checker attached; return findings.

    The ``repro lint --runtime`` entry point: a clean model must produce
    zero findings, which is exactly what makes the checker useful as a CI
    gate for future KernelSpec edits.
    """
    from repro.codes import CodeVersion, runtime_config_for
    from repro.mas.model import MasModel, ModelConfig

    cfg = ModelConfig(
        shape=(8, 6, 8), num_ranks=2, pcg_iters=2, sts_stages=2,
        extra_model_arrays=0,
    )
    model = MasModel(cfg, runtime_config_for(CodeVersion[version]))
    checkers = []
    for rt in model.ranks:
        checker = ShadowChecker()
        rt.attach_shadow(checker)
        checkers.append(checker)
    model.run(steps)
    findings: list[Finding] = []
    for checker in checkers:
        findings.extend(checker.report(source=f"shadow:{version}"))
    # Ranks run the same kernels; identical findings collapse to one.
    return list(dict.fromkeys(findings))
