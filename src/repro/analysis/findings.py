"""Finding/rule vocabulary shared by both analyzer front ends.

Rule IDs are stable identifiers (used in suppressions, SARIF output, CI
gates and the telemetry counter ``lint_findings_total{rule,severity}``):

* ``DC0xx`` -- loop-level `do concurrent` safety (dependences, reductions,
  privatization) from the static Fortran front end;
* ``ACC1xx`` -- directive hygiene (orphan end/continuation/wait);
* ``UM2xx`` -- data-region coverage (implicit unified-memory traffic risk,
  the Fig. 4 pathology);
* ``RT3xx`` -- runtime shadow-checker findings (residency, races,
  footprint drift).

The full catalog with paper grounding lives in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.analysis.fixes import Fix


class Severity(enum.IntEnum):
    """Finding severity; integer order supports ``--fail-on`` thresholds."""

    NOTE = 1
    WARNING = 2
    ERROR = 3

    @property
    def sarif_level(self) -> str:
        return {Severity.NOTE: "note", Severity.WARNING: "warning",
                Severity.ERROR: "error"}[self]


@dataclass(frozen=True, slots=True)
class Rule:
    """One analyzer rule: stable id, severity, and human description."""

    id: str
    title: str
    severity: Severity
    summary: str


_RULES = [
    # -- do concurrent safety (static) --------------------------------------
    Rule("DC001", "loop-carried dependence", Severity.ERROR,
         "Array read/written at shifted indices across parallel iterations; "
         "the loop cannot be expressed as do concurrent without restructuring."),
    Rule("DC002", "undeclared reduction", Severity.ERROR,
         "Scalar accumulated across iterations without a reduction/reduce "
         "clause; nvfortran silently races without reduce() (Listing 3)."),
    Rule("DC003", "unprotected shared write", Severity.ERROR,
         "Array element written by multiple parallel iterations with no "
         "atomic protection and no reduction clause."),
    Rule("DC004", "scalar needs privatization", Severity.WARNING,
         "Scalar read before assignment inside the loop; needs local()/ "
         "private semantics or hoisting to be DC-safe."),
    Rule("DC005", "indirect write unprovable", Severity.NOTE,
         "Write through an index lookup table; safety depends on the table "
         "being a permutation, which static analysis cannot prove."),
    Rule("DC006", "dependent nests share a region", Severity.WARNING,
         "Two loop nests inside one parallel region have a RAW/WAR/WAW "
         "hazard; splitting the region changes synchronization."),
    # -- directive hygiene ---------------------------------------------------
    Rule("ACC101", "orphan region end", Severity.ERROR,
         "acc end directive with no matching region start."),
    Rule("ACC102", "orphan continuation", Severity.ERROR,
         "acc continuation line (!$acc&) not preceded by a directive."),
    Rule("ACC103", "wait on idle queue", Severity.WARNING,
         "acc wait names an async queue no kernel in the file launches on."),
    # -- data-region / unified-memory coverage -------------------------------
    Rule("UM201", "region array not in any data region", Severity.WARNING,
         "Device region touches an array managed elsewhere by enter data, "
         "but this array is never entered: implicit UM paging risk (Fig. 4)."),
    Rule("UM202", "exit without enter", Severity.WARNING,
         "exit data deletes/copies out an array no enter data or declare "
         "created."),
    Rule("UM203", "update host without enter", Severity.WARNING,
         "update host reads back an array that was never entered or "
         "declared; on a non-UM build this is stale or fails."),
    # -- real-Fortran front end ----------------------------------------------
    Rule("FE001", "unsupported construct", Severity.NOTE,
         "The real-Fortran front end could not lower this construct into "
         "the analyzable IR; it was degraded to opaque lines (excluded "
         "from loop analysis) rather than crashing the run."),
    # -- interprocedural (call-graph summaries) ------------------------------
    Rule("IP101", "impure call in parallel region", Severity.ERROR,
         "Call site inside a do concurrent/parallel region invokes a "
         "routine the summary proves impure (I/O, stop, global allocate) "
         "or merely not declared pure; do concurrent requires pure "
         "procedures, and the fix-it adds the attribute when the summary "
         "proves it safe."),
    Rule("IP102", "module variable written through call", Severity.ERROR,
         "Callee (transitively) writes a module variable: a hidden "
         "loop-carried dependence invisible to per-loop analysis; the "
         "region races when parallelized."),
    Rule("IP103", "aliased actual arguments", Severity.ERROR,
         "Two actual arguments share storage while the callee writes at "
         "least one of the corresponding dummies; Fortran argument "
         "aliasing rules make this undefined."),
    Rule("IP104", "intent mismatch or missing intent", Severity.WARNING,
         "Dummy argument's declared intent contradicts the observed "
         "reads/writes, or a routine called from a parallel region leaves "
         "intent undeclared; the fix-it writes the inferred intent."),
    # -- runtime shadow checker ----------------------------------------------
    Rule("RT301", "unknown array in kernel spec", Severity.ERROR,
         "KernelSpec reads/writes an array the DataEnvironment never "
         "registered."),
    Rule("RT302", "array not resident at launch", Severity.ERROR,
         "Kernel launched while a declared array is not device-resident in "
         "MANUAL data mode (would hard-fail on a real GPU, Listing 1)."),
    Rule("RT310", "cross-queue race", Severity.ERROR,
         "Kernels in flight on different async queues overlap with a "
         "RAW/WAR/WAW hazard and no intervening wait."),
    Rule("RT320", "undeclared write", Severity.ERROR,
         "Kernel body mutated an array its spec does not declare in "
         "writes; the fusion planner and race detector reason from specs."),
    Rule("RT321", "declared write untouched", Severity.NOTE,
         "Kernel spec declares a write the numpy body never performed: "
         "footprint drift inflates dependence edges and fusion barriers."),
]

RULES: Mapping[str, Rule] = {r.id: r for r in _RULES}


@dataclass(frozen=True, slots=True)
class RelatedLocation:
    """A secondary source location a finding points at (SARIF
    ``relatedLocations``): the callee definition an IP finding blames, the
    sibling nest a DC006 hazard pairs with. ``line`` is 1-based."""

    file: str
    line: int
    message: str = ""


@dataclass(frozen=True, slots=True)
class Finding:
    """One analyzer finding, anchored to a file/line or runtime site.

    ``line`` is 1-based (0 for runtime findings with no source anchor).
    ``context`` carries the symbol (array/scalar) the finding is about,
    when there is one -- fix generation keys off it instead of parsing
    messages back apart. ``fix`` is an optional machine-applicable repair
    (:class:`repro.analysis.fixes.Fix`), attached by
    :func:`repro.analysis.fixes.attach_fixes` and exported in SARIF.
    ``related`` carries cross-file evidence locations (the callee an IP
    rule blames, a sibling loop nest), exported as SARIF
    ``relatedLocations``.
    """

    rule_id: str
    file: str
    line: int
    message: str
    context: str = ""
    fix: "Fix | None" = None
    related: tuple[RelatedLocation, ...] = ()

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def render(self) -> str:
        loc = f"{self.file}:{self.line}" if self.line else self.file
        return f"{self.rule_id} [{self.severity.name.lower()}] {loc}: {self.message}"


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Severity-ranked (worst first), then (file, line, rule, message).

    The tiebreak chain is total over every field a finding renders with,
    so two runs over the same input produce byte-identical JSON/SARIF
    exports (asserted by the determinism regression test).
    """
    return sorted(
        findings,
        key=lambda f: (-int(f.severity), f.file, f.line, f.rule_id, f.message),
    )


def count_by_severity(findings: Iterable[Finding]) -> dict[str, int]:
    out = {s.name: 0 for s in sorted(Severity, reverse=True)}
    for f in findings:
        out[f.severity.name] += 1
    return out


def max_severity(findings: Iterable[Finding]) -> Severity | None:
    sevs = [f.severity for f in findings]
    return max(sevs) if sevs else None


def record_findings(findings: Iterable[Finding], *, source: str) -> None:
    """Bump ``lint_findings_total{rule,severity,source}`` for each finding.

    No-op outside an active telemetry session (the registry no-op pattern).
    """
    from repro.obs import current

    tel = current()
    if not tel.enabled:
        return
    counter = tel.metrics.counter(
        "lint_findings_total",
        "analyzer findings by rule and severity",
        labelnames=("rule", "severity", "source"),
    )
    for f in findings:
        counter.labels(
            rule=f.rule_id, severity=f.severity.name.lower(), source=source
        ).inc()
