"""Static DC-safety lint over the Fortran subset the transforms rewrite.

Three layers of checks, all producing :class:`~repro.analysis.findings.Finding`:

1. **Loop units** (``DC0xx``): every OpenACC parallel region's loop nests
   and every free-standing ``do concurrent`` loop is run through the
   shared dependence core (:func:`repro.analysis.dependence.analyze_loop_body`)
   to find loop-carried dependences, undeclared reductions, unprotected
   shared writes, scalars needing privatization, and indirect writes whose
   safety is unprovable.
2. **Directive hygiene** (``ACC1xx``): orphan region ends, stray
   continuation lines, waits naming async queues nothing launches on.
3. **Data-region coverage** (``UM2xx``): in a manually-managed codebase
   (one using ``enter data``), arrays that exit/update-host without ever
   being entered, and device regions touching arrays the data directives
   manage elsewhere but never entered here -- the implicit-UM-traffic risk
   behind the paper's Fig. 4 pathology.

:func:`region_port_safety` distills a region's loop reports into the
port/don't-port vocabulary the transform pipelines use, so tests can
assert the transforms and the analyzer agree on every region.
"""

from __future__ import annotations

import enum
import fnmatch
import re
from dataclasses import dataclass, field

from repro.analysis.dependence import LoopReport, Statement, analyze_loop_body, depends
from repro.analysis.findings import Finding, RelatedLocation
from repro.fortran.directives import (
    DirectiveKind,
    is_directive_line,
    parse_directive,
)
from repro.fortran.lexer import LineKind, classify_line
from repro.fortran.parser import (
    ParallelRegion,
    RegionKind,
    find_parallel_regions,
    parse_loop_nest,
)
from repro.fortran.source import Codebase, SourceFile

_REDUCTION_CLAUSE_RE = re.compile(
    r"\b(?:reduction|reduce)\s*\(\s*[^:)]+:\s*([^)]*)\)", re.I
)
_LOCAL_CLAUSE_RE = re.compile(r"\blocal\s*\(\s*([^)]*)\)", re.I)
_PRIVATE_CLAUSE_RE = re.compile(r"\bprivate\s*\(\s*([^)]*)\)", re.I)
_ASYNC_RE = re.compile(r"\basync\s*\(\s*(\w+)\s*\)", re.I)
_WAIT_RE = re.compile(r"^wait\s*(?:\(\s*([\w,\s]+)\s*\))?", re.I)
_DC_HEADER_RE = re.compile(r"^\s*do\s+concurrent\s*\(", re.I)
#: Data-directive clauses and the role they give their arrays.
_DATA_CLAUSE_RE = re.compile(
    r"\b(copyin|copyout|copy|create|delete|present|device|host|self|use_device)"
    r"\s*\(\s*([^)]*)\)",
    re.I,
)


@dataclass(frozen=True, slots=True)
class LintConfig:
    """What to check and what to keep quiet about."""

    disabled_rules: frozenset[str] = frozenset()
    #: ``(rule_id, file_glob)`` pairs; matching findings are dropped.
    suppressions: tuple[tuple[str, str], ...] = ()

    def allows(self, finding: Finding) -> bool:
        if finding.rule_id in self.disabled_rules:
            return False
        for rule_id, pattern in self.suppressions:
            if rule_id == finding.rule_id and fnmatch.fnmatch(finding.file, pattern):
                return False
        return True


@dataclass(slots=True)
class LoopUnit:
    """One analyzable parallel loop: an ACC-region nest or a DC loop."""

    file: SourceFile
    header_line: int            # 0-based line of the do / do concurrent
    indices: list[str]
    statements: list[Statement]
    reductions: list[str]
    locals_declared: list[str]
    report: LoopReport | None = field(default=None)

    def analyze(self) -> LoopReport:
        if self.report is None:
            self.report = analyze_loop_body(
                self.statements,
                self.indices,
                declared_reductions=self.reductions,
                locals_declared=self.locals_declared,
            )
        return self.report


def _clause_arrays(text: str) -> list[str]:
    """Array names from a data clause argument list (``a(:)`` -> ``a``,
    ``dt%arr`` kept whole)."""
    out = []
    for part in text.split(","):
        name = part.strip().split("(")[0].strip().lower()
        if name:
            out.append(name)
    return out


def _gather_statements(
    file: SourceFile, first: int, last: int
) -> list[Statement]:
    """Assignment-candidate statements in [first, last], with atomic flags."""
    out = []
    prev_atomic = False
    for i in range(first, last + 1):
        line = file.lines[i]
        kind = classify_line(line)
        if kind is LineKind.DIRECTIVE:
            d = parse_directive(line)
            prev_atomic = d.kind is DirectiveKind.ATOMIC
            continue
        if kind is LineKind.STATEMENT:
            out.append(Statement(line=i, text=line, protected=prev_atomic))
        prev_atomic = False
    return out


def _region_clause_vars(file: SourceFile, region: ParallelRegion, pattern: re.Pattern) -> list[str]:
    out: list[str] = []
    for i in region.directive_lines:
        for m in pattern.finditer(file.lines[i]):
            out.extend(_clause_arrays(m.group(1)))
    return out


def _split_paren_args(header: str) -> tuple[str, str]:
    """Split ``do concurrent (args) trailing`` -> (args, trailing)."""
    start = header.index("(")
    depth = 0
    for i in range(start, len(header)):
        if header[i] == "(":
            depth += 1
        elif header[i] == ")":
            depth -= 1
            if depth == 0:
                return header[start + 1 : i], header[i + 1 :]
    raise ValueError(f"unbalanced parens in DC header: {header!r}")


def _dc_units(file: SourceFile) -> list[LoopUnit]:
    """Free-standing ``do concurrent`` loops as analyzable units.

    Nested DC loops become their own units too; an outer unit's statement
    list includes the inner loops' statements (its iterations race on
    them just the same).
    """
    units: list[LoopUnit] = []
    lines = file.lines
    for i, line in enumerate(lines):
        if classify_line(line) is not LineKind.DO_CONCURRENT:
            continue
        args, trailing = _split_paren_args(line)
        indices = []
        for part in args.split(","):
            name = part.split("=")[0].strip().lower()
            if name:
                indices.append(name)
        reductions, locals_declared = [], []
        for m in _REDUCTION_CLAUSE_RE.finditer(trailing):
            reductions.extend(_clause_arrays(m.group(1)))
        for m in _LOCAL_CLAUSE_RE.finditer(trailing):
            locals_declared.extend(_clause_arrays(m.group(1)))
        # walk to the matching enddo
        level, j = 1, i + 1
        while j < len(lines) and level:
            k = classify_line(lines[j])
            if k in (LineKind.DO, LineKind.DO_CONCURRENT):
                level += 1
            elif k is LineKind.ENDDO:
                level -= 1
            j += 1
        end = j - 1
        units.append(
            LoopUnit(
                file=file,
                header_line=i,
                indices=indices,
                statements=_gather_statements(file, i + 1, end - 1),
                reductions=reductions,
                locals_declared=locals_declared,
            )
        )
    return units


def _region_units(file: SourceFile, region: ParallelRegion) -> list[LoopUnit]:
    """One unit per do-nest of an OpenACC parallel region."""
    reductions = _region_clause_vars(file, region, _REDUCTION_CLAUSE_RE)
    privates = _region_clause_vars(file, region, _PRIVATE_CLAUSE_RE)
    units = []
    for nest in region.loops:
        first, last = nest.body_range
        units.append(
            LoopUnit(
                file=file,
                header_line=nest.start,
                indices=[v.lower() for v in nest.index_vars],
                statements=_gather_statements(file, first, last),
                reductions=reductions,
                locals_declared=privates,
            )
        )
    return units


def _loop_findings(unit: LoopUnit) -> list[Finding]:
    rep = unit.analyze()
    f = unit.file.name
    out = []
    for a in rep.carried:
        out.append(Finding("DC001", f, a.line + 1, f"{a.array}: {a.detail}",
                           context=a.array))
    for s in rep.undeclared_reductions:
        out.append(Finding("DC002", f, s.line + 1, f"{s.scalar}: {s.detail}",
                           context=s.scalar))
    for a in rep.shared_writes:
        out.append(Finding("DC003", f, a.line + 1, f"{a.array}: {a.detail}",
                           context=a.array))
    for s in rep.carried_scalars:
        out.append(Finding("DC004", f, s.line + 1, f"{s.scalar}: {s.detail}",
                           context=s.scalar))
    for a in rep.indirect_writes:
        out.append(Finding("DC005", f, a.line + 1, f"{a.array}: {a.detail}",
                           context=a.array))
    return out


def _region_fusion_findings(
    file: SourceFile, units: list[LoopUnit]
) -> list[Finding]:
    """DC006: hazards between sibling nests sharing one parallel region."""
    out = []
    for i in range(len(units)):
        for j in range(i + 1, len(units)):
            a, b = units[i].analyze(), units[j].analyze()
            if depends(a.reads, a.writes, b.reads, b.writes):
                out.append(
                    Finding(
                        "DC006", file.name, units[j].header_line + 1,
                        "loop nest depends on an earlier nest in the same "
                        "parallel region; fusion/split changes synchronization",
                        related=(RelatedLocation(
                            file.name, units[i].header_line + 1,
                            "the earlier sibling nest it depends on",
                        ),),
                    )
                )
    return out


def _hygiene_findings(file: SourceFile) -> list[Finding]:
    """ACC101/102/103: structural directive problems in one file."""
    out = []
    region_depth = 0
    combined_open = 0
    prev_was_directive = False
    wait_ids: list[tuple[str, int]] = []
    async_ids: set[str] = set()
    for i, line in enumerate(file.lines):
        if not is_directive_line(line):
            prev_was_directive = False
            continue
        d = parse_directive(line)
        if d.kind is DirectiveKind.CONTINUATION:
            if not prev_was_directive:
                out.append(
                    Finding("ACC102", file.name, i + 1,
                            "continuation line follows a non-directive line")
                )
            # a continuation extends the previous directive; keep the flag
            prev_was_directive = True
            continue
        prev_was_directive = True
        if d.is_region_end:
            if region_depth > 0:
                region_depth -= 1
            elif combined_open > 0:
                # the optional `end` of a combined construct
                combined_open -= 1
            else:
                out.append(
                    Finding("ACC101", file.name, i + 1,
                            f"'{d.payload}' closes no open region")
                )
        elif d.is_combined_construct:
            # combined `parallel loop`: closed by the loop nest itself,
            # with an *optional* end directive -- track it separately so
            # neither form corrupts the region depth
            combined_open += 1
        elif d.is_region_start:
            region_depth += 1
        m = _ASYNC_RE.search(d.payload)
        if m:
            async_ids.add(m.group(1).lower())
        if d.kind is DirectiveKind.WAIT:
            wm = _WAIT_RE.match(d.payload)
            if wm and wm.group(1):
                for qid in wm.group(1).split(","):
                    wait_ids.append((qid.strip().lower(), i))
    # Only meaningful in files that launch async work at all: after the DC
    # passes convert the async plain regions, leftover waits are harmless
    # global barriers (and their lines are pinned by the Table I census),
    # not queue-mismatch bugs -- see docs/ANALYSIS.md.
    for qid, i in wait_ids:
        if async_ids and qid not in async_ids:
            out.append(
                Finding("ACC103", file.name, i + 1,
                        f"wait({qid}) but nothing in this file launches on "
                        f"async({qid})")
            )
    return out


@dataclass(slots=True)
class _DataCoverage:
    """Codebase-wide picture of which arrays the data directives manage."""

    entered: set[str] = field(default_factory=set)    # enter data / declare
    exited: dict[str, tuple[str, int]] = field(default_factory=dict)
    updated_host: dict[str, tuple[str, int]] = field(default_factory=dict)
    manual_mode: bool = False  # any enter data anywhere

    def mentioned(self) -> set[str]:
        """Every array any data directive manages (the UM201 universe)."""
        return self.entered | set(self.exited) | set(self.updated_host)


def _scan_compute_clauses(payload: str, cov: _DataCoverage) -> None:
    """Count entering data clauses on a compute construct toward coverage."""
    for m in _DATA_CLAUSE_RE.finditer(payload):
        if m.group(1).lower() in ("copyin", "copy", "create", "present"):
            cov.entered.update(_clause_arrays(m.group(2)))


def _scan_data_directives(cb: Codebase) -> _DataCoverage:
    cov = _DataCoverage()
    for file in cb.files:
        active_roles: dict[str, str] = {}  # clause -> role of current directive
        current_kind: DirectiveKind | None = None
        in_host_data = False
        for i, line in enumerate(file.lines):
            if not is_directive_line(line):
                current_kind = None
                continue
            d = parse_directive(line)
            if d.kind is DirectiveKind.CONTINUATION:
                if current_kind in (DirectiveKind.PARALLEL_LOOP, DirectiveKind.KERNELS):
                    _scan_compute_clauses(d.payload, cov)
                    continue
                if current_kind is not DirectiveKind.DATA or in_host_data:
                    continue
                payload = d.payload
            else:
                current_kind = d.kind
                if d.kind in (DirectiveKind.PARALLEL_LOOP, DirectiveKind.KERNELS):
                    # data clauses spelled on the compute construct itself
                    # (`parallel loop copyin(...) present(...)`) establish
                    # residency for that construct; real trees use this form
                    # heavily, and without it UM201 floods
                    _scan_compute_clauses(d.payload, cov)
                    continue
                if d.kind is not DirectiveKind.DATA:
                    continue
                p = d.payload.lower()
                in_host_data = p.startswith(("host_data", "end host_data"))
                if in_host_data:
                    continue  # use_device() is address plumbing, not residency
                if p.startswith("enter data"):
                    cov.manual_mode = True
                payload = d.payload
            for m in _DATA_CLAUSE_RE.finditer(payload):
                clause = m.group(1).lower()
                arrays = _clause_arrays(m.group(2))
                if clause in ("copyin", "copy", "create", "present"):
                    cov.entered.update(arrays)
                elif clause in ("delete", "copyout"):
                    for a in arrays:
                        cov.exited.setdefault(a, (file.name, i))
                elif clause in ("host", "self"):
                    for a in arrays:
                        cov.updated_host.setdefault(a, (file.name, i))
                # device / use_device: pushes or address-taking; imposes no
                # residency obligation we can check without false positives
                # (Code 6 re-adds update device() for tables that live via
                # declare in other builds) -- see docs/ANALYSIS.md.
    return cov


def _coverage_findings(cb: Codebase) -> list[Finding]:
    """UM201/202/203 over the whole codebase."""
    cov = _scan_data_directives(cb)
    out = []
    if not cov.manual_mode:
        return out  # UM-managed build: coverage rules don't apply
    for a, (fname, i) in sorted(cov.exited.items()):
        if a not in cov.entered:
            out.append(
                Finding("UM202", fname, i + 1,
                        f"{a} exits a data region it never entered",
                        context=a)
            )
    for a, (fname, i) in sorted(cov.updated_host.items()):
        if a not in cov.entered:
            out.append(
                Finding("UM203", fname, i + 1,
                        f"update host({a}) but {a} was never entered",
                        context=a)
            )
    # region accesses of arrays the data directives manage elsewhere
    universe = cov.mentioned()
    for file in cb.files:
        for region in find_parallel_regions(file):
            for unit in _region_units(file, region):
                rep = unit.analyze()
                for name in sorted((rep.reads | rep.writes) & universe):
                    if name not in cov.entered:
                        out.append(
                            Finding(
                                "UM201", file.name, unit.header_line + 1,
                                f"device region touches {name}, which no "
                                "enter data/declare covers: implicit UM "
                                "paging risk",
                                context=name,
                            )
                        )
    return out


def analyze_file(file: SourceFile) -> list[Finding]:
    """All per-file findings (loop units + hygiene)."""
    out = []
    region_lines: set[int] = set()
    for region in find_parallel_regions(file):
        units = _region_units(file, region)
        region_lines.update(range(region.start, region.end + 1))
        for unit in units:
            out.extend(_loop_findings(unit))
        out.extend(_region_fusion_findings(file, units))
    for unit in _dc_units(file):
        if unit.header_line in region_lines:
            continue  # DC inside an ACC region: the region units cover it
        out.extend(_loop_findings(unit))
    out.extend(_hygiene_findings(file))
    return out


def analyze_codebase(
    cb: Codebase, config: LintConfig | None = None, *, jobs: int = 1
) -> list[Finding]:
    """Every finding in a codebase, suppressions applied, telemetry bumped.

    ``jobs > 1`` analyzes files in parallel processes. The merged result
    is byte-identical to a serial run: per-file analysis is independent,
    results come back in file order, codebase-wide coverage stays serial,
    and :func:`sort_findings` imposes the same total order either way.
    The interprocedural pass (call-graph summaries, IP1xx rules) is also
    serial -- one summary pass shared by all workers, cached content-hash
    keyed so re-lints only recompute changed routines.
    """
    from repro.analysis.findings import record_findings, sort_findings
    from repro.analysis.interproc import interproc_findings, summarize

    config = config or LintConfig()
    out: list[Finding] = []
    if jobs > 1 and len(cb.files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(cb.files))) as pool:
                for findings in pool.map(analyze_file, cb.files):
                    out.extend(findings)
        except (OSError, PermissionError):  # sandboxed/NP-fork environments
            out = []
            for file in cb.files:
                out.extend(analyze_file(file))
    else:
        for file in cb.files:
            out.extend(analyze_file(file))
    out.extend(_coverage_findings(cb))
    out.extend(interproc_findings(cb, summarize(cb)))
    kept = sort_findings(f for f in out if config.allows(f))
    record_findings(kept, source=cb.name)
    return kept


# -- transform agreement -------------------------------------------------------


class PortSafety(enum.Enum):
    """What a region needs to become valid ``do concurrent``."""

    SAFE_F2018 = "safe_f2018"      # plain DC, no extra clauses
    NEEDS_REDUCE = "needs_reduce"  # F2023 reduce() clause required
    NEEDS_ATOMIC = "needs_atomic"  # atomics (or a reduction flip) required
    UNSAFE = "unsafe"              # loop-carried dependence; do not port


def region_port_safety(file: SourceFile, region: ParallelRegion) -> PortSafety:
    """The analyzer's verdict on porting one OpenACC region to DC.

    Mirrors the SIV taxonomy the transforms use: ``RegionKind`` says what
    the region *is*; this says what the dependence core *proves* it needs.
    """
    units = _region_units(file, region)
    reports = [u.analyze() for u in units]
    if any(r.carried or r.shared_writes for r in reports):
        return PortSafety.UNSAFE
    if any(r.undeclared_reductions for r in reports):
        return PortSafety.NEEDS_ATOMIC  # scalar races with no clause: restructure
    if any(r.atomic_protected or r.indirect_writes for r in reports):
        return PortSafety.NEEDS_ATOMIC
    declared = _region_clause_vars(file, region, _REDUCTION_CLAUSE_RE)
    if declared:
        return PortSafety.NEEDS_REDUCE
    return PortSafety.SAFE_F2018


def region_undeclared_reductions(
    file: SourceFile, region: ParallelRegion
) -> list[str]:
    """Scalars accumulated in ``region`` with no reduction clause.

    These make the verdict ``NEEDS_ATOMIC``, but unlike atomic-protected
    bodies they cannot be ported mechanically (the original OpenACC is
    already racy); the porter refuses such files and points at the DC002
    fix-it, which adds the missing ``reduction`` clause.
    """
    out: set[str] = set()
    for u in _region_units(file, region):
        rep = u.analyze()
        out.update(s.scalar for s in rep.undeclared_reductions)
    return sorted(out)


#: RegionKind -> the PortSafety the analyzer must independently reach for
#: the synthetic corpus (the transform-agreement contract).
EXPECTED_SAFETY: dict[RegionKind, PortSafety] = {
    RegionKind.PLAIN: PortSafety.SAFE_F2018,
    RegionKind.ROUTINE_CALLER: PortSafety.SAFE_F2018,
    RegionKind.SCALAR_REDUCTION: PortSafety.NEEDS_REDUCE,
    RegionKind.ARRAY_REDUCTION: PortSafety.NEEDS_ATOMIC,
    RegionKind.ATOMIC_OTHER: PortSafety.NEEDS_ATOMIC,
}
