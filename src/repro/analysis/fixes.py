"""Machine-applicable repairs for analyzer findings (the fix-it engine).

Two layers:

* the **edit model** -- :class:`TextEdit` (one anchored line-range
  replacement) and :class:`Fix` (one finding's repair: a description plus
  an edit set).  Edits are *line-based* because every construct the
  analyzer reasons about (directives, loop headers, statements) is a
  whole line in the canonical MAS-like subset;
* the **generators** -- :func:`attach_fixes` walks a finding list and
  derives the repair each rule admits, mirroring the hand transforms of
  the paper's port:

  ======  =====================================================
  DC001   demote the region/loop to sequential ``do`` (don't port)
  DC002   add ``reduction(op:var)`` / ``reduce(op:var)`` clause
  DC003   accumulations: insert ``!$acc atomic update``; other
          shared writes: demote to sequential
  DC004   add ``private(var)`` / ``local(var)`` clause
  DC005   insert ``!$acc atomic update``/``write`` (Listing 4)
  DC006   split the parallel region between the dependent nests
  ACC101  delete the orphan ``end`` directive
  ACC102  delete the orphan continuation line
  ACC103  widen ``wait(q)`` to the global ``wait`` barrier
  UM201   ``enter data create(arr)`` at the top of the file
  UM202   ``enter data create(arr)`` at the top of the file
  UM203   delete the stale ``update host`` line
  ======  =====================================================

  RT3xx runtime findings have no source line to anchor to; instead of a
  code edit, :func:`attach_spec_fixes` gives them a **spec patch**: a
  tiny edit DSL (``add-write rho`` / ``drop-write rho`` / ``drop rho`` /
  ``drop-tag async:1``) against a virtual ``kernelspec:<name>`` artifact,
  exported through SARIF like any other fix and applied to a live
  :class:`~repro.runtime.kernel.KernelSpec` by :func:`apply_spec_patch`.
  DC005's atomic insertion is only valid while the build still compiles
  OpenACC directives -- the pure-DC targets (Codes 5/6) had to *drop*
  atomics, which is why ``repro port`` flags them instead (see
  docs/ANALYSIS.md, "Fix-it catalog").

Fixes never mutate anything here: application is
:func:`repro.analysis.rewriter.apply_fixes`, which adds conflict
detection, anchoring and idempotence on top.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from repro.analysis.findings import Finding
from repro.fortran.lexer import LineKind, classify_line
from repro.fortran.parser import ParallelRegion, find_parallel_regions
from repro.fortran.source import Codebase, SourceFile


@dataclass(frozen=True, slots=True)
class TextEdit:
    """Replace lines ``[start, end]`` of ``file`` with ``replacement``.

    Indices are 0-based and inclusive; ``end == start - 1`` makes the
    edit a pure insertion *before* ``start``.  ``anchor`` snapshots the
    lines being replaced (for an insertion: the single line the new text
    lands in front of) at fix-creation time -- the rewriter refuses to
    apply an edit whose anchor no longer matches, which is what makes
    re-applying an already-applied fix a no-op instead of a corruption.
    """

    file: str
    start: int
    end: int
    replacement: tuple[str, ...]
    anchor: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start - 1:
            raise ValueError(f"bad edit range [{self.start}, {self.end}]")

    @property
    def is_insertion(self) -> bool:
        """True when the edit deletes nothing."""
        return self.end < self.start


@dataclass(frozen=True, slots=True)
class Fix:
    """One finding's machine-applicable repair."""

    rule_id: str
    description: str
    edits: tuple[TextEdit, ...]


#: Rules whose findings get a fix attached (the rest are report-only).
#: IP101/IP104 fixes are built by the interprocedural pass itself (they
#: edit the *callee's* file) and arrive pre-attached; attach_fixes only
#: passes them through.
FIXABLE_RULES = frozenset(
    {"DC001", "DC002", "DC003", "DC004", "DC005", "DC006",
     "ACC101", "ACC102", "ACC103", "UM201", "UM202", "UM203",
     "IP101", "IP104"}
)

_ACCUM_STMT_RE = re.compile(
    r"^\s*(\w+)\s*\(([^)]*(?:\([^)]*\)[^)]*)*)\)\s*=\s*\1\s*\(\2\)\s*([+*])", re.I
)
_SCALAR_ACCUM_RE = re.compile(r"^\s*(\w+)\s*=\s*(.*)$", re.I)
_WAIT_QUEUE_RE = re.compile(r"(wait)\s*\(\s*[\w,\s]+\s*\)", re.I)
_DC_HEADER_RE = re.compile(r"^(\s*)do\s+concurrent\s*\(", re.I)


def _edit_for(file: SourceFile, start: int, end: int,
              replacement: tuple[str, ...]) -> TextEdit:
    """Build an edit with its anchor snapshotted from the file."""
    if end < start:  # insertion: anchor on the line it lands before
        anchor = (file.lines[start],) if start < len(file.lines) else ()
    else:
        anchor = tuple(file.lines[start : end + 1])
    return TextEdit(file.name, start, end, replacement, anchor)


def _split_paren_args(header: str) -> tuple[str, str]:
    start = header.index("(")
    depth = 0
    for i in range(start, len(header)):
        if header[i] == "(":
            depth += 1
        elif header[i] == ")":
            depth -= 1
            if depth == 0:
                return header[start + 1 : i], header[i + 1 :]
    raise ValueError(f"unbalanced parens in DC header: {header!r}")


def _dc_loop_end(lines: list[str], start: int) -> int:
    """Index of the enddo closing the do/do-concurrent at ``start``."""
    level = 0
    for i in range(start, len(lines)):
        kind = classify_line(lines[i])
        if kind in (LineKind.DO, LineKind.DO_CONCURRENT):
            level += 1
        elif kind is LineKind.ENDDO:
            level -= 1
            if level == 0:
                return i
    raise ValueError(f"unterminated loop at line {start}")


class _FileContext:
    """Lazily-parsed structure of one file, shared by its findings."""

    def __init__(self, file: SourceFile) -> None:
        self.file = file
        self._regions: list[ParallelRegion] | None = None

    @property
    def regions(self) -> list[ParallelRegion]:
        if self._regions is None:
            self._regions = find_parallel_regions(self.file)
        return self._regions

    def enclosing_region(self, li: int) -> ParallelRegion | None:
        for r in self.regions:
            if r.start <= li <= r.end:
                return r
        return None

    def enclosing_dc_header(self, li: int) -> int | None:
        """Innermost ``do concurrent`` header whose loop contains ``li``."""
        best = None
        for i, line in enumerate(self.file.lines):
            if i > li:
                break
            if classify_line(line) is not LineKind.DO_CONCURRENT:
                continue
            if _dc_loop_end(self.file.lines, i) >= li:
                best = i
        return best

    def loop_directive_above(self, region: ParallelRegion, li: int) -> int:
        """The directive line governing the nest that contains ``li``
        (the closest ``!$acc`` line above the nest; the region start as a
        fallback)."""
        for nest in region.loops:
            if nest.start <= li <= nest.end:
                above = [d for d in region.directive_lines if d < nest.start]
                return max(above) if above else region.start
        return region.start


def _reduction_op(stmt: str, var: str) -> str:
    """Reduction operator of ``var = var <op> ...`` (default ``+``)."""
    m = _SCALAR_ACCUM_RE.match(stmt.split("!")[0])
    if m and m.group(1).lower() == var.lower():
        rhs = m.group(2).strip().lower()
        for op, head in (("max", "max("), ("min", "min(")):
            if rhs.startswith(head):
                return op
        if re.match(rf"{re.escape(var.lower())}\s*\*", rhs):
            return "*"
    return "+"


def _demote_region(ctx: _FileContext, region: ParallelRegion) -> tuple[TextEdit, ...]:
    """Delete every directive line of a region: the nest runs sequential."""
    return tuple(
        _edit_for(ctx.file, i, i, ()) for i in region.directive_lines
    )


def _demote_dc_loop(ctx: _FileContext, header: int) -> tuple[TextEdit, ...]:
    """Rewrite one ``do concurrent`` loop into a sequential ``do`` nest."""
    line = ctx.file.lines[header]
    m = _DC_HEADER_RE.match(line)
    assert m is not None
    indent = m.group(1)
    args, _trailing = _split_paren_args(line)
    do_lines = []
    for part in args.split(","):
        var, _, rng = part.partition("=")
        lo, _, hi = rng.partition(":")
        do_lines.append(f"{indent}do {var.strip()}={lo.strip()},{hi.strip()}")
    end = _dc_loop_end(ctx.file.lines, header)
    end_indent = ctx.file.lines[end][: len(ctx.file.lines[end])
                                     - len(ctx.file.lines[end].lstrip())]
    return (
        _edit_for(ctx.file, header, header, tuple(do_lines)),
        _edit_for(ctx.file, end, end,
                  tuple(f"{end_indent}enddo" for _ in do_lines)),
    )


def _atomic_insert(ctx: _FileContext, li: int) -> tuple[TextEdit, ...]:
    """``!$acc atomic update``/``write`` in front of the statement."""
    stmt = ctx.file.lines[li]
    kind = "update" if _ACCUM_STMT_RE.match(stmt) else "write"
    return (_edit_for(ctx.file, li, li - 1, (f"!$acc atomic {kind}",)),)


# -- clause appends: merged per target line so two findings never fight ------


class _ClauseMerge:
    """Accumulates clause appends per (file, line); resolves to edits."""

    def __init__(self) -> None:
        self._by_line: dict[tuple[str, int], list[str]] = {}
        self._ctx: dict[tuple[str, int], _FileContext] = {}

    def add(self, ctx: _FileContext, li: int, clause: str) -> tuple[str, int]:
        key = (ctx.file.name, li)
        clauses = self._by_line.setdefault(key, [])
        if clause not in clauses:
            clauses.append(clause)
        self._ctx[key] = ctx
        return key

    def resolve(self) -> dict[tuple[str, int], TextEdit]:
        out = {}
        for key, clauses in self._by_line.items():
            ctx, (_, li) = self._ctx[key], key
            new_line = " ".join([ctx.file.lines[li], *sorted(clauses)])
            out[key] = _edit_for(ctx.file, li, li, (new_line,))
        return out


def _build_fix(
    finding: Finding, ctx: _FileContext, merge: _ClauseMerge
) -> tuple[str, tuple | None]:
    """(description, payload) for one finding; payload is either a tuple
    of edits, or a ``("clause", key)`` marker resolved after merging."""
    li = finding.line - 1
    rule = finding.rule_id
    lines = ctx.file.lines

    if rule.startswith("IP"):
        # interprocedural fixes are pre-attached by the summary pass (they
        # edit the callee's file); an IP finding reaching here is the
        # unfixable flavor and stays report-only
        return ("", None)

    if rule == "DC001":
        region = ctx.enclosing_region(li)
        if region is not None:
            return ("demote the parallel region to sequential do loops "
                    "(loop-carried dependence: do not port)",
                    _demote_region(ctx, region))
        header = ctx.enclosing_dc_header(li)
        if header is None:
            return ("", None)
        return ("rewrite do concurrent as sequential do loops "
                "(loop-carried dependence: do not port)",
                _demote_dc_loop(ctx, header))

    if rule == "DC002":
        var = finding.context
        op = _reduction_op(lines[li], var)
        region = ctx.enclosing_region(li)
        if region is not None:
            target = ctx.loop_directive_above(region, li)
            key = merge.add(ctx, target, f"reduction({op}:{var})")
            return (f"declare the reduction: add reduction({op}:{var})",
                    ("clause", key))
        header = ctx.enclosing_dc_header(li)
        if header is None:
            return ("", None)
        key = merge.add(ctx, header, f"reduce({op}:{var})")
        return (f"declare the reduction: add reduce({op}:{var})",
                ("clause", key))

    if rule == "DC003":
        if _ACCUM_STMT_RE.match(lines[li]):
            return ("protect the cross-iteration accumulation with "
                    "!$acc atomic update", _atomic_insert(ctx, li))
        region = ctx.enclosing_region(li)
        if region is not None:
            return ("demote the parallel region to sequential do loops "
                    "(unprotected shared write)", _demote_region(ctx, region))
        header = ctx.enclosing_dc_header(li)
        if header is None:
            return ("", None)
        return ("rewrite do concurrent as sequential do loops "
                "(unprotected shared write)", _demote_dc_loop(ctx, header))

    if rule == "DC004":
        var = finding.context
        region = ctx.enclosing_region(li)
        if region is not None:
            target = ctx.loop_directive_above(region, li)
            key = merge.add(ctx, target, f"private({var})")
            return (f"privatize the scalar: add private({var})",
                    ("clause", key))
        header = ctx.enclosing_dc_header(li)
        if header is None:
            return ("", None)
        key = merge.add(ctx, header, f"local({var})")
        return (f"privatize the scalar: add local({var})", ("clause", key))

    if rule == "DC005":
        return ("protect the indirect write with an atomic directive "
                "(valid while the build still compiles OpenACC)",
                _atomic_insert(ctx, li))

    if rule == "DC006":
        region = ctx.enclosing_region(li)
        if region is None:
            return ("", None)
        target = ctx.loop_directive_above(region, li)
        opener = lines[region.start]
        return ("split the parallel region between the dependent nests",
                (_edit_for(ctx.file, target, target - 1,
                           ("!$acc end parallel", opener)),))

    if rule in ("ACC101", "ACC102"):
        what = "region end" if rule == "ACC101" else "continuation line"
        return (f"delete the orphan {what}",
                (_edit_for(ctx.file, li, li, ()),))

    if rule == "ACC103":
        new_line = _WAIT_QUEUE_RE.sub(r"\1", lines[li])
        return ("widen the wait to a global barrier (no kernel launches "
                "on that queue)", (_edit_for(ctx.file, li, li, (new_line,)),))

    if rule in ("UM201", "UM202"):
        arr = finding.context
        return (f"cover {arr} with an enter data directive",
                (_edit_for(ctx.file, 0, -1, (f"!$acc enter data create({arr})",)),))

    if rule == "UM203":
        return ("delete the stale update host (array was never entered)",
                (_edit_for(ctx.file, li, li, ()),))

    return ("", None)


# -- RT3xx spec patches --------------------------------------------------------


#: Runtime rules that admit a KernelSpec patch (RT302 is a data-placement
#: problem, not a spec problem: report-only).
SPEC_PATCH_RULES = frozenset({"RT301", "RT310", "RT320", "RT321"})

#: Virtual-artifact prefix for spec patches; the rewriter skips these
#: (they are not codebase files), SARIF exports them verbatim.
SPEC_ARTIFACT_PREFIX = "kernelspec:"


def _spec_patch_for(finding: Finding) -> tuple[str, tuple[str, ...]] | None:
    """(description, patch lines) for one runtime finding, if any."""
    ctx = finding.context
    if not ctx:
        return None
    if finding.rule_id == "RT301":
        return (f"drop {ctx} from the spec footprint (array is not "
                "registered in the data environment)", (f"drop {ctx}",))
    if finding.rule_id == "RT310":
        return (f"launch synchronously: remove the {ctx} tag so the "
                "hazardous overlap cannot happen", (f"drop-tag {ctx}",))
    if finding.rule_id == "RT320":
        return (f"declare the observed write: add {ctx} to spec.writes",
                (f"add-write {ctx}",))
    if finding.rule_id == "RT321":
        return (f"drop the never-performed write to {ctx} from spec.writes",
                (f"drop-write {ctx}",))
    return None


def attach_spec_fixes(findings: list[Finding]) -> list[Finding]:
    """Attach spec-patch fixes to RT3xx findings (order preserved).

    The edit targets the virtual artifact ``kernelspec:<kernel name>``;
    its replacement lines are the patch DSL. :func:`apply_spec_patch`
    turns the patch back into a corrected KernelSpec.
    """
    out = []
    for f in findings:
        if f.rule_id not in SPEC_PATCH_RULES or f.fix is not None:
            out.append(f)
            continue
        patch = _spec_patch_for(f)
        if patch is None:
            out.append(f)
            continue
        desc, lines = patch
        edit = TextEdit(
            file=f"{SPEC_ARTIFACT_PREFIX}{f.file}", start=0, end=-1,
            replacement=lines, anchor=(),
        )
        out.append(replace(f, fix=Fix(f.rule_id, desc, (edit,))))
    return out


def parse_spec_patch(fix: Fix) -> list[tuple[str, str]]:
    """Decode a spec-patch fix into ``(op, argument)`` pairs."""
    ops = []
    for edit in fix.edits:
        if not edit.file.startswith(SPEC_ARTIFACT_PREFIX):
            raise ValueError(f"not a spec patch: {edit.file!r}")
        for line in edit.replacement:
            op, _, arg = line.partition(" ")
            if op not in ("add-write", "drop-write", "drop", "drop-tag") or not arg:
                raise ValueError(f"bad spec-patch line: {line!r}")
            ops.append((op, arg.strip()))
    return ops


def apply_spec_patch(spec, fix: Fix):
    """A corrected copy of ``spec`` with the patch applied.

    ``spec`` is a :class:`repro.runtime.kernel.KernelSpec`; matching is
    by base array name so region-qualified tokens (``rho@g2m``) drop
    with their base.
    """
    from repro.analysis.dependence import base_name

    reads = list(spec.reads)
    writes = list(spec.writes)
    tags = list(spec.tags)
    for op, arg in parse_spec_patch(fix):
        if op == "add-write":
            if not any(base_name(w) == arg for w in writes):
                writes.append(arg)
        elif op == "drop-write":
            writes = [w for w in writes if base_name(w) != arg]
        elif op == "drop":
            reads = [r for r in reads if base_name(r) != arg]
            writes = [w for w in writes if base_name(w) != arg]
        elif op == "drop-tag":
            tags = [t for t in tags if t != arg]
    return replace(
        spec, reads=tuple(reads), writes=tuple(writes), tags=tuple(tags)
    )


def attach_fixes(cb: Codebase, findings: list[Finding]) -> list[Finding]:
    """Return the findings with a :class:`Fix` attached where one exists.

    Order is preserved; unfixable findings (RT3xx, or constructs the
    generators don't recognize) pass through untouched.  Two findings
    whose repairs amend the *same* line (e.g. two scalars needing the
    same ``reduce`` clause) share one merged edit, so applying both fixes
    never conflicts.
    """
    contexts: dict[str, _FileContext] = {}
    merge = _ClauseMerge()
    staged: list[tuple[Finding, str, tuple | None]] = []
    for f in findings:
        if f.fix is not None:  # pre-attached (IP rules build cross-file fixes)
            staged.append((f, "", None))
            continue
        if f.rule_id not in FIXABLE_RULES or f.line <= 0:
            staged.append((f, "", None))
            continue
        try:
            file = cb.file(f.file)
        except KeyError:
            staged.append((f, "", None))
            continue
        ctx = contexts.setdefault(f.file, _FileContext(file))
        try:
            desc, payload = _build_fix(f, ctx, merge)
        except (ValueError, IndexError, AssertionError):
            desc, payload = "", None
        staged.append((f, desc, payload))

    clause_edits = merge.resolve()
    out: list[Finding] = []
    for f, desc, payload in staged:
        if payload is None:
            out.append(f)
            continue
        if payload and payload[0] == "clause":
            edits: tuple[TextEdit, ...] = (clause_edits[payload[1]],)
        else:
            edits = payload
        out.append(replace(f, fix=Fix(f.rule_id, desc, edits)))
    return out
