"""Automated OpenACC -> `do concurrent` porting assistant.

Targets mirror the paper's end states:

* ``acc-opt``  -> Code 2 (AD): DC for the loops F2018 can express, OpenACC
  retained for reductions/atomics/data (the first production-safe stop);
* ``pure-dc``  -> Code 5 (D2XU): literally zero directives, unified memory;
* ``dc``       -> Code 6 (D2XAd): all loops DC, manual data management via
  the wrapper module -- the paper's production endpoint.

Where the hand-built pipeline (:mod:`repro.fortran.pipeline`) selects
regions by :class:`~repro.fortran.parser.RegionKind` (what a region *is*),
the porter selects by :func:`~repro.analysis.fortran_lint.region_port_safety`
(what the dependence core *proves*):

* ``SAFE_F2018``   -> plain ``do concurrent`` (Listing 1 -> 2);
* ``NEEDS_REDUCE`` -> DC with the ``reduce(op:var)`` clause (202X);
* ``NEEDS_ATOMIC`` -> DC with the atomics retained in the body (Listing 4);
* ``UNSAFE``       -> **refused**: recorded for ``acc-opt`` (the region
  stays OpenACC, which is still valid), fatal for the all-DC targets.

For the Code 5/6 targets the porter also flags every atomic the paper
dropped via "small code modifications" (the non-accumulation atomics
PureDc rewrites away) so a reviewer can audit them.

:func:`verify_port` is the differential harness: the ported tree must
match the hand-built artifact on (a) the exact lint finding set, (b) the
Table I/II line counts and directive census, and (c) the region-kind
multiset plus DC loop count.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.interproc import InterprocResult

from repro.analysis.fortran_lint import (
    PortSafety,
    region_port_safety,
    region_undeclared_reductions,
)
from repro.codes import CodeVersion
from repro.codes.versions import version_info
from repro.fortran.codebase import GeneratorBudget, MAS_BUDGET, generate_mas_codebase
from repro.fortran.directives import DirectiveKind, is_directive_line, parse_directive
from repro.fortran.lexer import LineKind, classify_line
from repro.fortran.metrics import directive_census, measure
from repro.fortran.parser import apply_edits, find_parallel_regions
from repro.fortran.source import Codebase
from repro.fortran.transforms import PureDcPass, ReaddDataPass, UnifiedMemPass
from repro.fortran.transforms.base import convert_nest_to_dc
from repro.fortran.transforms.dc2x import (
    async_and_dtype_data_edits,
    convert_region_dc2x,
    drop_legacy_paths,
    reduce_clause_of,
)
from repro.fortran.transforms.pure_dc import ACCUM_RE, find_dc_loop_end


class PortTarget(enum.Enum):
    """What the porter should produce (CLI ``--to`` values)."""

    ACC_OPT = "acc-opt"   # Code 2 (AD)
    PURE_DC = "pure-dc"   # Code 5 (D2XU)
    DC = "dc"             # Code 6 (D2XAd)


#: The hand-built version each target is differentially verified against.
TARGET_VERSION: dict[PortTarget, CodeVersion] = {
    PortTarget.ACC_OPT: CodeVersion.AD,
    PortTarget.PURE_DC: CodeVersion.D2XU,
    PortTarget.DC: CodeVersion.D2XAD,
}


@dataclass(frozen=True, slots=True)
class RefusedRegion:
    """One parallel region the porter declined to convert."""

    file: str
    line: int  # 1-based line of the region's first directive
    kind: str
    reason: str

    def render(self) -> str:
        return f"{self.file}:{self.line} [{self.kind}] {self.reason}"


class PortRefusedError(RuntimeError):
    """An all-DC target hit regions the dependence core proves unsafe."""

    def __init__(self, target: "PortTarget", refused: list[RefusedRegion]):
        self.target = target
        self.refused = refused
        listing = "; ".join(r.render() for r in refused)
        super().__init__(
            f"cannot port to {target.value}: {len(refused)} region(s) "
            f"refused: {listing}"
        )


@dataclass(slots=True)
class PortResult:
    """What one :func:`port_codebase` run produced."""

    target: PortTarget
    codebase: Codebase
    converted: Counter = field(default_factory=Counter)  # PortSafety -> n
    refused: list[RefusedRegion] = field(default_factory=list)
    dropped_atomics: list[tuple[str, int]] = field(default_factory=list)
    stages: list[str] = field(default_factory=list)

    def summary(self) -> str:
        conv = ", ".join(
            f"{n} {s.value}" for s, n in sorted(
                self.converted.items(), key=lambda kv: kv[0].value
            )
        ) or "none"
        parts = [f"target {self.target.value}", f"converted: {conv}"]
        if self.refused:
            parts.append(f"{len(self.refused)} refused")
        if self.dropped_atomics:
            parts.append(
                f"{len(self.dropped_atomics)} atomics dropped by code "
                "modification"
            )
        parts.append(f"stages: {' -> '.join(self.stages)}")
        return "; ".join(parts)


def _convert_stage(
    cb: Codebase,
    *,
    safeties: frozenset[PortSafety],
    result: PortResult,
) -> None:
    """Convert every region whose analyzer verdict is in ``safeties``.

    UNSAFE regions are never converted; they are recorded as refused and
    left as OpenACC (the caller decides whether that is fatal).
    """
    for f in cb.files:
        edits: list[tuple[int, int, list[str]]] = []
        for region in find_parallel_regions(f):
            safety = region_port_safety(f, region)
            if safety is PortSafety.UNSAFE:
                result.refused.append(RefusedRegion(
                    file=f.name, line=region.start + 1,
                    kind=region.kind.name.lower(),
                    reason="dependence core proves a loop-carried hazard",
                ))
                continue
            if safety not in safeties:
                continue
            if not region.loops:
                result.refused.append(RefusedRegion(
                    file=f.name, line=region.start + 1,
                    kind=region.kind.name.lower(),
                    reason="parallel region without a loop nest",
                ))
                continue
            if safety is PortSafety.SAFE_F2018:
                replacement: list[str] = []
                for nest in region.loops:
                    replacement.extend(convert_nest_to_dc(region, nest))
            else:
                clause = (
                    reduce_clause_of(f, region)
                    if safety is PortSafety.NEEDS_REDUCE
                    else ""
                )
                replacement = convert_region_dc2x(f, region, clause=clause)
            edits.append((region.start, region.end, replacement))
            result.converted[safety] += 1
        if PortSafety.NEEDS_ATOMIC in safeties:
            # 202X stage: nothing is async any more, the derived-type data
            # lines go with the loops that touched the types
            edits.extend(async_and_dtype_data_edits(f))
        apply_edits(f, edits)
        if PortSafety.NEEDS_ATOMIC in safeties:
            drop_legacy_paths(f)


def _scan_dropped_atomics(cb: Codebase) -> list[tuple[str, int]]:
    """(file, 1-based line) of atomics PureDc will drop by code change.

    Atomics guarding accumulation statements become the flipped-loop
    reduction (Listing 4 -> 5) and are accounted for; atomics guarding
    anything else disappear in a "small code modification" the paper
    applies by hand -- flag those for review.
    """
    dropped: list[tuple[str, int]] = []
    for f in cb.files:
        i = 0
        while i < len(f.lines):
            if classify_line(f.lines[i]) is not LineKind.DO_CONCURRENT:
                i += 1
                continue
            end = find_dc_loop_end(f.lines, i)
            atomics = [
                k for k in range(i + 1, end)
                if is_directive_line(f.lines[k])
                and parse_directive(f.lines[k]).kind is DirectiveKind.ATOMIC
            ]
            if atomics and not any(
                ACCUM_RE.match(f.lines[k + 1]) for k in atomics
            ):
                dropped.extend((f.name, k + 1) for k in atomics)
            i = end + 1
    return dropped


def _record(result: PortResult) -> None:
    """Telemetry counters for the port run (no-op when disabled)."""
    from repro.obs import current

    tel = current()
    if not tel.enabled:
        return
    counter = tel.metrics.counter(
        "port_regions_total", "regions converted by analyzer verdict",
        labelnames=("target", "safety"),
    )
    for safety, n in result.converted.items():
        counter.labels(target=result.target.value, safety=safety.value).inc(n)
    if result.refused:
        tel.metrics.counter(
            "port_refusals_total", "regions refused as unsafe",
            labelnames=("target",),
        ).labels(target=result.target.value).inc(len(result.refused))


def port_codebase(
    target: PortTarget,
    *,
    code1: Codebase | None = None,
    budget: GeneratorBudget = MAS_BUDGET,
) -> PortResult:
    """Port the Code 1 OpenACC tree to ``target``, analyzer-driven."""
    base = code1 or generate_mas_codebase(budget)
    cb = base.copy(f"port_{target.value}")
    result = PortResult(target=target, codebase=cb)

    _convert_stage(
        cb, safeties=frozenset({PortSafety.SAFE_F2018}), result=result
    )
    result.stages.append("dc-f2018")
    if target is PortTarget.ACC_OPT:
        _record(result)
        return result
    if result.refused:
        raise PortRefusedError(target, result.refused)

    UnifiedMemPass().apply(cb)
    result.stages.append("unified-mem")

    _convert_stage(
        cb,
        safeties=frozenset({PortSafety.NEEDS_REDUCE, PortSafety.NEEDS_ATOMIC}),
        result=result,
    )
    result.stages.append("dc-202x")
    if result.refused:
        raise PortRefusedError(target, result.refused)

    result.dropped_atomics = _scan_dropped_atomics(cb)
    PureDcPass(keep_cpu_duplicates=(target is PortTarget.DC)).apply(cb)
    result.stages.append("pure-dc")
    if target is PortTarget.DC:
        ReaddDataPass().apply(cb)
        result.stages.append("readd-data")

    _record(result)
    return result


# -- incremental per-file porting ---------------------------------------------


#: Manifest schema tag and on-disk file name (written into ``--out``).
MANIFEST_SCHEMA = "repro-port-manifest/1"
MANIFEST_FILE = "port-manifest.json"


@dataclass(slots=True)
class FilePortStatus:
    """One file's verdict in an incremental port run."""

    name: str
    status: str            # "ported" | "pending" | "refused"
    converted: int = 0     # regions converted to do concurrent
    kept_acc: int = 0      # regions left as OpenACC (acc-opt keeps UNSAFE)
    reason: str = ""       # why refused / pending

    def to_dict(self) -> dict:
        return {
            "name": self.name, "status": self.status,
            "converted": self.converted, "kept_acc": self.kept_acc,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FilePortStatus":
        return cls(
            name=d["name"], status=d["status"],
            converted=int(d.get("converted", 0)),
            kept_acc=int(d.get("kept_acc", 0)),
            reason=d.get("reason", ""),
        )


@dataclass(slots=True)
class IncrementalResult:
    """A full output tree plus the per-file manifest."""

    target: PortTarget
    codebase: Codebase  # complete tree: ported files rewritten, rest verbatim
    statuses: list[FilePortStatus] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        out = {"ported": 0, "pending": 0, "refused": 0}
        for s in self.statuses:
            out[s.status] = out.get(s.status, 0) + 1
        return out

    def manifest_dict(self) -> dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "target": self.target.value,
            "counts": self.counts(),
            "files": [
                s.to_dict() for s in sorted(self.statuses, key=lambda s: s.name)
            ],
        }

    def summary(self) -> str:
        c = self.counts()
        return (
            f"incremental port to {self.target.value}: {c['ported']} ported, "
            f"{c['pending']} pending, {c['refused']} refused "
            f"({sum(s.converted for s in self.statuses)} regions converted)"
        )


def _target_safeties(target: PortTarget) -> frozenset[PortSafety]:
    if target is PortTarget.ACC_OPT:
        return frozenset({PortSafety.SAFE_F2018})
    return frozenset({
        PortSafety.SAFE_F2018, PortSafety.NEEDS_REDUCE, PortSafety.NEEDS_ATOMIC,
    })


def port_file(
    file, target: PortTarget, *, interproc: "InterprocResult | None" = None
) -> FilePortStatus:
    """Port one file in place (tolerantly); never raises.

    The all-DC targets refuse the whole file when any region is UNSAFE or
    a conversion fails -- the file is left byte-identical, so a refused
    file is always safe to ship alongside ported ones. ``acc-opt`` keeps
    UNSAFE regions as OpenACC instead (that target still compiles them).

    With ``interproc`` (the tree-wide call-graph summary pass,
    :func:`repro.analysis.interproc.summarize`), the DC targets also
    refuse regions whose call sites the summaries prove unsafe: an impure
    callee or a module-variable write through the call. A region calling
    an effectively-pure-but-undeclared routine is refused with a pointer
    at the IP101 fix-it (``repro lint --fix`` adds the ``pure``
    attribute, after which the port goes through).
    """
    snapshot = list(file.lines)
    safeties = _target_safeties(target)
    try:
        regions = find_parallel_regions(file)
        verdicts = [(r, region_port_safety(file, r)) for r in regions]
    except (ValueError, IndexError) as exc:
        return FilePortStatus(file.name, "refused", reason=f"parse: {exc}")
    if target is not PortTarget.ACC_OPT:
        unsafe = [r for r, s in verdicts if s is PortSafety.UNSAFE]
        if unsafe:
            return FilePortStatus(
                file.name, "refused",
                reason=f"{len(unsafe)} region(s) with a proven loop-carried "
                       f"hazard (first at line {unsafe[0].start + 1})",
            )
        if interproc is not None:
            from repro.analysis.interproc import region_call_blockers

            for region, _safety in verdicts:
                blockers = region_call_blockers(file, region, interproc)
                if not blockers:
                    continue
                b = blockers[0]
                if b.fixable:
                    reason = (
                        f"call to {b.callee} at line {b.line + 1} "
                        f"{b.why} ({b.rule}): run `repro lint --fix` to "
                        "add the pure attribute first"
                    )
                else:
                    reason = (
                        f"call to {b.callee} at line {b.line + 1} "
                        f"{b.why} ({b.rule}): do concurrent requires "
                        "pure procedures"
                    )
                return FilePortStatus(file.name, "refused", reason=reason)
        # NEEDS_ATOMIC covers two cases: atomic-protected bodies port fine
        # (the atomics are kept), but an *undeclared* scalar reduction is a
        # race in the original source -- converting it to plain DC would
        # bake the race in. Refuse and point at the DC002 fix-it.
        for region, safety in verdicts:
            if safety is not PortSafety.NEEDS_ATOMIC:
                continue
            undeclared = region_undeclared_reductions(file, region)
            if undeclared:
                return FilePortStatus(
                    file.name, "refused",
                    reason=f"undeclared reduction of {', '.join(undeclared)} "
                           f"at line {region.start + 1}: run `repro lint "
                           "--fix` to add the reduction clause first",
                )
    converted = kept = 0
    edits: list[tuple[int, int, list[str]]] = []
    try:
        for region, safety in verdicts:
            if safety not in safeties or not region.loops:
                kept += 1
                continue
            if interproc is not None and target is PortTarget.ACC_OPT:
                from repro.analysis.interproc import region_call_blockers

                if region_call_blockers(file, region, interproc):
                    kept += 1  # blocked call: the region stays OpenACC
                    continue
            if safety is PortSafety.SAFE_F2018:
                replacement: list[str] = []
                for nest in region.loops:
                    replacement.extend(convert_nest_to_dc(region, nest))
            else:
                clause = (
                    reduce_clause_of(file, region)
                    if safety is PortSafety.NEEDS_REDUCE
                    else ""
                )
                replacement = convert_region_dc2x(file, region, clause=clause)
            edits.append((region.start, region.end, replacement))
            converted += 1
        apply_edits(file, edits)
    except (ValueError, IndexError, KeyError) as exc:
        file.lines[:] = snapshot
        return FilePortStatus(file.name, "refused", reason=f"convert: {exc}")
    return FilePortStatus(file.name, "ported", converted=converted, kept_acc=kept)


def port_tree_incremental(
    cb: Codebase,
    target: PortTarget,
    *,
    prior: dict[str, FilePortStatus] | None = None,
    limit: int | None = None,
) -> IncrementalResult:
    """Port up to ``limit`` not-yet-ported files of ``cb`` (copied).

    Files ``prior`` already marks as ported are re-ported without
    counting against the limit (the conversion is deterministic, so the
    output tree stays complete and self-consistent on every run); the
    rest are ported oldest-first until the limit runs out, then left
    ``pending`` verbatim.  The interprocedural summary pass runs once for
    the whole tree and is shared by every per-file port.
    """
    from repro.analysis.interproc import summarize

    out_cb = cb.copy(f"{cb.name}_{target.value}")
    result = IncrementalResult(target=target, codebase=out_cb)
    prior = prior or {}
    interproc = summarize(out_cb)
    budget = limit if limit is not None else len(out_cb.files)
    for f in out_cb.files:
        was_ported = prior.get(f.name) is not None and prior[f.name].status == "ported"
        if not was_ported and budget <= 0:
            result.statuses.append(
                FilePortStatus(f.name, "pending", reason="--limit exhausted")
            )
            continue
        status = port_file(f, target, interproc=interproc)
        if not was_ported:
            budget -= 1
        result.statuses.append(status)
    _record_incremental(result)
    return result


def _record_incremental(result: IncrementalResult) -> None:
    from repro.obs import current

    tel = current()
    if not tel.enabled:
        return
    counter = tel.metrics.counter(
        "port_files_total", "incremental port outcomes by file",
        labelnames=("target", "status"),
    )
    for status, n in result.counts().items():
        if n:
            counter.labels(target=result.target.value, status=status).inc(n)


def write_ported_tree(result: IncrementalResult, out_dir) -> None:
    """Write the output tree plus ``port-manifest.json`` under ``out_dir``.

    Opaque front-end degrades are inverted on the way out: the marker
    comments carry the original text verbatim, so constructs the analyzer
    only *skipped* (interface blocks, unparsed directives) round-trip
    into the written tree as real code.
    """
    import json
    from pathlib import Path

    from repro.fortran.frontend.lower import restore_opaque

    base = Path(out_dir)
    base.mkdir(parents=True, exist_ok=True)
    for f in result.codebase.files:
        target = base / f.name
        if not target.resolve().is_relative_to(base.resolve()):
            raise ValueError(f"file name {f.name!r} escapes the tree")
        target.parent.mkdir(parents=True, exist_ok=True)
        text = "\n".join(restore_opaque(ln) for ln in f.lines) + "\n"
        target.write_text(text)
    manifest = json.dumps(result.manifest_dict(), indent=2, sort_keys=True)
    (base / MANIFEST_FILE).write_text(manifest + "\n")


def read_manifest(out_dir) -> dict[str, FilePortStatus]:
    """Prior per-file statuses from an ``--out`` dir (empty if none)."""
    import json
    from pathlib import Path

    path = Path(out_dir) / MANIFEST_FILE
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    if doc.get("schema") != MANIFEST_SCHEMA:
        return {}
    return {
        d["name"]: FilePortStatus.from_dict(d) for d in doc.get("files", [])
    }


# -- differential verification -----------------------------------------------


@dataclass(frozen=True, slots=True)
class Check:
    """One differential check: name, verdict, human detail."""

    name: str
    ok: bool
    detail: str

    def render(self) -> str:
        return f"[{'ok' if self.ok else 'FAIL'}] {self.name}: {self.detail}"


@dataclass(slots=True)
class VerifyReport:
    """The three-way differential comparison vs the hand-built version."""

    target: PortTarget
    version: CodeVersion
    checks: list[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def render(self) -> str:
        head = (
            f"port --to {self.target.value} vs hand-built "
            f"{version_info(self.version).tag}"
        )
        return "\n".join([head, *(f"  {c.render()}" for c in self.checks)])


def _finding_keys(cb: Codebase) -> list[tuple]:
    from repro.analysis.fortran_lint import analyze_codebase

    return [
        (f.rule_id, f.file, f.line, f.message) for f in analyze_codebase(cb)
    ]


def _region_kinds(cb: Codebase) -> Counter:
    kinds: Counter = Counter()
    for f in cb.files:
        for region in find_parallel_regions(f):
            kinds[region.kind.name] += 1
    return kinds


def _dc_loop_count(cb: Codebase) -> int:
    return sum(
        1
        for _f, _i, ln in cb.iter_lines()
        if classify_line(ln) is LineKind.DO_CONCURRENT
    )


def verify_port(
    result: PortResult,
    *,
    code1: Codebase | None = None,
    budget: GeneratorBudget = MAS_BUDGET,
) -> VerifyReport:
    """Differential verification of a port against the hand-built version.

    (a) identical lint finding set, (b) exact Table I/II line counts and
    directive census (including the paper's numbers where Table I states
    them), (c) identical RegionKind multiset and DC loop count.
    """
    from repro.fortran.pipeline import build_version

    version = TARGET_VERSION[result.target]
    hand = build_version(version, code1=code1, budget=budget)
    ported = result.codebase
    report = VerifyReport(target=result.target, version=version)

    # (a) the analyzer sees the two trees identically
    mine, theirs = _finding_keys(ported), _finding_keys(hand)
    if mine == theirs:
        detail = f"identical finding set ({len(mine)} findings)"
    else:
        delta = set(mine).symmetric_difference(theirs)
        detail = f"finding sets differ ({len(delta)} disagreements)"
    report.checks.append(Check("lint", mine == theirs, detail))

    # (b) Table I line counts + Table II directive census
    pm, hm = measure(ported), measure(hand)
    lines_ok = (pm.total_lines, pm.acc_lines) == (hm.total_lines, hm.acc_lines)
    info = version_info(version)
    paper_bits = []
    # Table I's published numbers only apply to the full MAS-sized budget
    if budget is MAS_BUDGET:
        if lines_ok and info.paper_total_lines:
            lines_ok = pm.total_lines == info.paper_total_lines
            paper_bits.append(f"paper total {info.paper_total_lines}")
        if lines_ok and info.paper_acc_lines is not None:
            lines_ok = pm.acc_lines == info.paper_acc_lines
            paper_bits.append(f"paper acc {info.paper_acc_lines}")
    census_ok = directive_census(ported) == directive_census(hand)
    detail = (
        f"{pm.total_lines} lines / {pm.acc_lines} acc vs "
        f"{hm.total_lines} / {hm.acc_lines}"
    )
    if paper_bits:
        detail += f" ({', '.join(paper_bits)})"
    report.checks.append(Check("census", lines_ok and census_ok, detail))

    # (c) same region taxonomy left behind, same DC loop count
    pk, hk = _region_kinds(ported), _region_kinds(hand)
    pdc, hdc = _dc_loop_count(ported), _dc_loop_count(hand)
    kinds_ok = pk == hk and pdc == hdc
    detail = (
        f"regions {dict(sorted(pk.items())) or '{}'} / {pdc} DC loops vs "
        f"{dict(sorted(hk.items())) or '{}'} / {hdc}"
    )
    report.checks.append(Check("regions", kinds_ok, detail))
    return report
