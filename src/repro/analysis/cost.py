"""Porting-cost estimation (``repro lint --cost``).

Answers the question the paper's Section 4 answers for MAS -- *how much
work is this port?* -- for any tree the front end can lower: every
OpenACC parallel region is bucketed by the dependence core's
:class:`~repro.analysis.fortran_lint.PortSafety` verdict, with region
and directive line counts per bucket, plus a projected Table-I-style
census of what ``repro port --to dc`` would leave behind (convertible
regions lose their directives; UNSAFE regions keep them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.fortran_lint import PortSafety, region_port_safety
from repro.fortran.lexer import LineKind, classify_line
from repro.fortran.metrics import measure
from repro.fortran.parser import find_parallel_regions
from repro.fortran.source import Codebase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.interproc import InterprocResult
    from repro.fortran.frontend.lower import ParseCensus

#: Stable report order for the safety classes.
_BUCKET_ORDER = (
    PortSafety.SAFE_F2018,
    PortSafety.NEEDS_REDUCE,
    PortSafety.NEEDS_ATOMIC,
    PortSafety.UNSAFE,
)

#: What each verdict costs, for the human summary line.
_BUCKET_NOTE = {
    PortSafety.SAFE_F2018: "mechanical: plain do concurrent",
    PortSafety.NEEDS_REDUCE: "needs F202x reduce() clauses",
    PortSafety.NEEDS_ATOMIC: "needs atomics kept or loops flipped",
    PortSafety.UNSAFE: "do not port: loop-carried hazard",
}


@dataclass(slots=True)
class CostBucket:
    """All regions sharing one analyzer verdict."""

    safety: PortSafety
    regions: int = 0
    loc: int = 0              # region body lines, inclusive of delimiters
    directive_lines: int = 0  # !$acc lines inside those regions
    sites: list[tuple[str, int]] = field(default_factory=list)  # (file, 1-based)


@dataclass(slots=True)
class CostReport:
    """The full porting-cost picture for one tree."""

    name: str
    buckets: dict[PortSafety, CostBucket]
    total_lines: int
    acc_lines: int
    dc_loops: int
    skipped_regions: int = 0  # regions the structural parser lost anyway
    census: "ParseCensus | None" = None
    summarized_procedures: int = 0  # call-graph summaries backing the verdicts
    call_blocked_regions: int = 0   # regions UNSAFE only due to callee effects

    @property
    def convertible_directive_lines(self) -> int:
        return sum(
            b.directive_lines for s, b in self.buckets.items()
            if s is not PortSafety.UNSAFE
        )

    @property
    def projected_acc_lines(self) -> int:
        """Directive lines left after ``port --to dc`` converts what it can."""
        return max(0, self.acc_lines - self.convertible_directive_lines)

    def render(self) -> str:
        """Byte-stable text report (CI gates on exact equality)."""
        out = [f"porting-cost report: {self.name}"]
        out.append(
            f"{'safety class':<14}  {'regions':>7}  {'loc':>6}  "
            f"{'acc-lines':>9}  note"
        )
        for safety in _BUCKET_ORDER:
            b = self.buckets[safety]
            out.append(
                f"{safety.value:<14}  {b.regions:>7}  {b.loc:>6}  "
                f"{b.directive_lines:>9}  {_BUCKET_NOTE[safety]}"
            )
        total_regions = sum(b.regions for b in self.buckets.values())
        out.append(
            f"{'total':<14}  {total_regions:>7}  "
            f"{sum(b.loc for b in self.buckets.values()):>6}  "
            f"{sum(b.directive_lines for b in self.buckets.values()):>9}"
        )
        if self.skipped_regions:
            out.append(f"(+ {self.skipped_regions} regions skipped by the parser)")
        unsafe = self.buckets[PortSafety.UNSAFE]
        out.append(
            f"tree: {self.total_lines} lines, {self.acc_lines} !$acc lines, "
            f"{self.dc_loops} do concurrent loops"
        )
        out.append(
            f"interprocedural: {self.summarized_procedures} procedure "
            f"summaries, {self.call_blocked_regions} regions blocked by "
            f"callee side effects"
        )
        out.append(
            f"projected after port --to dc: {self.projected_acc_lines} !$acc "
            f"lines remain ({self.convertible_directive_lines} removed from "
            f"{total_regions - unsafe.regions} convertible regions, "
            f"{unsafe.regions} unsafe regions keep theirs)"
        )
        if self.census is not None:
            out.append(
                f"front-end parse census: {self.census.total_lines} lines, "
                f"{self.census.opaque_lines} opaque, coverage "
                f"{self.census.coverage:.4f}"
            )
        return "\n".join(out)


def estimate_cost(
    cb: Codebase,
    *,
    census: "ParseCensus | None" = None,
    interproc: "InterprocResult | None" = None,
) -> CostReport:
    """Bucket every parallel region of ``cb`` by its porting verdict.

    Tolerant by construction: a file or region the structural parser
    cannot hold is counted in ``skipped_regions`` rather than raised --
    on front-end-lowered trees this stays zero.

    Calls are priced by their callee's side-effect summary rather than
    pessimistically: ``interproc`` (computed here when not passed in)
    moves a region to UNSAFE only when a call site provably blocks the
    port (impure callee or module-variable write), and leaves regions
    calling pure or unresolvable routines in their dependence bucket.
    """
    from repro.analysis.interproc import region_call_blockers, summarize

    ip = interproc if interproc is not None else summarize(cb)
    buckets = {s: CostBucket(safety=s) for s in _BUCKET_ORDER}
    skipped = 0
    call_blocked = 0
    for f in cb.files:
        try:
            regions = find_parallel_regions(f)
        except ValueError:
            skipped += 1
            continue
        for region in regions:
            try:
                safety = region_port_safety(f, region)
            except (ValueError, IndexError):
                skipped += 1
                continue
            if safety is not PortSafety.UNSAFE and region_call_blockers(
                f, region, ip
            ):
                safety = PortSafety.UNSAFE
                call_blocked += 1
            b = buckets[safety]
            b.regions += 1
            b.loc += region.end - region.start + 1
            b.directive_lines += len(region.directive_lines)
            b.sites.append((f.name, region.start + 1))
    met = measure(cb)
    dc_loops = sum(
        1 for _f, _i, ln in cb.iter_lines()
        if classify_line(ln) is LineKind.DO_CONCURRENT
    )
    return CostReport(
        name=cb.name,
        buckets=buckets,
        total_lines=met.total_lines,
        acc_lines=met.acc_lines,
        dc_loops=dc_loops,
        skipped_regions=skipped,
        census=census,
        summarized_procedures=len(ip.summaries),
        call_blocked_regions=call_blocked,
    )
