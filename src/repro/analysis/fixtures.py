"""Fixture corpora for the analyzer: seeded bugs and a clean twin.

:func:`seeded_bug_codebase` emits one small file per rule, each containing
exactly the unsafe pattern its rule describes; :data:`EXPECTED_SEEDED`
maps file name -> the rule IDs the analyzer must report there (the test
asserts both directions: every expectation found, nothing extra).

:func:`clean_codebase` exercises the same constructs written *correctly*
(declared reductions, atomics, local clauses, covered data regions) and
must produce literally zero findings -- the false-positive regression
gate.
"""

from __future__ import annotations

from repro.fortran.source import Codebase, SourceFile


def _f(name: str, *lines: str) -> SourceFile:
    return SourceFile(name, list(lines))


def seeded_bug_codebase() -> Codebase:
    """One file per rule, each seeded with exactly that bug."""
    files = [
        _f(
            "bug_dc001_carried.f90",
            "!$acc parallel default(present)",
            "!$acc loop collapse(3)",
            "      do k=1,n3",
            "      do j=1,n2",
            "      do i=1,n1",
            "        a(i,j,k) = a(i-1,j,k) + b(i,j,k)",
            "      enddo",
            "      enddo",
            "      enddo",
            "!$acc end parallel",
        ),
        _f(
            "bug_dc001_dc_read.f90",
            "      do concurrent (i=1:n1, j=1:n2)",
            "        c(i,j) = c(i,j+1) * 0.5",
            "      enddo",
        ),
        _f(
            "bug_dc002_reduction.f90",
            "!$acc parallel default(present)",
            "!$acc loop collapse(3)",
            "      do k=1,n3",
            "      do j=1,n2",
            "      do i=1,n1",
            "        s = s + e(i,j,k)**2",
            "      enddo",
            "      enddo",
            "      enddo",
            "!$acc end parallel",
        ),
        _f(
            "bug_dc003_shared.f90",
            "      do concurrent (j=1:n2, i=1:n1)",
            "        col(i) = col(i) + q(i,j)",
            "      enddo",
        ),
        _f(
            "bug_dc004_scalar.f90",
            "      do concurrent (i=1:n1)",
            "        b(i) = smooth * a(i)",
            "        smooth = a(i)",
            "      enddo",
        ),
        _f(
            "bug_dc005_indirect.f90",
            "      do concurrent (i=1:n1, j=1:n2)",
            "        hist(bin(i,j)) = hist(bin(i,j)) + 1",
            "      enddo",
        ),
        _f(
            "bug_dc006_region.f90",
            "!$acc parallel default(present)",
            "!$acc loop collapse(2)",
            "      do j=1,n2",
            "      do i=1,n1",
            "        p(i,j) = a(i,j) * w1",
            "      enddo",
            "      enddo",
            "!$acc loop collapse(2)",
            "      do j=1,n2",
            "      do i=1,n1",
            "        q(i,j) = p(i,j) * w2",
            "      enddo",
            "      enddo",
            "!$acc end parallel",
        ),
        _f(
            "bug_acc101_orphan_end.f90",
            "      do i=1,n1",
            "        x(i) = y(i)",
            "      enddo",
            "!$acc end parallel",
        ),
        _f(
            "bug_acc102_orphan_cont.f90",
            "      nrm = 0.",
            "!$acc& copyin(aux0)",
        ),
        _f(
            "bug_acc103_idle_wait.f90",
            "!$acc parallel default(present) async(1)",
            "!$acc loop collapse(2)",
            "      do j=1,n2",
            "      do i=1,n1",
            "        u(i,j) = v(i,j) + w0",
            "      enddo",
            "      enddo",
            "!$acc end parallel",
            "!$acc wait(7)",
        ),
        _f(
            "bug_um201_uncovered.f90",
            "!$acc enter data copyin(covered)",
            "!$acc parallel default(present)",
            "!$acc loop collapse(2)",
            "      do j=1,n2",
            "      do i=1,n1",
            "        stray(i,j) = covered(i,j) * 2.0",
            "      enddo",
            "      enddo",
            "!$acc end parallel",
            "!$acc exit data delete(covered)",
            "!$acc exit data delete(stray)",
        ),
        _f(
            "bug_um203_phantom.f90",
            "!$acc enter data copyin(real_arr)",
            "!$acc update host(phantom)",
            "!$acc exit data delete(real_arr)",
        ),
    ]
    return Codebase("seeded_bugs", files)


#: file name -> rule IDs the analyzer must (exactly) report there.
EXPECTED_SEEDED: dict[str, tuple[str, ...]] = {
    "bug_dc001_carried.f90": ("DC001",),
    "bug_dc001_dc_read.f90": ("DC001",),
    "bug_dc002_reduction.f90": ("DC002",),
    "bug_dc003_shared.f90": ("DC003",),
    "bug_dc004_scalar.f90": ("DC004",),
    "bug_dc005_indirect.f90": ("DC005",),
    "bug_dc006_region.f90": ("DC006",),
    "bug_acc101_orphan_end.f90": ("ACC101",),
    "bug_acc102_orphan_cont.f90": ("ACC102",),
    "bug_acc103_idle_wait.f90": ("ACC103",),
    "bug_um201_uncovered.f90": ("UM201", "UM202"),  # stray: touched + exited
    "bug_um203_phantom.f90": ("UM203",),
}


def clean_codebase() -> Codebase:
    """The same constructs, written safely: must lint to zero findings."""
    files = [
        _f(
            "ok_plain.f90",
            "!$acc parallel default(present)",
            "!$acc loop collapse(3)",
            "      do k=1,n3",
            "      do j=1,n2",
            "      do i=1,n1",
            "        a(i,j,k) = b(i,j,k) + c0 * d(i,j,k)",
            "      enddo",
            "      enddo",
            "      enddo",
            "!$acc end parallel",
        ),
        _f(
            "ok_reduction.f90",
            "!$acc parallel default(present)",
            "!$acc loop collapse(3) reduction(+:s)",
            "      do k=1,n3",
            "      do j=1,n2",
            "      do i=1,n1",
            "        s = s + e(i,j,k)**2",
            "      enddo",
            "      enddo",
            "      enddo",
            "!$acc end parallel",
        ),
        _f(
            "ok_dc_reduce.f90",
            "      do concurrent (i=1:n1) reduce(+:total)",
            "        total = total + f(i)",
            "      enddo",
        ),
        _f(
            "ok_atomic.f90",
            "!$acc parallel default(present)",
            "!$acc loop collapse(2)",
            "      do j=1,n2",
            "      do i=1,n1",
            "!$acc atomic update",
            "        hist(bin(i,j)) = hist(bin(i,j)) + 1",
            "      enddo",
            "      enddo",
            "!$acc end parallel",
        ),
        _f(
            "ok_private_scalar.f90",
            "      do concurrent (i=1:n1)",
            "        tmp = a(i) * 0.5",
            "        b(i) = tmp + tmp**2",
            "      enddo",
        ),
        _f(
            "ok_local_clause.f90",
            "      do concurrent (i=1:n1) local(buf)",
            "        c(i) = buf + a(i)",
            "      enddo",
        ),
        _f(
            "ok_independent_region.f90",
            "!$acc parallel default(present) async(1)",
            "!$acc loop collapse(2)",
            "      do j=1,n2",
            "      do i=1,n1",
            "        p(i,j) = a(i,j) * w1",
            "      enddo",
            "      enddo",
            "!$acc loop collapse(2)",
            "      do j=1,n2",
            "      do i=1,n1",
            "        q(i,j) = b(i,j) * w2",
            "      enddo",
            "      enddo",
            "!$acc end parallel",
            "!$acc wait(1)",
        ),
        _f(
            "ok_data_coverage.f90",
            "!$acc enter data copyin(rho, temp)",
            "!$acc& copyin(vmag)",
            "!$acc parallel default(present)",
            "!$acc loop collapse(2)",
            "      do j=1,n2",
            "      do i=1,n1",
            "        vmag(i,j) = rho(i,j) * temp(i,j)",
            "      enddo",
            "      enddo",
            "!$acc end parallel",
            "!$acc update host(vmag)",
            "!$acc exit data delete(rho, temp)",
            "!$acc& delete(vmag)",
        ),
    ]
    return Codebase("clean_corpus", files)
