"""Shared dependence core: hazard sets and Fortran access analysis.

This module is the single place the repo answers "may these two pieces of
work race?" -- both the runtime (fusion planner, shadow checker) and the
Fortran lint front end build on it:

* :func:`hazards_between` / :func:`depends` -- classic RAW/WAR/WAW set
  logic over named read/write sets (what the fusion planner and the async
  race detector need);
* :func:`array_refs` / :func:`classify_subscript` /
  :func:`analyze_loop_body` -- statement-level analysis of a Fortran loop
  body relative to its parallel indices, deciding whether the loop is safe
  to express as ``do concurrent`` (no loop-carried dependences, reductions
  declared, scalars privatizable) per the paper's SIV port taxonomy.

The module is dependency-free (strings and stdlib only) so both
``repro.runtime`` and ``repro.fortran`` can import it without cycles.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence


class Hazard(enum.Enum):
    """Data-dependence hazard kinds between an earlier and a later access."""

    RAW = "raw"  # read-after-write (true dependence)
    WAR = "war"  # write-after-read (anti dependence)
    WAW = "waw"  # write-after-write (output dependence)


#: Separator for qualified access tokens: ``"rho@g2m"`` names a disjoint
#: sub-region (here: the axis-2 minus ghost shell) of logical array ``rho``.
ACCESS_QUALIFIER_SEP = "@"


def split_access(token: str) -> tuple[str, str]:
    """Split an access token into (base array name, region qualifier).

    An unqualified token (no ``@``) covers the whole array; its qualifier
    is the empty string.
    """
    base, _, qual = token.partition(ACCESS_QUALIFIER_SEP)
    return base, qual


def base_name(token: str) -> str:
    """The logical array a (possibly qualified) access token refers to."""
    return token.partition(ACCESS_QUALIFIER_SEP)[0]


def accesses_alias(a: str, b: str) -> bool:
    """May the two access tokens touch overlapping storage?

    Different base arrays never alias. Same base array: an unqualified
    access covers everything (aliases with any qualifier); two qualified
    accesses alias only when they name the same sub-region. Distinct
    qualifiers of the same array are disjoint *by convention* -- emitters
    (e.g. the halo engine's per-direction ghost-shell unpacks) must only
    use qualifiers for regions that genuinely do not overlap.
    """
    ab, aq = split_access(a)
    bb, bq = split_access(b)
    if ab != bb:
        return False
    return not aq or not bq or aq == bq


def _any_alias(first: Iterable[str], second: set[str]) -> bool:
    return any(accesses_alias(a, b) for a in first for b in second)


def hazards_between(
    first_reads: Iterable[str],
    first_writes: Iterable[str],
    second_reads: Iterable[str],
    second_writes: Iterable[str],
) -> frozenset[Hazard]:
    """Hazards forcing ``second`` to run after ``first``.

    Operates on named access sets (logical arrays); the runtime fusion
    planner, the async-queue race detector, and the region-level Fortran
    lint all call this instead of keeping private copies of the set logic.
    Tokens may carry a region qualifier (``"rho@g2m"``); qualified accesses
    of the same array with different qualifiers are treated as disjoint
    (see :func:`accesses_alias`).
    """
    fr = set(first_reads)
    fw, sr, sw = set(first_writes), set(second_reads), set(second_writes)
    out = set()
    if any(ACCESS_QUALIFIER_SEP in t for t in fr | fw | sr | sw):
        if _any_alias(sr, fw):
            out.add(Hazard.RAW)
        if _any_alias(sw, fr):
            out.add(Hazard.WAR)
        if _any_alias(sw, fw):
            out.add(Hazard.WAW)
        return frozenset(out)
    if sr & fw:
        out.add(Hazard.RAW)
    if sw & fr:
        out.add(Hazard.WAR)
    if sw & fw:
        out.add(Hazard.WAW)
    return frozenset(out)


def depends(
    first_reads: Iterable[str],
    first_writes: Iterable[str],
    second_reads: Iterable[str],
    second_writes: Iterable[str],
) -> bool:
    """True if any hazard orders ``second`` after ``first``."""
    return bool(hazards_between(first_reads, first_writes, second_reads, second_writes))


# -- Fortran expression parsing ------------------------------------------------

_IDENT = r"[a-z_]\w*"
#: name( ... ) with at most one nested paren level (enough for indirect
#: subscripts like hist(bin0(i,j))).
_REF_RE = re.compile(rf"\b({_IDENT})\s*(\([^()]*(?:\([^()]*\)[^()]*)*\))", re.I)
_IDENT_RE = re.compile(rf"\b({_IDENT})\b(?!\s*\()", re.I)
_LHS_RE = re.compile(rf"^\s*({_IDENT})\s*(\(.*\))?\s*$", re.I | re.S)
_SHIFT_RE = re.compile(rf"^({_IDENT})[+-]\w+$|^\w+[+-]({_IDENT})$", re.I)
_ASSIGN_SPLIT_RE = re.compile(r"(?<![=<>/*+\-])=(?!=)")

#: Intrinsics whose parenthesized form is a call, not an array reference.
INTRINSICS = frozenset(
    {
        "abs", "atan2", "cos", "dble", "exp", "huge", "int", "log", "max",
        "maxval", "merge", "min", "minval", "mod", "nint", "real", "sign",
        "sin", "size", "sqrt", "sum", "tiny",
    }
)

_KEYWORDS = frozenset({"if", "then", "else", "endif", "and", "or", "not"})


@dataclass(frozen=True, slots=True)
class ArrayRef:
    """One ``name(sub, sub, ...)`` reference with normalized subscripts."""

    name: str
    subscripts: tuple[str, ...]

    @property
    def key(self) -> tuple[str, ...]:
        """Normalized subscript tuple for exact-match comparison."""
        return self.subscripts


def _split_top_commas(text: str) -> list[str]:
    """Split on commas outside parentheses."""
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur))
    return parts


def _normalize(text: str) -> str:
    return re.sub(r"\s+", "", text.lower())


def array_refs(expr: str) -> list[ArrayRef]:
    """Outermost array references in an expression (intrinsics unwrapped).

    References *inside* subscripts (indirect addressing) are not returned
    here; callers recurse via :func:`array_refs` on the subscript texts
    when they need the full read set.
    """
    out: list[ArrayRef] = []
    for m in _REF_RE.finditer(expr):
        name = m.group(1).lower()
        inner = m.group(2)[1:-1]
        if name in INTRINSICS:
            out.extend(array_refs(inner))
        else:
            subs = tuple(_normalize(s) for s in _split_top_commas(inner))
            out.append(ArrayRef(name, subs))
    return out


def scalar_reads(expr: str) -> set[str]:
    """Plain identifiers read in an expression (not followed by ``(``)."""
    out = set()
    for m in _IDENT_RE.finditer(expr):
        name = m.group(1).lower()
        if name not in _KEYWORDS and name not in INTRINSICS:
            out.add(name)
    return out


class SubscriptKind(enum.Enum):
    """How one subscript expression relates to the parallel indices."""

    INDEX = "index"        # exactly one parallel index variable
    SHIFTED = "shifted"    # parallel index +/- offset (or other use of one)
    INDIRECT = "indirect"  # contains an array reference (lookup table)
    FREE = "free"          # no parallel index involved (const, seq var, :)


def classify_subscript(text: str, indices: Sequence[str]) -> SubscriptKind:
    """Classify a subscript relative to the loop's parallel indices."""
    s = _normalize(text)
    idx = {i.lower() for i in indices}
    if s in idx:
        return SubscriptKind.INDEX
    if "(" in s:
        return SubscriptKind.INDIRECT
    used = {m.group(1).lower() for m in _IDENT_RE.finditer(s)}
    if used & idx:
        # i-1, i+1, 2*i, n1-i ... anything arithmetic on a parallel index
        return SubscriptKind.SHIFTED
    return SubscriptKind.FREE


@dataclass(frozen=True, slots=True)
class Statement:
    """One candidate assignment statement inside a loop body."""

    line: int          # 0-based index into the source file
    text: str
    protected: bool = False  # directly preceded by an !$acc atomic


def parse_assignment(text: str) -> tuple[str, str] | None:
    """Split ``lhs = rhs``; None for non-assignment statements."""
    code = text.split("!")[0]
    m = _ASSIGN_SPLIT_RE.search(code)
    if m is None:
        return None
    lhs, rhs = code[: m.start()], code[m.end():]
    if not _LHS_RE.match(lhs):
        return None
    return lhs.strip(), rhs.strip()


# -- loop-body dependence report ----------------------------------------------


@dataclass(frozen=True, slots=True)
class ArrayIssue:
    """One problematic array access pattern inside a loop."""

    array: str
    line: int
    detail: str


@dataclass(frozen=True, slots=True)
class ScalarIssue:
    """One problematic scalar pattern inside a loop."""

    scalar: str
    line: int
    detail: str


@dataclass(slots=True)
class LoopReport:
    """Everything :func:`analyze_loop_body` decided about one loop."""

    carried: list[ArrayIssue] = field(default_factory=list)        # DC001
    undeclared_reductions: list[ScalarIssue] = field(default_factory=list)  # DC002
    shared_writes: list[ArrayIssue] = field(default_factory=list)  # DC003
    carried_scalars: list[ScalarIssue] = field(default_factory=list)  # DC004
    indirect_writes: list[ArrayIssue] = field(default_factory=list)   # DC005
    #: protected (atomic) shared/indirect writes -- safe, but the port
    #: needs atomics retained or the Listing 4->5 reduction flip.
    atomic_protected: list[ArrayIssue] = field(default_factory=list)
    reads: set[str] = field(default_factory=set)    # array names read
    writes: set[str] = field(default_factory=set)   # array names written

    @property
    def safe(self) -> bool:
        """No error-level dependence issue (notes/atomics allowed)."""
        return not (self.carried or self.undeclared_reductions or self.shared_writes)


def analyze_loop_body(
    statements: Sequence[Statement],
    indices: Sequence[str],
    *,
    declared_reductions: Iterable[str] = (),
    locals_declared: Iterable[str] = (),
) -> LoopReport:
    """Dependence/locality analysis of one parallel loop body.

    ``indices`` are the loop's parallel index variables; ``declared_reductions``
    come from ``reduction(op:...)`` / ``reduce(op:...)`` clauses and
    ``locals_declared`` from DC ``local(...)`` clauses.
    """
    idx = tuple(i.lower() for i in indices)
    declared = {v.lower() for v in declared_reductions}
    localized = {v.lower() for v in locals_declared}
    report = LoopReport()

    # (subscripts, protected, line) per array
    writes: dict[str, list[tuple[ArrayRef, bool, int]]] = {}
    reads: dict[str, list[tuple[ArrayRef, int]]] = {}
    # scalar event stream: (name, is_write, reads_own_value, line) in order
    scalar_events: list[tuple[str, bool, bool, int]] = []

    for st in statements:
        parsed = parse_assignment(st.text)
        if parsed is None:
            continue
        lhs_text, rhs_text = parsed
        rhs_refs = array_refs(rhs_text)
        rhs_scalars = scalar_reads(rhs_text)
        m = _LHS_RE.match(lhs_text)
        assert m is not None
        lhs_name = m.group(1).lower()

        # reads: RHS refs, plus refs nested inside every subscript
        def record_read(ref: ArrayRef) -> None:
            reads.setdefault(ref.name, []).append((ref, st.line))
            report.reads.add(ref.name)
            for sub in ref.subscripts:
                for inner in array_refs(sub):
                    record_read(inner)
                rhs_scalars.update(scalar_reads(sub) - {ref.name})

        for ref in rhs_refs:
            record_read(ref)

        if m.group(2):  # array LHS
            subs = tuple(_normalize(s) for s in _split_top_commas(m.group(2)[1:-1]))
            wref = ArrayRef(lhs_name, subs)
            writes.setdefault(lhs_name, []).append((wref, st.protected, st.line))
            report.writes.add(lhs_name)
            for sub in subs:  # subscript contents are reads
                for inner in array_refs(sub):
                    record_read(inner)
                rhs_scalars.update(scalar_reads(sub))
        for name in sorted(rhs_scalars):
            scalar_events.append((name, False, False, st.line))
        if not m.group(2):  # scalar LHS
            scalar_events.append(
                (lhs_name, True, lhs_name in rhs_scalars, st.line)
            )

    _judge_arrays(report, writes, reads, idx)
    _judge_scalars(report, scalar_events, declared, localized)
    return report


def _judge_arrays(
    report: LoopReport,
    writes: dict[str, list[tuple[ArrayRef, bool, int]]],
    reads: dict[str, list[tuple[ArrayRef, int]]],
    idx: tuple[str, ...],
) -> None:
    for name, wlist in writes.items():
        plain_write_keys: set[tuple[str, ...]] = set()
        for wref, protected, line in wlist:
            kinds = [classify_subscript(s, idx) for s in wref.subscripts]
            if any(k is SubscriptKind.SHIFTED for k in kinds):
                report.carried.append(
                    ArrayIssue(name, line, f"write at shifted index {wref.subscripts}")
                )
                continue
            if any(k is SubscriptKind.INDIRECT for k in kinds):
                issue = ArrayIssue(
                    name, line, f"write through indirect subscript {wref.subscripts}"
                )
                (report.atomic_protected if protected else report.indirect_writes
                 ).append(issue)
                continue
            coverage = {
                s for s, k in zip(wref.subscripts, kinds) if k is SubscriptKind.INDEX
            }
            missing = [i for i in idx if i not in coverage]
            if missing:
                issue = ArrayIssue(
                    name, line,
                    f"element shared across iterations of {','.join(missing)}",
                )
                (report.atomic_protected if protected else report.shared_writes
                 ).append(issue)
                continue
            plain_write_keys.add(wref.key)
        # reads of a written array must match a write location exactly
        all_write_keys = {w.key for w, _, _ in wlist}
        for rref, line in reads.get(name, []):
            if rref.key in all_write_keys:
                continue
            if not plain_write_keys:
                continue  # already reported on the write side
            report.carried.append(
                ArrayIssue(
                    name, line,
                    f"read at {rref.subscripts} of array written at "
                    f"{sorted(plain_write_keys)[0]}",
                )
            )


def _judge_scalars(
    report: LoopReport,
    events: list[tuple[str, bool, bool, int]],
    declared: set[str],
    localized: set[str],
) -> None:
    assigned_first: set[str] = set()
    read_first: dict[str, int] = {}
    accumulates: set[str] = set()
    written: set[str] = set()
    for name, is_write, reads_self, line in events:
        if is_write:
            written.add(name)
            if reads_self:
                accumulates.add(name)
            if name not in read_first:
                assigned_first.add(name)
        else:
            if name not in assigned_first and name not in read_first:
                read_first[name] = line
    for name in sorted(written):
        if name in declared or name in localized or name in assigned_first:
            continue
        if name not in read_first:
            continue
        line = read_first[name]
        if name in accumulates:
            report.undeclared_reductions.append(
                ScalarIssue(name, line, "accumulated without a reduction clause")
            )
        else:
            report.carried_scalars.append(
                ScalarIssue(
                    name, line, "read before assignment; needs privatization"
                )
            )
