"""Interprocedural purity and side-effect analysis (call-graph summaries).

The paper's porting constraint that ``do concurrent`` bodies may only
invoke ``pure`` procedures cannot be checked one loop at a time: an
impure ``call`` inside a hot region, a module variable written three
files away, or an aliased actual/dummy pair is invisible to per-loop
analysis. This module builds the whole-codebase call graph from the
frontend symbol index (:mod:`repro.fortran.frontend.resolve`, including
``use``-renamed and ``contains``-nested routines), computes per-procedure
side-effect summaries bottom-up over the SCC condensation (a fixed point
handles recursion), and derives the ``IP1xx`` rule family:

* **IP101** -- impure call inside a ``do concurrent``/parallel region
  (with a ``pure``-attribute fix-it when the summary proves the callee
  effectively pure);
* **IP102** -- hidden loop-carried dependence through a module variable
  written (transitively) by a callee;
* **IP103** -- actual-argument aliasing that violates the callee's dummy
  ``intent`` pattern;
* **IP104** -- declared-vs-inferred ``intent`` mismatches and missing
  ``intent`` on routines called from parallel regions, with inference
  fix-its.

Summaries are cached keyed by a content hash of the routine body, its
visible module environment, and its callees' keys -- so re-lint after an
edit recomputes only the changed routine and its (transitive) callers,
and ``--jobs N`` workers share the one serial summary pass that runs
after the per-file pool.

Direction of conservatism: a finding is only emitted on *proof*. Calls
to routines the tree does not define resolve to nothing and stay silent
(flagging every external library call would drown real findings), and a
routine whose body writes names the analyzer cannot place (undeclared,
neither dummy nor module variable) is ``UNKNOWN`` -- neither trusted as
pure nor reported as impure.
"""

from __future__ import annotations

import enum
import hashlib
import json
import re
from dataclasses import dataclass, field, replace

from repro.analysis.dependence import INTRINSICS
from repro.analysis.findings import Finding, RelatedLocation
from repro.analysis.fixes import Fix
from repro.fortran.lexer import LineKind, classify_line, called_name
from repro.fortran.frontend.resolve import ModuleIndex, RoutineSym, build_index
from repro.fortran.parser import (
    ParallelRegion,
    declared_entities,
    declared_intent,
    find_parallel_regions,
)
from repro.fortran.source import Codebase, SourceFile

_IDENT_RE = re.compile(r"\b([a-z_]\w*)\b", re.I)
_ASSIGN_SPLIT_RE = re.compile(r"(?<![=<>/*+\-])=(?![=>])")
_LHS_TAIL_RE = re.compile(
    r"([a-z_]\w*)\s*(?:\((?:[^()]|\([^()]*\))*\))?\s*"
    r"(?:%\s*\w+\s*(?:\((?:[^()]|\([^()]*\))*\))?\s*)*$",
    re.I,
)
_IO_RE = re.compile(
    r"^\s*(write|print|open|close|rewind|flush|inquire|backspace|endfile)\b"
    r"|^\s*read\s*\(",
    re.I,
)
_STOP_RE = re.compile(r"^\s*(error\s+)?stop\b", re.I)
_ALLOC_RE = re.compile(r"^\s*(de)?allocate\s*\(", re.I)
_CALL_ARGS_RE = re.compile(r"^\s*call\s+\w+\s*\((.*)\)\s*$", re.I)
_INTENT_CLAUSE_RE = re.compile(r"\bintent\s*\(\s*in\s*\)", re.I)

#: Statement keywords never counted as variable reads.
_STMT_WORDS = frozenset(
    {
        "if", "then", "else", "elseif", "endif", "end", "do", "enddo",
        "while", "concurrent", "call", "exit", "cycle", "return", "where",
        "elsewhere", "endwhere", "select", "case", "stop", "error", "only",
        "use", "true", "false", "and", "or", "not", "eq", "ne", "lt", "le",
        "gt", "ge", "eqv", "neqv", "allocate", "deallocate", "write",
        "print", "read", "open", "close", "rewind", "flush", "inquire",
        "backspace", "endfile", "result", "implicit", "none",
    }
) | INTRINSICS

#: Cap on the cross-run summary cache (entries, not bytes).
_CACHE_LIMIT = 8192
_SUMMARY_CACHE: dict[str, "ProcedureSummary"] = {}
_MODVAR_CACHE: dict[tuple[str, str], dict[str, frozenset[str]]] = {}


def clear_summary_cache() -> None:
    """Drop every cached summary (tests and memory hygiene)."""
    _SUMMARY_CACHE.clear()
    _MODVAR_CACHE.clear()


class Purity(enum.Enum):
    """Three-state inferred purity of one procedure."""

    PURE = "pure"        # provably side-effect free
    IMPURE = "impure"    # provable side effect, with evidence sites
    UNKNOWN = "unknown"  # unresolved calls or unplaceable writes


@dataclass(frozen=True, slots=True)
class Effect:
    """One impurity evidence site inside a procedure (or a callee)."""

    kind: str    # "global-write" | "io" | "stop" | "allocate-global"
    detail: str  # the variable / statement the effect is about
    file: str
    line: int    # 0-based


@dataclass(frozen=True, slots=True)
class CallSite:
    """One ``call`` statement, with the actual arguments' base names."""

    callee: str
    file: str
    line: int  # 0-based
    actuals: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class ProcedureSummary:
    """Everything the analyzer knows about one procedure's side effects."""

    name: str
    kind: str
    file: str
    line: int        # 0-based definition line
    end_line: int
    module: str = ""
    declared_pure: bool = False
    acc_routine: bool = False
    dummies: tuple[str, ...] = ()
    #: dummy -> declared intent ("" when the declaration carries none)
    declared_intents: tuple[tuple[str, str], ...] = ()
    dummy_reads: frozenset[str] = frozenset()
    dummy_writes: frozenset[str] = frozenset()
    globals_read: tuple[str, ...] = ()     # qualified module::var, sorted
    globals_written: tuple[str, ...] = ()  # qualified module::var, sorted
    effects: tuple[Effect, ...] = ()       # impurity evidence, transitive
    calls: tuple[CallSite, ...] = ()
    unresolved_calls: tuple[str, ...] = ()
    purity: Purity = Purity.UNKNOWN
    key: str = ""  # content-hash cache key

    def declared_intent_of(self, dummy: str) -> str:
        return dict(self.declared_intents).get(dummy, "")

    def inferred_intent_of(self, dummy: str) -> str:
        """in/out/inout from the observed reads and writes (in if unused)."""
        if dummy in self.dummy_writes:
            return "inout" if dummy in self.dummy_reads else "out"
        return "in"

    def writes_dummy(self, dummy: str) -> bool:
        """Declared or inferred: does the procedure write this dummy?"""
        return (
            dummy in self.dummy_writes
            or self.declared_intent_of(dummy) in ("out", "inout")
        )


@dataclass(slots=True)
class CacheStats:
    """Summary-cache traffic for one :func:`summarize` call."""

    hits: int = 0
    misses: int = 0


@dataclass(slots=True)
class InterprocResult:
    """Call graph + per-procedure summaries for one codebase."""

    index: ModuleIndex
    summaries: dict[str, ProcedureSummary] = field(default_factory=dict)
    order: tuple[str, ...] = ()  # bottom-up summarization order
    stats: CacheStats = field(default_factory=CacheStats)

    def summary_for_call(
        self, name: str, file: str | None = None
    ) -> ProcedureSummary | None:
        """Summary of a called routine, applying ``use`` renames."""
        sym = self.index.resolve_call(name, file)
        if sym is None:
            return None
        return self.summaries.get(sym.name)


@dataclass(frozen=True, slots=True)
class CallBlocker:
    """One call site that blocks porting its region to ``do concurrent``."""

    callee: str
    file: str
    line: int      # 0-based call line
    rule: str      # IP101 | IP102
    why: str       # human fragment: "writes module variable accum" ...
    fixable: bool  # True when the IP101 pure-attribute fix-it applies


# -- body scanning -------------------------------------------------------------


@dataclass(slots=True)
class _Block:
    """One routine's raw body facts before summary propagation."""

    sym: RoutineSym
    body_lines: list[int]
    body_hash: str
    env_hash: str
    calls: list[CallSite]
    locals_: set[str]
    intents: dict[str, str]
    decl_lines: dict[str, int]  # entity -> 0-based declaration line


def _identifiers(text: str) -> set[str]:
    return {
        m.group(1).lower()
        for m in _IDENT_RE.finditer(text)
        if m.group(1).lower() not in _STMT_WORDS
    }


def _split_top_commas(text: str) -> list[str]:
    out, depth, token = [], 0, ""
    for ch in text + ",":
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth = max(0, depth - 1)
        elif ch == "," and depth == 0:
            out.append(token.strip())
            token = ""
            continue
        token += ch
    return [t for t in out if t]


def _base_name(expr: str) -> str:
    m = re.match(r"\s*([a-z_]\w*)", expr, re.I)
    return m.group(1).lower() if m else ""


def _strip_if_guard(code: str) -> tuple[str, str]:
    """Split a one-line ``if (cond) action`` into (cond, action).

    Returns ``("", code)`` for anything else — including block ``if``
    headers, whose action part is ``then``.  Guarded statements carry
    the same side effects as bare ones (``if (ierr.ne.0) stop`` is the
    canonical production pattern), so every effect matcher runs on the
    action, never the raw line.
    """
    m = re.match(r"^\s*if\s*\(", code, re.I)
    if m is None:
        return "", code
    depth, i = 1, m.end()
    while i < len(code) and depth:
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
        i += 1
    action = code[i:].strip()
    if depth or not action or action.lower().startswith("then"):
        return "", code
    return code[m.end() - 1 : i], action


def _assignment_parts(code: str) -> tuple[str, str, str] | None:
    """Split an assignment into (guard, lhs base, rest-to-read), else None."""
    m = _ASSIGN_SPLIT_RE.search(code)
    if m is None:
        return None
    lhs_text, rhs = code[: m.start()], code[m.end():]
    tail = _LHS_TAIL_RE.search(lhs_text)
    if tail is None:
        return None
    return lhs_text[: tail.start()], tail.group(1).lower(), rhs


def _file_module_variables(
    file: SourceFile, index: ModuleIndex
) -> dict[str, frozenset[str]]:
    """One file's module -> spec-part variable names."""
    out: dict[str, set[str]] = {}
    current = ""
    in_spec = False
    for line in file.lines:
        kind = classify_line(line)
        if kind is LineKind.MODULE_START:
            m = re.match(r"^\s*module\s+(\w+)", line, re.I)
            if m and m.group(1).lower() != "procedure":
                current = m.group(1).lower()
                in_spec = current in index.modules
                out.setdefault(current, set())
            continue
        if kind in (LineKind.CONTAINS, LineKind.MODULE_END):
            in_spec = False
            current = "" if kind is LineKind.MODULE_END else current
            continue
        if in_spec and current and "parameter" not in line.lower():
            out[current].update(declared_entities(line))
    return {m: frozenset(vs) for m, vs in out.items()}


def _module_variables(cb: Codebase, index: ModuleIndex) -> dict[str, set[str]]:
    """module -> variable names declared in its specification part.

    Per-file fragments are cached by content hash: a module's spec part
    depends only on its own file, and this scan is a large share of the
    warm summary pass on big trees.
    """
    out: dict[str, set[str]] = {}
    for file in cb.files:
        digest = hashlib.sha256("\n".join(file.lines).encode()).hexdigest()
        key = (file.name, digest)
        frag = _MODVAR_CACHE.get(key)
        if frag is None:
            frag = _file_module_variables(file, index)
            if len(_MODVAR_CACHE) >= _CACHE_LIMIT:
                _MODVAR_CACHE.clear()
            _MODVAR_CACHE[key] = frag
        for m, vs in frag.items():
            out.setdefault(m, set()).update(vs)
    return out


def _visible_globals(
    sym: RoutineSym,
    index: ModuleIndex,
    module_vars: dict[str, set[str]],
) -> dict[str, str]:
    """local name -> qualified ``module::var`` visible inside ``sym``."""
    visible: dict[str, str] = {}
    for edge in index.use_edges.get(sym.file, ()):
        mvars = module_vars.get(edge.module)
        if mvars is None:
            continue
        if edge.only:
            for local, actual in edge.only:
                if actual in mvars:
                    visible[local] = f"{edge.module}::{actual}"
        else:
            for v in mvars:
                visible[v] = f"{edge.module}::{v}"
    if sym.module:
        for v in module_vars.get(sym.module, ()):
            visible[v] = f"{sym.module}::{v}"
    return visible


def _scan_block(cb: Codebase, sym: RoutineSym) -> _Block:
    """Phase-1 scan: body extent, hash, call sites, locals, intents."""
    file = cb.file(sym.file)
    body = list(range(sym.line + 1, max(sym.line + 1, sym.end_line)))
    calls: list[CallSite] = []
    locals_: set[str] = set()
    intents: dict[str, str] = {}
    decl_lines: dict[str, int] = {}
    dummies = set(sym.dummies)
    for i in body:
        line = file.lines[i]
        kind = classify_line(line)
        code = line.split("!", 1)[0]
        if kind is LineKind.CALL:
            stmt = code
        elif kind is LineKind.STATEMENT:
            # a one-line `if (cond) call foo(...)` is a call site too
            _guard, stmt = _strip_if_guard(code)
        else:
            stmt = ""
        if called_name(stmt) is not None:
            name = (called_name(stmt) or "").lower()
            m = _CALL_ARGS_RE.match(stmt.rstrip())
            actuals = tuple(
                _base_name(a) for a in _split_top_commas(m.group(1))
            ) if m else ()
            calls.append(CallSite(name, sym.file, i, actuals))
            continue
        entities = declared_entities(line)
        if entities:
            intent = declared_intent(line)
            for e in entities:
                decl_lines.setdefault(e, i)
                if e in dummies:
                    if intent:
                        intents[e] = intent
                else:
                    locals_.add(e)
    digest = hashlib.sha256()
    digest.update(f"{sym.file}:{sym.line}:{sym.end_line}\n".encode())
    digest.update(file.lines[sym.line].encode())
    for i in body:
        digest.update(b"\n")
        digest.update(file.lines[i].encode())
    return _Block(
        sym=sym, body_lines=body, body_hash=digest.hexdigest(),
        env_hash="", calls=calls, locals_=locals_, intents=intents,
        decl_lines=decl_lines,
    )


def _strip_child_lines(
    blocks: dict[str, _Block], index: ModuleIndex
) -> None:
    """Remove contains-nested child bodies from their host's body lines."""
    for name, block in blocks.items():
        children = [
            b.sym for b in blocks.values()
            if b.sym.parent == name and b.sym.file == block.sym.file
        ]
        if not children:
            continue
        drop: set[int] = set()
        for child in children:
            drop.update(range(child.line, child.end_line + 1))
        block.body_lines = [i for i in block.body_lines if i not in drop]
        block.calls = [c for c in block.calls if c.line not in drop]


def _scan_effects(
    cb: Codebase,
    block: _Block,
    visible: dict[str, str],
    callee_summaries: dict[str, ProcedureSummary | None],
) -> ProcedureSummary:
    """Phase-2 scan: reads/writes/effects with callee summaries folded in."""
    sym = block.sym
    file = cb.file(sym.file)
    dummies = set(sym.dummies)
    known_local = block.locals_ | {sym.result} if sym.result else set(block.locals_)
    dummy_reads: set[str] = set()
    dummy_writes: set[str] = set()
    globals_read: set[str] = set()
    globals_written: set[str] = set()
    effects: set[Effect] = set()
    unresolved: set[str] = set()
    unknown_write = False

    def note_reads(names: set[str]) -> None:
        for n in names:
            if n in dummies:
                dummy_reads.add(n)
            elif n in visible and n not in known_local:
                globals_read.add(visible[n])

    def note_write(n: str, line: int) -> None:
        nonlocal unknown_write
        if n in dummies:
            dummy_writes.add(n)
        elif n in known_local:
            pass
        elif n in visible:
            globals_written.add(visible[n])
            effects.add(
                Effect("global-write", visible[n], sym.file, line)
            )
        else:
            unknown_write = True

    for i in block.body_lines:
        line = file.lines[i]
        kind = classify_line(line)
        if kind in (LineKind.BLANK, LineKind.COMMENT, LineKind.DIRECTIVE):
            continue
        code = line.split("!", 1)[0]
        guard, action = _strip_if_guard(code)
        if kind is LineKind.CALL or called_name(action) is not None:
            # folded in below, via the callee summary; the guard of a
            # one-line `if (cond) call ...` still reads its operands
            note_reads(_identifiers(guard))
            continue
        if declared_entities(line):
            continue  # declaration, not an executable statement
        if _IO_RE.match(action):
            effects.add(Effect("io", action.strip()[:40], sym.file, i))
            note_reads(_identifiers(code))
            continue
        if _STOP_RE.match(action):
            effects.add(Effect("stop", action.strip()[:40], sym.file, i))
            note_reads(_identifiers(guard))
            continue
        m = _ALLOC_RE.match(action)
        if m:
            inner = action[action.index("(") + 1 : action.rindex(")")] if ")" in action else ""
            for arg in _split_top_commas(inner):
                base = _base_name(arg)
                if base in visible and base not in known_local | dummies:
                    effects.add(
                        Effect("allocate-global", visible[base], sym.file, i)
                    )
                    globals_written.add(visible[base])
            continue
        if kind is LineKind.STATEMENT:
            parts = _assignment_parts(code)
            if parts is not None:
                guard, lhs, rhs = parts
                note_write(lhs, i)
                note_reads(_identifiers(guard) | _identifiers(rhs))
                continue
        note_reads(_identifiers(code))

    # fold the callees in: their effects are ours, their dummy writes land
    # on our actuals, their global traffic is ours transitively
    for site in block.calls:
        callee = callee_summaries.get(site.callee)
        if callee is None:
            unresolved.add(site.callee)
            continue
        effects.update(callee.effects)
        globals_read.update(callee.globals_read)
        globals_written.update(callee.globals_written)
        if callee.purity is Purity.UNKNOWN:
            unknown_write = True
        for pos, actual in enumerate(site.actuals):
            if pos >= len(callee.dummies) or not actual:
                continue
            d = callee.dummies[pos]
            if callee.writes_dummy(d):
                note_write(actual, site.line)
            if d in callee.dummy_reads or callee.declared_intent_of(d) in (
                "in", "inout",
            ):
                note_reads({actual})

    if effects:
        purity = Purity.IMPURE
    elif unknown_write or unresolved:
        purity = Purity.UNKNOWN
    else:
        purity = Purity.PURE
    return ProcedureSummary(
        name=sym.name, kind=sym.kind, file=sym.file, line=sym.line,
        end_line=sym.end_line, module=sym.module,
        declared_pure=sym.declared_pure, acc_routine=sym.acc_routine,
        dummies=sym.dummies,
        declared_intents=tuple(sorted(block.intents.items())),
        dummy_reads=frozenset(dummy_reads),
        dummy_writes=frozenset(dummy_writes),
        globals_read=tuple(sorted(globals_read)),
        globals_written=tuple(sorted(globals_written)),
        effects=tuple(sorted(effects, key=lambda e: (e.file, e.line, e.kind))),
        calls=tuple(block.calls),
        unresolved_calls=tuple(sorted(unresolved)),
        purity=purity,
    )


# -- SCC condensation ----------------------------------------------------------


def _sccs(order: list[str], edges: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC, iterative; returns components bottom-up (callees first)."""
    idx: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]

    for root in order:
        if root in idx:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        idx[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in edges:
                    continue
                if nxt not in idx:
                    idx[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], idx[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == idx[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                out.append(sorted(comp))
    return out


# -- the summary pass ----------------------------------------------------------


def _record_summary(result: str) -> None:
    from repro.obs import current

    tel = current()
    if not tel.enabled:
        return
    tel.metrics.counter(
        "interproc_summaries_total",
        "procedure summaries by cache outcome",
        labelnames=("result",),
    ).labels(result=result).inc()


def summarize(cb: Codebase, index: ModuleIndex | None = None) -> InterprocResult:
    """Build the call graph and every procedure summary for ``cb``.

    Summaries come from the content-hash cache when the routine body, its
    visible module environment, and all its callees' keys are unchanged;
    otherwise they are recomputed bottom-up (SCCs of the call graph in
    reverse topological order, iterating recursive components to a fixed
    point -- effect sets only grow, so it terminates).
    """
    index = index or build_index(cb)
    module_vars = _module_variables(cb, index)
    blocks: dict[str, _Block] = {}
    for name, sym in index.routines.items():
        if sym.end_line <= sym.line:
            continue
        try:
            blocks[name] = _scan_block(cb, sym)
        except KeyError:
            continue  # file not in this codebase view
    _strip_child_lines(blocks, index)

    visible: dict[str, dict[str, str]] = {}
    edges: dict[str, set[str]] = {}
    resolved_callee: dict[str, dict[str, str]] = {}
    for name, block in blocks.items():
        vis = _visible_globals(block.sym, index, module_vars)
        visible[name] = vis
        env = hashlib.sha256(
            repr(sorted(vis.items())).encode()
        ).hexdigest()
        block.env_hash = env
        callee_names: dict[str, str] = {}
        for site in block.calls:
            target = index.resolve_call(site.callee, block.sym.file)
            if target is not None and target.name in blocks:
                callee_names[site.callee] = target.name
        resolved_callee[name] = callee_names
        edges[name] = set(callee_names.values())

    result = InterprocResult(index=index)
    order: list[str] = []
    for comp in _sccs(sorted(blocks), edges):
        in_comp = set(comp)
        external_keys = sorted(
            result.summaries[c].key
            for n in comp
            for c in edges[n]
            if c not in in_comp and c in result.summaries
        )
        comp_digest = hashlib.sha256()
        for n in comp:
            comp_digest.update(blocks[n].body_hash.encode())
            comp_digest.update(blocks[n].env_hash.encode())
        for k in external_keys:
            comp_digest.update(k.encode())
        comp_hash = comp_digest.hexdigest()

        keys = {n: f"{n}:{comp_hash}" for n in comp}
        if all(keys[n] in _SUMMARY_CACHE for n in comp):
            for n in comp:
                result.summaries[n] = _SUMMARY_CACHE[keys[n]]
                result.stats.hits += 1
                _record_summary("cached")
                order.append(n)
            continue

        # fixed point across the component (single-node components with no
        # self edge converge in one pass)
        current: dict[str, ProcedureSummary | None] = {n: None for n in comp}
        changed = True
        rounds = 0
        while changed and rounds < 2 * len(comp) + 3:
            changed = False
            rounds += 1
            for n in comp:
                callee_map: dict[str, ProcedureSummary | None] = {}
                for site in blocks[n].calls:
                    target = resolved_callee[n].get(site.callee)
                    if target is None:
                        callee_map[site.callee] = None
                    elif target in in_comp:
                        callee_map[site.callee] = current[target]
                    else:
                        callee_map[site.callee] = result.summaries.get(target)
                nxt = _scan_effects(cb, blocks[n], visible[n], callee_map)
                if current[n] != nxt:
                    changed = True
                current[n] = nxt
        for n in comp:
            summary = replace(current[n], key=keys[n])
            result.summaries[n] = summary
            if len(_SUMMARY_CACHE) >= _CACHE_LIMIT:
                _SUMMARY_CACHE.clear()
            _SUMMARY_CACHE[keys[n]] = summary
            result.stats.misses += 1
            _record_summary("computed")
            order.append(n)
    result.order = tuple(order)
    return result


# -- parallel-context discovery ------------------------------------------------


def _dc_end(lines: list[str], start: int) -> int:
    """Index of the enddo closing the ``do concurrent`` at ``start``."""
    level = 0
    for i in range(start, len(lines)):
        kind = classify_line(lines[i])
        if kind in (LineKind.DO, LineKind.DO_CONCURRENT):
            level += 1
        elif kind is LineKind.ENDDO:
            level -= 1
            if level == 0:
                return i
    return start


def parallel_spans(file: SourceFile) -> list[tuple[int, int, str]]:
    """(start, end, label) for every parallel context in ``file``.

    Covers ``!$acc parallel`` regions and free-standing ``do concurrent``
    loops (a DC loop already inside a region is not double-counted).
    """
    spans: list[tuple[int, int, str]] = []
    covered: set[int] = set()
    for region in find_parallel_regions(file):
        spans.append(
            (region.start, region.end,
             f"the parallel region at line {region.start + 1}")
        )
        covered.update(range(region.start, region.end + 1))
    for i, line in enumerate(file.lines):
        if i in covered or classify_line(line) is not LineKind.DO_CONCURRENT:
            continue
        end = _dc_end(file.lines, i)
        spans.append((i, end, f"the do concurrent loop at line {i + 1}"))
        covered.update(range(i, end + 1))
    return sorted(spans)


def _call_blocker(s: ProcedureSummary) -> tuple[str, str, bool] | None:
    """(rule, why-fragment, fixable) when calling ``s`` blocks a parallel
    region, else None. Conservative: UNKNOWN purity never blocks."""
    if s.globals_written:
        names = ", ".join(s.globals_written)
        return ("IP102", f"writes module variable(s) {names}", False)
    if s.purity is Purity.IMPURE:
        e = s.effects[0]
        return (
            "IP101",
            f"is provably impure ({e.kind} at {e.file}:{e.line + 1})",
            False,
        )
    if s.declared_pure:
        return None
    if s.purity is Purity.PURE:
        return ("IP101", "is effectively pure but not declared pure", True)
    return None


def region_call_blockers(
    file: SourceFile, region: ParallelRegion, result: InterprocResult
) -> list[CallBlocker]:
    """Call sites inside ``region`` that make it unsafe to port to DC."""
    out: list[CallBlocker] = []
    for i in range(region.start, region.end + 1):
        if classify_line(file.lines[i]) is not LineKind.CALL:
            continue
        name = (called_name(file.lines[i]) or "").lower()
        summary = result.summary_for_call(name, file.name)
        if summary is None:
            continue
        blk = _call_blocker(summary)
        if blk is None:
            continue
        rule, why, fixable = blk
        out.append(CallBlocker(name, file.name, i, rule, why, fixable))
    return out


# -- IP findings ---------------------------------------------------------------


def _pure_attribute_fix(cb: Codebase, s: ProcedureSummary) -> Fix:
    """The IP101 fix-it: prepend ``pure`` to the callee's header line."""
    from repro.analysis.fixes import _edit_for

    callee_file = cb.file(s.file)
    header = callee_file.lines[s.line]
    fixed = re.sub(r"^(\s*)", r"\1pure ", header, count=1)
    return Fix(
        "IP101",
        f"declare {s.name} pure (summary proves no side effects)",
        (_edit_for(callee_file, s.line, s.line, (fixed,)),),
    )


def _region_call_findings(
    cb: Codebase, result: InterprocResult, region_called: set[str]
) -> list[Finding]:
    """IP101/IP102 at call sites inside parallel contexts."""
    findings: list[Finding] = []
    for file in cb.files:
        seen: set[int] = set()
        for start, end, label in parallel_spans(file):
            for i in range(start, end + 1):
                if i in seen:
                    continue
                seen.add(i)
                if classify_line(file.lines[i]) is not LineKind.CALL:
                    continue
                name = (called_name(file.lines[i]) or "").lower()
                summary = result.summary_for_call(name, file.name)
                if summary is None:
                    continue
                region_called.add(summary.name)
                blk = _call_blocker(summary)
                if blk is None:
                    continue
                rule, why, fixable = blk
                related = [RelatedLocation(
                    summary.file, summary.line + 1,
                    f"{summary.name} defined here",
                )]
                for e in summary.effects[:2]:
                    related.append(RelatedLocation(
                        e.file, e.line + 1, f"{e.kind}: {e.detail}"
                    ))
                if rule == "IP102":
                    msg = (f"call to {name} inside {label} {why}: hidden "
                           f"loop-carried dependence across iterations")
                elif fixable:
                    msg = (f"call to {name} inside {label}: callee {why}; "
                           f"the fix-it adds the pure attribute")
                else:
                    msg = (f"call to {name} inside {label}: callee {why}; "
                           f"do concurrent requires pure procedures")
                fix = _pure_attribute_fix(cb, summary) if fixable else None
                findings.append(Finding(
                    rule, file.name, i + 1, msg, context=name, fix=fix,
                    related=tuple(related),
                ))
    return findings


def _alias_findings(cb: Codebase, result: InterprocResult) -> list[Finding]:
    """IP103: same base name passed twice where a written dummy is involved."""
    findings: list[Finding] = []
    for file in cb.files:
        for i, line in enumerate(file.lines):
            if classify_line(line) is not LineKind.CALL:
                continue
            name = (called_name(line) or "").lower()
            summary = result.summary_for_call(name, file.name)
            if summary is None:
                continue
            m = _CALL_ARGS_RE.match(line.split("!", 1)[0].rstrip())
            if m is None:
                continue
            actuals = [_base_name(a) for a in _split_top_commas(m.group(1))]
            hit = None
            for a in range(len(actuals)):
                for b in range(a + 1, len(actuals)):
                    if not actuals[a] or actuals[a] != actuals[b]:
                        continue
                    if a >= len(summary.dummies) or b >= len(summary.dummies):
                        continue
                    da, db = summary.dummies[a], summary.dummies[b]
                    if summary.writes_dummy(da) or summary.writes_dummy(db):
                        hit = (actuals[a], da, db)
                        break
                if hit:
                    break
            if hit is None:
                continue
            base, da, db = hit
            written = da if summary.writes_dummy(da) else db
            findings.append(Finding(
                "IP103", file.name, i + 1,
                f"call to {name} passes {base} for both dummies {da} and "
                f"{db} while {written} is written: aliased actual "
                f"arguments are undefined behavior",
                context=base,
                related=(RelatedLocation(
                    summary.file, summary.line + 1,
                    f"{summary.name} defined here",
                ),),
            ))
    return findings


def _decl_sites(
    cb: Codebase, s: ProcedureSummary
) -> dict[str, tuple[int, tuple[str, ...], str]]:
    """dummy -> (decl line, all entities on that line, declared intent)."""
    file = cb.file(s.file)
    dummies = set(s.dummies)
    out: dict[str, tuple[int, tuple[str, ...], str]] = {}
    for i in range(s.line + 1, s.end_line):
        entities = declared_entities(file.lines[i])
        if not entities:
            continue
        intent = declared_intent(file.lines[i])
        for e in entities:
            if e in dummies:
                out.setdefault(e, (i, entities, intent))
    return out


def _intent_findings(
    cb: Codebase, result: InterprocResult, region_called: set[str]
) -> list[Finding]:
    """IP104: declared-vs-inferred intent mismatches and missing intents."""
    from repro.analysis.fixes import _edit_for

    findings: list[Finding] = []
    for name in sorted(result.summaries):
        s = result.summaries[name]
        try:
            file = cb.file(s.file)
        except KeyError:
            continue
        sites = _decl_sites(cb, s)
        for dummy in s.dummies:
            site = sites.get(dummy)
            if site is None:
                continue
            line_idx, entities, declared = site
            inferred = s.inferred_intent_of(dummy)
            related = (RelatedLocation(
                s.file, s.line + 1, f"{s.name} defined here"
            ),)
            if declared == "in" and dummy in s.dummy_writes:
                fix = None
                if all(e in s.dummy_writes for e in entities):
                    fixed = _INTENT_CLAUSE_RE.sub(
                        "intent(inout)", file.lines[line_idx], count=1
                    )
                    fix = Fix(
                        "IP104",
                        f"declare {', '.join(entities)} intent(inout)",
                        (_edit_for(file, line_idx, line_idx, (fixed,)),),
                    )
                findings.append(Finding(
                    "IP104", s.file, line_idx + 1,
                    f"dummy {dummy} of {s.name} is declared intent(in) "
                    f"but the body writes it; intent(inout) matches the "
                    f"observed access",
                    context=dummy, fix=fix, related=related,
                ))
            elif not declared and s.name in region_called:
                fix = None
                code = file.lines[line_idx].split("!", 1)[0]
                same_inferred = all(
                    e in s.dummies and s.inferred_intent_of(e) == inferred
                    for e in entities
                )
                if same_inferred and "::" in code:
                    head, _, tail = file.lines[line_idx].partition("::")
                    fixed = f"{head.rstrip()}, intent({inferred}) ::{tail}"
                    fix = Fix(
                        "IP104",
                        f"declare {', '.join(entities)} intent({inferred})",
                        (_edit_for(file, line_idx, line_idx, (fixed,)),),
                    )
                findings.append(Finding(
                    "IP104", s.file, line_idx + 1,
                    f"dummy {dummy} of {s.name} (called from a parallel "
                    f"region) has no declared intent; the summary infers "
                    f"intent({inferred})",
                    context=dummy, fix=fix, related=related,
                ))
    return findings


def interproc_findings(cb: Codebase, result: InterprocResult) -> list[Finding]:
    """All IP1xx findings for ``cb`` given its summary ``result``."""
    region_called: set[str] = set()
    findings = _region_call_findings(cb, result, region_called)
    findings.extend(_alias_findings(cb, result))
    findings.extend(_intent_findings(cb, result, region_called))
    return findings


# -- call-graph export ---------------------------------------------------------


def callgraph_json(result: InterprocResult) -> str:
    """Byte-stable JSON call graph (``repro lint --call-graph json``)."""
    routines: dict[str, dict] = {}
    for name in sorted(result.summaries):
        s = result.summaries[name]
        calls: list[str] = []
        for site in s.calls:
            target = result.index.resolve_call(site.callee, s.file)
            if target is not None and target.name in result.summaries:
                calls.append(target.name)
        routines[name] = {
            "file": s.file,
            "line": s.line + 1,
            "kind": s.kind,
            "module": s.module,
            "purity": s.purity.value,
            "declared_pure": s.declared_pure,
            "acc_routine": s.acc_routine,
            "globals_written": list(s.globals_written),
            "calls": sorted(set(calls)),
            "unresolved": list(s.unresolved_calls),
        }
    return json.dumps(
        {"schema": "repro-callgraph/1", "routines": routines},
        indent=2, sort_keys=True,
    ) + "\n"


def callgraph_dot(result: InterprocResult) -> str:
    """Graphviz call graph, nodes colored by inferred purity."""
    color = {Purity.PURE: "darkgreen", Purity.IMPURE: "red3",
             Purity.UNKNOWN: "gray40"}
    out = ["digraph callgraph {", "  rankdir=LR;",
           '  node [fontname="monospace"];']
    externals: set[str] = set()
    for name in sorted(result.summaries):
        s = result.summaries[name]
        shape = "ellipse" if s.kind == "subroutine" else "box"
        out.append(
            f'  "{name}" [label="{name}\\n{s.purity.value}", '
            f"color={color[s.purity]}, shape={shape}];"
        )
        externals.update(s.unresolved_calls)
    for ext in sorted(externals):
        out.append(f'  "{ext}" [style=dashed, color=gray60];')
    for name in sorted(result.summaries):
        s = result.summaries[name]
        edges: set[str] = set()
        for site in s.calls:
            target = result.index.resolve_call(site.callee, s.file)
            if target is not None and target.name in result.summaries:
                edges.add(target.name)
        for tgt in sorted(edges):
            out.append(f'  "{name}" -> "{tgt}";')
        for ext in sorted(set(s.unresolved_calls)):
            out.append(f'  "{name}" -> "{ext}" [style=dashed];')
    out.append("}")
    return "\n".join(out) + "\n"
