"""NSIGHT-Systems-like profiler over simulated clocks.

Subscribes to rank clocks and records every time slice as a
:class:`ProfileEvent` (kernel, transfer, fault, wait...). The timeline
renderer turns these into Fig. 4's lane picture; tests assert on the event
stream directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.clock import SimClock, TimeCategory
from repro.util.ascii_plot import AsciiTimeline

#: Mapping from clock categories to timeline glyp categories.
_TIMELINE_CATEGORY = {
    TimeCategory.COMPUTE: "kernel",
    TimeCategory.MPI_PACK: "kernel",
    TimeCategory.LAUNCH: "idle",
    TimeCategory.UM_FAULT: "h2d",
    TimeCategory.H2D: "h2d",
    TimeCategory.D2H: "d2h",
    TimeCategory.MPI_TRANSFER: "p2p",
    TimeCategory.MPI_WAIT: "mpi_wait",
    TimeCategory.HOST: "host",
}


@dataclass(frozen=True, slots=True)
class ProfileEvent:
    """One recorded time slice on one lane."""

    lane: str
    start: float
    duration: float
    category: TimeCategory
    label: str

    @property
    def end(self) -> float:
        """Event end time."""
        return self.start + self.duration


@dataclass
class Profiler:
    """Collects events from any number of rank clocks."""

    events: list[ProfileEvent] = field(default_factory=list)
    #: Drop events shorter than this (keeps Fig. 4 renders readable).
    min_duration: float = 0.0
    #: Live subscriptions: (clock id, lane) -> (clock, observer). Keyed so
    #: repeated attach() of the same lane is idempotent and detach() can
    #: unsubscribe (SimClock otherwise accumulates observers forever).
    _attached: dict = field(default_factory=dict, repr=False, compare=False)

    def attach(self, clock: SimClock, lane: str) -> None:
        """Start recording a clock's advances under ``lane``.

        Idempotent per ``(clock, lane)`` pair: attaching the same clock to
        the same lane twice records each advance once.
        """
        key = (id(clock), lane)
        if key in self._attached:
            return

        def observer(start: float, dt: float, category: TimeCategory, label: str) -> None:
            if dt >= self.min_duration and dt > 0:
                self.events.append(ProfileEvent(lane, start, dt, category, label))

        clock.subscribe(observer)
        self._attached[key] = (clock, observer)

    def detach(self, clock: SimClock | None = None) -> int:
        """Unsubscribe from ``clock`` (or every clock); returns removals.

        Recorded events are kept; use :meth:`clear` to drop them.
        """
        removed = 0
        for key, (c, obs) in list(self._attached.items()):
            if clock is None or c is clock:
                c.unsubscribe(obs)
                del self._attached[key]
                removed += 1
        return removed

    def clear(self) -> None:
        """Drop all recorded events (subscriptions stay live)."""
        self.events.clear()

    @property
    def attached_count(self) -> int:
        """Number of live (clock, lane) subscriptions."""
        return len(self._attached)

    # -- queries -----------------------------------------------------------

    def by_label(self, needle: str) -> list[ProfileEvent]:
        """Events whose label contains ``needle``."""
        return [e for e in self.events if needle in e.label]

    def by_category(self, *categories: TimeCategory) -> list[ProfileEvent]:
        """Events in any of the given categories."""
        wanted = set(categories)
        return [e for e in self.events if e.category in wanted]

    def total_time(self, *categories: TimeCategory) -> float:
        """Sum of event durations across the given categories."""
        return sum(e.duration for e in self.by_category(*categories))

    def span(self) -> tuple[float, float]:
        """(first start, last end) across all events."""
        if not self.events:
            raise ValueError("no events recorded")
        return (
            min(e.start for e in self.events),
            max(e.end for e in self.events),
        )

    # -- rendering ----------------------------------------------------------

    def render_timeline(
        self,
        *,
        width: int = 100,
        title: str = "",
        t0: float | None = None,
        t1: float | None = None,
        transfer_lanes: bool = True,
    ) -> str:
        """Fig. 4-style ASCII timeline of the recorded events.

        ``transfer_lanes`` splits transfers/faults onto a parallel lane per
        rank (as NSIGHT draws memory rows under compute rows).
        """
        tl = AsciiTimeline(width=width, title=title)
        for e in self.events:
            glyph_cat = _TIMELINE_CATEGORY.get(e.category, "kernel")
            if e.category is TimeCategory.MPI_TRANSFER:
                # distinguish NVLink peer-to-peer messages from UM page
                # migrations staged through the host (Fig. 4's two lanes)
                if "fault_out" in e.label:
                    glyph_cat = "d2h"
                elif "fault_in" in e.label or "um_mpi" in e.label:
                    glyph_cat = "h2d"
            if glyph_cat == "idle":
                continue
            lane = e.lane
            if transfer_lanes and e.category in (
                TimeCategory.UM_FAULT,
                TimeCategory.H2D,
                TimeCategory.D2H,
                TimeCategory.MPI_TRANSFER,
            ):
                lane = f"{e.lane}:mem"
            tl.add_event(lane, e.start, e.end, glyph_cat)
        return tl.render(t0=t0, t1=t1)
