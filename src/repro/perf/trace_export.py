"""Export profiler events as Chrome Trace Format JSON.

``chrome://tracing`` / Perfetto open these files and render the same
picture as Fig. 4's NSIGHT screenshot -- compute rows per GPU with
transfer rows underneath. Complements the ASCII renderer for interactive
inspection.

Format reference: the Trace Event Format's "complete" events
(``"ph": "X"``) with microsecond timestamps.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.perf.profiler import ProfileEvent, Profiler
from repro.runtime.clock import TimeCategory

#: Trace category per clock category (drives Perfetto's coloring).
_TRACE_CATEGORY = {
    TimeCategory.COMPUTE: "kernel",
    TimeCategory.MPI_PACK: "kernel,mpi",
    TimeCategory.LAUNCH: "overhead",
    TimeCategory.UM_FAULT: "memory",
    TimeCategory.H2D: "memory",
    TimeCategory.D2H: "memory",
    TimeCategory.MPI_TRANSFER: "mpi",
    TimeCategory.MPI_WAIT: "mpi",
    TimeCategory.HOST: "host",
}

#: Transfer-ish categories land on a separate 'mem' thread row per lane,
#: like NSIGHT's memory rows.
_MEM_CATEGORIES = frozenset(
    {TimeCategory.UM_FAULT, TimeCategory.H2D, TimeCategory.D2H, TimeCategory.MPI_TRANSFER}
)


def _event_json(e: ProfileEvent, tids: dict[str, int]) -> dict:
    lane = e.lane + (":mem" if e.category in _MEM_CATEGORIES else "")
    tid = tids.setdefault(lane, len(tids))
    return {
        "name": e.label or e.category.value,
        "cat": _TRACE_CATEGORY.get(e.category, "other"),
        "ph": "X",
        "ts": e.start * 1e6,
        "dur": e.duration * 1e6,
        "pid": 1,
        "tid": tid,
        "args": {"category": e.category.value},
    }


def to_chrome_trace(profiler: Profiler) -> dict:
    """Build the trace dict (``traceEvents`` plus thread names)."""
    if not profiler.events:
        raise ValueError("no events to export")
    tids: dict[str, int] = {}
    events = [_event_json(e, tids) for e in profiler.events]
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": lane},
        }
        for lane, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(profiler: Profiler, path: str | Path) -> Path:
    """Write the trace JSON to disk; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(to_chrome_trace(profiler)))
    return target
