"""Export profiler events (and telemetry spans) as Chrome Trace JSON.

``chrome://tracing`` / Perfetto open these files and render the same
picture as Fig. 4's NSIGHT screenshot -- compute rows per GPU with
transfer rows underneath. Complements the ASCII renderer for interactive
inspection.

Telemetry spans (:mod:`repro.obs.tracing`) merge into the same file as a
separate process (pid 0, named ``spans``) so Perfetto draws the
hierarchical step/solver spans *above* the per-rank profiler lanes
(pid 1): both share the simulated-seconds timebase. Detached
communication-clock lanes (``<lane>:comm``, overlapped halo exchanges)
render as a third process (pid 2) so hidden traffic appears parallel to
the main rank tracks instead of interleaved with them.

Format reference: the Trace Event Format's "complete" events
(``"ph": "X"``) with microsecond timestamps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.perf.profiler import ProfileEvent, Profiler
from repro.runtime.clock import TimeCategory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracing import Span

#: Trace category per clock category (drives Perfetto's coloring).
_TRACE_CATEGORY = {
    TimeCategory.COMPUTE: "kernel",
    TimeCategory.MPI_PACK: "kernel,mpi",
    TimeCategory.LAUNCH: "overhead",
    TimeCategory.UM_FAULT: "memory",
    TimeCategory.H2D: "memory",
    TimeCategory.D2H: "memory",
    TimeCategory.MPI_TRANSFER: "mpi",
    TimeCategory.MPI_WAIT: "mpi",
    TimeCategory.HOST: "host",
}

#: Transfer-ish categories land on a separate 'mem' thread row per lane,
#: like NSIGHT's memory rows.
_MEM_CATEGORIES = frozenset(
    {TimeCategory.UM_FAULT, TimeCategory.H2D, TimeCategory.D2H, TimeCategory.MPI_TRANSFER}
)

#: Process ids: spans draw above the profiler lanes; detached
#: communication clocks (overlapped halo exchanges) get their own
#: process so hidden traffic renders parallel to -- not interleaved
#: with -- the main rank tracks.
SPAN_PID = 0
PROFILER_PID = 1
COMM_PID = 2

#: Lane suffix the telemetry session uses for detached comm clocks.
COMM_LANE_SUFFIX = ":comm"


def _event_json(e: ProfileEvent, tids: dict[str, int], pid: int) -> dict:
    lane = e.lane + (":mem" if e.category in _MEM_CATEGORIES else "")
    tid = tids.setdefault(lane, len(tids))
    return {
        "name": e.label or e.category.value,
        "cat": _TRACE_CATEGORY.get(e.category, "other"),
        "ph": "X",
        "ts": e.start * 1e6,
        "dur": e.duration * 1e6,
        "pid": pid,
        "tid": tid,
        "args": {"category": e.category.value},
    }


def _span_json(s: "Span", tids: dict[str, int]) -> dict:
    lane = str(s.attrs.get("lane", "spans"))
    tid = tids.setdefault(lane, len(tids))
    end = s.end if s.end is not None else s.start
    return {
        "name": s.name,
        "cat": "span",
        "ph": "X",
        "ts": s.start * 1e6,
        "dur": (end - s.start) * 1e6,
        "pid": SPAN_PID,
        "tid": tid,
        "args": {
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "depth": s.depth,
            **{k: _scalar(v) for k, v in s.attrs.items()},
        },
    }


def _scalar(v: object) -> object:
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)


def _thread_meta(pid: int, tids: dict[str, int]) -> list[dict]:
    return [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": lane},
        }
        for lane, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]


def to_chrome_trace(profiler: Profiler, *, spans: Sequence["Span"] = ()) -> dict:
    """Build the trace dict (``traceEvents`` plus thread/process names)."""
    if not profiler.events and not spans:
        raise ValueError("no events to export")
    tids: dict[str, int] = {}
    comm_tids: dict[str, int] = {}
    events = []
    for e in profiler.events:
        is_comm = COMM_LANE_SUFFIX in e.lane
        events.append(
            _event_json(
                e,
                comm_tids if is_comm else tids,
                COMM_PID if is_comm else PROFILER_PID,
            )
        )
    metadata = _thread_meta(PROFILER_PID, tids)
    if tids:
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": PROFILER_PID,
                "tid": 0,
                "args": {"name": "profiler"},
            }
        )
    if comm_tids:
        metadata += _thread_meta(COMM_PID, comm_tids)
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": COMM_PID,
                "tid": 0,
                "args": {"name": "comm (overlapped)"},
            }
        )
    if spans:
        span_tids: dict[str, int] = {}
        events += [_span_json(s, span_tids) for s in spans]
        metadata += _thread_meta(SPAN_PID, span_tids)
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": SPAN_PID,
                "tid": 0,
                "args": {"name": "spans"},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    profiler: Profiler, path: str | Path, *, spans: Sequence["Span"] = ()
) -> Path:
    """Write the trace JSON to disk; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(to_chrome_trace(profiler, spans=spans)))
    return target
