"""Problem-size vs GPU-memory analysis.

The paper chose the 36M-cell resolution "to represent a medium-sized case
that can also fit into the memory of a single NVIDIA A100 (40GB)" (SV-A).
This module makes that sizing decision executable: estimate the device
footprint of a resolution under the MAS memory model (state + work arrays
+ the full CORHEL physics complement + halo buffers) and search for the
largest resolution that fits a GPU-count/device combination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.gpu import A100_40GB
from repro.machine.spec import GpuSpec
from repro.mas.model import WORK_ARRAYS
from repro.mas.state import ALL_FIELDS
from repro.mpi.decomp import Decomposition3D

#: Arrays per rank in the full model (see MasModel._register_arrays).
STATE_ARRAYS = len(ALL_FIELDS)
MODEL_WORK_ARRAYS = len(WORK_ARRAYS)
#: The full CORHEL physics complement (DESIGN.md: MAS holds ~100 arrays).
EXTRA_MODEL_ARRAYS = 67
ELEMENT_BYTES = 8
HALO_BUFFERS_PER_AXIS = 4  # send/recv x two directions


@dataclass(frozen=True, slots=True)
class MemoryEstimate:
    """Per-rank device footprint of one resolution."""

    shape: tuple[int, int, int]
    num_ranks: int
    bytes_per_rank: int
    capacity: int

    @property
    def fits(self) -> bool:
        """True if every rank's footprint fits its device."""
        return self.bytes_per_rank <= self.capacity

    @property
    def utilization(self) -> float:
        """Fraction of device memory used by the worst rank."""
        return self.bytes_per_rank / self.capacity

    @property
    def total_cells(self) -> int:
        """Global cell count."""
        return self.shape[0] * self.shape[1] * self.shape[2]


def estimate(
    shape: tuple[int, int, int],
    num_ranks: int = 1,
    *,
    gpu: GpuSpec = A100_40GB,
    extra_arrays: int = EXTRA_MODEL_ARRAYS,
) -> MemoryEstimate:
    """Device-memory footprint of a resolution on ``num_ranks`` GPUs."""
    if any(n < num_ranks and n < 4 for n in shape):
        raise ValueError(f"shape {shape} too small for {num_ranks} ranks")
    dec = Decomposition3D(shape, num_ranks)
    worst = 0
    for r in dec.iter_ranks():
        cells = dec.local_cells(r)
        ls = dec.local_shape(r)
        n_arrays = STATE_ARRAYS + MODEL_WORK_ARRAYS + extra_arrays
        array_bytes = n_arrays * cells * ELEMENT_BYTES
        halo_bytes = sum(
            HALO_BUFFERS_PER_AXIS * (cells // ls[axis]) * ELEMENT_BYTES
            for axis in range(3)
        )
        worst = max(worst, array_bytes + halo_bytes)
    return MemoryEstimate(
        shape=shape, num_ranks=num_ranks, bytes_per_rank=worst, capacity=gpu.mem_bytes
    )


def max_cells_that_fit(
    num_ranks: int = 1,
    *,
    gpu: GpuSpec = A100_40GB,
    aspect: tuple[float, float, float] = (150.0, 300.0, 800.0),
    extra_arrays: int = EXTRA_MODEL_ARRAYS,
) -> MemoryEstimate:
    """Largest grid (of the paper's aspect ratio) fitting the GPUs.

    Bisects a scale factor applied to ``aspect`` (the 36M-cell run's
    shape) until the per-rank footprint fills the device.
    """
    if num_ranks < 1:
        raise ValueError("need at least one rank")

    def shape_for(scale: float) -> tuple[int, int, int]:
        return tuple(max(4, round(a * scale)) for a in aspect)  # type: ignore[return-value]

    lo, hi = 0.01, 16.0
    # expand hi until it no longer fits
    while estimate(shape_for(hi), num_ranks, gpu=gpu, extra_arrays=extra_arrays).fits:
        hi *= 2
        if hi > 1e4:
            raise RuntimeError("search diverged: everything fits?")
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if estimate(shape_for(mid), num_ranks, gpu=gpu, extra_arrays=extra_arrays).fits:
            lo = mid
        else:
            hi = mid
    return estimate(shape_for(lo), num_ranks, gpu=gpu, extra_arrays=extra_arrays)


def paper_case_fits_one_gpu() -> MemoryEstimate:
    """The paper's sizing claim: 36M cells fit one A100-40GB."""
    return estimate((150, 300, 800), 1)
