"""Per-category time accounting: where each code version spends its step.

Finer-grained than Fig. 3's two-way split: break a step into compute,
launch gaps, UM migration, explicit copies, MPI pack/transfer/wait. The
category signature is each code version's fingerprint -- DC codes carry
more launch time (fission + no async), UM codes carry migration time --
and the bench asserts those fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import CodeVersion
from repro.mas.model import MasModel
from repro.perf.calibration import Calibration, PAPER_CALIBRATION, build_model
from repro.runtime.clock import TimeCategory
from repro.util.ascii_plot import AsciiBarChart


@dataclass(frozen=True)
class CategoryBreakdown:
    """Mean per-step seconds by time category (averaged over ranks)."""

    version: CodeVersion
    num_gpus: int
    seconds: dict[TimeCategory, float]

    @property
    def total(self) -> float:
        """Per-step wall approximation (sum over categories, mean rank)."""
        return sum(self.seconds.values())

    def fraction(self, category: TimeCategory) -> float:
        """Share of one category."""
        return self.seconds.get(category, 0.0) / self.total if self.total else 0.0


def measure_categories(
    version: CodeVersion,
    num_gpus: int,
    *,
    calibration: Calibration = PAPER_CALIBRATION,
    model: MasModel | None = None,
) -> CategoryBreakdown:
    """Run warmup + bench steps and average category deltas per step."""
    m = model or build_model(version, num_gpus, calibration=calibration)
    m.run(calibration.warmup_steps)
    before = [dict(rt.clock.by_category) for rt in m.ranks]
    m.run(calibration.bench_steps)
    seconds: dict[TimeCategory, float] = {}
    n_ranks = len(m.ranks)
    for r, rt in enumerate(m.ranks):
        for cat, t in rt.clock.by_category.items():
            dt = (t - before[r].get(cat, 0.0)) / calibration.bench_steps
            seconds[cat] = seconds.get(cat, 0.0) + dt / n_ranks
    return CategoryBreakdown(version=version, num_gpus=num_gpus, seconds=seconds)


def render_categories(breakdowns: list[CategoryBreakdown]) -> str:
    """Stacked per-step bars across versions."""
    chart = AsciiBarChart(
        title="Per-step time by category (mean rank, ms)", unit="ms", width=50
    )
    order = (
        TimeCategory.COMPUTE,
        TimeCategory.LAUNCH,
        TimeCategory.UM_FAULT,
        TimeCategory.MPI_PACK,
        TimeCategory.MPI_TRANSFER,
        TimeCategory.MPI_WAIT,
    )
    for b in breakdowns:
        chart.add_group(
            f"{b.version.name}@{b.num_gpus}",
            [(c.value, b.seconds.get(c, 0.0) * 1e3) for c in order],
        )
    return chart.render()
