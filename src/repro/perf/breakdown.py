"""Wall / MPI breakdown measurement (the Fig. 3 quantity).

The paper defines MPI time as "all MPI calls, buffer initialization/
loading/unloading, and MPI waiting caused by load imbalance" -- our
:class:`~repro.runtime.clock.SimClock` charges exactly those categories as
MPI, so the breakdown falls out of a run's clocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import CodeVersion
from repro.mas.model import MasModel
from repro.perf.calibration import Calibration, PAPER_CALIBRATION, build_model, project_run_minutes


@dataclass(frozen=True, slots=True)
class RunBreakdown:
    """One Fig. 3 bar: projected full-run minutes for one code version."""

    version: CodeVersion
    num_gpus: int
    wall_minutes: float
    mpi_minutes: float

    @property
    def non_mpi_minutes(self) -> float:
        """The green (Wall - MPI) portion."""
        return self.wall_minutes - self.mpi_minutes

    @property
    def mpi_fraction(self) -> float:
        """MPI share of the wall time."""
        return self.mpi_minutes / self.wall_minutes if self.wall_minutes else 0.0


def measure_breakdown(
    version: CodeVersion,
    num_gpus: int,
    *,
    calibration: Calibration = PAPER_CALIBRATION,
    model: MasModel | None = None,
) -> RunBreakdown:
    """Run one code version and project its Fig. 3 bar."""
    m = model or build_model(version, num_gpus, calibration=calibration)
    timings = m.run(calibration.warmup_steps + calibration.bench_steps)
    wall, mpi = project_run_minutes(timings, calibration=calibration)
    return RunBreakdown(
        version=version, num_gpus=num_gpus, wall_minutes=wall, mpi_minutes=mpi
    )
