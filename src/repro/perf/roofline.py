"""Per-kernel roofline speed-of-light analysis.

The engines record, per kernel spec, the device-busy seconds actually
charged plus the nominal HBM bytes and flops behind them
(``kernel_seconds_total`` / ``kernel_bytes_total`` / ``kernel_flops_total``,
emitted by :mod:`repro.runtime.openacc`, :mod:`repro.runtime.doconcurrent`
and the CPU dispatch path). This module turns those counters into the
quantitative version of the paper's Table III reasoning: the *attainable*
(speed-of-light) time of a kernel is ``max(bytes / peak_bw, flops /
peak_flops)`` on the machine model's theoretical peaks, and

    ``kernel_sol_fraction{kernel} = attainable / measured``

is the fraction of speed-of-light the kernel actually reached. Fractions
land well below 1 exactly where the cost model charges penalties --
sustained-vs-peak bandwidth (0.82 on the A100), atomic array reductions
(0.80), UM page-table pressure, MPI buffer pressure -- so a kernel falling
under the flag threshold points at a *mechanism*, not noise.

``repro critpath DIR`` renders the table; ``Telemetry.finalize`` bakes the
fractions into ``metrics.json`` as gauges so cross-run compares (and
``--explain``) see efficiency shifts directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

#: Kernels below this fraction of speed-of-light get flagged in renders.
DEFAULT_SOL_THRESHOLD = 0.5


@dataclass(frozen=True, slots=True)
class MachinePeaks:
    """Theoretical peaks the speed-of-light time is computed against."""

    name: str
    mem_bandwidth: float  # bytes/s, peak (not sustained)
    flops: float          # flop/s (fp64 for the A100 model)

    def sol_seconds(self, nbytes: float, nflops: float) -> float:
        """Attainable time of a kernel moving ``nbytes`` doing ``nflops``."""
        t_mem = nbytes / self.mem_bandwidth if self.mem_bandwidth > 0 else 0.0
        t_flop = nflops / self.flops if self.flops > 0 else 0.0
        return max(t_mem, t_flop)


@dataclass(frozen=True, slots=True)
class KernelRoofline:
    """One kernel's measured-vs-attainable summary."""

    kernel: str
    category: str         # compute | mpi_pack
    calls: int
    seconds: float        # measured device-busy seconds (total)
    bytes: float
    flops: float
    sol_seconds: float    # attainable total at machine peaks

    @property
    def sol_fraction(self) -> float:
        """Fraction of speed-of-light reached (1.0 = at the roofline)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.sol_seconds / self.seconds

    @property
    def intensity(self) -> float:
        """Arithmetic intensity (flops per byte)."""
        return self.flops / self.bytes if self.bytes > 0 else 0.0


def peaks_from_manifest(manifest: Mapping[str, Any] | None) -> MachinePeaks | None:
    """Machine peaks recorded by ``Telemetry.bind_model``, if any.

    Multi-model sessions (fig3) bind several models against the same
    device spec; the first ``machine`` entry wins.
    """
    for model in (manifest or {}).get("models") or []:
        machine = model.get("machine")
        if machine and machine.get("mem_bandwidth"):
            return MachinePeaks(
                name=str(machine.get("name", "unknown")),
                mem_bandwidth=float(machine["mem_bandwidth"]),
                flops=float(machine.get("flops", 0.0)),
            )
    return None


def _samples(metrics: Mapping[str, Any], name: str) -> dict[tuple[str, ...], dict]:
    """``{(kernel, ...label values): sample}`` for one metric family."""
    fam = (metrics or {}).get(name) or {}
    out: dict[tuple[str, ...], dict] = {}
    for sample in fam.get("samples", []):
        labels = sample.get("labels", {})
        kernel = labels.get("kernel")
        if kernel is None:
            continue
        out[kernel] = sample
    return out


def roofline_from_metrics(
    metrics: Mapping[str, Any], peaks: MachinePeaks
) -> list[KernelRoofline]:
    """Build per-kernel rows from a metrics.json dict, hottest first."""
    seconds = _samples(metrics, "kernel_seconds_total")
    nbytes = _samples(metrics, "kernel_bytes_total")
    nflops = _samples(metrics, "kernel_flops_total")
    calls = _samples(metrics, "kernel_calls_total")
    rows = []
    for kernel, sample in seconds.items():
        sec = float(sample.get("value", 0.0))
        b = float(nbytes.get(kernel, {}).get("value", 0.0))
        f = float(nflops.get(kernel, {}).get("value", 0.0))
        rows.append(
            KernelRoofline(
                kernel=kernel,
                category=sample.get("labels", {}).get("category", "compute"),
                calls=int(calls.get(kernel, {}).get("value", 0.0)),
                seconds=sec,
                bytes=b,
                flops=f,
                sol_seconds=peaks.sol_seconds(b, f),
            )
        )
    rows.sort(key=lambda r: -r.seconds)
    return rows


def flagged(
    rows: list[KernelRoofline], threshold: float = DEFAULT_SOL_THRESHOLD
) -> list[KernelRoofline]:
    """Kernels below ``threshold`` of speed-of-light (hottest first)."""
    return [r for r in rows if r.sol_fraction < threshold]


def sol_fraction_gauges(
    metrics: Mapping[str, Any], peaks: MachinePeaks
) -> dict[str, float]:
    """``{kernel: sol_fraction}`` -- what finalize bakes into metrics.json."""
    return {r.kernel: r.sol_fraction for r in roofline_from_metrics(metrics, peaks)}


def render_roofline(
    rows: list[KernelRoofline],
    peaks: MachinePeaks,
    *,
    top: int = 12,
    threshold: float = DEFAULT_SOL_THRESHOLD,
) -> str:
    """Speed-of-light table for the hottest ``top`` kernels."""
    from repro.util.tables import Table

    if not rows:
        return "roofline: no per-kernel counters in this run"
    t = Table(
        ["kernel", "calls", "time (ms)", "bytes", "flop/B", "SoL (ms)",
         "SoL frac", ""],
        title=(
            f"Roofline speed-of-light vs {peaks.name} "
            f"({peaks.mem_bandwidth / 1e9:.0f} GB/s, "
            f"{peaks.flops / 1e12:.1f} Tflop/s peak; top {top} by time)"
        ),
    )
    for r in rows[:top]:
        t.add_row(
            [
                r.kernel,
                r.calls,
                r.seconds * 1e3,
                f"{r.bytes:.3g}",
                f"{r.intensity:.3f}",
                r.sol_seconds * 1e3,
                f"{r.sol_fraction * 100:5.1f}%",
                "FLAG" if r.sol_fraction < threshold else "",
            ]
        )
    lines = [t.render()]
    low = flagged(rows, threshold)
    if low:
        lines.append(
            f"{len(low)} kernel(s) below {threshold * 100:.0f}% of "
            "speed-of-light (FLAG): penalties from atomics/UM/buffer "
            "pressure, or launch-bound work"
        )
    return "\n".join(lines)
