"""Calibrated constants of the performance model, in one place.

Every knob the machine/runtime/MPI cost model exposes is fixed here, with
its provenance. Experiments construct models exclusively through
:func:`build_model` so all tables/figures share one calibration.

Provenance notes
----------------
* Hardware numbers (A100 bandwidth/capacity, EPYC bandwidth) come from the
  paper's SV-B and vendor datasheets; they live in `repro.machine`.
* Solver work per step (PCG iterations, STS stages) is fixed at
  representative production values; at 36M cells MAS's viscosity PCG takes
  tens of iterations per step (ref [25] discusses the solver costs).
* The remaining constants were fitted so the 1-GPU and 8-GPU MPI/non-MPI
  splits of Fig. 3 are reproduced in *shape* (code ordering, UM blow-up,
  manual-MPI share falling with GPU count); absolute minutes follow once
  ``paper_steps`` maps one simulated step to the paper's 24-simulated-
  minute run. EXPERIMENTS.md records paper-vs-measured for every bar.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.codes import CodeVersion, runtime_config_for
from repro.machine.cpu import CpuNodeModel, EPYC_7742_NODE
from repro.mas.model import MasModel, ModelConfig, NOMINAL_SHAPE_PAPER, StepTiming
from repro.runtime.cost import KernelCostModel
from repro.runtime.stream import AsyncQueue
from repro.util.units import seconds_to_minutes


@dataclass(frozen=True, slots=True)
class Calibration:
    """All fitted constants of the reproduction's cost model."""

    # -- solver work per step (paper-scale, fixed) ---------------------------
    pcg_iters: int = 10
    sts_stages: int = 8
    #: PCG solver variant ("classic" keeps the paper's reference iteration
    #: structure; "ca"/"pipelined" are the communication-avoiding and
    #: pipelined rebuilds -- identical iterates, fewer/hidden allreduces).
    #: "ca" is the calibrated default: one fused allreduce per iteration
    #: at unchanged iterate count (classic stays selectable via --pcg).
    pcg_variant: str = "ca"
    #: Preconditioner ("jacobi" reference; "cheby" = Chebyshev polynomial).
    pcg_precond: str = "jacobi"
    #: Early-exit residual tolerance. 0 keeps the fixed-iteration
    #: paper-scale semantics for the reference solver; variants may set it
    #: > 0 to converge early and report their own iteration counts.
    pcg_tol: float = 0.0
    #: Chebyshev preconditioner degree (when pcg_precond="cheby").
    cheby_degree: int = 3

    # -- kernel cost model ----------------------------------------------------
    atomic_penalty: float = 0.80
    flipped_penalty: float = 0.90
    kernels_region_penalty: float = 0.95
    #: UM slows kernel bodies via page-table pressure / residency checks:
    #: Fig. 3's 1-GPU non-MPI bars give 227.5/171.9 = 1.32x -> ~0.76.
    um_body_efficiency: float = 0.78
    #: Extra host gap per launch under UM (larger launch gaps in Fig. 4).
    um_launch_extra: float = 6.0e-6

    # -- launch queue ------------------------------------------------------------
    submit_overhead: float = 2.0e-6
    completion_latency: float = 4.0e-6

    # -- MPI / halo machinery ------------------------------------------------------
    #: Strided-gather traffic multiplier of pack/unpack kernels.
    halo_pack_inefficiency: float = 4.0
    #: Boundary-buffer maintenance per exchange as a fraction of the
    #: field's local array traffic; dominates the 1-GPU manual MPI bar.
    #: Values near 1 mean MAS's per-exchange boundary machinery streams
    #: roughly one field's worth of data (it maintains buffer structures
    #: for several variables per seam).
    halo_buffer_init_fraction: float = 0.75
    #: Memory-pressure slowdown of buffer kernels when the device is full.
    mpi_buffer_pressure: float = 3.0
    #: Page-granularity amplification of UM migrations during MPI.
    um_page_amplification: float = 1.0
    #: Host synchronization per message under UM.
    um_host_mpi_overhead: float = 40.0e-6
    #: Per-rank compute jitter driving load-imbalance MPI waits.
    rank_jitter: float = 0.010
    #: Overlap halo exchanges with interior compute (interior/boundary
    #: stencil splitting; needs async queues). Off by default so the
    #: paper's bulk-synchronous Fig. 3 bars are reproduced unchanged.
    halo_overlap: bool = False
    #: Cross-region launch-fusion window: collapse adjacent independent
    #: plain-category kernels between synchronization points into single
    #: launches. Off by default (paper kernel stream unchanged).
    cross_region_fusion: bool = False

    # -- run projection --------------------------------------------------------------
    #: Simulated steps standing for the paper's 24-minute-physical run.
    #: Fixed so Code 1 on 1 A100 lands at Fig. 3's 200.9 wall-clock
    #: minutes.
    paper_steps: int = 72478
    #: Steps actually executed when measuring (after one warmup step).
    bench_steps: int = 2
    warmup_steps: int = 1

    def cost_model(self) -> KernelCostModel:
        """Kernel cost model carrying these constants."""
        return KernelCostModel(
            atomic_penalty=self.atomic_penalty,
            flipped_penalty=self.flipped_penalty,
            kernels_region_penalty=self.kernels_region_penalty,
            um_launch_extra=self.um_launch_extra,
            um_body_efficiency=self.um_body_efficiency,
            mpi_buffer_pressure=self.mpi_buffer_pressure,
        )

    def queue(self) -> AsyncQueue:
        """Launch queue carrying these constants."""
        return AsyncQueue(
            submit_overhead=self.submit_overhead,
            completion_latency=self.completion_latency,
        )


#: The calibration used by every paper experiment.
PAPER_CALIBRATION = Calibration()

#: Grid actually executed when measuring (physics at test scale, cost at
#: paper scale). Small enough for CI; large enough that every kernel's
#: stencil has real work.
MEASURE_SHAPE = (10, 8, 16)


def build_model(
    version: CodeVersion,
    num_ranks: int,
    *,
    calibration: Calibration = PAPER_CALIBRATION,
    shape: tuple[int, int, int] = MEASURE_SHAPE,
    nominal_shape: tuple[int, int, int] = NOMINAL_SHAPE_PAPER,
    extra_model_arrays: int = 67,
) -> MasModel:
    """Construct a MasModel for one code version under the calibration."""
    rt_cfg = runtime_config_for(version)
    if calibration.cross_region_fusion:
        rt_cfg = replace(rt_cfg, cross_region_fusion=True)
    model_cfg = ModelConfig(
        shape=shape,
        nominal_shape=nominal_shape,
        num_ranks=num_ranks,
        pcg_iters=calibration.pcg_iters,
        pcg_variant=calibration.pcg_variant,
        pcg_precond=calibration.pcg_precond,
        pcg_tol=calibration.pcg_tol,
        cheby_degree=calibration.cheby_degree,
        sts_stages=calibration.sts_stages,
        extra_model_arrays=extra_model_arrays,
        halo_overlap=calibration.halo_overlap,
    )
    return MasModel(
        model_cfg,
        rt_cfg,
        cost=calibration.cost_model(),
        queue=calibration.queue(),
        um_host_mpi_overhead=calibration.um_host_mpi_overhead,
        um_page_amplification=calibration.um_page_amplification,
        halo_pack_inefficiency=calibration.halo_pack_inefficiency,
        halo_buffer_init_fraction=calibration.halo_buffer_init_fraction,
        rank_jitter=calibration.rank_jitter,
    )


def project_run_minutes(
    timings: list[StepTiming],
    *,
    calibration: Calibration = PAPER_CALIBRATION,
) -> tuple[float, float]:
    """Project measured per-step costs to the paper's full run.

    Returns ``(wall_minutes, mpi_minutes)``: mean per-step cost (past the
    warmup step, which carries one-time UM first-touch faults) times
    ``paper_steps``.
    """
    if not timings:
        raise ValueError("no timings to project")
    steady = timings[calibration.warmup_steps:] or timings
    wall = sum(t.wall for t in steady) / len(steady)
    mpi = sum(t.mpi for t in steady) / len(steady)
    n = calibration.paper_steps
    return seconds_to_minutes(wall * n), seconds_to_minutes(mpi * n)


def cpu_model() -> CpuNodeModel:
    """The Expanse node model used for Table III."""
    return CpuNodeModel(EPYC_7742_NODE)
