"""Strong-scaling measurement (the Fig. 2 quantity)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import CodeVersion
from repro.perf.breakdown import RunBreakdown, measure_breakdown
from repro.perf.calibration import Calibration, PAPER_CALIBRATION

#: GPU counts of Fig. 2.
GPU_COUNTS = (1, 2, 4, 8)


@dataclass(frozen=True, slots=True)
class ScalingPoint:
    """One (gpu count, wall minutes) point of a Fig. 2 series."""

    num_gpus: int
    wall_minutes: float
    mpi_minutes: float


@dataclass(frozen=True)
class ScalingSeries:
    """One code version's Fig. 2 curve."""

    version: CodeVersion
    points: tuple[ScalingPoint, ...]

    def wall(self, num_gpus: int) -> float:
        """Wall minutes at one GPU count."""
        for p in self.points:
            if p.num_gpus == num_gpus:
                return p.wall_minutes
        raise KeyError(f"no point at {num_gpus} GPUs")

    def speedup(self, num_gpus: int) -> float:
        """Speedup relative to the series' own 1-GPU point."""
        return self.wall(1) / self.wall(num_gpus)

    def ideal(self) -> "ScalingSeries":
        """Ideal-scaling reference anchored at this series' 1-GPU time."""
        base = self.wall(1)
        return ScalingSeries(
            version=self.version,
            points=tuple(
                ScalingPoint(p.num_gpus, base / p.num_gpus, 0.0) for p in self.points
            ),
        )


def measure_scaling(
    version: CodeVersion,
    *,
    gpu_counts: tuple[int, ...] = GPU_COUNTS,
    calibration: Calibration = PAPER_CALIBRATION,
) -> ScalingSeries:
    """Measure one code version's scaling curve."""
    points = []
    for n in gpu_counts:
        b: RunBreakdown = measure_breakdown(version, n, calibration=calibration)
        points.append(ScalingPoint(n, b.wall_minutes, b.mpi_minutes))
    return ScalingSeries(version=version, points=tuple(points))
