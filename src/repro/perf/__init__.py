"""Performance tooling: calibration, profiler, breakdowns, scaling."""

from repro.perf.calibration import (
    PAPER_CALIBRATION,
    Calibration,
    build_model,
    project_run_minutes,
)
from repro.perf.profiler import Profiler, ProfileEvent
from repro.perf.breakdown import RunBreakdown, measure_breakdown
from repro.perf.scaling import ScalingPoint, ScalingSeries, measure_scaling
from repro.perf.categories import CategoryBreakdown, measure_categories, render_categories
from repro.perf.memory_fit import MemoryEstimate, estimate, max_cells_that_fit
from repro.perf.trace_export import to_chrome_trace, write_chrome_trace

__all__ = [
    "Calibration",
    "PAPER_CALIBRATION",
    "build_model",
    "project_run_minutes",
    "Profiler",
    "ProfileEvent",
    "RunBreakdown",
    "measure_breakdown",
    "ScalingPoint",
    "ScalingSeries",
    "measure_scaling",
    "CategoryBreakdown",
    "measure_categories",
    "render_categories",
    "MemoryEstimate",
    "estimate",
    "max_cells_that_fit",
    "to_chrome_trace",
    "write_chrome_trace",
]
