"""Write/read codebases as real file trees.

Lets users inspect the generated MAS versions with ordinary tools (diff,
grep, an editor) and feed hand-edited trees back through the metrics and
transformation passes -- the round trip is exact.
"""

from __future__ import annotations

from pathlib import Path

from repro.fortran.source import Codebase, SourceFile

#: File extensions accepted when loading a tree (compared lowercased, so
#: preprocessed ``.F90``/``.F`` spellings load too).
FORTRAN_SUFFIXES = (".f90", ".f", ".f95", ".f03", ".f08", ".for")


def save_tree(cb: Codebase, root: str | Path, *, overwrite: bool = False) -> Path:
    """Write every file of ``cb`` under ``root/<codebase name>/``.

    File names may be relative posix paths (``solve/pcg.f90``); the
    needed subdirectories are created. Names must stay inside the tree.
    """
    base = Path(root) / cb.name
    if base.exists() and not overwrite:
        raise FileExistsError(f"{base} exists; pass overwrite=True to replace")
    base.mkdir(parents=True, exist_ok=True)
    for f in cb.files:
        target = base / f.name
        if not target.resolve().is_relative_to(base.resolve()):
            raise ValueError(f"file name {f.name!r} escapes the tree")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(f.text())
    return base


def load_tree(
    path: str | Path, *, name: str | None = None, recursive: bool = False
) -> Codebase:
    """Load a directory of Fortran files back into a Codebase.

    Files are ordered by name for determinism; a trailing newline (added
    by :meth:`SourceFile.text`) is not counted as an extra line. With
    ``recursive=True`` subdirectories are walked too and file names are
    tree-relative posix paths.
    """
    base = Path(path)
    if not base.is_dir():
        raise NotADirectoryError(f"{base} is not a directory")
    candidates = base.rglob("*") if recursive else base.iterdir()
    found = [
        p for p in candidates
        if p.is_file() and p.suffix.lower() in FORTRAN_SUFFIXES
    ]
    files = []
    for p in sorted(found, key=lambda p: p.relative_to(base).as_posix()):
        text = p.read_text()
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        files.append(SourceFile(p.relative_to(base).as_posix(), lines))
    if not files:
        raise ValueError(f"no Fortran sources ({'/'.join(FORTRAN_SUFFIXES)}) in {base}")
    return Codebase(name or base.name, files)


def roundtrip_equal(a: Codebase, b: Codebase) -> bool:
    """True if two codebases have identical files (names and lines)."""
    if len(a.files) != len(b.files):
        return False
    by_name = {f.name: f for f in b.files}
    for f in a.files:
        other = by_name.get(f.name)
        if other is None or other.lines != f.lines:
            return False
    return True
