"""Write/read codebases as real file trees.

Lets users inspect the generated MAS versions with ordinary tools (diff,
grep, an editor) and feed hand-edited trees back through the metrics and
transformation passes -- the round trip is exact.
"""

from __future__ import annotations

from pathlib import Path

from repro.fortran.source import Codebase, SourceFile

#: File extensions accepted when loading a tree.
FORTRAN_SUFFIXES = (".f90", ".f", ".F90")


def save_tree(cb: Codebase, root: str | Path, *, overwrite: bool = False) -> Path:
    """Write every file of ``cb`` under ``root/<codebase name>/``."""
    base = Path(root) / cb.name
    if base.exists() and not overwrite:
        raise FileExistsError(f"{base} exists; pass overwrite=True to replace")
    base.mkdir(parents=True, exist_ok=True)
    for f in cb.files:
        target = base / f.name
        if target.resolve().parent != base.resolve():
            raise ValueError(f"file name {f.name!r} escapes the tree")
        target.write_text(f.text())
    return base


def load_tree(path: str | Path, *, name: str | None = None) -> Codebase:
    """Load a directory of Fortran files back into a Codebase.

    Files are ordered by name for determinism; a trailing newline (added
    by :meth:`SourceFile.text`) is not counted as an extra line.
    """
    base = Path(path)
    if not base.is_dir():
        raise NotADirectoryError(f"{base} is not a directory")
    files = []
    for p in sorted(base.iterdir()):
        if p.suffix in FORTRAN_SUFFIXES and p.is_file():
            text = p.read_text()
            lines = text.split("\n")
            if lines and lines[-1] == "":
                lines.pop()
            files.append(SourceFile(p.name, lines))
    if not files:
        raise ValueError(f"no Fortran sources ({'/'.join(FORTRAN_SUFFIXES)}) in {base}")
    return Codebase(name or base.name, files)


def roundtrip_equal(a: Codebase, b: Codebase) -> bool:
    """True if two codebases have identical files (names and lines)."""
    if len(a.files) != len(b.files):
        return False
    by_name = {f.name: f for f in b.files}
    for f in a.files:
        other = by_name.get(f.name)
        if other is None or other.lines != f.lines:
            return False
    return True
