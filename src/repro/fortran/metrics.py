"""Codebase metrics: Table I's line counts and Table II's census."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fortran.directives import DirectiveKind, is_directive_line, parse_directive
from repro.fortran.source import Codebase


@dataclass(frozen=True, slots=True)
class CodeMetrics:
    """Line counts for one code version (one Table I row)."""

    name: str
    total_lines: int
    acc_lines: int

    def __str__(self) -> str:  # pragma: no cover - display helper
        acc = str(self.acc_lines) if self.acc_lines else "0"
        return f"{self.name}: {self.total_lines} lines, {acc} !$acc"


def directive_census(cb: Codebase) -> dict[DirectiveKind, int]:
    """Count directive lines per Table II category."""
    census: dict[DirectiveKind, int] = {k: 0 for k in DirectiveKind}
    for _f, _i, line in cb.iter_lines():
        if is_directive_line(line):
            census[parse_directive(line).kind] += 1
    return census


def acc_line_count(cb: Codebase) -> int:
    """Total ``!$acc`` lines (all kinds, continuations included)."""
    return sum(directive_census(cb).values())


def measure(cb: Codebase) -> CodeMetrics:
    """Table I row for a codebase."""
    return CodeMetrics(
        name=cb.name, total_lines=cb.total_lines, acc_lines=acc_line_count(cb)
    )
