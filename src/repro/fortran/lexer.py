"""Line-level classification of the Fortran subset the transforms touch."""

from __future__ import annotations

import enum
import re

from repro.fortran.directives import is_directive_line


class LineKind(enum.Enum):
    """What a source line structurally is."""

    BLANK = "blank"
    COMMENT = "comment"
    DIRECTIVE = "directive"
    DO = "do"
    DO_CONCURRENT = "do_concurrent"
    ENDDO = "enddo"
    SUBROUTINE_START = "subroutine_start"
    SUBROUTINE_END = "subroutine_end"
    FUNCTION_START = "function_start"
    FUNCTION_END = "function_end"
    MODULE_START = "module_start"
    MODULE_END = "module_end"
    CONTAINS = "contains"
    CALL = "call"
    STATEMENT = "statement"


_DO_CONCURRENT = re.compile(r"^\s*do\s+concurrent\b", re.I)
_DO = re.compile(r"^\s*do\s+\w+\s*=", re.I)
#: ``do while (...)`` and the bare ``do`` infinite loop: not parallelizable
#: nests, but they end in ``enddo`` so the level walkers must count them.
#: (Labeled ``do 100 i=...`` loops terminate on their label, not ``enddo``,
#: and stay invisible -- both the header and the terminator.)
_DO_OTHER = re.compile(r"^\s*do\s*(while\b[^!]*)?(!.*)?$", re.I)
_ENDDO = re.compile(r"^\s*end\s*do\b", re.I)
#: Procedure prefixes: any combination of purity/recursion attributes
#: (``pure elemental subroutine``, ``impure elemental function`` ...).
_PREFIXES = r"(?:(?:pure|impure|elemental|recursive)\s+)*"
_SUB_START = re.compile(rf"^\s*({_PREFIXES})subroutine\s+(\w+)", re.I)
_SUB_END = re.compile(r"^\s*end\s+subroutine\b", re.I)
_FUN_START = re.compile(
    rf"^\s*({_PREFIXES})"
    r"(real|integer|logical|complex|double\s+precision|character|type)?"
    r"\s*(\([^)]*\))?\s*function\s+(\w+)",
    re.I,
)
_FUN_END = re.compile(r"^\s*end\s+function\b", re.I)
_MOD_START = re.compile(r"^\s*module\s+(\w+)", re.I)
_MOD_END = re.compile(r"^\s*end\s+module\b", re.I)
_CONTAINS = re.compile(r"^\s*contains\s*$", re.I)
_CALL = re.compile(r"^\s*call\s+(\w+)", re.I)


def classify_line(line: str) -> LineKind:
    """Classify one line of the Fortran subset."""
    if not line.strip():
        return LineKind.BLANK
    if is_directive_line(line):
        return LineKind.DIRECTIVE
    if line.lstrip().startswith("!"):
        return LineKind.COMMENT
    if _DO_CONCURRENT.match(line):
        return LineKind.DO_CONCURRENT
    if _DO.match(line):
        return LineKind.DO
    if _DO_OTHER.match(line):
        return LineKind.DO
    if _ENDDO.match(line):
        return LineKind.ENDDO
    if _SUB_END.match(line):
        return LineKind.SUBROUTINE_END
    if _SUB_START.match(line):
        return LineKind.SUBROUTINE_START
    if _FUN_END.match(line):
        return LineKind.FUNCTION_END
    if _MOD_END.match(line):
        return LineKind.MODULE_END
    if _MOD_START.match(line):
        return LineKind.MODULE_START
    if _FUN_START.match(line) and "=" not in line.split("!")[0].split("function")[0]:
        return LineKind.FUNCTION_START
    if _CONTAINS.match(line):
        return LineKind.CONTAINS
    if _CALL.match(line):
        return LineKind.CALL
    return LineKind.STATEMENT


def subroutine_name(line: str) -> str | None:
    """Name of a subroutine-start line, else None."""
    m = _SUB_START.match(line)
    return m.group(2) if m else None


def called_name(line: str) -> str | None:
    """Callee of a ``call`` statement line, else None."""
    m = _CALL.match(line)
    return m.group(1) if m else None
