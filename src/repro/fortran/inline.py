"""Routine inliner (what ``-Minline`` does, done manually).

Code 5 removes ``!$acc routine`` directives by inlining the pure routines
called inside DC loops. nvfortran's ``-Minline`` handles all but one; that
one the paper's authors inlined by hand (SIV-E). This module implements
the by-hand path: parse the routine's dummy arguments, substitute actuals,
splice the body into the call site.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.fortran.directives import is_directive_line
from repro.fortran.lexer import LineKind, classify_line
from repro.fortran.source import SourceFile

_SUB_SIG_RE = re.compile(r"^\s*(?:pure\s+)?subroutine\s+(\w+)\s*\(([^)]*)\)", re.I)
_CALL_RE = re.compile(r"^(\s*)call\s+(\w+)\s*\(([^)]*)\)\s*$", re.I)
_DECL_RE = re.compile(r"^\s*(real|integer|logical|character)\b.*::", re.I)


class InlineRefusedError(RuntimeError):
    """The inliner cannot safely inline this routine.

    Mirrors nvfortran refusing to inline (reshape arguments, assumed-shape
    mismatches): callers must then inline manually or keep the directive.
    """


@dataclass(frozen=True, slots=True)
class RoutineBody:
    """A parsed routine: name, dummy arguments, executable body lines."""

    name: str
    dummies: tuple[str, ...]
    body: tuple[str, ...]


def parse_routine(file: SourceFile, start: int) -> RoutineBody:
    """Parse the routine whose ``subroutine`` line is at ``start``."""
    m = _SUB_SIG_RE.match(file.lines[start])
    if not m:
        raise ValueError(f"not a subroutine start: {file.lines[start]!r}")
    name = m.group(1)
    dummies = tuple(a.strip() for a in m.group(2).split(",") if a.strip())
    body: list[str] = []
    i = start + 1
    while i < len(file.lines):
        ln = file.lines[i]
        if classify_line(ln) is LineKind.SUBROUTINE_END:
            return RoutineBody(name, dummies, tuple(body))
        if not is_directive_line(ln) and not _DECL_RE.match(ln):
            body.append(ln)
        i += 1
    raise ValueError(f"unterminated subroutine {name!r}")


def substitute(line: str, mapping: dict[str, str]) -> str:
    """Word-boundary substitution of dummy names by actual arguments."""
    def repl(m: re.Match) -> str:
        return mapping.get(m.group(0), m.group(0))

    return re.sub(r"\b\w+\b", repl, line)


def inline_call(file: SourceFile, call_idx: int, routine: RoutineBody) -> int:
    """Replace the ``call`` at ``call_idx`` with the routine body.

    Returns the number of lines the file grew by. Raises
    :class:`InlineRefusedError` if the call is not a simple positional
    call to the routine.
    """
    m = _CALL_RE.match(file.lines[call_idx])
    if not m or m.group(2) != routine.name:
        raise InlineRefusedError(
            f"line {call_idx} is not a plain call to {routine.name!r}"
        )
    actuals = [a.strip() for a in m.group(3).split(",") if a.strip()]
    if len(actuals) != len(routine.dummies):
        raise InlineRefusedError(
            f"call to {routine.name!r} passes {len(actuals)} args, "
            f"routine has {len(routine.dummies)} dummies"
        )
    mapping = dict(zip(routine.dummies, actuals))
    indent = m.group(1)
    body = [indent + substitute(ln, mapping).lstrip() for ln in routine.body]
    file.lines[call_idx : call_idx + 1] = body
    return len(body) - 1
