"""Mini-Fortran source model and the OpenACC->DC porting toolchain.

Implements the source-level side of the paper: a synthetic MAS-like
codebase generator whose OpenACC directive census matches Table II, a
line-level lexer + structural parser for the loop/directive subset the
transformations need, and the five transformation passes that produce
Codes 2-6 from Code 1 by *actually rewriting source text* (Table I's
line counts are outputs of the pipeline, not constants).
"""

from repro.fortran.directives import AccDirective, DirectiveKind, parse_directive
from repro.fortran.source import SourceFile, Codebase
from repro.fortran.lexer import LineKind, classify_line
from repro.fortran.metrics import CodeMetrics, directive_census, measure
from repro.fortran.codebase import generate_mas_codebase, strip_to_cpu
from repro.fortran.pipeline import build_version, PASS_PIPELINES
from repro.fortran.portability import PortabilityReport, analyze, render_report
from repro.fortran.tree_io import load_tree, save_tree

__all__ = [
    "AccDirective",
    "DirectiveKind",
    "parse_directive",
    "SourceFile",
    "Codebase",
    "LineKind",
    "classify_line",
    "CodeMetrics",
    "directive_census",
    "measure",
    "generate_mas_codebase",
    "strip_to_cpu",
    "build_version",
    "PASS_PIPELINES",
    "PortabilityReport",
    "analyze",
    "render_report",
    "load_tree",
    "save_tree",
]
