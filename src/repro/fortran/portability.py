"""Portability analysis: which compilers can build each code version.

The paper's SIV/SVI portability discussion, made executable. Each code
version trades directives for language features, and each trade changes
which compilers can build it:

* OpenACC directives are comments -- any compiler *builds* the code, but
  GPU offload needs OpenACC support (nvfortran; partially gfortran/cray);
* Fortran-2018 ``do concurrent`` compiles everywhere, offloads on
  nvfortran and ifx;
* the 202X ``reduce`` clause breaks F2018 compilers "even on the CPU"
  (SIV-D) until the standard lands.

The analyzer scans actual source text for these constructs (it does not
trust the version label), so it doubles as a lint for hand-edited trees.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.fortran.directives import is_directive_line
from repro.fortran.source import Codebase


class LanguageLevel(enum.Enum):
    """The strictest language feature a codebase uses."""

    F2008 = "Fortran 2008"
    F2018 = "Fortran 2018 (do concurrent)"
    F202X = "Fortran 202X preview (do concurrent reduce)"


@dataclass(frozen=True, slots=True)
class CompilerProfile:
    """What one compiler (version era of the paper) supports."""

    name: str
    compiles_f202x: bool
    openacc_offload: bool
    dc_offload: bool

    def can_compile(self, report: "PortabilityReport") -> bool:
        """Can this compiler build the code at all (CPU target)?"""
        if report.language_level is LanguageLevel.F202X:
            return self.compiles_f202x
        return True  # directives are comments; F2018 DC is standard

    def can_offload(self, report: "PortabilityReport") -> bool:
        """Can this compiler produce a working GPU build?"""
        if not self.can_compile(report):
            return False
        if report.uses_openacc and not self.openacc_offload:
            return False
        if report.uses_do_concurrent and not self.dc_offload:
            return False
        return True


#: Compiler landscape at the paper's writing (SII, SIV-D).
COMPILERS: tuple[CompilerProfile, ...] = (
    CompilerProfile("nvfortran 22.11", compiles_f202x=True, openacc_offload=True, dc_offload=True),
    CompilerProfile("gfortran 12", compiles_f202x=False, openacc_offload=True, dc_offload=False),
    CompilerProfile("ifx 2023", compiles_f202x=False, openacc_offload=False, dc_offload=True),
    CompilerProfile("ifort classic", compiles_f202x=False, openacc_offload=False, dc_offload=False),
    CompilerProfile("cray ftn", compiles_f202x=False, openacc_offload=True, dc_offload=False),
)

_DC_RE = re.compile(r"^\s*do\s+concurrent\b", re.I)
_REDUCE_RE = re.compile(r"\breduce\s*\(", re.I)


@dataclass(frozen=True)
class PortabilityReport:
    """Constructs found in a codebase and their portability consequences."""

    codebase_name: str
    uses_openacc: bool
    uses_do_concurrent: bool
    uses_dc_reduce: bool
    dc_loop_count: int
    acc_line_count: int

    @property
    def language_level(self) -> LanguageLevel:
        """Strictest standard level required."""
        if self.uses_dc_reduce:
            return LanguageLevel.F202X
        if self.uses_do_concurrent:
            return LanguageLevel.F2018
        return LanguageLevel.F2008

    def compilers_that_compile(self) -> list[str]:
        """Compilers that can build the code (CPU)."""
        return [c.name for c in COMPILERS if c.can_compile(self)]

    def compilers_that_offload(self) -> list[str]:
        """Compilers that can produce a working GPU build."""
        return [c.name for c in COMPILERS if c.can_offload(self)]

    @property
    def cpu_portable(self) -> bool:
        """Builds with every compiler in the landscape."""
        return len(self.compilers_that_compile()) == len(COMPILERS)


def analyze(cb: Codebase) -> PortabilityReport:
    """Scan a codebase for the portability-relevant constructs."""
    uses_acc = False
    acc_lines = 0
    dc_loops = 0
    uses_reduce = False
    for _f, _i, line in cb.iter_lines():
        if is_directive_line(line):
            uses_acc = True
            acc_lines += 1
        elif _DC_RE.match(line):
            dc_loops += 1
            if _REDUCE_RE.search(line):
                uses_reduce = True
    return PortabilityReport(
        codebase_name=cb.name,
        uses_openacc=uses_acc,
        uses_do_concurrent=dc_loops > 0,
        uses_dc_reduce=uses_reduce,
        dc_loop_count=dc_loops,
        acc_line_count=acc_lines,
    )


def render_report(report: PortabilityReport) -> str:
    """Human-readable portability summary for one version."""
    lines = [
        f"{report.codebase_name}:",
        f"  language level : {report.language_level.value}",
        f"  !$acc lines    : {report.acc_line_count}",
        f"  DC loops       : {report.dc_loop_count}"
        + (" (uses reduce)" if report.uses_dc_reduce else ""),
        f"  compiles (CPU) : {', '.join(report.compilers_that_compile())}",
        f"  GPU offload    : {', '.join(report.compilers_that_offload()) or 'none'}",
    ]
    return "\n".join(lines)
