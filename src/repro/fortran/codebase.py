"""Synthetic MAS-like codebase generator.

Emits a Fortran codebase whose OpenACC directive census matches Table II
*exactly by construction*; the transformation passes then produce Codes
2-6 whose line counts are compared against Table I in EXPERIMENTS.md (and
asserted in tests).

The construct mix (how many plain nests, reductions, data directives,
duplicate CPU routines...) is fixed in :class:`GeneratorBudget`, derived
from Table II plus the Table I deltas: e.g. Code 1 -> Code 2 removes 918
directive lines while shrinking the code by 2204 lines, which pins the
split between 3-deep nests, 2-deep nests, and fused two-loop regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fortran.directives import is_directive_line
from repro.fortran.parser import find_subroutines
from repro.fortran.source import Codebase, SourceFile


@dataclass(frozen=True, slots=True)
class GeneratorBudget:
    """Construct counts pinned by Tables I and II (see module docstring)."""

    plain3: int = 160          # 3-deep single-loop parallel regions
    caller3: int = 20          # same, body calls a pure routine
    plain2: int = 43           # 2-deep single-loop parallel regions
    double_regions: int = 60   # regions fusing two 3-deep loops
    double_with_cont: int = 9  # of those, regions with a continuation line
    scalar_reductions: int = 16
    array_reductions: int = 9
    atomic_other: int = 4
    kernels_regions: int = 3
    routine_defs: int = 12
    enter_data: int = 120
    exit_data: int = 120
    update_data: int = 50
    host_data_pairs: int = 10
    host_data_glue_pairs: int = 7
    enter_data_cont: int = 68
    dtype_enter_exit: int = 8   # derived-type members, kept under UM
    dtype_cont: int = 5
    wait_lines: int = 6
    dup_cpu_routines: int = 30
    dup_cpu_lines_each: int = 63
    legacy_blocks: int = 4
    legacy_lines_total: int = 204
    gpu_support_lines: int = 425
    manual_inline_body: int = 12  # stmts of the routine nvfortran refuses to inline
    wrapper_acc_lines: int = 277  # Code 6 wrapper module directives
    wrapper_src_lines: int = 462  # Code 6 wrapper module plain lines
    total_lines_code1: int = 73865

    @property
    def parallel_loop_lines(self) -> int:
        """Expected Table II parallel/loop census."""
        return (
            3 * (self.plain3 + self.caller3 + self.plain2)
            + 4 * self.double_regions
            + 3 * self.scalar_reductions + 1  # one region has a `loop seq`
            + 3 * self.array_reductions
            + 3 * self.atomic_other
        )


MAS_BUDGET = GeneratorBudget()


class _Emitter:
    """Accumulates lines for one synthetic file."""

    def __init__(self, name: str) -> None:
        self.file = SourceFile(name, [])

    def emit(self, *lines: str) -> None:
        self.file.lines.extend(lines)

    def module(self, name: str) -> None:
        self.emit(f"module {name}", "  use mod_types", "  implicit none", "contains")

    def end_module(self, name: str) -> None:
        self.emit(f"end module {name}")


def _plain3(e: _Emitter, ident: int, *, call: bool = False) -> None:
    body = (
        f"        call interp3(a{ident}, b{ident}, d{ident}, i, j, k)"
        if call
        else f"        a{ident}(i,j,k) = b{ident}(i,j,k) + c0 * d{ident}(i,j,k)"
    )
    e.emit(
        "!$acc parallel default(present)",
        "!$acc loop collapse(3)",
        "      do k=1,n3",
        "      do j=1,n2",
        "      do i=1,n1",
        body,
        "      enddo",
        "      enddo",
        "      enddo",
        "!$acc end parallel",
    )


def _plain2(e: _Emitter, ident: int) -> None:
    e.emit(
        "!$acc parallel default(present)",
        "!$acc loop collapse(2)",
        "      do j=1,n2",
        "      do i=1,n1",
        f"        bc{ident}(i,j) = r0{ident}(i,j) * t0{ident}(i,j)",
        "      enddo",
        "      enddo",
        "!$acc end parallel",
    )


def _double_region(e: _Emitter, ident: int, *, continuation: bool) -> None:
    # alternate the async queue so both queues the wait directives name
    # actually carry work (the lint's orphan-wait rule checks this)
    e.emit(f"!$acc parallel default(present) async({ident % 2 + 1})")
    if continuation:
        e.emit(f"!$acc& present(a{ident}, b{ident}, p{ident}, q{ident})")
    e.emit(
        "!$acc loop collapse(3)",
        "      do k=1,n3",
        "      do j=1,n2",
        "      do i=1,n1",
        f"        p{ident}(i,j,k) = a{ident}(i,j,k) * w1",
        "      enddo",
        "      enddo",
        "      enddo",
        "!$acc loop collapse(3)",
        "      do k=1,n3",
        "      do j=1,n2",
        "      do i=1,n1",
        f"        q{ident}(i,j,k) = b{ident}(i,j,k) * w2",
        "      enddo",
        "      enddo",
        "      enddo",
        "!$acc end parallel",
    )


def _scalar_reduction(e: _Emitter, ident: int, *, with_seq: bool = False) -> None:
    e.emit(
        "!$acc parallel default(present)",
        f"!$acc loop collapse(3) reduction(+:sum{ident})",
        "      do k=1,n3",
        "      do j=1,n2",
        "      do i=1,n1",
    )
    if with_seq:
        e.emit(
            "!$acc loop seq",
            "      do m=1,nm",
            f"        sum{ident} = sum{ident} + e{ident}(i,j,k) * wgt(m)",
            "      enddo",
        )
    else:
        e.emit(f"        sum{ident} = sum{ident} + e{ident}(i,j,k)**2")
    e.emit(
        "      enddo",
        "      enddo",
        "      enddo",
        "!$acc end parallel",
    )


def _array_reduction(e: _Emitter, ident: int) -> None:
    e.emit(
        "!$acc parallel default(present)",
        "!$acc loop collapse(2)",
        "      do j=1,n2",
        "      do i=1,n1",
        "!$acc atomic update",
        f"        sum0(i) = sum0(i) + f{ident}(i,j) * avec0(j)",
        "!$acc atomic update",
        f"        sum1(i) = sum1(i) + g{ident}(i,j) * avec1(j)",
        "      enddo",
        "      enddo",
        "!$acc end parallel",
    )


def _atomic_other(e: _Emitter, ident: int) -> None:
    e.emit(
        "!$acc parallel default(present)",
        "!$acc loop collapse(2)",
        "      do j=1,n2",
        "      do i=1,n1",
        "!$acc atomic write",
        f"        flag(map{ident}(i,j)) = 1",
        "!$acc atomic update",
        f"        hist(bin{ident}(i,j)) = hist(bin{ident}(i,j)) + 1",
        "!$acc atomic write",
        f"        mark(map{ident}(i,j)) = istep",
        "!$acc atomic update",
        f"        tally(bin{ident}(i,j)) = tally(bin{ident}(i,j)) + 1",
        "      enddo",
        "      enddo",
        "!$acc end parallel",
    )


def _kernels_region(e: _Emitter, ident: int) -> None:
    e.emit(
        "!$acc kernels",
        f"      dtmax{ident} = minval(dt_arr{ident})",
        "!$acc end kernels",
    )


def _routine_def(e: _Emitter, ident: int, *, manual_inline: bool = False,
                 body_stmts: int = 6) -> None:
    name = "interp1" if manual_inline else f"pure_fun{ident}"
    e.emit(
        f"  pure subroutine {name}(x, y, z, i, j, k)",
        "!$acc routine seq",
        "    real, intent(in)  :: x(:,:,:), y(:,:,:)",
        "    real, intent(out) :: z(:,:,:)",
        "    integer, intent(in) :: i, j, k",
    )
    for s in range(body_stmts):
        e.emit(f"    z(i,j,k) = x(i,j,k) * wq{s} + y(i,j,k) * wr{s}")
    e.emit(f"  end subroutine {name}")


def generate_mas_codebase(budget: GeneratorBudget = MAS_BUDGET) -> Codebase:
    """Emit the Code-1 (original OpenACC) synthetic MAS tree."""
    b = budget
    files: list[SourceFile] = []

    # ---- physics modules with the parallel regions --------------------------
    phys = _Emitter("mod_physics.f90")
    phys.module("mod_physics")
    ident = 0
    phys.emit("  subroutine advance_fields(istep)")
    for _ in range(b.plain3):
        _plain3(phys, ident)
        ident += 1
    for _ in range(b.caller3):
        _plain3(phys, ident, call=True)
        ident += 1
    for _ in range(b.plain2):
        _plain2(phys, ident)
        ident += 1
    for n in range(b.double_regions):
        _double_region(phys, ident, continuation=(n < b.double_with_cont))
        ident += 1
    for i in range(b.wait_lines):
        phys.emit(f"!$acc wait({i % 2 + 1})")
    phys.emit("  end subroutine advance_fields")

    phys.emit("  subroutine diagnostics(istep)")
    for n in range(b.scalar_reductions):
        _scalar_reduction(phys, ident, with_seq=(n == 0))
        ident += 1
    for _ in range(b.array_reductions):
        _array_reduction(phys, ident)
        ident += 1
    for _ in range(b.atomic_other):
        _atomic_other(phys, ident)
        ident += 1
    for n in range(b.kernels_regions):
        _kernels_region(phys, n)
    phys.emit("  end subroutine diagnostics")
    phys.end_module("mod_physics")
    files.append(phys.file)

    # ---- pure routines (OpenACC routine directives) ---------------------------
    rout = _Emitter("mod_routines.f90")
    rout.module("mod_routines")
    rout.emit("!$acc declare create(coef_tab)")
    rout.emit("  real :: coef_tab(ncoef)")
    for n in range(b.routine_defs):
        _routine_def(
            rout,
            n,
            manual_inline=(n == 0),
            body_stmts=(b.manual_inline_body if n == 0 else 6),
        )
    # the single call site of the routine nvfortran refuses to inline
    rout.emit(
        "  subroutine boundary_interp(x, y, z)",
        "    real, intent(inout) :: x(:,:,:), y(:,:,:), z(:,:,:)",
        "      call interp1(x, y, z, i1, j1, k1)",
        "  end subroutine boundary_interp",
    )
    rout.end_module("mod_routines")
    files.append(rout.file)

    # ---- setup / data management ------------------------------------------------
    setup = _Emitter("mod_setup.f90")
    setup.module("mod_setup")
    setup.emit("  subroutine init_gpu_data()")
    setup.emit("!$acc set device_num(idev)")
    setup.emit("!$acc update device(coef_tab)")
    cont_left = b.enter_data_cont
    for n in range(b.enter_data):
        setup.emit(f"!$acc enter data copyin(arr{n:04d})")
        if cont_left > 0:
            setup.emit(f"!$acc& copyin(aux{n:04d})")
            cont_left -= 1
    for n in range(b.dtype_enter_exit // 2):
        setup.emit(f"!$acc enter data copyin(dtyp{n}%arr)")
        if n < b.dtype_cont - 2:
            setup.emit(f"!$acc& copyin(dtyp{n}%aux)")
    setup.emit("  end subroutine init_gpu_data")
    setup.emit("  subroutine finalize_gpu_data()")
    for n in range(b.exit_data):
        setup.emit(f"!$acc exit data delete(arr{n:04d})")
    for n in range(b.dtype_enter_exit - b.dtype_enter_exit // 2):
        setup.emit(f"!$acc exit data delete(dtyp{n}%arr)")
        if n < b.dtype_cont - (b.dtype_cont - 2):
            setup.emit(f"!$acc& delete(dtyp{n}%aux)")
    setup.emit("  end subroutine finalize_gpu_data")
    setup.end_module("mod_setup")
    files.append(setup.file)

    # ---- I/O updates ---------------------------------------------------------------
    io = _Emitter("mod_io.f90")
    io.module("mod_io")
    io.emit("  subroutine write_restart(istep)")
    for n in range(b.update_data // 2):
        io.emit(f"!$acc update host(arr{n:04d})")
        io.emit(f"      call hdf5_write(arr{n:04d}, istep)")
    io.emit("  end subroutine write_restart")
    io.emit("  subroutine read_restart(istep)")
    for n in range(b.update_data - b.update_data // 2):
        io.emit(f"      call hdf5_read(arr{n:04d}, istep)")
        io.emit(f"!$acc update device(arr{n:04d})")
    io.emit("  end subroutine read_restart")
    io.end_module("mod_io")
    files.append(io.file)

    # ---- MPI seams: host_data + buffer glue -------------------------------------------
    mpi = _Emitter("mod_seam.f90")
    mpi.module("mod_seam")
    mpi.emit("  subroutine exchange_halos()")
    for n in range(b.host_data_pairs):
        glue = n < b.host_data_glue_pairs
        if glue:
            mpi.emit(f"      call load_gpu_buffer(sbuf{n}, arr{n:04d})")
        mpi.emit(
            f"!$acc host_data use_device(sbuf{n}, rbuf{n})",
            f"      call mpi_sendrecv_seam(sbuf{n}, rbuf{n}, n{n})",
            "!$acc end host_data",
        )
        if glue:
            mpi.emit(f"      call unload_gpu_buffer(rbuf{n}, arr{n:04d})")
    mpi.emit("  end subroutine exchange_halos")

    # legacy non-managed transfer paths, dead once everything is UM+DC
    per_block = b.legacy_lines_total // b.legacy_blocks
    extra = b.legacy_lines_total - per_block * b.legacy_blocks
    for n in range(b.legacy_blocks):
        lines = per_block + (extra if n == 0 else 0)
        mpi.emit("      if (.not. gpu_managed) then")
        for m in range(lines - 2):
            mpi.emit(f"        tbuf({m + 1}) = stage_area{n}({m + 1})")
        mpi.emit("      endif")
    mpi.end_module("mod_seam")
    files.append(mpi.file)

    # ---- duplicate CPU-only twins of ported routines -----------------------------------
    dup = _Emitter("mod_setup_cpu.f90")
    dup.module("mod_setup_cpu")
    for n in range(b.dup_cpu_routines):
        dup.emit(f"  subroutine smooth_field{n}_cpu(x, y)")
        dup.emit("    real, intent(inout) :: x(:,:,:), y(:,:,:)")
        for m in range(b.dup_cpu_lines_each - 3):
            dup.emit(f"      x(:, :, {m + 1}) = 0.5 * (x(:, :, {m + 1}) + y(:, :, {m + 1}))")
        dup.emit(f"  end subroutine smooth_field{n}_cpu")
    dup.end_module("mod_setup_cpu")
    files.append(dup.file)

    # ---- GPU support module (absent from the CPU-only original) -------------------------
    sup = _Emitter("mod_gpu_support.f90")
    sup.module("mod_gpu_support")
    sup.emit("  subroutine query_devices(ndev)")
    for m in range(b.gpu_support_lines - 7):
        sup.emit(f"      devtab({m + 1}) = probe_device_attr({m + 1})")
    sup.emit("  end subroutine query_devices")
    sup.end_module("mod_gpu_support")
    files.append(sup.file)

    cb = Codebase("code1_A", files)

    # ---- plain-physics base code up to the Table I total -------------------------------
    # MAS's bulk is setup, I/O, and serial physics the GPU port never
    # touched; emit it as a spread of plausible modules (equation setup,
    # boundary data, grid generation, ...) so the tree looks like a real
    # production code rather than one giant file.
    deficit = budget.total_lines_code1 - cb.total_lines
    module_names = [
        "mod_eqn_setup", "mod_grid_gen", "mod_bc_tables", "mod_init_fields",
        "mod_io_hdf5", "mod_diag_output", "mod_time_control", "mod_sts_coefs",
        "mod_seam_maps", "mod_heating_tables", "mod_rad_tables", "mod_units",
        "mod_probe_output", "mod_history", "mod_solver_setup", "mod_base_physics",
    ]
    overhead = 5 * len(module_names)  # module scaffolding lines
    if deficit < overhead + len(module_names):
        raise ValueError(
            f"construct budget already exceeds Table I total ({cb.total_lines})"
        )
    body_total = deficit - overhead
    per, extra = divmod(body_total, len(module_names))
    for idx, name in enumerate(module_names):
        filler = _Emitter(f"{name}.f90")
        filler.module(name)
        for m in range(per + (1 if idx < extra else 0)):
            filler.emit(f"      eqcoef{idx}({m + 1}) = table_lookup{idx}({m + 1}) * norm0")
        filler.end_module(name)
        cb.files.append(filler.file)
    assert cb.total_lines == budget.total_lines_code1
    return cb


def strip_to_cpu(cb: Codebase, budget: GeneratorBudget = MAS_BUDGET) -> Codebase:
    """Derive the original CPU-only code (Code 0, Table I row 0).

    Removes every directive line, the duplicate ``*_cpu`` twins the GPU
    port introduced, the GPU buffer glue / legacy transfer paths, and the
    GPU support module.
    """
    out = cb.copy("code0_CPU")
    # whole GPU-support module goes away
    out.files = [f for f in out.files if f.name != "mod_gpu_support.f90"]
    for f in out.files:
        # _cpu twins
        blocks = find_subroutines(f, r"_cpu$")
        for blk in sorted(blocks, key=lambda b_: b_.start, reverse=True):
            del f.lines[blk.start : blk.end + 1]
        # glue + legacy paths + directives
        new_lines: list[str] = []
        i = 0
        while i < len(f.lines):
            ln = f.lines[i]
            if is_directive_line(ln):
                i += 1
                continue
            if "load_gpu_buffer" in ln or "unload_gpu_buffer" in ln:
                i += 1
                continue
            if ln.strip() == "if (.not. gpu_managed) then":
                while f.lines[i].strip() != "endif":
                    i += 1
                i += 1
                continue
            new_lines.append(ln)
            i += 1
        f.lines = new_lines
    return out
