"""Structural parser: finds the regions the porting passes rewrite.

Works on any code in the canonical MAS-like subset: OpenACC parallel
regions wrapping do-loop nests, kernels regions, data/routine/wait
directives with their continuation lines, and subroutine blocks.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.fortran.directives import (
    AccDirective,
    DirectiveKind,
    is_directive_line,
    parse_directive,
    try_parse_directive,
)
from repro.fortran.lexer import LineKind, classify_line, subroutine_name
from repro.fortran.source import Codebase, SourceFile


class RegionKind(enum.Enum):
    """How a parallel region ports to DC (the SIV taxonomy)."""

    PLAIN = "plain"
    SCALAR_REDUCTION = "scalar_reduction"
    ARRAY_REDUCTION = "array_reduction"
    ATOMIC_OTHER = "atomic_other"
    ROUTINE_CALLER = "routine_caller"


@dataclass(slots=True)
class LoopNest:
    """A nest of ``do`` lines inside a region: [start, end] inclusive."""

    start: int
    end: int
    depth: int
    index_vars: list[str]
    bounds: list[str]

    @property
    def body_range(self) -> tuple[int, int]:
        """[first, last] line indices of the nest body."""
        return (self.start + self.depth, self.end - self.depth)


@dataclass(slots=True)
class ParallelRegion:
    """One ``!$acc parallel`` ... ``!$acc end parallel`` region."""

    file: SourceFile
    start: int  # index of the parallel directive line
    end: int    # index of the end parallel line
    kind: RegionKind
    loops: list[LoopNest] = field(default_factory=list)
    directive_lines: list[int] = field(default_factory=list)  # acc lines inside [start, end]
    atomic_lines: list[int] = field(default_factory=list)


@dataclass(slots=True)
class KernelsRegion:
    """One ``!$acc kernels`` ... ``!$acc end kernels`` region."""

    file: SourceFile
    start: int
    end: int


@dataclass(slots=True)
class DirectiveLine:
    """One standalone directive plus its continuation lines."""

    file: SourceFile
    index: int
    directive: AccDirective
    continuations: list[int] = field(default_factory=list)

    @property
    def all_lines(self) -> list[int]:
        """Directive line plus continuations."""
        return [self.index, *self.continuations]


@dataclass(slots=True)
class SubroutineBlock:
    """A subroutine from its start line to ``end subroutine``."""

    file: SourceFile
    start: int
    end: int
    name: str


_DO_RE = re.compile(r"^\s*do\s+(\w+)\s*=\s*(.+)$", re.I)
_ARRAY_ACCUM_RE = re.compile(r"^\s*\w+\(\w+\)\s*=\s*\w+\(\w+\)\s*\+")

# -- procedure headers and declarations ---------------------------------------

_HEADER_RE = re.compile(
    r"^\s*(?P<prefix>(?:(?:pure|impure|elemental|recursive)\s+)*)"
    r"(?:(?:real|integer|logical|complex|double\s+precision|character|type)"
    r"\s*(?:\([^)]*\))?\s+)?"
    r"(?P<kind>subroutine|function)\s+(?P<name>\w+)\s*"
    r"(?:\((?P<args>[^)]*)\))?"
    r"(?:\s*result\s*\(\s*(?P<result>\w+)\s*\))?",
    re.I,
)
_TYPE_DECL_RE = re.compile(
    r"^\s*(?:real|integer|logical|complex|double\s+precision|character"
    r"|type\s*\(\s*\w+\s*\))\s*(?:\([^)]*\))?\s*"
    r"(?P<attrs>(?:\s*,\s*[\w()=:,+\-* ]+?)*)\s*::\s*(?P<names>.+)$",
    re.I,
)
_INTENT_RE = re.compile(r"\bintent\s*\(\s*(in\s*out|inout|in|out)\s*\)", re.I)


@dataclass(frozen=True, slots=True)
class ProcedureHeader:
    """Parsed ``subroutine``/``function`` start line."""

    name: str
    kind: str                   # "subroutine" | "function"
    prefixes: tuple[str, ...]   # pure/impure/elemental/recursive, lowercased
    dummies: tuple[str, ...]    # dummy argument names, lowercased
    result: str = ""            # result variable of a function ("" = name)

    @property
    def declared_pure(self) -> bool:
        """Declared ``pure`` (or ``elemental``, which implies pure unless
        explicitly ``impure elemental``)."""
        if "impure" in self.prefixes:
            return False
        return "pure" in self.prefixes or "elemental" in self.prefixes


def parse_procedure_header(line: str) -> ProcedureHeader | None:
    """Parse a procedure start line into its header, else None."""
    m = _HEADER_RE.match(line)
    if m is None:
        return None
    prefixes = tuple(m.group("prefix").lower().split())
    args = m.group("args") or ""
    dummies = tuple(
        a.strip().lower() for a in args.split(",") if a.strip()
    )
    kind = m.group("kind").lower()
    result = (m.group("result") or "").lower()
    if kind == "function" and not result:
        result = m.group("name").lower()
    return ProcedureHeader(
        name=m.group("name").lower(), kind=kind,
        prefixes=prefixes, dummies=dummies,
        result=result if kind == "function" else "",
    )


def declared_entities(line: str) -> tuple[str, ...]:
    """Entity names a type-declaration line declares (lowercased).

    ``real(r_typ), dimension(n), intent(in) :: x, y(3) = 0`` yields
    ``("x", "y")``; non-declaration lines yield ``()``.
    """
    m = _TYPE_DECL_RE.match(line.split("!", 1)[0])
    if m is None:
        return ()
    names: list[str] = []
    depth = 0
    token = ""
    for ch in m.group("names") + ",":
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth = max(0, depth - 1)
        elif ch == "," and depth == 0:
            head = token.split("=")[0].strip()
            ident = re.match(r"[A-Za-z_]\w*", head)
            if ident:
                names.append(ident.group(0).lower())
            token = ""
            continue
        token += ch
    return tuple(names)


def declared_intent(line: str) -> str:
    """The ``intent(...)`` a declaration line carries ("" when none)."""
    m = _INTENT_RE.search(line.split("!", 1)[0])
    if m is None:
        return ""
    return re.sub(r"\s+", "", m.group(1).lower())


def _continuations(lines: list[str], idx: int) -> list[int]:
    """Indices of ``!$acc&`` lines directly following ``idx``."""
    out = []
    j = idx + 1
    while j < len(lines) and is_directive_line(lines[j]):
        d = try_parse_directive(lines[j])
        if d is None or d.kind is not DirectiveKind.CONTINUATION:
            break
        out.append(j)
        j += 1
    return out


def parse_loop_nest(lines: list[str], start: int) -> LoopNest | None:
    """Parse a rectangular ``do`` nest beginning at ``start``."""
    depth = 0
    idx_vars: list[str] = []
    bounds: list[str] = []
    i = start
    while i < len(lines):
        m = _DO_RE.match(lines[i])
        if m is None:
            break
        idx_vars.append(m.group(1))
        bounds.append(m.group(2).strip())
        depth += 1
        i += 1
    if depth == 0:
        return None
    # walk to the matching sequence of enddos
    level = depth
    while i < len(lines) and level > 0:
        kind = classify_line(lines[i])
        if kind is LineKind.DO or kind is LineKind.DO_CONCURRENT:
            level += 1
        elif kind is LineKind.ENDDO:
            level -= 1
        i += 1
    if level != 0:
        raise ValueError(f"unterminated do nest at line {start}")
    return LoopNest(start=start, end=i - 1, depth=depth, index_vars=idx_vars, bounds=bounds)


def _classify_region(
    lines: list[str], start: int, end: int, directive_lines: list[int], atomic_lines: list[int]
) -> RegionKind:
    for i in directive_lines:
        d = parse_directive(lines[i])
        if d.kind is DirectiveKind.PARALLEL_LOOP and d.has_clause("reduction"):
            return RegionKind.SCALAR_REDUCTION
    if atomic_lines:
        for i in atomic_lines:
            j = i + 1
            if j <= end and _ARRAY_ACCUM_RE.match(lines[j]):
                return RegionKind.ARRAY_REDUCTION
        return RegionKind.ATOMIC_OTHER
    for i in range(start, end + 1):
        if classify_line(lines[i]) is LineKind.CALL:
            return RegionKind.ROUTINE_CALLER
    return RegionKind.PLAIN


def _combined_region(file: SourceFile, start: int) -> ParallelRegion:
    """Region for a combined ``parallel loop`` construct at ``start``.

    The region spans the directive (plus continuations) and the loop nest
    it governs; an explicit ``end parallel [loop]`` directly after the
    nest is absorbed when present (it is optional in real OpenACC).
    Raises ValueError when no loop nest follows -- the front end degrades
    such constructs to opaque lines.
    """
    lines = file.lines
    j = start + 1
    while j < len(lines):
        kind = classify_line(lines[j])
        if kind is LineKind.DIRECTIVE and (
            parse_directive(lines[j]).kind is DirectiveKind.CONTINUATION
        ):
            j += 1
            continue
        if kind in (LineKind.BLANK, LineKind.COMMENT):
            j += 1
            continue
        break
    nest = parse_loop_nest(lines, j) if j < len(lines) else None
    if nest is None:
        raise ValueError(
            f"combined construct without a loop nest in {file.name} at {start}"
        )
    end = nest.end
    k = end + 1
    if k < len(lines) and is_directive_line(lines[k]):
        dk = parse_directive(lines[k])
        if dk.kind is DirectiveKind.PARALLEL_LOOP and dk.is_region_end:
            end = k
    directive_lines = [m for m in range(start, end + 1) if is_directive_line(lines[m])]
    atomic_lines = [
        m for m in directive_lines
        if parse_directive(lines[m]).kind is DirectiveKind.ATOMIC
    ]
    kind = _classify_region(lines, start, end, directive_lines, atomic_lines)
    return ParallelRegion(
        file=file, start=start, end=end, kind=kind, loops=[nest],
        directive_lines=directive_lines, atomic_lines=atomic_lines,
    )


def find_parallel_regions(file: SourceFile) -> list[ParallelRegion]:
    """All parallel regions in a file, classified and with their loops."""
    lines = file.lines
    regions: list[ParallelRegion] = []
    i = 0
    while i < len(lines):
        if not is_directive_line(lines[i]):
            i += 1
            continue
        d = parse_directive(lines[i])
        if (
            d.kind is DirectiveKind.PARALLEL_LOOP
            and d.is_combined_construct
        ):
            region = _combined_region(file, i)
            regions.append(region)
            i = region.end + 1
            continue
        if d.kind is DirectiveKind.PARALLEL_LOOP and d.is_region_start:
            start = i
            j = i + 1
            end = None
            while j < len(lines):
                if is_directive_line(lines[j]):
                    dj = parse_directive(lines[j])
                    if dj.kind is DirectiveKind.PARALLEL_LOOP and dj.is_region_end:
                        end = j
                        break
                j += 1
            if end is None:
                raise ValueError(f"unterminated parallel region in {file.name} at {start}")
            directive_lines = [
                k for k in range(start, end + 1) if is_directive_line(lines[k])
            ]
            atomic_lines = [
                k
                for k in directive_lines
                if parse_directive(lines[k]).kind is DirectiveKind.ATOMIC
            ]
            loops = []
            k = start + 1
            while k < end:
                if classify_line(lines[k]) is LineKind.DO:
                    nest = parse_loop_nest(lines, k)
                    if nest is not None and nest.end < end:
                        loops.append(nest)
                        k = nest.end + 1
                        continue
                k += 1
            kind = _classify_region(lines, start, end, directive_lines, atomic_lines)
            regions.append(
                ParallelRegion(
                    file=file,
                    start=start,
                    end=end,
                    kind=kind,
                    loops=loops,
                    directive_lines=directive_lines,
                    atomic_lines=atomic_lines,
                )
            )
            i = end + 1
        else:
            i += 1
    return regions


def find_kernels_regions(file: SourceFile) -> list[KernelsRegion]:
    """All ``!$acc kernels`` regions in a file."""
    lines = file.lines
    out = []
    i = 0
    while i < len(lines):
        if is_directive_line(lines[i]):
            d = parse_directive(lines[i])
            if d.kind is DirectiveKind.KERNELS and d.is_combined_construct:
                # combined ``kernels loop``: spans the following do nest,
                # with an optional adjacent ``end kernels [loop]``
                j = i + 1
                while j < len(lines) and classify_line(lines[j]) in (
                    LineKind.BLANK, LineKind.COMMENT,
                ):
                    j += 1
                nest = parse_loop_nest(lines, j) if j < len(lines) else None
                if nest is None:
                    raise ValueError(
                        f"combined kernels construct without a loop nest in {file.name} at {i}"
                    )
                end = nest.end
                k = end + 1
                if k < len(lines) and is_directive_line(lines[k]):
                    dk = parse_directive(lines[k])
                    if dk.kind is DirectiveKind.KERNELS and dk.is_region_end:
                        end = k
                out.append(KernelsRegion(file, i, end))
                i = end
            elif d.kind is DirectiveKind.KERNELS and not d.is_region_end:
                j = i + 1
                while j < len(lines):
                    if is_directive_line(lines[j]):
                        dj = parse_directive(lines[j])
                        if dj.kind is DirectiveKind.KERNELS and dj.is_region_end:
                            out.append(KernelsRegion(file, i, j))
                            i = j
                            break
                    j += 1
                else:
                    raise ValueError(
                        f"unterminated kernels region in {file.name} at {i}"
                    )
        i += 1
    return out


def find_directive_lines(
    file: SourceFile, *kinds: DirectiveKind
) -> list[DirectiveLine]:
    """Standalone directives of the given kinds, with continuations."""
    wanted = set(kinds)
    out = []
    for i, ln in enumerate(file.lines):
        if not is_directive_line(ln):
            continue
        d = parse_directive(ln)
        if d.kind in wanted and d.kind is not DirectiveKind.CONTINUATION:
            out.append(
                DirectiveLine(file, i, d, continuations=_continuations(file.lines, i))
            )
    return out


def find_subroutines(file: SourceFile, name_pattern: str | None = None) -> list[SubroutineBlock]:
    """Subroutine blocks, optionally filtered by a name regex."""
    pat = re.compile(name_pattern) if name_pattern else None
    out = []
    start = None
    name = None
    for i, ln in enumerate(file.lines):
        kind = classify_line(ln)
        if kind is LineKind.SUBROUTINE_START and start is None:
            start = i
            name = subroutine_name(ln)
        elif kind is LineKind.SUBROUTINE_END and start is not None:
            assert name is not None
            if pat is None or pat.search(name):
                out.append(SubroutineBlock(file, start, i, name))
            start, name = None, None
    return out


def apply_edits(
    file: SourceFile, edits: list[tuple[int, int, list[str]]]
) -> None:
    """Apply (start, end_inclusive, replacement) edits to a file in place.

    Edits must not overlap; they are applied bottom-up so indices stay
    valid.
    """
    edits = sorted(edits, key=lambda e: e[0], reverse=True)
    last_start = None
    for start, end, replacement in edits:
        if end < start:
            raise ValueError("edit end before start")
        if last_start is not None and end >= last_start:
            raise ValueError("overlapping edits")
        file.lines[start : end + 1] = replacement
        last_start = start


def all_parallel_regions(cb: Codebase) -> list[ParallelRegion]:
    """Parallel regions across the whole codebase."""
    out = []
    for f in cb.files:
        out.extend(find_parallel_regions(f))
    return out
