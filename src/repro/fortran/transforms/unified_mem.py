"""Code 3 (ADU): drop manual data management in favour of unified memory.

Removes enter/exit/update/host_data directives (and their continuation
lines), plus the buffer load/unload glue those paths needed. Two data
directives survive (SIV-C): ``declare`` (plus the ``update`` of the
declared variable, used inside device functions) and the derived-type
``enter``/``exit data`` lines (the type *structure* is static data UM does
not page, and the reduction loops still use ``default(present)``).
"""

from __future__ import annotations

import re

from repro.fortran.directives import DirectiveKind
from repro.fortran.parser import apply_edits, find_directive_lines
from repro.fortran.source import Codebase, SourceFile
from repro.fortran.transforms.base import TransformPass

_DECLARED_RE = re.compile(r"declare\s+\w+\(([^)]+)\)", re.I)
_GLUE_RE = re.compile(r"call\s+(un)?load_gpu_buffer\b", re.I)


class UnifiedMemPass(TransformPass):
    """Remove (almost all) OpenACC data directives for UM builds."""

    name = "unified_mem"

    def _declared_names(self, cb: Codebase) -> set[str]:
        names: set[str] = set()
        for f in cb.files:
            for d in find_directive_lines(f, DirectiveKind.DATA):
                m = _DECLARED_RE.search(d.directive.payload)
                if d.directive.payload.lower().startswith("declare") and m:
                    names.update(n.strip() for n in m.group(1).split(","))
        return names

    def _keep(self, payload: str, declared: set[str]) -> bool:
        low = payload.lower()
        if low.startswith("declare"):
            return True
        if "%" in payload:
            return True  # derived-type members: UM cannot page the struct
        if low.startswith("update") and any(n in payload for n in declared):
            return True  # feeds a declare'd table used in device code
        return False

    def _strip_file(self, f: SourceFile, declared: set[str]) -> None:
        edits = []
        for d in find_directive_lines(f, DirectiveKind.DATA):
            if self._keep(d.directive.payload, declared):
                continue
            lo = min(d.all_lines)
            hi = max(d.all_lines)
            edits.append((lo, hi, []))
        # drop overlapping edits defensively (continuations are contiguous)
        apply_edits(f, edits)
        f.lines = [ln for ln in f.lines if not _GLUE_RE.search(ln)]

    def apply(self, cb: Codebase) -> None:
        declared = self._declared_names(cb)
        for f in cb.files:
            self._strip_file(f, declared)
