"""Code 4 (AD2XU): Fortran 202X preview features for the remaining loops.

* scalar reductions -> ``do concurrent ... reduce(+:x)`` (breaks F2018
  portability; nvfortran-only until 202X lands, SIV-D);
* array reductions -> DC with the ``!$acc atomic`` directives retained
  inside the body (Listing 4);
* non-reduction atomic loops -> DC likewise;
* ``wait`` directives go (nothing is async any more);
* the derived-type enter/exit data and the now-dead non-managed legacy
  transfer paths go (all loops touching the types are DC now).
"""

from __future__ import annotations

import re

from repro.fortran.directives import DirectiveKind, is_directive_line, parse_directive
from repro.fortran.parser import (
    RegionKind,
    apply_edits,
    find_directive_lines,
    find_parallel_regions,
)
from repro.fortran.source import Codebase, SourceFile
from repro.fortran.transforms.base import TransformPass, dc_header

_REDUCTION_RE = re.compile(r"reduction\(\s*([^:]+):\s*([^)]+)\)", re.I)

#: Region kinds this pass converts.
CONVERTIBLE = frozenset(
    {RegionKind.SCALAR_REDUCTION, RegionKind.ARRAY_REDUCTION, RegionKind.ATOMIC_OTHER}
)


def reduce_clause_of(f: SourceFile, region) -> str:
    """The ``reduce(op:var)`` clause matching the region's ``reduction``."""
    for i in region.directive_lines:
        m = _REDUCTION_RE.search(f.lines[i])
        if m:
            return f"reduce({m.group(1).strip()}:{m.group(2).strip()})"
    return ""


def convert_region_dc2x(f: SourceFile, region, *, clause: str = "") -> list[str]:
    """Replacement text: one DC-202X loop for a remaining OpenACC region.

    Atomics survive inside the DC body (Listing 4); ``loop seq`` (and any
    other loop directive) is dropped -- the inner loop simply stays a
    sequential ``do`` inside the DC body.
    """
    nest = region.loops[0]
    first, last = nest.body_range
    body: list[str] = []
    for i in range(first, last + 1):
        ln = f.lines[i]
        if is_directive_line(ln):
            d = parse_directive(ln)
            if d.kind is DirectiveKind.ATOMIC:
                body.append(ln)
            continue
        body.append(ln)
    return [dc_header(nest, clause=clause), *body, "      enddo"]


def async_and_dtype_data_edits(f: SourceFile) -> list[tuple[int, int, list[str]]]:
    """Deletion edits for ``wait`` lines and derived-type enter/exit data.

    Mechanical cleanup shared by the hand-built Code 4 pass and the
    auto-porter: nothing is async once all loops are DC, and the
    derived-type data lines go with the loops that touched the types.
    """
    edits: list[tuple[int, int, list[str]]] = []
    for d in find_directive_lines(f, DirectiveKind.WAIT):
        edits.append((d.index, max(d.all_lines), []))
    for d in find_directive_lines(f, DirectiveKind.DATA):
        if "%" in d.directive.payload:
            edits.append((min(d.all_lines), max(d.all_lines), []))
    return edits


def drop_legacy_paths(f: SourceFile) -> None:
    """Remove the dead ``if (.not. gpu_managed)`` transfer branches."""
    out: list[str] = []
    i = 0
    while i < len(f.lines):
        if f.lines[i].strip() == "if (.not. gpu_managed) then":
            while f.lines[i].strip() != "endif":
                i += 1
            i += 1
            continue
        out.append(f.lines[i])
        i += 1
    f.lines = out


class Dc2xPass(TransformPass):
    """Move the remaining OpenACC loops to DC-202X."""

    name = "dc2x"

    def _convert_region(self, f: SourceFile, region) -> list[str]:
        clause = (
            reduce_clause_of(f, region)
            if region.kind is RegionKind.SCALAR_REDUCTION
            else ""
        )
        return convert_region_dc2x(f, region, clause=clause)

    def apply(self, cb: Codebase) -> None:
        for f in cb.files:
            edits = []
            for region in find_parallel_regions(f):
                if region.kind not in CONVERTIBLE:
                    continue
                edits.append(
                    (region.start, region.end, self._convert_region(f, region))
                )
            edits.extend(async_and_dtype_data_edits(f))
            apply_edits(f, edits)
            drop_legacy_paths(f)
