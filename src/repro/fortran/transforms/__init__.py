"""Source-to-source porting passes (Codes 2-6 of Table I)."""

from repro.fortran.transforms.base import TransformPass
from repro.fortran.transforms.dc_basic import DcBasicPass
from repro.fortran.transforms.unified_mem import UnifiedMemPass
from repro.fortran.transforms.dc2x import Dc2xPass
from repro.fortran.transforms.pure_dc import PureDcPass
from repro.fortran.transforms.readd_data import ReaddDataPass

__all__ = [
    "TransformPass",
    "DcBasicPass",
    "UnifiedMemPass",
    "Dc2xPass",
    "PureDcPass",
    "ReaddDataPass",
]
