"""Code 6 (D2XAd): re-add manual data management via wrapper routines.

Starting from Code 5 (with the duplicate CPU routines kept, since this
build runs without UM), a wrapper module is generated that creates and
initializes every device array through create/init wrapper routines --
reducing the number of data directives needed versus Code 1's scattered
enter/exit/update lines (SIV-F: 277 directives, >5x fewer than Code 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fortran.source import Codebase, SourceFile
from repro.fortran.transforms.base import TransformPass


@dataclass(frozen=True, slots=True)
class WrapperBudget:
    """Directive/source sizing of the generated wrapper module (Table I)."""

    arrays: int = 120
    updates: int = 37
    acc_lines: int = 277
    src_lines: int = 462

    def __post_init__(self) -> None:
        if self.acc_lines != 2 * self.arrays + self.updates:
            raise ValueError(
                "wrapper acc budget must equal enter+exit per array plus updates"
            )


class ReaddDataPass(TransformPass):
    """Append the wrapper data-management module."""

    name = "readd_data"

    def __init__(self, budget: WrapperBudget = WrapperBudget()) -> None:
        self.budget = budget

    def build_wrapper_module(self) -> SourceFile:
        """Generate mod_gpu_wrappers.f90 to the budgeted size."""
        b = self.budget
        lines: list[str] = [
            "module mod_gpu_wrappers",
            "  use mod_types",
            "  implicit none",
            "contains",
        ]
        for n in range(b.arrays):
            lines += [
                f"  subroutine wrap_create_arr{n:04d}()",
                f"!$acc enter data create(arr{n:04d})",
                f"    call init_on_device(arr{n:04d})",
                f"  end subroutine wrap_create_arr{n:04d}",
            ]
        lines.append("  subroutine wrap_destroy_all()")
        for n in range(b.arrays):
            lines.append(f"!$acc exit data delete(arr{n:04d})")
        lines.append("  end subroutine wrap_destroy_all")
        lines.append("  subroutine wrap_sync_tables()")
        for n in range(b.updates):
            lines.append(f"!$acc update device(tab{n:03d})")
        lines.append("  end subroutine wrap_sync_tables")
        lines.append("end module mod_gpu_wrappers")

        src_so_far = sum(1 for ln in lines if not ln.lstrip().startswith("!$acc"))
        pad = b.src_lines - src_so_far
        if pad < 3:
            raise ValueError(
                f"wrapper source budget {b.src_lines} too small (need >= {src_so_far + 3})"
            )
        util = ["  subroutine init_on_device(x)"]
        util += [f"    x(:, :, {m + 1}) = 0." for m in range(pad - 2)]
        util += ["  end subroutine init_on_device"]
        # splice utilities before the end of the module
        lines[-1:-1] = util
        return SourceFile("mod_gpu_wrappers.f90", lines)

    def apply(self, cb: Codebase) -> None:
        if any(f.name == "mod_gpu_wrappers.f90" for f in cb.files):
            raise ValueError("wrapper module already present")
        cb.files.append(self.build_wrapper_module())
