"""Code 2 (AD): plain OpenACC loop nests become Fortran-2018 DC.

Converts every PLAIN and ROUTINE_CALLER parallel region (Listing 1) into
``do concurrent`` loops (Listing 2), dropping the region's parallel/loop
directives and their continuation lines. Reductions, atomics, kernels
regions, and all data management stay OpenACC (SIV-B): Fortran 2018 DC
has no ``reduce`` clause and nvfortran still needs ``routine``/manual
data.
"""

from __future__ import annotations

from repro.fortran.parser import RegionKind, apply_edits, find_parallel_regions
from repro.fortran.source import Codebase
from repro.fortran.transforms.base import TransformPass, convert_nest_to_dc

#: Region kinds Fortran-2018 DC can express without code changes.
CONVERTIBLE = frozenset({RegionKind.PLAIN, RegionKind.ROUTINE_CALLER})


class DcBasicPass(TransformPass):
    """OpenACC -> DC for the loops the F2018 standard can express."""

    name = "dc_basic"

    def apply(self, cb: Codebase) -> None:
        for f in cb.files:
            edits = []
            for region in find_parallel_regions(f):
                if region.kind not in CONVERTIBLE:
                    continue
                if not region.loops:
                    raise ValueError(
                        f"parallel region without loops in {f.name} at {region.start}"
                    )
                replacement: list[str] = []
                for nest in region.loops:
                    replacement.extend(convert_nest_to_dc(region, nest))
                edits.append((region.start, region.end, replacement))
            apply_edits(f, edits)
