"""Transform-pass protocol and shared rewriting helpers."""

from __future__ import annotations

import re
from abc import ABC, abstractmethod

from repro.fortran.parser import LoopNest, ParallelRegion
from repro.fortran.source import Codebase


class TransformPass(ABC):
    """One source-to-source porting pass.

    Passes mutate a :class:`Codebase` copy in place; pipelines chain them.
    """

    name: str = "pass"

    @abstractmethod
    def apply(self, cb: Codebase) -> None:
        """Rewrite the codebase in place."""

    def run(self, cb: Codebase, new_name: str | None = None) -> Codebase:
        """Apply to a copy and return it."""
        out = cb.copy(new_name or f"{cb.name}+{self.name}")
        self.apply(out)
        return out


_BOUND_RE = re.compile(r"^\s*(\S+)\s*,\s*(\S+)\s*$")


def dc_header(nest: LoopNest, *, indent: str = "      ", clause: str = "") -> str:
    """Render a ``do concurrent`` header covering a whole nest.

    Loop order follows MAS's Listing 2: outermost index first.
    """
    parts = []
    for var, bounds in zip(nest.index_vars, nest.bounds):
        m = _BOUND_RE.match(bounds)
        if m:
            lo, hi = m.group(1), m.group(2)
        else:
            lo, hi = "1", bounds.strip()
        parts.append(f"{var}={lo}:{hi}")
    head = f"{indent}do concurrent ({','.join(parts)})"
    if clause:
        head += f" {clause}"
    return head


def nest_body_lines(region: ParallelRegion, nest: LoopNest) -> list[str]:
    """The statements between a nest's ``do`` and ``enddo`` lines."""
    lines = region.file.lines
    first, last = nest.body_range
    return lines[first : last + 1]


def convert_nest_to_dc(
    region: ParallelRegion, nest: LoopNest, *, clause: str = ""
) -> list[str]:
    """Replacement text: one DC loop covering the nest (Listing 1 -> 2)."""
    return [dc_header(nest, clause=clause), *nest_body_lines(region, nest), "      enddo"]
