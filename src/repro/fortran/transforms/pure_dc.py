"""Code 5 (D2XU): zero OpenACC directives.

The last four directive classes go (SIV-E):

* array-reduction atomics -> flipped outer-DC / inner ``reduce`` loops
  (Listing 4 -> Listing 5); other atomics -> small code modifications;
* ``kernels`` regions -> Fortran intrinsics expanded into explicit DC
  reduction loops;
* ``routine`` -> ``-Minline`` (directives dropped); the one routine the
  compiler refuses to inline is inlined by hand via `repro.fortran.inline`;
  the ``declare``/``update`` pair its table needed goes with it;
* ``set device_num`` -> launch.sh + CUDA_VISIBLE_DEVICES (Listing 6, see
  `repro.runtime.launch`).

Finally the duplicate ``*_cpu`` setup routines are removed: under UM the
single (GPU) variants serve the setup phase too.
"""

from __future__ import annotations

import re

from repro.fortran.directives import DirectiveKind, is_directive_line, parse_directive
from repro.fortran.inline import InlineRefusedError, inline_call, parse_routine
from repro.fortran.lexer import LineKind, classify_line
from repro.fortran.parser import (
    apply_edits,
    find_directive_lines,
    find_kernels_regions,
    find_subroutines,
)
from repro.fortran.source import Codebase, SourceFile
from repro.fortran.transforms.base import TransformPass

ACCUM_RE = re.compile(r"^(\s*)(\w+)\((\w+)\)\s*=\s*\2\(\3\)\s*\+\s*(.+)$")
_MINVAL_RE = re.compile(r"^(\s*)(\w+)\s*=\s*minval\((\w+)\)\s*$", re.I)
_DC_RE = re.compile(r"^\s*do\s+concurrent\s*\(([^)]*)\)", re.I)
#: Routines nvfortran refuses to inline in the MAS port (SIV-E names one).
MANUAL_INLINE_ROUTINES = ("interp1",)


def find_dc_loop_end(lines: list[str], start: int) -> int:
    """Index of the enddo closing the DC loop at ``start``."""
    level = 0
    for i in range(start, len(lines)):
        kind = classify_line(lines[i])
        if kind in (LineKind.DO, LineKind.DO_CONCURRENT):
            level += 1
        elif kind is LineKind.ENDDO:
            level -= 1
            if level == 0:
                return i
    raise ValueError(f"unterminated do concurrent at line {start}")


class PureDcPass(TransformPass):
    """Eliminate every remaining OpenACC directive."""

    name = "pure_dc"

    def __init__(self, *, keep_cpu_duplicates: bool = False) -> None:
        #: Code 6's pipeline keeps the duplicate CPU routines since it runs
        #: without UM (SIV-F re-adds them).
        self.keep_cpu_duplicates = keep_cpu_duplicates

    # -- atomic rewrites -------------------------------------------------------

    def _flip_array_reduction(self, f: SourceFile, start: int, end: int) -> list[str]:
        """Listing 4 -> Listing 5 rewrite of one DC loop with atomics."""
        m = _DC_RE.match(f.lines[start])
        assert m is not None
        indices = [p.strip() for p in m.group(1).split(",")]
        # outer index = the one the accumulation target is indexed by
        pairs = []  # (target, rhs)
        for i in range(start + 1, end):
            am = ACCUM_RE.match(f.lines[i])
            if am:
                pairs.append((f"{am.group(2)}({am.group(3)})", am.group(4), am.group(3)))
        if not pairs:
            raise ValueError(f"no accumulation statements in DC loop at {start}")
        outer_var = pairs[0][2]
        outer = next(p for p in indices if p.startswith(f"{outer_var}="))
        inners = [p for p in indices if not p.startswith(f"{outer_var}=")]
        tmps = [f"tmp{n}" for n in range(len(pairs))]
        out = [f"      do concurrent ({outer})"]
        for t in tmps:
            out.append(f"        {t} = 0.")
        out.append(
            f"        do concurrent ({','.join(inners)}) reduce(+:{','.join(tmps)})"
        )
        for t, (_, rhs, _v) in zip(tmps, pairs):
            out.append(f"          {t} = {t} + {rhs}")
        out.append("        enddo")
        for t, (target, _, _v) in zip(tmps, pairs):
            out.append(f"        {target} = {t}")
        out.append("      enddo")
        return out

    def _rewrite_atomic_loops(self, f: SourceFile) -> None:
        edits = []
        i = 0
        while i < len(f.lines):
            if classify_line(f.lines[i]) is not LineKind.DO_CONCURRENT:
                i += 1
                continue
            end = find_dc_loop_end(f.lines, i)
            atomics = [
                k
                for k in range(i + 1, end)
                if is_directive_line(f.lines[k])
                and parse_directive(f.lines[k]).kind is DirectiveKind.ATOMIC
            ]
            if atomics:
                is_accum = any(
                    ACCUM_RE.match(f.lines[k + 1]) for k in atomics
                )
                if is_accum:
                    edits.append((i, end, self._flip_array_reduction(f, i, end)))
                else:
                    # small code modification: drop the atomics, keep the
                    # statements (rewritten to be race-free in MAS)
                    body = [
                        f.lines[k]
                        for k in range(i, end + 1)
                        if k not in atomics
                    ]
                    edits.append((i, end, body))
            i = end + 1
        apply_edits(f, edits)

    # -- kernels expansion ----------------------------------------------------------

    def _expand_kernels(self, f: SourceFile) -> None:
        edits = []
        for region in find_kernels_regions(f):
            if region.end - region.start != 2:
                raise ValueError(
                    f"unexpected kernels region shape in {f.name} at {region.start}"
                )
            m = _MINVAL_RE.match(f.lines[region.start + 1])
            if m is None:
                raise ValueError(
                    f"kernels region without a recognized intrinsic at {region.start}"
                )
            indent, lhs, arr = m.group(1), m.group(2), m.group(3)
            edits.append(
                (
                    region.start,
                    region.end,
                    [
                        f"{indent}do concurrent (ii=1:size({arr})) reduce(min:{lhs})",
                        f"{indent}  {lhs} = min({lhs}, {arr}(ii))",
                        f"{indent}enddo",
                    ],
                )
            )
        apply_edits(f, edits)

    # -- routine inlining -------------------------------------------------------------

    def _drop_routine_directives(self, cb: Codebase) -> None:
        for f in cb.files:
            f.lines = [
                ln
                for ln in f.lines
                if not (
                    is_directive_line(ln)
                    and parse_directive(ln).kind is DirectiveKind.ROUTINE
                )
            ]

    def _manual_inline(self, cb: Codebase) -> None:
        for name in MANUAL_INLINE_ROUTINES:
            routine = None
            for f in cb.files:
                for blk in find_subroutines(f, rf"^{name}$"):
                    routine = parse_routine(f, blk.start)
            if routine is None:
                continue
            for f in cb.files:
                i = 0
                while i < len(f.lines):
                    if re.match(rf"^\s*call\s+{name}\s*\(", f.lines[i]):
                        try:
                            i += inline_call(f, i, routine)
                        except InlineRefusedError:
                            pass
                    i += 1

    # -- main -----------------------------------------------------------------------------

    def apply(self, cb: Codebase) -> None:
        self._manual_inline(cb)
        self._drop_routine_directives(cb)
        for f in cb.files:
            self._rewrite_atomic_loops(f)
            self._expand_kernels(f)
            # remaining declare/update and set device_num directives
            edits = []
            for d in find_directive_lines(
                f, DirectiveKind.DATA, DirectiveKind.SET_DEVICE
            ):
                edits.append((min(d.all_lines), max(d.all_lines), []))
            apply_edits(f, edits)
        if not self.keep_cpu_duplicates:
            for f in cb.files:
                for blk in sorted(
                    find_subroutines(f, r"_cpu$"), key=lambda b: b.start, reverse=True
                ):
                    del f.lines[blk.start : blk.end + 1]
