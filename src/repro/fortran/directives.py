"""OpenACC directive parsing and classification.

Directive *kinds* follow Table II's census categories exactly, so the
census of a codebase can be asserted against the paper's numbers.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

#: Sentinel starting every OpenACC directive comment line.
ACC_SENTINEL = "!$acc"


class DirectiveKind(enum.Enum):
    """Directive categories, matching Table II's rows."""

    PARALLEL_LOOP = "parallel, loop"       # parallel / end parallel / loop
    DATA = "data management"               # enter, exit, update, host_data, declare
    ATOMIC = "atomic"
    ROUTINE = "routine"
    KERNELS = "kernels"                    # kernels / end kernels
    WAIT = "wait"
    SET_DEVICE = "set device_num"
    CONTINUATION = "continuation"          # !$acc& ...


#: First-token(s) -> kind mapping for non-continuation directives.
_KIND_BY_HEAD: list[tuple[re.Pattern, DirectiveKind]] = [
    (re.compile(r"^(end\s+)?parallel\b"), DirectiveKind.PARALLEL_LOOP),
    (re.compile(r"^loop\b"), DirectiveKind.PARALLEL_LOOP),
    (re.compile(r"^(enter|exit)\s+data\b"), DirectiveKind.DATA),
    (re.compile(r"^(end\s+)?data\b"), DirectiveKind.DATA),
    (re.compile(r"^update\b"), DirectiveKind.DATA),
    (re.compile(r"^(end\s+)?host_data\b"), DirectiveKind.DATA),
    (re.compile(r"^declare\b"), DirectiveKind.DATA),
    (re.compile(r"^atomic\b"), DirectiveKind.ATOMIC),
    (re.compile(r"^routine\b"), DirectiveKind.ROUTINE),
    (re.compile(r"^(end\s+)?kernels\b"), DirectiveKind.KERNELS),
    (re.compile(r"^wait\b"), DirectiveKind.WAIT),
    (re.compile(r"^set\s+device_num\b"), DirectiveKind.SET_DEVICE),
]


@dataclass(frozen=True, slots=True)
class AccDirective:
    """One parsed ``!$acc`` line."""

    kind: DirectiveKind
    text: str        # the full source line, stripped
    payload: str     # text after the sentinel

    @property
    def is_region_start(self) -> bool:
        """Opens a parallel/kernels/data/host_data region."""
        p = self.payload.lstrip()
        return bool(re.match(r"^(parallel|kernels|data|host_data)\b", p, re.I))

    @property
    def is_region_end(self) -> bool:
        """Closes a region."""
        return self.payload.lstrip().lower().startswith("end ")

    @property
    def is_combined_construct(self) -> bool:
        """A combined ``parallel loop`` / ``kernels loop`` construct.

        Real OpenACC codes attach these directly to the following loop
        nest with no ``end`` directive; the canonical subset always uses
        the region form (``parallel`` + ``loop`` + ``end parallel``).
        """
        return bool(
            re.match(r"^(parallel|kernels)\s+loop\b", self.payload.lstrip(), re.I)
        )

    def has_clause(self, name: str) -> bool:
        """True if the directive carries a clause (word match)."""
        return re.search(rf"\b{re.escape(name)}\b", self.payload) is not None


def is_directive_line(line: str) -> bool:
    """True for any ``!$acc`` (or continuation ``!$acc&``) line."""
    return line.lstrip().lower().startswith(ACC_SENTINEL)


def parse_directive(line: str) -> AccDirective:
    """Parse one directive line; raises ValueError for non-directives."""
    stripped = line.strip()
    low = stripped.lower()
    if not low.startswith(ACC_SENTINEL):
        raise ValueError(f"not an OpenACC directive: {line!r}")
    rest = stripped[len(ACC_SENTINEL):]
    # free-form continuation: `!$acc& ...` canonically, but real sources
    # also write `!$acc & ...` with whitespace before the ampersand
    if rest.lstrip().startswith("&"):
        return AccDirective(
            DirectiveKind.CONTINUATION, stripped,
            rest.lstrip()[1:].strip(),
        )
    payload = rest.strip()
    payload_low = payload.lower()
    for pattern, kind in _KIND_BY_HEAD:
        if pattern.match(payload_low):
            return AccDirective(kind, stripped, payload)
    raise ValueError(f"unrecognized OpenACC directive: {line!r}")


def try_parse_directive(line: str) -> AccDirective | None:
    """Tolerant :func:`parse_directive`: None instead of ValueError.

    The real-Fortran front end uses this to decide whether a sentinel
    line is in the supported subset or must degrade to an opaque line.
    """
    try:
        return parse_directive(line)
    except ValueError:
        return None
