"""Source containers: files and whole codebases."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class SourceFile:
    """One Fortran source file as a list of text lines."""

    name: str
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("source file needs a name")
        for ln in self.lines:
            if "\n" in ln:
                raise ValueError("lines must not contain embedded newlines")

    @property
    def line_count(self) -> int:
        """Number of lines."""
        return len(self.lines)

    def text(self) -> str:
        """Full file content."""
        return "\n".join(self.lines) + "\n"

    def copy(self) -> "SourceFile":
        """Deep copy."""
        return SourceFile(self.name, list(self.lines))


@dataclass(slots=True)
class Codebase:
    """A whole source tree (ordered list of files)."""

    name: str
    files: list[SourceFile] = field(default_factory=list)

    @property
    def total_lines(self) -> int:
        """Total line count across files (Table I's 'Total Lines')."""
        return sum(f.line_count for f in self.files)

    def file(self, name: str) -> SourceFile:
        """Look up a file by name."""
        for f in self.files:
            if f.name == name:
                return f
        raise KeyError(f"no file {name!r} in codebase {self.name!r}")

    def copy(self, name: str | None = None) -> "Codebase":
        """Deep copy, optionally renamed."""
        return Codebase(name or self.name, [f.copy() for f in self.files])

    def iter_lines(self):
        """Yield (file, index, line) over the whole tree."""
        for f in self.files:
            for i, ln in enumerate(f.lines):
                yield f, i, ln
