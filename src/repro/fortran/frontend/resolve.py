"""Interprocedural symbol resolution over a lowered tree.

Builds the cross-file picture the per-line IR cannot see: which file
defines each module, which files ``use`` it, and where every subroutine
or function lives -- including whether it carries an ``!$acc routine``
directive (callable from device regions). Interface blocks are skipped:
the signatures inside them declare, they do not define.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.fortran.directives import DirectiveKind, try_parse_directive
from repro.fortran.lexer import LineKind, classify_line, subroutine_name
from repro.fortran.source import Codebase

_USE_RE = re.compile(r"^\s*use\s+(\w+)", re.I)
_FUNC_NAME_RE = re.compile(r"\bfunction\s+(\w+)", re.I)
_INTERFACE_RE = re.compile(r"^\s*(abstract\s+)?interface\b", re.I)
_END_INTERFACE_RE = re.compile(r"^\s*end\s*interface\b", re.I)


@dataclass(frozen=True, slots=True)
class RoutineSym:
    """One subroutine/function definition site."""

    name: str
    kind: str          # "subroutine" | "function"
    file: str
    line: int          # 0-based definition line
    module: str = ""   # enclosing module, if any
    acc_routine: bool = False  # carries !$acc routine


@dataclass(slots=True)
class ModuleIndex:
    """Modules, routines and ``use`` edges across a codebase."""

    modules: dict[str, str] = field(default_factory=dict)   # module -> file
    routines: dict[str, RoutineSym] = field(default_factory=dict)
    uses: dict[str, list[str]] = field(default_factory=dict)  # file -> modules
    unresolved_uses: list[tuple[str, int, str]] = field(default_factory=list)

    def resolve_call(self, name: str) -> RoutineSym | None:
        """Definition site of a called routine, if the tree defines it."""
        return self.routines.get(name.lower())


def _routine_block_has_acc(lines: list[str], start: int) -> bool:
    """True if an ``!$acc routine`` sits in the routine's declaration part."""
    for i in range(start + 1, len(lines)):
        kind = classify_line(lines[i])
        if kind is LineKind.DIRECTIVE:
            d = try_parse_directive(lines[i])
            if d is not None and d.kind is DirectiveKind.ROUTINE:
                return True
            continue
        if kind in (LineKind.DO, LineKind.DO_CONCURRENT, LineKind.CALL,
                    LineKind.SUBROUTINE_END, LineKind.FUNCTION_END,
                    LineKind.CONTAINS):
            return False
    return False


def build_index(cb: Codebase) -> ModuleIndex:
    """Scan every file once and build the cross-file symbol index."""
    index = ModuleIndex()
    pending: list[tuple[str, int, str]] = []  # (file, line, used module)
    for file in cb.files:
        current_module = ""
        in_interface = False
        for i, line in enumerate(file.lines):
            if _INTERFACE_RE.match(line):
                in_interface = True
                continue
            if _END_INTERFACE_RE.match(line):
                in_interface = False
                continue
            if in_interface:
                continue
            kind = classify_line(line)
            if kind is LineKind.MODULE_START:
                m = re.match(r"^\s*module\s+(\w+)", line, re.I)
                if m and m.group(1).lower() != "procedure":
                    current_module = m.group(1).lower()
                    index.modules.setdefault(current_module, file.name)
            elif kind is LineKind.MODULE_END:
                current_module = ""
            elif kind is LineKind.SUBROUTINE_START:
                name = (subroutine_name(line) or "").lower()
                if name and name not in index.routines:
                    index.routines[name] = RoutineSym(
                        name, "subroutine", file.name, i, current_module,
                        _routine_block_has_acc(file.lines, i),
                    )
            elif kind is LineKind.FUNCTION_START:
                m = _FUNC_NAME_RE.search(line)
                name = m.group(1).lower() if m else ""
                if name and name not in index.routines:
                    index.routines[name] = RoutineSym(
                        name, "function", file.name, i, current_module,
                        _routine_block_has_acc(file.lines, i),
                    )
            else:
                m = _USE_RE.match(line)
                if m:
                    used = m.group(1).lower()
                    index.uses.setdefault(file.name, []).append(used)
                    pending.append((file.name, i, used))
    for fname, i, used in pending:
        if used not in index.modules:
            index.unresolved_uses.append((fname, i, used))
    return index
