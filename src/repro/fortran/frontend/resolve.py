"""Interprocedural symbol resolution over a lowered tree.

Builds the cross-file picture the per-line IR cannot see: which file
defines each module, which files ``use`` it (including ``only:`` lists
and ``=>`` renames), and where every subroutine or function lives --
with its body extent, ``contains`` nesting, purity prefixes, and whether
it carries an ``!$acc routine`` directive (callable from device
regions). Interface blocks are skipped: the signatures inside them
declare, they do not define.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.fortran.directives import DirectiveKind, try_parse_directive
from repro.fortran.lexer import LineKind, classify_line
from repro.fortran.parser import parse_procedure_header
from repro.fortran.source import Codebase

_USE_RE = re.compile(
    r"^\s*use\s*(?:,\s*\w+\s*::)?\s*(\w+)\s*(?:,\s*only\s*:\s*(.*))?$", re.I
)
_INTERFACE_RE = re.compile(r"^\s*(abstract\s+)?interface\b", re.I)
_END_INTERFACE_RE = re.compile(r"^\s*end\s*interface\b", re.I)


@dataclass(frozen=True, slots=True)
class RoutineSym:
    """One subroutine/function definition site."""

    name: str
    kind: str          # "subroutine" | "function"
    file: str
    line: int          # 0-based definition line
    module: str = ""   # enclosing module, if any
    acc_routine: bool = False  # carries !$acc routine
    end_line: int = -1         # 0-based end subroutine/function line
    parent: str = ""           # host routine for contains-nested routines
    declared_pure: bool = False
    dummies: tuple[str, ...] = ()
    result: str = ""           # function result variable ("" for subroutines)


@dataclass(frozen=True, slots=True)
class UseEdge:
    """One ``use`` statement: the module plus any only-list/renames."""

    module: str
    #: ``only:`` imports as (local name, name inside the module) pairs;
    #: empty means the whole module is imported unrenamed.
    only: tuple[tuple[str, str], ...] = ()

    def local_names(self) -> dict[str, str]:
        """Map of local name -> module-side name (empty = import all)."""
        return dict(self.only)


@dataclass(slots=True)
class ModuleIndex:
    """Modules, routines and ``use`` edges across a codebase."""

    modules: dict[str, str] = field(default_factory=dict)   # module -> file
    routines: dict[str, RoutineSym] = field(default_factory=dict)
    uses: dict[str, list[str]] = field(default_factory=dict)  # file -> modules
    #: file -> detailed use edges (only-lists and renames preserved)
    use_edges: dict[str, list[UseEdge]] = field(default_factory=dict)
    unresolved_uses: list[tuple[str, int, str]] = field(default_factory=list)

    def resolve_call(self, name: str, file: str | None = None) -> RoutineSym | None:
        """Definition site of a called routine, if the tree defines it.

        With ``file``, ``use ..., only: local => actual`` renames visible
        in that file are applied first, so renamed imports resolve to
        their real definition.
        """
        key = name.lower()
        if file is not None:
            for edge in self.use_edges.get(file, ()):
                actual = edge.local_names().get(key)
                if actual is not None and actual != key:
                    key = actual
                    break
        return self.routines.get(key)


def _routine_block_has_acc(lines: list[str], start: int) -> bool:
    """True if an ``!$acc routine`` sits in the routine's declaration part."""
    for i in range(start + 1, len(lines)):
        kind = classify_line(lines[i])
        if kind is LineKind.DIRECTIVE:
            d = try_parse_directive(lines[i])
            if d is not None and d.kind is DirectiveKind.ROUTINE:
                return True
            continue
        if kind in (LineKind.DO, LineKind.DO_CONCURRENT, LineKind.CALL,
                    LineKind.SUBROUTINE_END, LineKind.FUNCTION_END,
                    LineKind.CONTAINS):
            return False
    return False


def _parse_use(line: str) -> UseEdge | None:
    m = _USE_RE.match(line.split("!", 1)[0].rstrip())
    if m is None:
        return None
    only: list[tuple[str, str]] = []
    if m.group(2) is not None:
        for item in m.group(2).split(","):
            item = item.strip()
            if not item:
                continue
            if "=>" in item:
                local, _, actual = (p.strip() for p in item.partition("=>"))
            else:
                local = actual = item
            if re.fullmatch(r"\w+", local) and re.fullmatch(r"\w+", actual):
                only.append((local.lower(), actual.lower()))
    return UseEdge(module=m.group(1).lower(), only=tuple(only))


def build_index(cb: Codebase) -> ModuleIndex:
    """Scan every file once and build the cross-file symbol index."""
    index = ModuleIndex()
    pending: list[tuple[str, int, str]] = []  # (file, line, used module)
    for file in cb.files:
        current_module = ""
        in_interface = False
        open_routines: list[RoutineSym] = []  # contains-nesting stack
        for i, line in enumerate(file.lines):
            if _INTERFACE_RE.match(line):
                in_interface = True
                continue
            if _END_INTERFACE_RE.match(line):
                in_interface = False
                continue
            if in_interface:
                continue
            kind = classify_line(line)
            if kind is LineKind.MODULE_START:
                m = re.match(r"^\s*module\s+(\w+)", line, re.I)
                if m and m.group(1).lower() != "procedure":
                    current_module = m.group(1).lower()
                    index.modules.setdefault(current_module, file.name)
            elif kind is LineKind.MODULE_END:
                current_module = ""
            elif kind in (LineKind.SUBROUTINE_START, LineKind.FUNCTION_START):
                header = parse_procedure_header(line)
                if header is None:
                    continue
                sym = RoutineSym(
                    name=header.name,
                    kind=header.kind,
                    file=file.name,
                    line=i,
                    module=current_module,
                    acc_routine=_routine_block_has_acc(file.lines, i),
                    parent=open_routines[-1].name if open_routines else "",
                    declared_pure=header.declared_pure,
                    dummies=header.dummies,
                    result=header.result,
                )
                open_routines.append(sym)
            elif kind in (LineKind.SUBROUTINE_END, LineKind.FUNCTION_END):
                if open_routines:
                    sym = open_routines.pop()
                    closed = RoutineSym(
                        name=sym.name, kind=sym.kind, file=sym.file,
                        line=sym.line, module=sym.module,
                        acc_routine=sym.acc_routine, end_line=i,
                        parent=sym.parent, declared_pure=sym.declared_pure,
                        dummies=sym.dummies, result=sym.result,
                    )
                    index.routines.setdefault(sym.name, closed)
            else:
                edge = _parse_use(line)
                if edge is not None:
                    index.uses.setdefault(file.name, []).append(edge.module)
                    index.use_edges.setdefault(file.name, []).append(edge)
                    pending.append((file.name, i, edge.module))
    for fname, i, used in pending:
        if used not in index.modules:
            index.unresolved_uses.append((fname, i, used))
    return index
