"""Recovery lowering: degrade what the canonical parser cannot hold.

The contract is *never crash*: after :func:`lower_file`, the file is
guaranteed to pass the full per-file analysis (`analyze_file`) without
an exception. Everything the parser cannot represent is replaced -- in
place, line-count preserved -- by opaque comment lines, each one
recorded as an ``FE001`` diagnostic, and the per-file parse census makes
the degradation rate observable (the ``parse_errors_total`` metric
counts it in telemetry sessions).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.fortran.directives import is_directive_line, try_parse_directive
from repro.fortran.frontend.normalize import normalize_tree
from repro.fortran.frontend.resolve import ModuleIndex, build_index
from repro.fortran.lexer import LineKind, classify_line
from repro.fortran.parser import find_kernels_regions, find_parallel_regions
from repro.fortran.source import Codebase, SourceFile
from repro.fortran.tree_io import load_tree

#: Prefix of every line the front end degraded. Starts with ``!`` so the
#: whole pipeline sees a comment.
OPAQUE_PREFIX = "! repro-fe opaque: "

#: All ValueErrors the structural parser raises end with a 0-based line.
_CULPRIT_RE = re.compile(r"at (?:line )?(\d+)$")

_INTERFACE_RE = re.compile(r"^\s*(abstract\s+)?interface\b", re.I)
_END_INTERFACE_RE = re.compile(r"^\s*end\s*interface\b", re.I)


@dataclass(slots=True)
class ParseFileCensus:
    """How much of one file the front end lowered into analyzable IR."""

    name: str
    total_lines: int
    opaque_lines: int
    joined_lines: int
    directive_lines: int

    @property
    def coverage(self) -> float:
        """Fraction of lines lowered to non-opaque IR (1.0 for empty)."""
        if self.total_lines == 0:
            return 1.0
        return 1.0 - self.opaque_lines / self.total_lines


@dataclass(slots=True)
class ParseCensus:
    """Tree-wide parse census (one row per file plus totals)."""

    files: list[ParseFileCensus] = field(default_factory=list)

    @property
    def total_lines(self) -> int:
        return sum(f.total_lines for f in self.files)

    @property
    def opaque_lines(self) -> int:
        return sum(f.opaque_lines for f in self.files)

    @property
    def coverage(self) -> float:
        if self.total_lines == 0:
            return 1.0
        return 1.0 - self.opaque_lines / self.total_lines

    def render(self) -> str:
        """Byte-stable text table (CI gates on exact equality)."""
        width = max([len("file"), *(len(f.name) for f in self.files)])
        out = [f"{'file':<{width}}  {'lines':>6}  {'opaque':>6}  "
               f"{'joined':>6}  {'directives':>10}  {'coverage':>8}"]
        for f in sorted(self.files, key=lambda f: f.name):
            out.append(
                f"{f.name:<{width}}  {f.total_lines:>6}  {f.opaque_lines:>6}  "
                f"{f.joined_lines:>6}  {f.directive_lines:>10}  "
                f"{f.coverage:>8.4f}"
            )
        out.append(
            f"{'TOTAL':<{width}}  {self.total_lines:>6}  {self.opaque_lines:>6}  "
            f"{sum(f.joined_lines for f in self.files):>6}  "
            f"{sum(f.directive_lines for f in self.files):>10}  "
            f"{self.coverage:>8.4f}"
        )
        return "\n".join(out)


@dataclass(slots=True)
class FrontendResult:
    """A lowered tree plus everything the lowering learned about it."""

    codebase: Codebase
    diagnostics: list[Finding]
    census: ParseCensus
    index: ModuleIndex


def restore_opaque(line: str) -> str:
    """Invert the opaque degrade: the payload after the marker is the
    original text verbatim (whitespace included), so writers round-trip
    constructs the analyzer only skipped."""
    idx = line.find(OPAQUE_PREFIX)
    if idx == -1:
        return line
    return line[idx + len(OPAQUE_PREFIX):]


def _neutralize(file: SourceFile, i: int, diags: list[Finding], reason: str) -> None:
    orig = file.lines[i].rstrip()
    file.lines[i] = f"{OPAQUE_PREFIX}{orig}"
    diags.append(
        Finding("FE001", file.name, i + 1, f"{reason}: {orig.strip()[:100]}")
    )


def _neutralize_unknown_directives(file: SourceFile, diags: list[Finding]) -> None:
    for i, ln in enumerate(file.lines):
        if is_directive_line(ln) and try_parse_directive(ln) is None:
            _neutralize(file, i, diags, "unsupported directive")


def _neutralize_interface_blocks(file: SourceFile) -> None:
    """Interface blocks declare, they don't define: make them opaque.

    No FE001 -- this is the intended handling, not a parse failure -- but
    the lines count as opaque in the census.
    """
    in_block = False
    for i, ln in enumerate(file.lines):
        if not in_block and _INTERFACE_RE.match(ln):
            in_block = True
        if in_block:
            ended = bool(_END_INTERFACE_RE.match(ln))
            file.lines[i] = f"{OPAQUE_PREFIX}{ln.rstrip()}"
            if ended:
                in_block = False


def _repair_dc_headers(file: SourceFile, diags: list[Finding]) -> None:
    """Replace DC headers the clause splitter chokes on with a bare ``do``.

    A bare ``do`` keeps the do/enddo nesting balanced (unlike commenting
    the header out), so enclosing walkers stay correct.
    """
    from repro.analysis.fortran_lint import _split_paren_args

    for i, ln in enumerate(file.lines):
        if classify_line(ln) is not LineKind.DO_CONCURRENT:
            continue
        try:
            _split_paren_args(ln)
        except ValueError:
            orig = ln.rstrip()
            file.lines[i] = f"do  {OPAQUE_PREFIX}{orig.lstrip()}"
            diags.append(
                Finding("FE001", file.name, i + 1,
                        f"unsupported do concurrent header: "
                        f"{orig.strip()[:100]}")
            )


def _repair_structure(file: SourceFile, diags: list[Finding]) -> bool:
    """Neutralize lines until the structural region parsers succeed.

    Every parser ValueError names its 0-based culprit line; neutralizing
    it strictly shrinks the problem, so this terminates. Returns False
    when no culprit can be extracted (caller degrades the whole file).
    """
    for _ in range(file.line_count + 1):
        try:
            find_parallel_regions(file)
            find_kernels_regions(file)
            return True
        except ValueError as exc:
            m = _CULPRIT_RE.search(str(exc))
            if m is None:
                return False
            culprit = int(m.group(1))
            if not (0 <= culprit < file.line_count):
                return False
            if file.lines[culprit].lstrip().startswith("!"):
                return False  # already neutral and still failing: bail out
            _neutralize(file, culprit, diags, "unsupported construct")
    return False


def _degrade_whole_file(file: SourceFile, diags: list[Finding], why: str) -> None:
    for i, ln in enumerate(file.lines):
        if not ln.lstrip().startswith("!") and ln.strip():
            file.lines[i] = f"{OPAQUE_PREFIX}{ln.rstrip()}"
    diags.append(
        Finding("FE001", file.name, 1, f"whole file degraded to opaque: {why}")
    )


def lower_file(
    file: SourceFile, *, joined_lines: int = 0
) -> tuple[list[Finding], ParseFileCensus]:
    """Lower one (already normalized) file in place; never raises."""
    from repro.analysis.fortran_lint import analyze_file

    diags: list[Finding] = []
    _neutralize_unknown_directives(file, diags)
    _neutralize_interface_blocks(file)
    _repair_dc_headers(file, diags)
    if not _repair_structure(file, diags):
        _degrade_whole_file(file, diags, "structural recovery failed")
    else:
        try:
            analyze_file(file)
        except Exception as exc:  # belt and braces: analysis must not crash
            _degrade_whole_file(file, diags, f"analysis failed ({type(exc).__name__})")
    opaque = sum(1 for ln in file.lines if "repro-fe opaque:" in ln)
    census = ParseFileCensus(
        name=file.name,
        total_lines=file.line_count,
        opaque_lines=opaque,
        joined_lines=joined_lines,
        directive_lines=sum(1 for ln in file.lines if is_directive_line(ln)),
    )
    return diags, census


def _record_parse_errors(diags: list[Finding], source: str) -> None:
    from repro.obs import current

    tel = current()
    if not tel.enabled or not diags:
        return
    tel.metrics.counter(
        "parse_errors_total",
        "constructs the real-Fortran front end degraded to opaque lines",
        labelnames=("source",),
    ).labels(source=source).inc(len(diags))


def lower_tree(cb: Codebase) -> FrontendResult:
    """Normalize + lower a codebase in place into analyzable IR."""
    joined = normalize_tree(cb)
    diags: list[Finding] = []
    census = ParseCensus()
    for file in cb.files:
        file_diags, file_census = lower_file(
            file, joined_lines=joined.get(file.name, 0)
        )
        diags.extend(file_diags)
        census.files.append(file_census)
    _record_parse_errors(diags, source=cb.name)
    return FrontendResult(
        codebase=cb, diagnostics=diags, census=census, index=build_index(cb)
    )


def load_external_tree(
    path: str | Path, *, name: str | None = None
) -> FrontendResult:
    """Load an on-disk Fortran tree through the tolerant front end."""
    cb = load_tree(path, name=name, recursive=True)
    return lower_tree(cb)
