"""Tolerant real-Fortran front end.

Lowers arbitrary external OpenACC Fortran trees into the line-based IR
the analyzer, fix-it engine, rewriter and porter already understand:

1. :mod:`normalize` -- line-count-preserving normalization: CRLF and
   trailing whitespace stripped, ``&`` continuations joined onto their
   first physical line (continuation lines become filler comments),
   directive continuations canonicalized to ``!$acc`` / ``!$acc&``
   pairs, sentinels lowercased.
2. :mod:`lower` -- recovery: every construct the canonical parser cannot
   represent degrades to opaque lines with an ``FE001`` diagnostic; a
   per-file parse census makes coverage observable and the
   ``parse_errors_total`` metric counts degradations.
3. :mod:`resolve` -- interprocedural symbol index: modules, ``use``
   edges, subroutines/functions and their ``!$acc routine`` status.

The result is a plain :class:`repro.fortran.source.Codebase` -- physical
line numbers (and therefore finding lines, census totals and fix
anchors) are identical to the on-disk sources.
"""

from repro.fortran.frontend.lower import (
    FrontendResult,
    ParseCensus,
    ParseFileCensus,
    load_external_tree,
    lower_tree,
    restore_opaque,
)
from repro.fortran.frontend.normalize import normalize_file, normalize_tree
from repro.fortran.frontend.resolve import ModuleIndex, RoutineSym, build_index

__all__ = [
    "FrontendResult",
    "ModuleIndex",
    "ParseCensus",
    "ParseFileCensus",
    "RoutineSym",
    "build_index",
    "load_external_tree",
    "lower_tree",
    "normalize_file",
    "normalize_tree",
    "restore_opaque",
]
