"""Line-count-preserving normalization of real free-form Fortran.

Every transformation here replaces lines in place -- the physical line
count of a file never changes, so line numbers in findings, fixes and
the census all refer to the on-disk source. Joined continuations leave
filler comment lines behind; nothing is deleted.
"""

from __future__ import annotations

import re

from repro.fortran.directives import is_directive_line
from repro.fortran.source import Codebase, SourceFile

#: What a consumed continuation line is replaced with. Starts with ``!``
#: so every layer treats it as a comment; carries the head line (1-based)
#: for humans reading the normalized tree.
FILLER_PREFIX = "! repro-fe: joined into line "

_SENTINEL_RE = re.compile(r"^(\s*)!\$acc(&?)", re.I)
_OMP_SENTINEL_RE = re.compile(r"^\s*!\$omp", re.I)

#: Suffixes treated as fixed-form (column-1 comments, column-6
#: continuations). Everything else is free-form.
_FIXED_SUFFIXES = (".f", ".for", ".f77", ".ftn")


def _code_part(line: str) -> str:
    """The code before a trailing ``!`` comment (naive: ignores strings)."""
    return line.split("!", 1)[0]


def _is_code_line(line: str) -> bool:
    stripped = line.lstrip()
    return bool(stripped) and not stripped.startswith("!")


def _normalize_endings(lines: list[str]) -> None:
    """Strip CRLF remnants and trailing whitespace, expand tabs."""
    for i, ln in enumerate(lines):
        lines[i] = ln.replace("\r", "").expandtabs(4).rstrip()


def _normalize_sentinels(lines: list[str]) -> None:
    """Lowercase directive lines (``!$ACC PARALLEL`` -> ``!$acc parallel``).

    Fortran and OpenACC are case-insensitive, and the clause scanners in
    the analyzer are not uniformly so; lowering the whole directive line
    is semantics-preserving and makes them all hit. OpenMP sentinels stay
    untouched -- they are plain comments to this front end.
    """
    for i, ln in enumerate(lines):
        if _SENTINEL_RE.match(ln) and not _OMP_SENTINEL_RE.match(ln):
            lines[i] = ln.lower()


def _join_directive_continuations(lines: list[str]) -> None:
    """Canonicalize trailing-``&`` directive continuations.

    ``!$acc parallel loop &`` followed by ``!$acc collapse(2)`` or
    ``!$acc& collapse(2)`` becomes ``!$acc parallel loop`` +
    ``!$acc& collapse(2)`` -- the two-line shape the canonical parser
    already understands, without moving any text across lines.
    """
    for i, ln in enumerate(lines):
        if not is_directive_line(ln):
            continue
        if not ln.rstrip().endswith("&"):
            continue
        nxt = i + 1
        if nxt >= len(lines) or not is_directive_line(lines[nxt]):
            continue  # dangling & -- leave it; lower() will degrade it
        lines[i] = ln.rstrip()[:-1].rstrip()
        m = _SENTINEL_RE.match(lines[nxt])
        if m and not m.group(2):
            # continuation spelled with a bare sentinel: add the &
            rest = lines[nxt][m.end():].lstrip()
            if rest.startswith("&"):
                rest = rest[1:].lstrip()
            lines[nxt] = f"{m.group(1)}!$acc& {rest}"


def _join_statement_continuations(lines: list[str]) -> int:
    """Join ``&`` statement continuations onto their first physical line.

    Consumed physical lines become filler comments so the line count is
    preserved. Returns the number of lines joined away.
    """
    joined = 0
    i = 0
    while i < len(lines):
        line = lines[i]
        if not _is_code_line(line) or is_directive_line(line):
            i += 1
            continue
        if not _code_part(line).rstrip().endswith("&"):
            i += 1
            continue
        head = _code_part(line).rstrip()[:-1].rstrip()
        j = i + 1
        while j < len(lines):
            nxt = lines[j]
            if not _is_code_line(nxt):
                j += 1
                continue  # blank/comment between continuations: legal
            part = _code_part(nxt).strip()
            if part.startswith("&"):
                part = part[1:].lstrip()
            more = part.endswith("&")
            if more:
                part = part[:-1].rstrip()
            head = f"{head} {part}".rstrip()
            lines[j] = f"{FILLER_PREFIX}{i + 1}"
            joined += 1
            j += 1
            if not more:
                break
        lines[i] = head
        i = j
    return joined


def is_fixed_form(name: str) -> bool:
    """Fixed-form source, judged by suffix (the compilers' convention)."""
    return name.lower().endswith(_FIXED_SUFFIXES)


def _fixed_comments(lines: list[str]) -> None:
    """Convert column-1 fixed-form comment markers to ``!``.

    ``*`` in column 1 is always a comment; ``c``/``C`` only when not the
    start of a word (``contains``, ``call`` at column 1 stay code).
    """
    for i, ln in enumerate(lines):
        if not ln:
            continue
        c0 = ln[0]
        if c0 == "*":
            lines[i] = "!" + ln[1:]
        elif c0 in "cC" and (len(ln) == 1 or not (ln[1].isalnum() or ln[1] == "_")):
            lines[i] = "!" + ln[1:]


def _join_fixed_continuations(lines: list[str]) -> int:
    """Join column-6 continuations onto the preceding code line.

    A continuation line has columns 1-5 blank and a non-blank, non-``0``
    marker in column 6. Alphabetic column-6 characters are skipped: a
    free-form statement indented five spaces would otherwise be eaten.
    Consumed lines become filler comments (line count preserved).
    """
    joined = 0
    for i, ln in enumerate(lines):
        if len(ln) < 6 or ln[:5].strip() or ln[5] in " 0":
            continue
        if ln[5].isalpha():
            continue
        if is_directive_line(ln) or ln.lstrip().startswith("!"):
            continue
        h = i - 1
        while h >= 0 and (
            not _is_code_line(lines[h]) or is_directive_line(lines[h])
        ):
            h -= 1
        if h < 0:
            continue
        lines[h] = f"{lines[h].rstrip()} {ln[6:].strip()}"
        lines[i] = f"{FILLER_PREFIX}{h + 1}"
        joined += 1
    return joined


def normalize_file(file: SourceFile) -> int:
    """Normalize one file in place; returns the joined-line count."""
    _normalize_endings(file.lines)
    joined_fixed = 0
    if is_fixed_form(file.name):
        _fixed_comments(file.lines)
        joined_fixed = _join_fixed_continuations(file.lines)
    _normalize_sentinels(file.lines)
    _join_directive_continuations(file.lines)
    return joined_fixed + _join_statement_continuations(file.lines)


def normalize_tree(cb: Codebase) -> dict[str, int]:
    """Normalize every file in place; map of file -> joined-line count."""
    return {f.name: normalize_file(f) for f in cb.files}
