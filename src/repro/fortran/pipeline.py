"""Version pipelines: Code 1 -> Codes 0, 2-6 (Table I's rows)."""

from __future__ import annotations

from repro.codes import CodeVersion
from repro.fortran.codebase import GeneratorBudget, MAS_BUDGET, generate_mas_codebase, strip_to_cpu
from repro.fortran.metrics import CodeMetrics, measure
from repro.fortran.source import Codebase
from repro.fortran.transforms import (
    Dc2xPass,
    DcBasicPass,
    PureDcPass,
    ReaddDataPass,
    TransformPass,
    UnifiedMemPass,
)

#: Pass pipeline per code version (applied to the Code 1 artifact).
PASS_PIPELINES: dict[CodeVersion, tuple[TransformPass, ...]] = {
    CodeVersion.A: (),
    CodeVersion.AD: (DcBasicPass(),),
    CodeVersion.ADU: (DcBasicPass(), UnifiedMemPass()),
    CodeVersion.AD2XU: (DcBasicPass(), UnifiedMemPass(), Dc2xPass()),
    CodeVersion.D2XU: (
        DcBasicPass(),
        UnifiedMemPass(),
        Dc2xPass(),
        PureDcPass(),
    ),
    CodeVersion.D2XAD: (
        DcBasicPass(),
        UnifiedMemPass(),
        Dc2xPass(),
        PureDcPass(keep_cpu_duplicates=True),
        ReaddDataPass(),
    ),
}

_VERSION_NAMES = {
    CodeVersion.CPU: "code0_CPU",
    CodeVersion.A: "code1_A",
    CodeVersion.AD: "code2_AD",
    CodeVersion.ADU: "code3_ADU",
    CodeVersion.AD2XU: "code4_AD2XU",
    CodeVersion.D2XU: "code5_D2XU",
    CodeVersion.D2XAD: "code6_D2XAd",
}


def build_version(
    version: CodeVersion,
    *,
    code1: Codebase | None = None,
    budget: GeneratorBudget = MAS_BUDGET,
) -> Codebase:
    """Produce one code version's source tree.

    ``code1`` may be passed to avoid regenerating the base artifact when
    building several versions.
    """
    base = code1 or generate_mas_codebase(budget)
    if version is CodeVersion.CPU:
        return strip_to_cpu(base, budget)
    cb = base.copy(_VERSION_NAMES[version])
    for p in PASS_PIPELINES[version]:
        p.apply(cb)
    return cb


def measure_all(budget: GeneratorBudget = MAS_BUDGET) -> dict[CodeVersion, CodeMetrics]:
    """Table I: metrics for every version, sharing one generated base."""
    code1 = generate_mas_codebase(budget)
    out = {}
    for v in CodeVersion:
        out[v] = measure(build_version(v, code1=code1, budget=budget))
    return out
