"""Table I's code versions: runtime semantics + compiler-flag metadata.

Each :class:`CodeVersion` binds the behavioural deltas of SIV (which loops
run under which backend, fusion/async availability, data management,
reduction strategy, device binding, wrapper-init kernels, duplicate CPU
routines) plus the descriptive columns of Table I (name tag, description,
nvfortran flags).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.runtime.config import (
    ArrayReductionStrategy,
    Backend,
    DeviceBindingMethod,
    RuntimeConfig,
    uniform_backend,
)
from repro.runtime.kernel import LoopCategory


class CodeVersion(enum.Enum):
    """All code versions of Table I (plus the CPU-only original)."""

    CPU = "0"
    A = "1"
    AD = "2"
    ADU = "3"
    AD2XU = "4"
    D2XU = "5"
    D2XAD = "6"


@dataclass(frozen=True, slots=True)
class VersionInfo:
    """Descriptive metadata (the prose columns of Table I)."""

    version: CodeVersion
    tag: str
    description: str
    compiler_flags: str
    #: Table I's reported line counts (for EXPERIMENTS.md comparison).
    paper_total_lines: int
    paper_acc_lines: int | None  # None renders as the empty-set symbol


_INFO: dict[CodeVersion, VersionInfo] = {
    CodeVersion.CPU: VersionInfo(
        CodeVersion.CPU, "0: CPU", "Original CPU-only version", "", 69874, None
    ),
    CodeVersion.A: VersionInfo(
        CodeVersion.A, "1: A", "Original OpenACC implementation",
        "-acc=gpu -gpu=cc80", 73865, 1458,
    ),
    CodeVersion.AD: VersionInfo(
        CodeVersion.AD, "2: AD",
        "OpenACC for DC-incompatible loops and data management, DC for remaining loops",
        "-acc=gpu -stdpar=gpu -gpu=cc80,nomanaged", 71661, 540,
    ),
    CodeVersion.ADU: VersionInfo(
        CodeVersion.ADU, "3: ADU",
        "OpenACC for DC-incompatible loops, DC for remaining loops, Unified memory",
        "-acc=gpu -stdpar=gpu -gpu=cc80,managed", 71269, 162,
    ),
    CodeVersion.AD2XU: VersionInfo(
        CodeVersion.AD2XU, "4: AD2XU",
        "OpenACC for functionality, DC2X for remaining loops, Unified memory",
        "-acc=gpu -stdpar=gpu -gpu=cc80,managed", 70868, 55,
    ),
    CodeVersion.D2XU: VersionInfo(
        CodeVersion.D2XU, "5: D2XU",
        "DC2X for all loops, some code modifications, Unified memory",
        "-stdpar=gpu -gpu=cc80 -Minline=reshape,name:s2c,boost,interp,c2s,sv2cv",
        68994, None,
    ),
    CodeVersion.D2XAD: VersionInfo(
        CodeVersion.D2XAD, "6: D2XAd",
        "DC2X for all loops, some code modifications, OpenACC for data management",
        "-acc=gpu -stdpar=gpu -gpu=cc80,nomanaged "
        "-Minline=reshape,name:s2c,boost,interp,c2s,sv2cv",
        71623, 277,
    ),
}

#: Stable iteration orders.
ALL_VERSIONS: tuple[CodeVersion, ...] = tuple(CodeVersion)
GPU_VERSIONS: tuple[CodeVersion, ...] = tuple(v for v in CodeVersion if v is not CodeVersion.CPU)


def version_info(version: CodeVersion) -> VersionInfo:
    """Table I metadata for one version."""
    return _INFO[version]


def runtime_config_for(version: CodeVersion) -> RuntimeConfig:
    """Executable runtime semantics for one code version (SIV A-F)."""
    if version is CodeVersion.CPU:
        return RuntimeConfig(name="code0_cpu", target="cpu")

    if version is CodeVersion.A:
        # Original OpenACC: fusion, async, manual data, atomic reductions.
        return RuntimeConfig(
            name="code1_A",
            loop_backend=uniform_backend(Backend.ACC),
            fusion=True,
            async_launch=True,
            manual_data=True,
            array_reduction=ArrayReductionStrategy.ACC_ATOMIC,
            device_binding=DeviceBindingMethod.SET_DEVICE_NUM,
        )

    if version is CodeVersion.AD:
        # DC (F2018) for plain loops; OpenACC keeps reductions, atomics,
        # routine callers, kernels regions, and all data management.
        backends = uniform_backend(Backend.DC)
        backends[LoopCategory.SCALAR_REDUCTION] = Backend.ACC
        backends[LoopCategory.ARRAY_REDUCTION] = Backend.ACC
        backends[LoopCategory.ATOMIC_OTHER] = Backend.ACC
        backends[LoopCategory.ROUTINE_CALLER] = Backend.ACC
        backends[LoopCategory.KERNELS_REGION] = Backend.ACC
        return RuntimeConfig(
            name="code2_AD",
            loop_backend=backends,
            fusion=True,   # remaining OpenACC regions still fuse
            async_launch=False,  # the hot loops are DC now: no async hints
            manual_data=True,
            array_reduction=ArrayReductionStrategy.ACC_ATOMIC,
            device_binding=DeviceBindingMethod.SET_DEVICE_NUM,
        )

    if version is CodeVersion.ADU:
        cfg = runtime_config_for(CodeVersion.AD)
        return RuntimeConfig(
            name="code3_ADU",
            loop_backend=dict(cfg.loop_backend),
            fusion=cfg.fusion,
            async_launch=cfg.async_launch,
            unified_memory=True,
            manual_data=False,
            array_reduction=cfg.array_reduction,
            device_binding=DeviceBindingMethod.SET_DEVICE_NUM,
        )

    if version is CodeVersion.AD2XU:
        # DC2X reduce for scalar reductions; atomics inside DC for array
        # reductions; UM. Remaining OpenACC: atomic/declare/update/
        # set device_num/routine/kernels.
        backends = uniform_backend(Backend.DC2X)
        backends[LoopCategory.ROUTINE_CALLER] = Backend.ACC
        backends[LoopCategory.KERNELS_REGION] = Backend.ACC
        return RuntimeConfig(
            name="code4_AD2XU",
            loop_backend=backends,
            fusion=False,
            async_launch=False,
            unified_memory=True,
            manual_data=False,
            array_reduction=ArrayReductionStrategy.DC_ATOMIC,
            device_binding=DeviceBindingMethod.SET_DEVICE_NUM,
        )

    if version is CodeVersion.D2XU:
        # Zero OpenACC: flipped array reductions, kernels regions expanded,
        # routines inlined, env-var device binding, no duplicate CPU
        # routines (UM pages during setup).
        return RuntimeConfig(
            name="code5_D2XU",
            loop_backend=uniform_backend(Backend.DC2X),
            fusion=False,
            async_launch=False,
            unified_memory=True,
            manual_data=False,
            array_reduction=ArrayReductionStrategy.FLIPPED_DC,
            device_binding=DeviceBindingMethod.ENV_VISIBLE_DEVICES,
            inline_routines=True,
            duplicate_cpu_routines=False,
        )

    if version is CodeVersion.D2XAD:
        # Code 5 + manual data directives back (wrapper create/init
        # routines) and duplicate CPU routines restored.
        return RuntimeConfig(
            name="code6_D2XAd",
            loop_backend=uniform_backend(Backend.DC2X),
            fusion=False,
            async_launch=False,
            unified_memory=False,
            manual_data=True,
            array_reduction=ArrayReductionStrategy.FLIPPED_DC,
            device_binding=DeviceBindingMethod.ENV_VISIBLE_DEVICES,
            inline_routines=True,
            wrapper_init_kernels=True,
            duplicate_cpu_routines=True,
        )

    raise ValueError(f"unknown code version {version}")
