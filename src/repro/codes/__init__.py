"""The six code versions of Table I as executable configurations."""

from repro.codes.versions import (
    ALL_VERSIONS,
    GPU_VERSIONS,
    CodeVersion,
    VersionInfo,
    runtime_config_for,
    version_info,
)

__all__ = [
    "CodeVersion",
    "VersionInfo",
    "ALL_VERSIONS",
    "GPU_VERSIONS",
    "runtime_config_for",
    "version_info",
]
