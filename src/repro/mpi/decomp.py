"""3-D block domain decomposition of the spherical grid.

MAS decomposes its logically rectangular (r, theta, phi) grid into blocks,
one per MPI rank. phi is periodic (full 2*pi), so every rank has a phi
neighbour even in single-rank runs -- which is why the paper's Fig. 3 shows
nonzero "MPI" time at 1 GPU (buffer loading/unloading for the periodic
wrap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


def dims_create(nranks: int, ndims: int = 3, *, weights: tuple[float, ...] | None = None) -> tuple[int, ...]:
    """Factor ``nranks`` into ``ndims`` balanced factors (MPI_Dims_create).

    ``weights`` bias the split toward axes with more cells: larger weight
    means that axis prefers more ranks. The result is sorted so the largest
    factor lands on the heaviest axis.
    """
    if nranks < 1:
        raise ValueError("need at least one rank")
    if ndims < 1:
        raise ValueError("need at least one dimension")
    if weights is None:
        weights = (1.0,) * ndims
    if len(weights) != ndims:
        raise ValueError("one weight per dimension required")
    if min(weights) <= 0:
        raise ValueError("weights must be positive")

    # Find the factorization minimizing the max (ranks_i / weight_i) ratio,
    # i.e. the most balanced weighted split. nranks is small (<= 64 in the
    # paper's runs) so exhaustive recursion is fine.
    best: tuple[float, tuple[int, ...]] | None = None

    def rec(remaining: int, dims_left: int, acc: tuple[int, ...]) -> None:
        nonlocal best
        if dims_left == 1:
            cand = acc + (remaining,)
            # Assign factors to axes: largest factor -> largest weight.
            order = sorted(range(ndims), key=lambda i: -weights[i])
            assigned = [1] * ndims
            for f, axis in zip(sorted(cand, reverse=True), order):
                assigned[axis] = f
            score = max(assigned[i] / weights[i] for i in range(ndims))
            key = (score, tuple(assigned))
            if best is None or key < (best[0], best[1]):
                best = (score, tuple(assigned))
            return
        f = 1
        while f <= remaining:
            if remaining % f == 0:
                rec(remaining // f, dims_left - 1, acc + (f,))
            f += 1

    rec(nranks, ndims, ())
    assert best is not None
    return best[1]


def split_extent(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous nearly-equal pieces."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if n < parts:
        raise ValueError(f"cannot split extent {n} into {parts} nonempty parts")
    base, extra = divmod(n, parts)
    out = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append((start, start + size))
        start += size
    return out


@dataclass(frozen=True, slots=True)
class Neighbor:
    """One face neighbour: rank id plus which face of ours it touches."""

    rank: int
    axis: int
    direction: int  # -1 = low face, +1 = high face


@dataclass(frozen=True)
class Decomposition3D:
    """Block decomposition of a (nr, nt, np) grid over ``nranks`` ranks.

    ``periodic`` marks wrap-around axes; MAS's grid is periodic in phi
    (axis 2) only.
    """

    global_shape: tuple[int, int, int]
    nranks: int
    periodic: tuple[bool, bool, bool] = (False, False, True)
    dims: tuple[int, int, int] = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError("need at least one rank")
        if any(n < 1 for n in self.global_shape):
            raise ValueError("grid extents must be positive")
        if self.dims is None:
            dims = dims_create(
                self.nranks, 3, weights=tuple(float(n) for n in self.global_shape)
            )
            object.__setattr__(self, "dims", dims)
        if self.dims[0] * self.dims[1] * self.dims[2] != self.nranks:
            raise ValueError(f"dims {self.dims} do not multiply to {self.nranks}")
        for n, p in zip(self.global_shape, self.dims):
            if n < p:
                raise ValueError(f"extent {n} cannot host {p} ranks")

    # -- rank <-> coords ----------------------------------------------------

    def coords(self, rank: int) -> tuple[int, int, int]:
        """Cartesian coordinates of ``rank`` (row-major, like MPI_Cart)."""
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range")
        pr, pt, pp = self.dims
        return (rank // (pt * pp), (rank // pp) % pt, rank % pp)

    def rank_of(self, coords: tuple[int, int, int]) -> int:
        """Inverse of :meth:`coords`."""
        pr, pt, pp = self.dims
        cr, ct, cp = coords
        if not (0 <= cr < pr and 0 <= ct < pt and 0 <= cp < pp):
            raise IndexError(f"coords {coords} out of range for dims {self.dims}")
        return (cr * pt + ct) * pp + cp

    # -- subdomains ----------------------------------------------------------

    def bounds(self, rank: int) -> tuple[tuple[int, int], tuple[int, int], tuple[int, int]]:
        """Global index [start, stop) per axis for this rank's block."""
        c = self.coords(rank)
        return tuple(
            split_extent(self.global_shape[a], self.dims[a])[c[a]] for a in range(3)
        )  # type: ignore[return-value]

    def local_shape(self, rank: int) -> tuple[int, int, int]:
        """Interior cell counts of this rank's block."""
        return tuple(hi - lo for lo, hi in self.bounds(rank))  # type: ignore[return-value]

    def slab(self, rank: int) -> tuple[slice, slice, slice]:
        """Slices selecting this rank's block out of a global array."""
        return tuple(slice(lo, hi) for lo, hi in self.bounds(rank))  # type: ignore[return-value]

    def local_cells(self, rank: int) -> int:
        """Interior cell count of the block."""
        s = self.local_shape(rank)
        return s[0] * s[1] * s[2]

    # -- neighbours ------------------------------------------------------------

    def neighbor(self, rank: int, axis: int, direction: int) -> int | None:
        """Neighbouring rank across one face, honouring periodicity."""
        if axis not in (0, 1, 2):
            raise ValueError("axis must be 0, 1 or 2")
        if direction not in (-1, 1):
            raise ValueError("direction must be -1 or +1")
        c = list(self.coords(rank))
        c[axis] += direction
        if not 0 <= c[axis] < self.dims[axis]:
            if not self.periodic[axis]:
                return None
            c[axis] %= self.dims[axis]
        return self.rank_of(tuple(c))  # type: ignore[arg-type]

    def neighbors(self, rank: int) -> list[Neighbor]:
        """All face neighbours of a rank (including periodic self-links)."""
        out = []
        for axis in range(3):
            for direction in (-1, 1):
                nb = self.neighbor(rank, axis, direction)
                if nb is not None:
                    out.append(Neighbor(nb, axis, direction))
        return out

    def face_cells(self, rank: int, axis: int) -> int:
        """Cells on one face of the block (halo message size per depth-1)."""
        s = self.local_shape(rank)
        return (s[0] * s[1] * s[2]) // s[axis]

    def iter_ranks(self) -> Iterator[int]:
        """All rank ids."""
        return iter(range(self.nranks))

    @property
    def balance(self) -> float:
        """max/min local cell count -- 1.0 means perfectly balanced."""
        cells = [self.local_cells(r) for r in self.iter_ranks()]
        return max(cells) / min(cells)
