"""Halo (ghost-cell) exchange engine.

One exchange per field per axis: pack the interior face into a send buffer
(a GPU kernel, tagged ``mpi_pack`` so it lands in Fig. 3's MPI bar), move
the message via the configured transport, unpack into the neighbour's ghost
layer (another ``mpi_pack`` kernel). Axes exchange sequentially so corner
ghosts become consistent without diagonal messages (standard practice).

Real numpy payloads move between the per-rank arrays, so multi-rank physics
is bit-checkable against a single-rank run. Two cost modes exist:

* **bulk-synchronous** (:meth:`HaloExchanger.exchange` /
  :meth:`HaloExchanger.exchange_many`): ranks synchronize at the start of
  each phase and the laggard charges its peers MPI wait time;
* **overlapped** (:meth:`HaloExchanger.exchange_begin` /
  :meth:`HaloExchanger.exchange_finish`): pack kernels and non-blocking
  sends (:meth:`~repro.mpi.transport.Transport.post`) run on a detached
  communication timeline while the main clock keeps advancing under
  interior compute; ``finish`` charges only the part of the exchange that
  compute failed to hide. Payloads still move eagerly at ``begin``, so
  overlapped runs are bit-identical to synchronous ones by construction.

Multiple fields can share one exchange (:meth:`exchange_many`): every phase
loops over all fields, so per-field pack/unpack kernels become pairwise
independent work the cross-region fusion window can collapse.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.mpi.decomp import Decomposition3D
from repro.mpi.transport import Transport
from repro.obs.telemetry import current as _telemetry
from repro.runtime.clock import SimClock, TimeCategory
from repro.runtime.dispatcher import RankRuntime
from repro.runtime.kernel import KernelSpec


@dataclass(frozen=True, slots=True)
class HaloSpec:
    """Exchange geometry: ghost depth and which axes participate."""

    depth: int = 1
    axes: tuple[int, ...] = (0, 1, 2)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("halo depth must be >= 1")
        if not self.axes or any(a not in (0, 1, 2) for a in self.axes):
            raise ValueError("axes must be a nonempty subset of (0, 1, 2)")


#: One field participating in an exchange: (name, per-rank arrays,
#: stagger axis or None).
FieldItem = tuple[str, list[np.ndarray], "int | None"]


#: Monotonic exchange id shared by an overlapped exchange's begin/finish
#: spans and log records (the dependency edge trace analysis pairs up).
_next_xid = 0


def _new_xid() -> int:
    global _next_xid
    _next_xid += 1
    return _next_xid


@dataclass(slots=True)
class PendingExchange:
    """An in-flight overlapped exchange returned by ``exchange_begin``.

    ``comm_clocks`` is None when the exchange already completed
    synchronously at begin (overlap unsupported or disabled); ``finish``
    is then a no-op. ``xid`` links the begin and finish ends of one
    overlapped exchange across spans and log records.
    """

    fields: tuple[str, ...]
    messages: int = 0
    comm_clocks: list[SimClock] | None = None
    t_begin: list[float] = dc_field(default_factory=list)
    done: bool = False
    xid: int = 0

    @property
    def sync(self) -> bool:
        """True if the exchange completed synchronously at begin."""
        return self.comm_clocks is None


def _interior_face(
    a: np.ndarray, axis: int, direction: int, g: int, *, staggered: bool = False
) -> tuple[slice, ...]:
    """Slice of the interior cells adjacent to one face (what gets sent).

    ``staggered`` marks face-centered arrays along the exchange axis: the
    boundary face is shared (computed identically by both ranks), so the
    sent layers shift inward by one to land in the neighbour's strictly
    beyond-boundary ghost faces.
    """
    ax = a.ndim - 3 + axis  # spatial axes are the trailing three
    n = a.shape[ax] - 2 * g
    if direction == -1:
        sl = slice(g + 1, 2 * g + 1) if staggered else slice(g, 2 * g)
    else:
        sl = slice(n - 1, n - 1 + g) if staggered else slice(n, n + g)
    out = [slice(None)] * a.ndim
    out[ax] = sl
    return tuple(out)


def _ghost_face(a: np.ndarray, axis: int, direction: int, g: int) -> tuple[slice, ...]:
    """Slice of the ghost cells on one face (what gets received into)."""
    ax = a.ndim - 3 + axis
    n = a.shape[ax] - 2 * g
    if direction == -1:
        sl = slice(0, g)
    else:
        sl = slice(n + g, n + 2 * g)
    out = [slice(None)] * a.ndim
    out[ax] = sl
    return tuple(out)


class HaloExchanger:
    """Exchanges ghost layers of per-rank arrays with cost accounting.

    ``decomp`` describes the *actual* (test-scale) grid; ``nominal_decomp``
    the paper-scale grid used for byte costing. Both must have the same
    rank layout.
    """

    def __init__(
        self,
        decomp: Decomposition3D,
        transport: Transport,
        ranks: list[RankRuntime],
        *,
        nominal_decomp: Decomposition3D | None = None,
        element_bytes: int = 8,
        pack_inefficiency: float = 1.0,
        buffer_init_fraction: float = 0.0,
        rank_nodes: list[int] | None = None,
    ) -> None:
        if len(ranks) != decomp.nranks:
            raise ValueError("one RankRuntime per rank required")
        if pack_inefficiency < 1.0:
            raise ValueError("pack_inefficiency is a traffic multiplier >= 1")
        if buffer_init_fraction < 0.0:
            raise ValueError("buffer_init_fraction cannot be negative")
        self.decomp = decomp
        self.nominal = nominal_decomp or decomp
        if self.nominal.nranks != decomp.nranks or self.nominal.dims != decomp.dims:
            raise ValueError("nominal decomposition must have the same rank layout")
        self.transport = transport
        self.ranks = ranks
        self.element_bytes = element_bytes
        #: Effective traffic multiplier of the pack/unpack kernels: boundary
        #: faces are strided slices, so each gathered element drags a whole
        #: cache line (and MAS loads per-variable boundary buffer structures
        #: on top). Calibrated in repro.perf.calibration against Fig. 3's
        #: 1-GPU MPI bar.
        self.pack_inefficiency = pack_inefficiency
        #: Fraction of the exchanged field's full array traffic charged per
        #: exchange as boundary-buffer maintenance. Fig. 3 counts "buffer
        #: initialization/loading/unloading" as MPI time, and at 1 GPU that
        #: term dominates the 29-of-201-minute MPI bar -- it scales with
        #: local volume, which is exactly how the paper's manual-data MPI
        #: share falls from 14% (1 GPU) toward 9% (8 GPUs). Calibrated in
        #: repro.perf.calibration.
        self.buffer_init_fraction = buffer_init_fraction
        #: Node index per rank for multi-node runs (None = all one node);
        #: off-node messages cross the fabric instead of NVLink.
        if rank_nodes is not None and len(rank_nodes) != decomp.nranks:
            raise ValueError("rank_nodes must list one node per rank")
        self.rank_nodes = rank_nodes
        self._registered_fields: set[str] = set()
        #: Message counters for tests/benches.
        self.messages = 0
        self.bytes_sent = 0
        #: Messages posted by overlapped begins and not yet finished.
        self.inflight = 0

    # -- buffer management -----------------------------------------------------

    def _buf_name(self, field_name: str, axis: int, direction: int, kind: str) -> str:
        return f"_halo_{kind}_{field_name}_{axis}_{'m' if direction < 0 else 'p'}"

    def ensure_buffers(self, field_names: tuple[str, ...], depth: int = 1) -> None:
        """Register per-field send/recv staging buffers in every rank's
        environment (first exchange of each field)."""
        missing = [f for f in field_names if f not in self._registered_fields]
        if not missing:
            return
        for rank, rt in enumerate(self.ranks):
            for field_name in missing:
                for axis in range(3):
                    nominal_face = (
                        self.nominal.face_cells(rank, axis) * depth * self.element_bytes
                    )
                    for direction in (-1, 1):
                        for kind in ("send", "recv"):
                            name = self._buf_name(field_name, axis, direction, kind)
                            if name not in rt.env:
                                rt.register_array(name, nominal_face)
        self._registered_fields.update(missing)

    # -- exchange ---------------------------------------------------------------

    def exchange(
        self,
        field_name: str,
        locals_: list[np.ndarray],
        spec: HaloSpec = HaloSpec(),
        *,
        stagger_axis: int | None = None,
    ) -> None:
        """Fill ghost layers of ``locals_`` (one ghosted array per rank).

        ``stagger_axis`` marks face-centered arrays (one entry longer along
        that axis); along it, the shared boundary face is skipped and ghost
        faces receive the neighbour's strictly-interior faces.
        """
        self.exchange_many([(field_name, locals_, stagger_axis)], spec)

    def exchange_many(
        self, items: list[FieldItem], spec: HaloSpec = HaloSpec()
    ) -> None:
        """Synchronously exchange several fields as one batched operation.

        Every phase (pack, message, unpack) loops over all fields, so the
        batch pays the per-axis barriers once instead of once per field.
        Per-field payloads are identical to back-to-back single-field
        exchanges (fields do not interact; axes stay sequential).
        """
        self._validate(items, spec)
        g = spec.depth
        self.ensure_buffers(tuple(f for f, _, _ in items), g)
        tel = self._observe_exchanges(items)
        for rt in self.ranks:
            rt.sync()
        t0 = [rt.clock.now for rt in self.ranks]
        with tel.tracer.span(
            "halo_exchange", field=",".join(f for f, _, _ in items)
        ):
            self._exchange_spec(items, spec, g)
        if tel.enabled:
            elapsed = sum(
                rt.clock.now - t for rt, t in zip(self.ranks, t0)
            ) / len(self.ranks)
            self._exchange_seconds_counter(tel).inc(elapsed)

    # -- overlapped exchange ----------------------------------------------------

    def exchange_begin(
        self,
        field_name: str,
        locals_: list[np.ndarray],
        spec: HaloSpec = HaloSpec(),
        *,
        stagger_axis: int | None = None,
        overlap: bool = True,
    ) -> PendingExchange:
        """Start one overlapped exchange; see :meth:`exchange_begin_many`."""
        return self.exchange_begin_many(
            [(field_name, locals_, stagger_axis)], spec, overlap=overlap
        )

    def exchange_begin_many(
        self,
        items: list[FieldItem],
        spec: HaloSpec = HaloSpec(),
        *,
        overlap: bool = True,
    ) -> PendingExchange:
        """Post an exchange without blocking the main timelines.

        Ghost payloads move eagerly (numerics are complete when this
        returns); all simulated cost -- pack kernels, wire time, unpack
        kernels, intra-exchange barriers -- lands on detached per-rank
        communication clocks. The main clocks are charged only the
        host-side posting overhead (one async-queue submit per kernel the
        exchange launched, the ``AsyncQueue`` tie-in). Call
        :meth:`exchange_finish` before any kernel that reads the ghosts'
        *cost* dependence region -- in MAS terms, before the boundary-shell
        pass.

        With ``overlap=False`` (how models degrade when
        ``RuntimeConfig.supports_halo_overlap`` is off) this is exactly
        :meth:`exchange_many` plus a completed :class:`PendingExchange`.
        """
        fields = tuple(f for f, _, _ in items)
        if not overlap:
            self.exchange_many(items, spec)
            return PendingExchange(fields=fields, done=False)
        self._validate(items, spec)
        g = spec.depth
        self.ensure_buffers(fields, g)
        tel = self._observe_exchanges(items)
        for rt in self.ranks:
            rt.sync()
        xid = _new_xid()
        t_begin = [rt.clock.now for rt in self.ranks]
        comm_clocks = [SimClock(now=t) for t in t_begin]
        launches0 = [rt.stats.launches for rt in self.ranks]
        messages0 = self.messages
        saved = [rt.clock for rt in self.ranks]
        try:
            for rt, main, comm in zip(self.ranks, saved, comm_clocks):
                # Comm clocks profile under "<lane>:comm": hidden traffic
                # gets its own trace track and critical-path lane.
                tel.attach_comm_clock(main, comm)
                rt.set_clock(comm)
            with tel.tracer.span(
                "halo_exchange", field=",".join(fields), overlap=True, xid=xid
            ):
                self._exchange_spec(items, spec, g)
        finally:
            for rt, main in zip(self.ranks, saved):
                rt.set_clock(main)
        if tel.enabled:
            tel.logger.log(
                "halo_begin",
                xid=xid,
                fields=list(fields),
                t_begin=[float(t) for t in t_begin],
                comm_end=[float(c.now) for c in comm_clocks],
            )
        for rt, l0 in zip(self.ranks, launches0):
            posts = rt.stats.launches - l0
            if posts:
                rt.clock.advance(
                    posts * rt.queue.submit_overhead,
                    TimeCategory.LAUNCH,
                    "halo_post",
                )
        posted = self.messages - messages0
        self.inflight += posted
        if tel.enabled:
            tel.metrics.gauge(
                "halo_messages_inflight",
                "halo messages posted by overlapped begins and not yet waited on",
            ).set(self.inflight)
        return PendingExchange(
            fields=fields,
            messages=posted,
            comm_clocks=comm_clocks,
            t_begin=t_begin,
            xid=xid,
        )

    def exchange_finish(self, pending: PendingExchange) -> None:
        """Wait for an overlapped exchange; charge only the unhidden part.

        Per rank: whatever of the communication timeline the main clock has
        already advanced past was hidden under compute; the remainder is
        charged to the main clock pro-rata over the communication clock's
        category split (so pack time stays MPI_PACK, wire time stays
        MPI_TRANSFER in Fig. 3's accounting), plus one queue completion
        latency for the final synchronization.
        """
        if pending.done:
            raise ValueError("exchange_finish() called twice on one exchange")
        pending.done = True
        if pending.comm_clocks is None:
            return
        tel = _telemetry()
        hidden_mean = unhidden_mean = 0.0
        main_now: list[float] = []
        hidden_by_rank: list[float] = []
        unhidden_by_rank: list[float] = []
        with tel.tracer.span(
            "halo_finish", field=",".join(pending.fields), xid=pending.xid
        ):
            for rt, comm, t0 in zip(
                self.ranks, pending.comm_clocks, pending.t_begin
            ):
                rt.sync()
                main_now.append(rt.clock.now)
                elapsed = comm.now - t0
                unhidden = max(0.0, comm.now - rt.clock.now)
                hidden = max(0.0, elapsed - unhidden)
                if unhidden > 0.0 and elapsed > 0.0:
                    for cat, t in comm.by_category.items():
                        if t > 0.0:
                            rt.clock.advance(
                                unhidden * (t / elapsed), cat, f"halo_wait_{cat.value}"
                            )
                    rt.clock.wait_until(
                        comm.now, TimeCategory.MPI_WAIT, "halo_wait_residual"
                    )
                rt.clock.advance(
                    rt.queue.completion_latency, TimeCategory.LAUNCH, "halo_finish"
                )
                tel.detach_comm_clock(comm)
                hidden_by_rank.append(hidden)
                unhidden_by_rank.append(unhidden)
                hidden_mean += hidden / len(self.ranks)
                unhidden_mean += unhidden / len(self.ranks)
        self.inflight -= pending.messages
        if tel.enabled:
            tel.logger.log(
                "halo_finish",
                xid=pending.xid,
                fields=list(pending.fields),
                t_begin=[float(t) for t in pending.t_begin],
                comm_end=[float(c.now) for c in pending.comm_clocks],
                main_now=[float(t) for t in main_now],
                hidden=[float(h) for h in hidden_by_rank],
                unhidden=[float(u) for u in unhidden_by_rank],
            )
            self._exchange_seconds_counter(tel).inc(unhidden_mean)
            tel.metrics.counter(
                "halo_overlap_seconds",
                "mean per-rank halo exchange seconds hidden under interior compute",
            ).inc(hidden_mean)
            tel.metrics.gauge(
                "halo_messages_inflight",
                "halo messages posted by overlapped begins and not yet waited on",
            ).set(self.inflight)

    # -- internals ---------------------------------------------------------------

    def _validate(self, items: list[FieldItem], spec: HaloSpec) -> None:
        if not items:
            raise ValueError("exchange needs at least one field")
        g = spec.depth
        for _, locals_, stagger_axis in items:
            if len(locals_) != self.decomp.nranks:
                raise ValueError("one local array per rank required")
            for a in locals_:
                for axis in spec.axes:
                    ax = a.ndim - 3 + axis
                    if a.shape[ax] < 3 * g + (1 if axis == stagger_axis else 0):
                        raise ValueError(
                            f"array extent {a.shape[ax]} too small for halo depth {g}"
                        )

    def _observe_exchanges(self, items: list[FieldItem]):
        tel = _telemetry()
        if tel.enabled:
            counter = tel.metrics.counter(
                "halo_exchanges_total", "ghost-layer exchanges, by field",
                labelnames=("field",),
            )
            for field_name, _, _ in items:
                counter.labels(field=field_name).inc()
        return tel

    @staticmethod
    def _exchange_seconds_counter(tel):
        return tel.metrics.counter(
            "halo_exchange_seconds",
            "mean per-rank wall seconds charged to halo exchanges "
            "(overlapped runs count only the unhidden remainder)",
        )

    def _exchange_spec(
        self, items: list[FieldItem], spec: HaloSpec, g: int
    ) -> None:
        if self.buffer_init_fraction > 0.0:
            for field_name, _, _ in items:
                for rt in self.ranks:
                    nb = (
                        rt.env.nominal_bytes(field_name)
                        if field_name in rt.env
                        else self.nominal.local_cells(0) * self.element_bytes
                    )
                    rt.loop(
                        KernelSpec(
                            name=f"halo_buffer_init_{field_name}",
                            bytes_override=self.buffer_init_fraction * nb,
                            tags=frozenset({"mpi_pack"}),
                        )
                    )
        for axis in spec.axes:
            self._exchange_axis(items, axis, g)

    def _exchange_axis(self, items: list[FieldItem], axis: int, g: int) -> None:
        dec = self.decomp
        # -- phase A: every rank packs its faces, all fields ------------------
        packed: dict[tuple[str, int, int], np.ndarray] = {}
        for field_name, locals_, stagger_axis in items:
            staggered = axis == stagger_axis
            for rank, rt in enumerate(self.ranks):
                for direction in (-1, 1):
                    if dec.neighbor(rank, axis, direction) is None:
                        continue
                    a = locals_[rank]
                    face = a[
                        _interior_face(a, axis, direction, g, staggered=staggered)
                    ]
                    buf_name = self._buf_name(field_name, axis, direction, "send")
                    nominal_bytes = rt.env.nominal_bytes(buf_name)

                    def pack(face=face) -> np.ndarray:
                        return np.ascontiguousarray(face)

                    result = rt.loop(
                        KernelSpec(
                            name=f"halo_pack_{field_name}_{axis}"
                            f"{'m' if direction < 0 else 'p'}",
                            reads=(field_name,) if field_name in rt.env else (),
                            writes=(buf_name,),
                            bytes_override=2 * nominal_bytes * self.pack_inefficiency,
                            body=pack,
                            tags=frozenset({"mpi_pack"}),
                        )
                    )
                    packed[(field_name, rank, direction)] = result

        # -- phase B: synchronize (imbalance shows up as MPI wait) ------------
        self._barrier()

        # -- phase C: messages -------------------------------------------------
        tel = _telemetry()
        msg_counter = bytes_counter = None
        if tel.enabled:
            msg_counter = tel.metrics.counter(
                "halo_messages_total", "halo messages sent, by transport",
                labelnames=("transport",),
            ).labels(transport=self.transport.kind.value)
            bytes_counter = tel.metrics.counter(
                "halo_bytes_total", "nominal halo payload bytes sent, by rank",
                labelnames=("rank",),
            )
        received: dict[tuple[str, int, int], np.ndarray] = {}
        for field_name, _, _ in items:
            for rank, rt in enumerate(self.ranks):
                for direction in (-1, 1):
                    nb = dec.neighbor(rank, axis, direction)
                    if nb is None:
                        continue
                    buf = packed[(field_name, rank, direction)]
                    send_name = self._buf_name(field_name, axis, direction, "send")
                    recv_name = self._buf_name(field_name, axis, -direction, "recv")
                    nbytes = rt.env.nominal_bytes(send_name)
                    nb_rt = self.ranks[nb]
                    for c in self.transport.send_charges(rt.env, send_name, nbytes):
                        rt.clock.advance(c.seconds, c.category, c.label)
                    same_node = (
                        self.rank_nodes is None
                        or self.rank_nodes[rank] == self.rank_nodes[nb]
                    )
                    msg = self.transport.post(
                        buf,
                        nbytes,
                        t_posted=rt.clock.now,
                        same_device=(nb == rank),
                        same_node=same_node,
                    )
                    # Blocking semantics inside the phase: the sender waits
                    # for its own wire (identical cost to the old in-place
                    # advance; overlapped begins run this on the detached
                    # communication clock instead).
                    rt.clock.wait_until(
                        msg.t_ready, TimeCategory.MPI_TRANSFER, f"msg_{axis}"
                    )
                    if nb != rank:
                        # self-messages (periodic wrap on an undivided axis)
                        # are delivered by a local copy; only the send side
                        # stages.
                        for c in self.transport.recv_charges(
                            nb_rt.env, recv_name, nbytes
                        ):
                            nb_rt.clock.advance(c.seconds, c.category, c.label)
                    # The message my low face sends arrives at the
                    # neighbour's high ghost (and vice versa):
                    # neighbour-relative direction is -direction.
                    received[(field_name, nb, -direction)] = msg.payload
                    self.messages += 1
                    self.bytes_sent += nbytes
                    if msg_counter is not None:
                        msg_counter.inc()
                        bytes_counter.labels(rank=str(rank)).inc(nbytes)

        # -- phase D: unpack into ghosts ---------------------------------------
        locals_by_field = {f: locs for f, locs, _ in items}
        for (field_name, rank, direction), buf in received.items():
            rt = self.ranks[rank]
            a = locals_by_field[field_name][rank]
            ghost = _ghost_face(a, axis, direction, g)
            recv_name = self._buf_name(field_name, axis, direction, "recv")
            nominal_bytes = rt.env.nominal_bytes(recv_name)

            def unpack(a=a, ghost=ghost, buf=buf) -> None:
                a[ghost] = buf

            # The write is qualified to this direction's ghost shell
            # ("rho@g2m"): the two directions' unpacks touch disjoint
            # storage, so the fusion window may run them as one launch
            # while readers of the bare field still order correctly.
            side = "m" if direction < 0 else "p"
            rt.loop(
                KernelSpec(
                    name=f"halo_unpack_{field_name}_{axis}{side}",
                    reads=(recv_name,),
                    writes=(f"{field_name}@g{axis}{side}",)
                    if field_name in rt.env
                    else (),
                    bytes_override=2 * nominal_bytes * self.pack_inefficiency,
                    body=unpack,
                    tags=frozenset({"mpi_pack"}),
                )
            )
        self._barrier()

    def _barrier(self) -> None:
        """Advance every rank clock to the maximum (BSP synchronization)."""
        for rt in self.ranks:
            rt.sync()
        t_max = max(rt.clock.now for rt in self.ranks)
        for rt in self.ranks:
            rt.clock.wait_until(t_max, TimeCategory.MPI_WAIT, "halo_barrier")
