"""Halo (ghost-cell) exchange engine.

One exchange per field per axis: pack the interior face into a send buffer
(a GPU kernel, tagged ``mpi_pack`` so it lands in Fig. 3's MPI bar), move
the message via the configured transport, unpack into the neighbour's ghost
layer (another ``mpi_pack`` kernel). Axes exchange sequentially so corner
ghosts become consistent without diagonal messages (standard practice).

Real numpy payloads move between the per-rank arrays, so multi-rank physics
is bit-checkable against a single-rank run; simulated time is charged with
bulk-synchronous semantics (ranks synchronize at the start of each
exchange, and the laggard charges its peers MPI wait time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.decomp import Decomposition3D
from repro.mpi.transport import Transport
from repro.obs.telemetry import current as _telemetry
from repro.runtime.clock import TimeCategory
from repro.runtime.dispatcher import RankRuntime
from repro.runtime.kernel import KernelSpec


@dataclass(frozen=True, slots=True)
class HaloSpec:
    """Exchange geometry: ghost depth and which axes participate."""

    depth: int = 1
    axes: tuple[int, ...] = (0, 1, 2)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("halo depth must be >= 1")
        if not self.axes or any(a not in (0, 1, 2) for a in self.axes):
            raise ValueError("axes must be a nonempty subset of (0, 1, 2)")


def _interior_face(
    a: np.ndarray, axis: int, direction: int, g: int, *, staggered: bool = False
) -> tuple[slice, ...]:
    """Slice of the interior cells adjacent to one face (what gets sent).

    ``staggered`` marks face-centered arrays along the exchange axis: the
    boundary face is shared (computed identically by both ranks), so the
    sent layers shift inward by one to land in the neighbour's strictly
    beyond-boundary ghost faces.
    """
    n = a.shape[axis] - 2 * g
    if direction == -1:
        sl = slice(g + 1, 2 * g + 1) if staggered else slice(g, 2 * g)
    else:
        sl = slice(n - 1, n - 1 + g) if staggered else slice(n, n + g)
    out = [slice(None)] * a.ndim
    out[axis] = sl
    return tuple(out)


def _ghost_face(a: np.ndarray, axis: int, direction: int, g: int) -> tuple[slice, ...]:
    """Slice of the ghost cells on one face (what gets received into)."""
    n = a.shape[axis] - 2 * g
    if direction == -1:
        sl = slice(0, g)
    else:
        sl = slice(n + g, n + 2 * g)
    out = [slice(None)] * a.ndim
    out[axis] = sl
    return tuple(out)


class HaloExchanger:
    """Exchanges ghost layers of per-rank arrays with cost accounting.

    ``decomp`` describes the *actual* (test-scale) grid; ``nominal_decomp``
    the paper-scale grid used for byte costing. Both must have the same
    rank layout.
    """

    def __init__(
        self,
        decomp: Decomposition3D,
        transport: Transport,
        ranks: list[RankRuntime],
        *,
        nominal_decomp: Decomposition3D | None = None,
        element_bytes: int = 8,
        pack_inefficiency: float = 1.0,
        buffer_init_fraction: float = 0.0,
        rank_nodes: list[int] | None = None,
    ) -> None:
        if len(ranks) != decomp.nranks:
            raise ValueError("one RankRuntime per rank required")
        if pack_inefficiency < 1.0:
            raise ValueError("pack_inefficiency is a traffic multiplier >= 1")
        if buffer_init_fraction < 0.0:
            raise ValueError("buffer_init_fraction cannot be negative")
        self.decomp = decomp
        self.nominal = nominal_decomp or decomp
        if self.nominal.nranks != decomp.nranks or self.nominal.dims != decomp.dims:
            raise ValueError("nominal decomposition must have the same rank layout")
        self.transport = transport
        self.ranks = ranks
        self.element_bytes = element_bytes
        #: Effective traffic multiplier of the pack/unpack kernels: boundary
        #: faces are strided slices, so each gathered element drags a whole
        #: cache line (and MAS loads per-variable boundary buffer structures
        #: on top). Calibrated in repro.perf.calibration against Fig. 3's
        #: 1-GPU MPI bar.
        self.pack_inefficiency = pack_inefficiency
        #: Fraction of the exchanged field's full array traffic charged per
        #: exchange as boundary-buffer maintenance. Fig. 3 counts "buffer
        #: initialization/loading/unloading" as MPI time, and at 1 GPU that
        #: term dominates the 29-of-201-minute MPI bar -- it scales with
        #: local volume, which is exactly how the paper's manual-data MPI
        #: share falls from 14% (1 GPU) toward 9% (8 GPUs). Calibrated in
        #: repro.perf.calibration.
        self.buffer_init_fraction = buffer_init_fraction
        #: Node index per rank for multi-node runs (None = all one node);
        #: off-node messages cross the fabric instead of NVLink.
        if rank_nodes is not None and len(rank_nodes) != decomp.nranks:
            raise ValueError("rank_nodes must list one node per rank")
        self.rank_nodes = rank_nodes
        self._buffers_registered = False
        #: Message counters for tests/benches.
        self.messages = 0
        self.bytes_sent = 0

    # -- buffer management -----------------------------------------------------

    def _buf_name(self, axis: int, direction: int, kind: str) -> str:
        return f"_halo_{kind}_{axis}_{'m' if direction < 0 else 'p'}"

    def ensure_buffers(self, depth: int = 1) -> None:
        """Register send/recv staging buffers in every rank's environment."""
        if self._buffers_registered:
            return
        for rank, rt in enumerate(self.ranks):
            for axis in range(3):
                nominal_face = (
                    self.nominal.face_cells(rank, axis) * depth * self.element_bytes
                )
                for direction in (-1, 1):
                    for kind in ("send", "recv"):
                        name = self._buf_name(axis, direction, kind)
                        if name not in rt.env:
                            rt.register_array(name, nominal_face)
        self._buffers_registered = True

    # -- exchange ---------------------------------------------------------------

    def exchange(
        self,
        field_name: str,
        locals_: list[np.ndarray],
        spec: HaloSpec = HaloSpec(),
        *,
        stagger_axis: int | None = None,
    ) -> None:
        """Fill ghost layers of ``locals_`` (one ghosted array per rank).

        ``stagger_axis`` marks face-centered arrays (one entry longer along
        that axis); along it, the shared boundary face is skipped and ghost
        faces receive the neighbour's strictly-interior faces.
        """
        if len(locals_) != self.decomp.nranks:
            raise ValueError("one local array per rank required")
        g = spec.depth
        for a in locals_:
            for axis in spec.axes:
                if a.shape[axis] < 3 * g + (1 if axis == stagger_axis else 0):
                    raise ValueError(
                        f"array extent {a.shape[axis]} too small for halo depth {g}"
                    )
        self.ensure_buffers(g)
        tel = _telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "halo_exchanges_total", "ghost-layer exchanges, by field",
                labelnames=("field",),
            ).labels(field=field_name).inc()
        with tel.tracer.span("halo_exchange", field=field_name):
            self._exchange_spec(field_name, locals_, spec, g, stagger_axis)

    def _exchange_spec(
        self,
        field_name: str,
        locals_: list[np.ndarray],
        spec: HaloSpec,
        g: int,
        stagger_axis: int | None,
    ) -> None:
        if self.buffer_init_fraction > 0.0:
            for rt in self.ranks:
                nb = (
                    rt.env.nominal_bytes(field_name)
                    if field_name in rt.env
                    else self.nominal.local_cells(0) * self.element_bytes
                )
                rt.loop(
                    KernelSpec(
                        name=f"halo_buffer_init_{field_name}",
                        bytes_override=self.buffer_init_fraction * nb,
                        tags=frozenset({"mpi_pack"}),
                    )
                )
        for axis in spec.axes:
            self._exchange_axis(
                field_name, locals_, axis, g, staggered=(axis == stagger_axis)
            )

    def _exchange_axis(
        self,
        field_name: str,
        locals_: list[np.ndarray],
        axis: int,
        g: int,
        *,
        staggered: bool = False,
    ) -> None:
        dec = self.decomp
        # -- phase A: every rank packs its faces ------------------------------
        packed: dict[tuple[int, int], np.ndarray] = {}
        for rank, rt in enumerate(self.ranks):
            for direction in (-1, 1):
                if dec.neighbor(rank, axis, direction) is None:
                    continue
                a = locals_[rank]
                face = a[_interior_face(a, axis, direction, g, staggered=staggered)]
                buf_name = self._buf_name(axis, direction, "send")
                nominal_bytes = rt.env.nominal_bytes(buf_name)

                def pack(face=face) -> np.ndarray:
                    return np.ascontiguousarray(face)

                result = rt.loop(
                    KernelSpec(
                        name=f"halo_pack_{field_name}_{axis}{'m' if direction < 0 else 'p'}",
                        reads=(field_name,) if field_name in rt.env else (),
                        writes=(buf_name,),
                        bytes_override=2 * nominal_bytes * self.pack_inefficiency,
                        body=pack,
                        tags=frozenset({"mpi_pack"}),
                    )
                )
                packed[(rank, direction)] = result

        # -- phase B: synchronize (imbalance shows up as MPI wait) --------------
        self._barrier()

        # -- phase C: messages -----------------------------------------------------
        tel = _telemetry()
        msg_counter = bytes_counter = None
        if tel.enabled:
            msg_counter = tel.metrics.counter(
                "halo_messages_total", "halo messages sent, by transport",
                labelnames=("transport",),
            ).labels(transport=self.transport.kind.value)
            bytes_counter = tel.metrics.counter(
                "halo_bytes_total", "nominal halo payload bytes sent, by rank",
                labelnames=("rank",),
            )
        received: dict[tuple[int, int], np.ndarray] = {}
        for rank, rt in enumerate(self.ranks):
            for direction in (-1, 1):
                nb = dec.neighbor(rank, axis, direction)
                if nb is None:
                    continue
                buf = packed[(rank, direction)]
                send_name = self._buf_name(axis, direction, "send")
                recv_name = self._buf_name(axis, -direction, "recv")
                nbytes = rt.env.nominal_bytes(send_name)
                nb_rt = self.ranks[nb]
                for c in self.transport.send_charges(rt.env, send_name, nbytes):
                    rt.clock.advance(c.seconds, c.category, c.label)
                same_node = (
                    self.rank_nodes is None
                    or self.rank_nodes[rank] == self.rank_nodes[nb]
                )
                wire = self.transport.wire_time(
                    nbytes, same_device=(nb == rank), same_node=same_node
                )
                rt.clock.advance(wire, TimeCategory.MPI_TRANSFER, f"msg_{axis}")
                if nb != rank:
                    # self-messages (periodic wrap on an undivided axis) are
                    # delivered by a local copy; only the send side stages.
                    for c in self.transport.recv_charges(nb_rt.env, recv_name, nbytes):
                        nb_rt.clock.advance(c.seconds, c.category, c.label)
                # The message my low face sends arrives at the neighbour's
                # high ghost (and vice versa): neighbour-relative direction
                # is -direction.
                received[(nb, -direction)] = buf
                self.messages += 1
                self.bytes_sent += nbytes
                if msg_counter is not None:
                    msg_counter.inc()
                    bytes_counter.labels(rank=str(rank)).inc(nbytes)

        # -- phase D: unpack into ghosts -----------------------------------------
        for (rank, direction), buf in received.items():
            rt = self.ranks[rank]
            a = locals_[rank]
            ghost = _ghost_face(a, axis, direction, g)
            recv_name = self._buf_name(axis, direction, "recv")
            nominal_bytes = rt.env.nominal_bytes(recv_name)

            def unpack(a=a, ghost=ghost, buf=buf) -> None:
                a[ghost] = buf

            rt.loop(
                KernelSpec(
                    name=f"halo_unpack_{field_name}_{axis}{'m' if direction < 0 else 'p'}",
                    reads=(recv_name,),
                    writes=(field_name,) if field_name in rt.env else (),
                    bytes_override=2 * nominal_bytes * self.pack_inefficiency,
                    body=unpack,
                    tags=frozenset({"mpi_pack"}),
                )
            )
        self._barrier()

    def _barrier(self) -> None:
        """Advance every rank clock to the maximum (BSP synchronization)."""
        t_max = max(rt.clock.now for rt in self.ranks)
        for rt in self.ranks:
            rt.clock.wait_until(t_max, TimeCategory.MPI_WAIT, "halo_barrier")
