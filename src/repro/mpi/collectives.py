"""Reduction collectives over simulated ranks.

MAS's implicit solvers (PCG for viscosity, SIV/Fig. 4) and its CFL timestep
control need global dot products and minima. These are tiny messages, so
the cost is latency-dominated: ``ceil(log2(n))`` butterfly rounds of the
link latency, plus (under UM) a host synchronization because the reduction
scratch lives in managed memory.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.machine.spec import LinkSpec
from repro.obs.telemetry import current as _telemetry
from repro.runtime.clock import TimeCategory
from repro.runtime.dispatcher import RankRuntime

#: Host-side overhead per collective when buffers are UM-managed.
UM_COLLECTIVE_OVERHEAD = 25e-6


def _observe_collective(op: str) -> None:
    """Count one allreduce (PCG dots and CFL minima dominate these)."""
    tel = _telemetry()
    if tel.enabled:
        tel.metrics.counter(
            "allreduce_total", "MPI allreduces issued, by reduction op",
            labelnames=("op",),
        ).labels(op=op).inc()


def _collective_cost(
    n_ranks: int, nbytes: int, link: LinkSpec, *, unified_memory: bool
) -> float:
    """Per-rank wall time of one small allreduce."""
    if n_ranks == 1:
        # Even a 1-rank MPI_Allreduce is a library call with nonzero cost.
        base = link.latency
    else:
        rounds = math.ceil(math.log2(n_ranks))
        base = rounds * link.transfer_time(nbytes)
    if unified_memory:
        base += UM_COLLECTIVE_OVERHEAD
    return base


def barrier(ranks: Sequence[RankRuntime], label: str = "barrier") -> float:
    """Synchronize all rank clocks; returns the synchronized time."""
    t_max = max(rt.clock.now for rt in ranks)
    for rt in ranks:
        rt.clock.wait_until(t_max, TimeCategory.MPI_WAIT, label)
    return t_max


def allreduce_sum(
    ranks: Sequence[RankRuntime],
    values: Sequence[float | np.ndarray],
    link: LinkSpec,
    *,
    nbytes: int = 8,
    unified_memory: bool = False,
) -> float | np.ndarray:
    """MPI_Allreduce(SUM): every rank contributes, every rank gets the sum."""
    if len(values) != len(ranks):
        raise ValueError("one value per rank required")
    _observe_collective("sum")
    barrier(ranks, "allreduce")
    total = values[0]
    for v in values[1:]:
        total = total + v
    cost = _collective_cost(len(ranks), nbytes, link, unified_memory=unified_memory)
    for rt in ranks:
        rt.clock.advance(cost, TimeCategory.MPI_TRANSFER, "allreduce_sum")
    return total


def allreduce_min(
    ranks: Sequence[RankRuntime],
    values: Sequence[float],
    link: LinkSpec,
    *,
    nbytes: int = 8,
    unified_memory: bool = False,
) -> float:
    """MPI_Allreduce(MIN), used by the CFL timestep controller."""
    if len(values) != len(ranks):
        raise ValueError("one value per rank required")
    _observe_collective("min")
    barrier(ranks, "allreduce")
    result = min(values)
    cost = _collective_cost(len(ranks), nbytes, link, unified_memory=unified_memory)
    for rt in ranks:
        rt.clock.advance(cost, TimeCategory.MPI_TRANSFER, "allreduce_min")
    return result


def allreduce_max(
    ranks: Sequence[RankRuntime],
    values: Sequence[float],
    link: LinkSpec,
    *,
    nbytes: int = 8,
    unified_memory: bool = False,
) -> float:
    """MPI_Allreduce(MAX), used by the semi-implicit wave-speed estimate."""
    if len(values) != len(ranks):
        raise ValueError("one value per rank required")
    _observe_collective("max")
    barrier(ranks, "allreduce")
    result = max(values)
    cost = _collective_cost(len(ranks), nbytes, link, unified_memory=unified_memory)
    for rt in ranks:
        rt.clock.advance(cost, TimeCategory.MPI_TRANSFER, "allreduce_max")
    return result
