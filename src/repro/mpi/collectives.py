"""Reduction collectives over simulated ranks.

MAS's implicit solvers (PCG for viscosity, SIV/Fig. 4) and its CFL timestep
control need global dot products and minima. These are tiny messages, so
the cost is latency-dominated: ``ceil(log2(n))`` butterfly rounds of the
link latency, plus (under UM) a host synchronization because the reduction
scratch lives in managed memory.

Because the cost is latency-dominated, fusing k scalar reductions into one
vector-valued :func:`allreduce_many` charges one butterfly of ``8 * k``
bytes instead of k separate latencies -- the mechanism behind the
communication-avoiding PCG variant.  The
:func:`allreduce_many_begin` / :func:`allreduce_many_finish` pair is the
``MPI_Iallreduce`` analog: the reduction completes a fixed cost after the
last rank posts its contribution, and ranks only pay at *finish* for
whatever the intervening compute did not hide (pipelined PCG).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.machine.spec import LinkSpec
from repro.obs.telemetry import current as _telemetry
from repro.runtime.clock import TimeCategory
from repro.runtime.dispatcher import RankRuntime

#: Host-side overhead per collective when buffers are UM-managed.
UM_COLLECTIVE_OVERHEAD = 25e-6


def _observe_collective(op: str) -> None:
    """Count one allreduce (PCG dots and CFL minima dominate these)."""
    tel = _telemetry()
    if tel.enabled:
        tel.metrics.counter(
            "allreduce_total", "MPI allreduces issued, by reduction op",
            labelnames=("op",),
        ).labels(op=op).inc()


def _observe_cost(op: str, seconds: float) -> None:
    """Accumulate per-rank seconds charged to one collective's transfer."""
    tel = _telemetry()
    if tel.enabled and seconds > 0.0:
        tel.metrics.counter(
            "allreduce_seconds_total",
            "per-rank seconds charged to allreduce transfers, by reduction op",
            labelnames=("op",),
        ).labels(op=op).inc(seconds)


def _collective_cost(
    n_ranks: int, nbytes: int, link: LinkSpec, *, unified_memory: bool
) -> float:
    """Per-rank wall time of one small allreduce."""
    if n_ranks == 1:
        # Even a 1-rank MPI_Allreduce is a library call with nonzero cost.
        base = link.latency
    else:
        rounds = math.ceil(math.log2(n_ranks))
        base = rounds * link.transfer_time(nbytes)
    if unified_memory:
        base += UM_COLLECTIVE_OVERHEAD
    return base


def barrier(ranks: Sequence[RankRuntime], label: str = "barrier") -> float:
    """Synchronize all rank clocks; returns the synchronized time."""
    for rt in ranks:
        rt.sync()  # flush buffered launches before comparing clocks
    t_max = max(rt.clock.now for rt in ranks)
    for rt in ranks:
        rt.clock.wait_until(t_max, TimeCategory.MPI_WAIT, label)
    return t_max


def allreduce_sum(
    ranks: Sequence[RankRuntime],
    values: Sequence[float | np.ndarray],
    link: LinkSpec,
    *,
    nbytes: int = 8,
    unified_memory: bool = False,
) -> float | np.ndarray:
    """MPI_Allreduce(SUM): every rank contributes, every rank gets the sum."""
    if len(values) != len(ranks):
        raise ValueError("one value per rank required")
    _observe_collective("sum")
    barrier(ranks, "allreduce")
    total = values[0]
    for v in values[1:]:
        total = total + v
    cost = _collective_cost(len(ranks), nbytes, link, unified_memory=unified_memory)
    _observe_cost("sum", cost)
    for rt in ranks:
        rt.clock.advance(cost, TimeCategory.MPI_TRANSFER, "allreduce_sum")
    return total


def allreduce_min(
    ranks: Sequence[RankRuntime],
    values: Sequence[float | np.ndarray],
    link: LinkSpec,
    *,
    nbytes: int = 8,
    unified_memory: bool = False,
) -> float | np.ndarray:
    """MPI_Allreduce(MIN), used by the CFL timestep controller.

    Array-valued contributions (one per rank, equal shapes -- e.g. the
    per-ensemble-member CFL limits) reduce elementwise in one collective,
    like a vector MPI_Allreduce(MIN); pass ``nbytes=8*k`` to charge the
    wider message.
    """
    if len(values) != len(ranks):
        raise ValueError("one value per rank required")
    _observe_collective("min")
    barrier(ranks, "allreduce")
    if any(isinstance(v, np.ndarray) for v in values):
        result = np.minimum.reduce([np.asarray(v, dtype=float) for v in values])
    else:
        result = min(values)
    cost = _collective_cost(len(ranks), nbytes, link, unified_memory=unified_memory)
    _observe_cost("min", cost)
    for rt in ranks:
        rt.clock.advance(cost, TimeCategory.MPI_TRANSFER, "allreduce_min")
    return result


def _sum_vectors(vectors: Sequence[Sequence[float] | np.ndarray]) -> np.ndarray:
    """Elementwise sum of equal-length per-rank contribution vectors."""
    total = np.array(vectors[0], dtype=float, copy=True)
    for v in vectors[1:]:
        arr = np.asarray(v, dtype=float)
        if arr.shape != total.shape:
            raise ValueError("every rank must contribute the same value count")
        total += arr
    return total


def allreduce_many(
    ranks: Sequence[RankRuntime],
    vectors: Sequence[Sequence[float] | np.ndarray],
    link: LinkSpec,
    *,
    nbytes: int | None = None,
    unified_memory: bool = False,
) -> np.ndarray:
    """Vector-valued MPI_Allreduce(SUM): k scalars reduced in ONE message.

    Every rank contributes a length-k vector; every rank receives the
    elementwise sum.  The cost model charges a single butterfly of
    ``8 * k`` bytes -- one latency -- instead of the k latencies that k
    separate :func:`allreduce_sum` calls would pay.  This is the batched
    reduction the communication-avoiding PCG fuses its per-iteration dot
    products into.
    """
    if len(vectors) != len(ranks):
        raise ValueError("one vector per rank required")
    total = _sum_vectors(vectors)
    _observe_collective("sum_many")
    barrier(ranks, "allreduce_many")
    cost = _collective_cost(
        len(ranks),
        nbytes if nbytes is not None else 8 * total.size,
        link,
        unified_memory=unified_memory,
    )
    _observe_cost("sum_many", cost)
    for rt in ranks:
        rt.clock.advance(cost, TimeCategory.MPI_TRANSFER, "allreduce_many")
    return total


@dataclass(slots=True)
class PendingReduction:
    """An in-flight nonblocking fused allreduce (MPI_Iallreduce analog).

    The reduction result is available ``cost`` seconds after ``t_start``
    (the moment the slowest rank posted its contribution); ranks charge
    only the *unhidden* remainder of that window when they finish.
    """

    ranks: list[RankRuntime]
    total: np.ndarray
    cost: float
    t_start: float
    done: bool = False


def allreduce_many_begin(
    ranks: Sequence[RankRuntime],
    vectors: Sequence[Sequence[float] | np.ndarray],
    link: LinkSpec,
    *,
    nbytes: int | None = None,
    unified_memory: bool = False,
) -> PendingReduction:
    """Post a nonblocking fused allreduce; charges nothing now.

    Unlike the blocking form there is no entry barrier: the reduction
    simply cannot complete earlier than ``cost`` seconds after the last
    rank's clock at post time.  Compute issued between ``begin`` and
    ``finish`` (the pipelined-PCG matvec) hides the collective.
    """
    if len(vectors) != len(ranks):
        raise ValueError("one vector per rank required")
    total = _sum_vectors(vectors)
    _observe_collective("sum_many")
    cost = _collective_cost(
        len(ranks),
        nbytes if nbytes is not None else 8 * total.size,
        link,
        unified_memory=unified_memory,
    )
    for rt in ranks:
        rt.sync()  # posted contributions include buffered launches
    t_start = max(rt.clock.now for rt in ranks)
    return PendingReduction(
        ranks=list(ranks), total=total, cost=cost, t_start=t_start
    )


def allreduce_many_finish(pending: PendingReduction) -> np.ndarray:
    """Complete a nonblocking fused allreduce; returns the summed vector.

    Each rank waits only until ``t_start + cost``; a rank whose clock
    already passed that moment (because the overlapped compute was longer
    than the collective) pays nothing.
    """
    if pending.done:
        raise ValueError("reduction already finished")
    pending.done = True
    t_done = pending.t_start + pending.cost
    paid = 0.0
    for rt in pending.ranks:
        rt.sync()
        paid += max(0.0, t_done - rt.clock.now) / len(pending.ranks)
        rt.clock.wait_until(
            t_done, TimeCategory.MPI_TRANSFER, "allreduce_many_wait"
        )
    _observe_cost("sum_many", paid)
    return pending.total


def allreduce_max(
    ranks: Sequence[RankRuntime],
    values: Sequence[float | np.ndarray],
    link: LinkSpec,
    *,
    nbytes: int = 8,
    unified_memory: bool = False,
) -> float | np.ndarray:
    """MPI_Allreduce(MAX), used by the semi-implicit wave-speed estimate.

    Like :func:`allreduce_min`, per-rank array contributions (per-member
    wave speeds) reduce elementwise in a single collective.
    """
    if len(values) != len(ranks):
        raise ValueError("one value per rank required")
    _observe_collective("max")
    barrier(ranks, "allreduce")
    if any(isinstance(v, np.ndarray) for v in values):
        result = np.maximum.reduce([np.asarray(v, dtype=float) for v in values])
    else:
        result = max(values)
    cost = _collective_cost(len(ranks), nbytes, link, unified_memory=unified_memory)
    _observe_cost("max", cost)
    for rt in ranks:
        rt.clock.advance(cost, TimeCategory.MPI_TRANSFER, "allreduce_max")
    return result
