"""MPI message transports: the crux of the paper's UM slowdown.

Three concrete transports:

* :class:`CudaAwareTransport` -- manual-data GPU codes (Codes 1, 2, 6):
  MPI receives device pointers; intra-node messages ride NVLink
  peer-to-peer. This is the top lane of Fig. 4.
* :class:`UnifiedMemoryTransport` -- UM codes (Codes 3, 4, 5): the MPI
  library touches managed buffers on the *host*, so the send buffer pages
  out (D2H), the wire copy happens host-side, and the receive buffer pages
  back in at the next kernel touch (H2D). Bottom lane of Fig. 4.
* :class:`CpuFabricTransport` -- CPU runs (Table III): plain host messages
  over shared memory / the fabric.

Each transport returns :class:`~repro.runtime.data_env.Charge` lists per
side so the halo engine can charge rank clocks; numerical payloads move via
numpy in the halo engine itself, identically for all transports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.machine.interconnect import Interconnect
from repro.machine.spec import LinkSpec
from repro.obs.telemetry import current as _telemetry
from repro.runtime.clock import TimeCategory
from repro.runtime.data_env import Charge, DataEnvironment, DataMode


class TransportKind(enum.Enum):
    """Which data path MPI messages take."""

    CUDA_AWARE_P2P = "cuda_aware_p2p"
    UM_STAGED = "um_staged"
    CPU_FABRIC = "cpu_fabric"


@dataclass(slots=True)
class PendingMessage:
    """One posted (non-blocking) message.

    ``t_ready`` is the simulated time the payload is complete at the
    receiver; nothing is charged to any clock until a rank waits on it.
    The numpy ``payload`` moved eagerly at post time, so completion order
    can never change numerics -- only who pays the wire time, and when.
    """

    payload: object
    nbytes: int
    t_posted: float
    t_ready: float

    def __post_init__(self) -> None:
        if self.t_ready < self.t_posted:
            raise ValueError("a message cannot complete before it is posted")


@dataclass(frozen=True, slots=True)
class Transport:
    """Base transport; concrete subclasses implement the cost methods."""

    kind: TransportKind

    def post(
        self,
        payload: object,
        nbytes: int,
        *,
        t_posted: float,
        same_device: bool,
        same_node: bool = True,
    ) -> PendingMessage:
        """Post a non-blocking send: compute when the wire finishes.

        The blocking exchange waits on the result immediately
        (``wait_until(msg.t_ready)`` equals the old in-place wire-time
        advance exactly); the overlapped exchange waits only at
        ``exchange_finish``.
        """
        wire = self.wire_time(nbytes, same_device=same_device, same_node=same_node)
        return PendingMessage(payload, nbytes, t_posted, t_posted + wire)

    def send_charges(
        self, env: DataEnvironment, buffer_name: str, nbytes: int
    ) -> list[Charge]:
        """Cost on the sending rank of getting the buffer MPI-visible."""
        raise NotImplementedError

    def wire_time(self, nbytes: int, *, same_device: bool, same_node: bool = True) -> float:
        """Time the message spends on the wire / link.

        ``same_node`` distinguishes NVLink-reachable peers from ranks on
        other nodes (multi-node runs cross the fabric instead).
        """
        raise NotImplementedError

    def recv_charges(
        self, env: DataEnvironment, buffer_name: str, nbytes: int
    ) -> list[Charge]:
        """Cost on the receiving rank of landing the buffer."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class CudaAwareTransport(Transport):
    """Device-pointer MPI over NVLink (manual data management)."""

    interconnect: Interconnect = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.interconnect is None:
            raise ValueError("CudaAwareTransport needs an interconnect")

    def send_charges(self, env, buffer_name, nbytes):
        if env.mode is not DataMode.MANUAL:
            raise ValueError("CUDA-aware MPI requires manual (device-resident) buffers")
        if not env.is_present(buffer_name):
            raise ValueError(f"buffer {buffer_name!r} not device-resident")
        return []  # device pointer handed straight to MPI

    def wire_time(self, nbytes, *, same_device, same_node=True):
        if nbytes == 0:
            return 0.0
        if same_device:
            # Periodic wrap onto the same rank: device-to-device copy.
            return self.interconnect.peer.latency + nbytes / (
                self.interconnect.peer.bandwidth * 2
            )
        if not same_node:
            # GPUDirect RDMA over the fabric: no NVLink shortcut off-node.
            return self.interconnect.fabric.transfer_time(nbytes)
        return self.interconnect.p2p_time(nbytes)

    def recv_charges(self, env, buffer_name, nbytes):
        if not env.is_present(buffer_name):
            raise ValueError(f"buffer {buffer_name!r} not device-resident")
        return []


@dataclass(frozen=True, slots=True)
class UnifiedMemoryTransport(Transport):
    """Managed-memory MPI: host library touches paged buffers.

    ``host_mpi_overhead`` is the extra host-side per-message cost (driver
    synchronization before the library may touch managed pages); calibrated
    against Fig. 3's UM MPI bars.
    """

    interconnect: Interconnect = None  # type: ignore[assignment]
    host_mpi_overhead: float = 30e-6
    #: Page-granularity amplification: managed memory migrates whole 2 MiB
    #: pages, and halo buffers packed from strided faces span many more
    #: pages than their payload. Fig. 4's "multiple CPU-GPU transfers" per
    #: exchange is this effect; calibrated in repro.perf.calibration.
    page_amplification: float = 8.0

    def __post_init__(self) -> None:
        if self.interconnect is None:
            raise ValueError("UnifiedMemoryTransport needs an interconnect")
        if self.host_mpi_overhead < 0:
            raise ValueError("host overhead cannot be negative")
        if self.page_amplification < 1.0:
            raise ValueError("page_amplification is a multiplier >= 1")

    def send_charges(self, env, buffer_name, nbytes):
        if env.mode is not DataMode.UNIFIED:
            raise ValueError("UM transport requires a unified data environment")
        self._observe_staging(nbytes, "send")
        charges = [
            Charge(self.host_mpi_overhead, TimeCategory.MPI_TRANSFER, "um_mpi_sync")
        ]
        # The MPI library reads the send buffer on the host: pages migrate
        # device -> host, whole pages at a time.
        charges += [
            Charge(c.seconds, TimeCategory.MPI_TRANSFER, c.label)
            for c in env.host_access(buffer_name, int(nbytes * self.page_amplification))
        ]
        return charges

    def wire_time(self, nbytes, *, same_device, same_node=True):
        if nbytes == 0:
            return 0.0
        if not same_node:
            # pages are already host-resident; the message crosses the fabric
            return self.interconnect.fabric.transfer_time(nbytes)
        # Host-side copy between ranks' buffers (shared-memory transport).
        host_copy_bw = self.interconnect.host.bandwidth
        return self.interconnect.host.latency + nbytes / host_copy_bw

    def recv_charges(self, env, buffer_name, nbytes):
        if env.mode is not DataMode.UNIFIED:
            raise ValueError("UM transport requires a unified data environment")
        self._observe_staging(nbytes, "recv")
        # MPI writes the receive buffer on the host; pages (if device
        # resident) must migrate out first, and will fault back in at the
        # next unpack kernel -- that fault is charged by prepare_kernel.
        return [
            Charge(c.seconds, TimeCategory.MPI_TRANSFER, c.label)
            for c in env.host_access(buffer_name, int(nbytes * self.page_amplification))
        ]

    def _observe_staging(self, nbytes: int, side: str) -> None:
        """Count host-staged page traffic (the Fig. 4 UM pathology)."""
        tel = _telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "um_staged_bytes_total",
                "page-granular bytes staged through the host by UM MPI",
                labelnames=("side",),
            ).labels(side=side).inc(nbytes * self.page_amplification)


@dataclass(frozen=True, slots=True)
class CpuFabricTransport(Transport):
    """Host MPI for CPU runs: shared memory intra-node, fabric across."""

    fabric: LinkSpec = None  # type: ignore[assignment]
    #: Effective shared-memory copy bandwidth within a node.
    shm_bandwidth: float = 20e9

    def __post_init__(self) -> None:
        if self.fabric is None:
            raise ValueError("CpuFabricTransport needs a fabric link")
        if self.shm_bandwidth <= 0:
            raise ValueError("shared-memory bandwidth must be positive")

    def send_charges(self, env, buffer_name, nbytes):
        return []

    def wire_time(self, nbytes, *, same_device, same_node=True):
        if nbytes == 0:
            return 0.0
        if same_device or same_node:
            return nbytes / self.shm_bandwidth if same_device else self.fabric.transfer_time(nbytes)
        return self.fabric.transfer_time(nbytes)

    def recv_charges(self, env, buffer_name, nbytes):
        return []


def make_transport(
    kind: TransportKind,
    *,
    interconnect: Interconnect | None = None,
    fabric: LinkSpec | None = None,
    host_mpi_overhead: float = 30e-6,
    page_amplification: float = 8.0,
) -> Transport:
    """Factory keyed by kind, with paper-calibrated defaults."""
    if kind is TransportKind.CUDA_AWARE_P2P:
        if interconnect is None:
            raise ValueError("CUDA-aware transport needs an interconnect")
        return CudaAwareTransport(kind=kind, interconnect=interconnect)
    if kind is TransportKind.UM_STAGED:
        if interconnect is None:
            raise ValueError("UM transport needs an interconnect")
        return UnifiedMemoryTransport(
            kind=kind,
            interconnect=interconnect,
            host_mpi_overhead=host_mpi_overhead,
            page_amplification=page_amplification,
        )
    if kind is TransportKind.CPU_FABRIC:
        if fabric is None:
            raise ValueError("CPU transport needs a fabric link")
        return CpuFabricTransport(kind=kind, fabric=fabric)
    raise ValueError(f"unknown transport kind {kind}")
