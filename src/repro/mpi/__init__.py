"""Simulated MPI: domain decomposition, halo exchange, collectives.

All GPU runs in the paper are node-local (1-8 ranks, 1 GPU each); CPU runs
span 1-8 Expanse nodes. Ranks here are simulated SPMD contexts executed in
sequence with bulk-synchronous time semantics: every rank owns a clock, and
exchanges/collectives synchronize clocks, charging wait time to the
laggards' peers.

The transport layer is where the paper's UM story lives: manual-data codes
pass device pointers to CUDA-aware MPI (NVLink peer-to-peer); UM codes let
the host-side MPI library touch managed buffers, dragging pages over PCIe
both ways on every exchange (Fig. 4).
"""

from repro.mpi.decomp import Decomposition3D, dims_create
from repro.mpi.transport import (
    CpuFabricTransport,
    CudaAwareTransport,
    Transport,
    TransportKind,
    UnifiedMemoryTransport,
    make_transport,
)
from repro.mpi.halo import HaloExchanger, HaloSpec
from repro.mpi.collectives import allreduce_sum, allreduce_min, barrier

__all__ = [
    "Decomposition3D",
    "dims_create",
    "Transport",
    "TransportKind",
    "CudaAwareTransport",
    "UnifiedMemoryTransport",
    "CpuFabricTransport",
    "make_transport",
    "HaloExchanger",
    "HaloSpec",
    "allreduce_sum",
    "allreduce_min",
    "barrier",
]
