"""Runtime configuration: how each code version executes loops and data.

One :class:`RuntimeConfig` captures the behavioural column of Table I for a
code version: which backend runs each loop category, whether OpenACC fusion
and ``async`` are available, how array reductions are implemented, and how
data moves (manual directives vs unified managed memory).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.runtime.kernel import LoopCategory


class Backend(enum.Enum):
    """Who compiles/launches a given loop."""

    ACC = "openacc"      # !$acc parallel loop
    DC = "do_concurrent"  # Fortran 2018 do concurrent
    DC2X = "do_concurrent_2x"  # DC with the Fortran 202X reduce clause
    CPU = "cpu"          # no offload (Code 0)


class ArrayReductionStrategy(enum.Enum):
    """The three array-reduction implementations of SIV (Listings 3-5)."""

    ACC_ATOMIC = "acc_atomic"      # OpenACC loop + atomic update (Listing 3)
    DC_ATOMIC = "dc_atomic"        # DC loop + acc atomic inside (Listing 4)
    FLIPPED_DC = "flipped_dc"      # outer DC + inner serialized reduce (Listing 5)


class DeviceBindingMethod(enum.Enum):
    """How multi-GPU runs pick a device per MPI rank (SIV-E, Listing 6)."""

    SET_DEVICE_NUM = "acc_set_device_num"      # the last OpenACC directive
    ENV_VISIBLE_DEVICES = "cuda_visible_devices"  # launch.sh wrapper


@dataclass(frozen=True, slots=True)
class RuntimeConfig:
    """Complete behavioural description of one code version's runtime."""

    name: str
    target: str = "gpu"  # "gpu" or "cpu"
    loop_backend: dict[LoopCategory, Backend] = field(default_factory=dict)
    fusion: bool = False
    async_launch: bool = False
    unified_memory: bool = False
    manual_data: bool = True
    array_reduction: ArrayReductionStrategy = ArrayReductionStrategy.ACC_ATOMIC
    device_binding: DeviceBindingMethod = DeviceBindingMethod.SET_DEVICE_NUM
    #: Code 6 wraps array creation in create+init routines, adding
    #: initialization kernels the original code did not have (SIV-F).
    wrapper_init_kernels: bool = False
    #: Codes 0-4 and 6 keep duplicate CPU-only setup routines; Code 5 drops
    #: them and lets UM page during setup (SIV-E).
    duplicate_cpu_routines: bool = True
    #: Routines called in kernels are inlined (-Minline) instead of using
    #: !$acc routine (Code 5/6).
    inline_routines: bool = False
    #: Cross-region launch fusion: collapse adjacent plain-category kernels
    #: *between* synchronization points into shared launches (beyond the
    #: per-region fusion the ``fusion`` flag models). Off by default; a
    #: perf-opt switch, not part of the Table I taxonomy.
    cross_region_fusion: bool = False

    def __post_init__(self) -> None:
        if self.target not in ("gpu", "cpu"):
            raise ValueError(f"unknown target {self.target!r}")
        if self.target == "gpu" and not self.loop_backend:
            raise ValueError("GPU configs must map loop categories to backends")
        if self.unified_memory and self.manual_data:
            raise ValueError("unified memory and manual data are mutually exclusive")
        if self.target == "cpu" and self.unified_memory:
            raise ValueError("unified memory is meaningless for CPU runs")

    def backend_for(self, category: LoopCategory) -> Backend:
        """Backend that executes loops of ``category``."""
        if self.target == "cpu":
            return Backend.CPU
        try:
            return self.loop_backend[category]
        except KeyError:
            raise ValueError(
                f"config {self.name!r} does not map loop category {category.value!r}"
            ) from None

    @property
    def uses_openacc(self) -> bool:
        """True if any loop category still needs the OpenACC runtime."""
        return any(b is Backend.ACC for b in self.loop_backend.values())

    @property
    def supports_pipelined_reductions(self) -> bool:
        """True if nonblocking fused reductions can overlap with compute.

        Pipelined PCG posts its allreduce and hides it behind the
        preconditioner/matvec; that only buys anything when the runtime
        has async launch queues (OpenACC ``async``, Code A/1). Without
        them the pipelined solver degrades to blocking fused reductions
        (communication-avoiding volume, no overlap).
        """
        return self.async_launch

    @property
    def supports_halo_overlap(self) -> bool:
        """True if halo exchanges can proceed under interior compute.

        Overlapped halos post pack kernels and sends on a side stream and
        only synchronize at ``exchange_finish``; like pipelined reductions
        this needs async launch queues (OpenACC ``async``, Code A/1).
        Runtimes without them fall back to the bulk-synchronous exchange.
        """
        return self.async_launch

    def with_unified_memory(self) -> "RuntimeConfig":
        """This config with UM instead of manual data (the paper's Code-1/2
        +UM control experiment in SV-C)."""
        return replace(self, name=self.name + "+UM", unified_memory=True, manual_data=False)


def all_loop_categories() -> tuple[LoopCategory, ...]:
    """All loop categories, in a stable order."""
    return tuple(LoopCategory)


def uniform_backend(backend: Backend) -> dict[LoopCategory, Backend]:
    """Map every loop category to one backend."""
    return {cat: backend for cat in LoopCategory}
