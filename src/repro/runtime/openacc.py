"""OpenACC-style execution engine.

Implements the mechanisms the paper credits for Code 1's performance edge
(SIV-B, SVI): kernel fusion inside ``parallel`` regions, asynchronous
launch queues, manual data directives, ``atomic`` array reductions, and
``kernels`` regions. Numerical bodies run eagerly in submission order --
fusion and async change *cost*, never results (the loops are data
independent by construction, which the fusion planner verifies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.machine.gpu import GpuDevice
from repro.obs.telemetry import current as _telemetry
from repro.runtime.clock import SimClock, TimeCategory
from repro.runtime.config import ArrayReductionStrategy
from repro.runtime.cost import KernelCostModel
from repro.runtime.data_env import DataEnvironment, DataMode
from repro.runtime.fusion import FusionGroup
from repro.runtime.kernel import KernelSpec
from repro.runtime.stream import AsyncQueue


def observe_kernel(
    spec: KernelSpec,
    seconds: float,
    cost: KernelCostModel,
    env: DataEnvironment,
) -> None:
    """Per-kernel roofline counters: seconds, bytes, flops, calls.

    Every execution path (OpenACC groups, DC loops, the CPU dispatch)
    reports here so :mod:`repro.perf.roofline` can compute each kernel's
    speed-of-light fraction from one run's metrics snapshot. The nominal
    bytes/flops are the cost model's inputs, *before* efficiency
    penalties -- which is exactly what makes the measured-vs-attainable
    ratio meaningful.
    """
    tel = _telemetry()
    if not tel.enabled:
        return
    nbytes = cost.bytes_moved(spec, env)
    category = "mpi_pack" if "mpi_pack" in spec.tags else "compute"
    m = tel.metrics
    m.counter(
        "kernel_seconds_total",
        "device-busy seconds charged per kernel spec",
        labelnames=("category", "kernel"),
    ).labels(kernel=spec.name, category=category).inc(seconds)
    m.counter(
        "kernel_bytes_total", "nominal HBM bytes moved per kernel spec",
        labelnames=("kernel",),
    ).labels(kernel=spec.name).inc(nbytes)
    m.counter(
        "kernel_flops_total", "nominal flops per kernel spec",
        labelnames=("kernel",),
    ).labels(kernel=spec.name).inc(nbytes * spec.flops_per_byte)
    m.counter(
        "kernel_calls_total", "kernel body executions per kernel spec",
        labelnames=("kernel",),
    ).labels(kernel=spec.name).inc()


@dataclass(slots=True)
class LaunchStats:
    """Counters for launches/fusion, reported by benches and asserted in tests."""

    kernels: int = 0
    launches: int = 0
    fused_away: int = 0

    def merge(self, other: "LaunchStats") -> None:
        """Accumulate another engine's counters."""
        self.kernels += other.kernels
        self.launches += other.launches
        self.fused_away += other.fused_away


@dataclass(slots=True)
class OpenAccEngine:
    """Executes fusion groups of kernels with OpenACC launch semantics."""

    clock: SimClock
    env: DataEnvironment
    gpu: GpuDevice
    cost: KernelCostModel
    queue: AsyncQueue
    async_launch: bool = True
    array_reduction: ArrayReductionStrategy = ArrayReductionStrategy.ACC_ATOMIC
    working_set_bytes: float | None = None
    stats: LaunchStats = field(default_factory=LaunchStats)

    @property
    def unified_memory(self) -> bool:
        """Whether the data environment is UM-managed."""
        return self.env.mode is DataMode.UNIFIED

    def _charge(self, charges, *, spec: KernelSpec | None = None) -> None:
        for c in charges:
            category = c.category
            # UM page migrations triggered by halo pack/unpack kernels are
            # buffer loading/unloading -- Fig. 3 counts them as MPI time.
            if (
                spec is not None
                and category is TimeCategory.UM_FAULT
                and "mpi_pack" in spec.tags
            ):
                category = TimeCategory.MPI_TRANSFER
            self.clock.advance(c.seconds, category, c.label)

    def _launch_gap_extra(self) -> float:
        return self.cost.um_launch_extra if self.unified_memory else 0.0

    def _gap(self, q_gap: float, n_groups: int) -> float:
        """Wall gap for a launch plan.

        With ``async`` the host never waits on completions: each launch
        costs only its submit overhead (the queue keeps the device fed).
        Synchronous launches pay the full round trip the queue computed.
        """
        if self.async_launch:
            return self.queue.submit_overhead * n_groups + self._launch_gap_extra() * n_groups
        return q_gap + self._launch_gap_extra() * n_groups

    def execute_group(self, group: FusionGroup) -> list[Any]:
        """Run one fusion group: residency, launch overheads, bodies.

        Returns each kernel body's return value, in submission order.
        """
        results: list[Any] = []
        body_times: list[float] = []
        for spec in group.kernels:
            self._charge(self.env.prepare_kernel(spec), spec=spec)
            body_times.append(
                self.cost.body_time(
                    spec,
                    self.env,
                    self.gpu,
                    working_set_bytes=self.working_set_bytes,
                    array_reduction=self.array_reduction,
                    unified_memory=self.unified_memory,
                )
            )
        for spec, bt in zip(group.kernels, body_times):
            observe_kernel(spec, bt, self.cost, self.env)
        # A fused group is one device kernel: one submit/complete round trip
        # regardless of how many source loops it contains.
        q = self.queue.simulate([sum(body_times)], async_launch=self.async_launch)
        gap = self._gap(q.gap_time, 1)
        label = group.name
        compute_category = (
            TimeCategory.MPI_PACK
            if any("mpi_pack" in k.tags for k in group.kernels)
            else TimeCategory.COMPUTE
        )
        self.clock.advance(gap, TimeCategory.LAUNCH, f"launch({label})")
        self.clock.advance(q.body_time, compute_category, label)
        self.stats.kernels += group.size
        self.stats.launches += 1
        self.stats.fused_away += group.size - 1
        for spec in group.kernels:
            results.append(spec.run_body())
        return results

    def execute_region(self, groups: list[FusionGroup]) -> list[Any]:
        """Run a whole parallel region's launch plan.

        With ``async`` the queue hides inter-group launch gaps; without it
        each group pays a full round trip. We model this by simulating the
        group launch sequence through the queue.
        """
        results: list[Any] = []
        if not groups:
            return results
        body_times: list[float] = []
        group_category: list[TimeCategory] = []
        for group in groups:
            total = 0.0
            for spec in group.kernels:
                self._charge(self.env.prepare_kernel(spec), spec=spec)
                bt = self.cost.body_time(
                    spec,
                    self.env,
                    self.gpu,
                    working_set_bytes=self.working_set_bytes,
                    array_reduction=self.array_reduction,
                    unified_memory=self.unified_memory,
                )
                observe_kernel(spec, bt, self.cost, self.env)
                total += bt
            body_times.append(total)
            group_category.append(
                TimeCategory.MPI_PACK
                if any("mpi_pack" in k.tags for k in group.kernels)
                else TimeCategory.COMPUTE
            )
            self.stats.kernels += group.size
            self.stats.launches += 1
            self.stats.fused_away += group.size - 1
        q = self.queue.simulate(body_times, async_launch=self.async_launch)
        gap = self._gap(q.gap_time, len(groups))
        self.clock.advance(gap, TimeCategory.LAUNCH, f"launch_region({groups[0].name})")
        for group, bt, cat in zip(groups, body_times, group_category):
            self.clock.advance(bt, cat, group.name)
            for spec in group.kernels:
                results.append(spec.run_body())
        return results

    def execute_single(self, spec: KernelSpec) -> Any:
        """Run one kernel outside any region (its own launch)."""
        return self.execute_group(FusionGroup((spec,)))[0]
