"""Multi-GPU device binding: ``acc_set_device_num`` vs ``launch.sh``.

The last OpenACC directive Code 5 removes is ``set device_num`` (SIV-E).
Its replacement is a bash wrapper (Listing 6) exporting
``CUDA_VISIBLE_DEVICES=$OMPI_COMM_WORLD_LOCAL_RANK`` so each MPI process
sees exactly one GPU. Both paths are implemented and tested to yield the
same rank->device binding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.gpu import GpuDevice
from repro.machine.node import GpuNode
from repro.runtime.config import DeviceBindingMethod

#: The launch wrapper of Listing 6, reproduced verbatim in spirit. ``{var}``
#: is the MPI library's local-rank environment variable.
LAUNCH_SH_TEMPLATE = """\
#!/bin/bash
# Assume 1 GPU per MPI local rank
# Set device for this MPI rank:
export CUDA_VISIBLE_DEVICES="${var}"
# Execute code:
exec $*
"""

#: Local-rank environment variables by MPI library ("similar environment
#: variables exist in other MPI libraries", SIV-E).
LOCAL_RANK_ENV_VARS = {
    "openmpi": "OMPI_COMM_WORLD_LOCAL_RANK",
    "mpich": "MPI_LOCALRANKID",
    "mvapich2": "MV2_COMM_WORLD_LOCAL_RANK",
    "slurm": "SLURM_LOCALID",
}


@dataclass(frozen=True, slots=True)
class LaunchScript:
    """A rendered launch.sh for a given MPI library."""

    mpi_library: str = "openmpi"

    def __post_init__(self) -> None:
        if self.mpi_library not in LOCAL_RANK_ENV_VARS:
            raise ValueError(
                f"unknown MPI library {self.mpi_library!r}; "
                f"known: {sorted(LOCAL_RANK_ENV_VARS)}"
            )

    @property
    def local_rank_var(self) -> str:
        """The env var the script reads the local rank from."""
        return LOCAL_RANK_ENV_VARS[self.mpi_library]

    def render(self) -> str:
        """The bash script text (Listing 6)."""
        return LAUNCH_SH_TEMPLATE.format(var=self.local_rank_var)

    def visible_devices_for(self, local_rank: int) -> str:
        """CUDA_VISIBLE_DEVICES the wrapped process will see."""
        if local_rank < 0:
            raise ValueError("local rank cannot be negative")
        return str(local_rank)


@dataclass(frozen=True, slots=True)
class DeviceBinding:
    """Resolved rank -> GPU assignment for a node-local job."""

    method: DeviceBindingMethod
    devices: tuple[int, ...]  # devices[rank] = CUDA ordinal on the node

    def device_for(self, local_rank: int) -> int:
        """Physical device ordinal assigned to a local rank."""
        return self.devices[local_rank]


def bind_devices(
    node: GpuNode,
    num_ranks: int,
    method: DeviceBindingMethod,
    *,
    script: LaunchScript | None = None,
) -> DeviceBinding:
    """Assign one GPU per local MPI rank by either mechanism.

    ``SET_DEVICE_NUM``: every rank sees all GPUs and calls
    ``acc_set_device_num(local_rank)``.

    ``ENV_VISIBLE_DEVICES``: launch.sh masks visibility so each rank sees a
    single GPU, which is then CUDA device 0 *within the rank's view*; the
    physical ordinal is the mask value.
    """
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    if num_ranks > node.num_gpus:
        raise ValueError(
            f"{num_ranks} ranks > {node.num_gpus} GPUs on {node.name}: "
            "the paper assumes 1 GPU per MPI local rank"
        )
    if method is DeviceBindingMethod.SET_DEVICE_NUM:
        devices = tuple(range(num_ranks))
    else:
        script = script or LaunchScript()
        devices = []
        for local_rank in range(num_ranks):
            mask = script.visible_devices_for(local_rank)
            visible = node.visible_devices(mask)
            if len(visible) != 1:
                raise RuntimeError(
                    f"launch.sh mask {mask!r} exposed {len(visible)} devices, expected 1"
                )
            # The rank's device 0 is the masked physical device.
            devices.append(visible[0].device_id)
        devices = tuple(devices)
    return DeviceBinding(method=method, devices=devices)


def devices_for_binding(node: GpuNode, binding: DeviceBinding) -> list[GpuDevice]:
    """Materialize the bound GpuDevice objects, one per rank."""
    return [node.device(d) for d in binding.devices]
