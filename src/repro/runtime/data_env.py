"""Data environments: manual OpenACC-style data management vs unified memory.

In MANUAL mode (Codes 1, 2, 6) arrays are placed on the device once with
``enter_data`` (the OpenACC ``enter data create/copyin`` directives) and stay
resident; explicit ``update`` directives cost PCIe transfers; MPI can pass
device pointers (CUDA-aware -> NVLink peer-to-peer).

In UNIFIED mode (Codes 3, 4, 5) arrays are managed: first GPU touch after a
host touch faults pages in over PCIe, and every host-side access (the MPI
library touching send/recv buffers) faults them back. This asymmetry is the
entire Fig. 3/4 story.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.machine.memory import AllocationError, DeviceMemory, Residency
from repro.machine.spec import LinkSpec
from repro.machine.unified_memory import UnifiedMemoryManager
from repro.runtime.clock import TimeCategory
from repro.runtime.kernel import KernelSpec


class DataMode(enum.Enum):
    """How a rank's arrays are kept coherent with its GPU."""

    MANUAL = "manual"
    UNIFIED = "unified"
    CPU = "cpu"


@dataclass(slots=True)
class LogicalArray:
    """A named array as the cost model sees it.

    ``nominal_bytes`` is the paper-scale footprint used for costing;
    ``data`` is the (usually much smaller) numpy array the numerics run on.
    """

    name: str
    nominal_bytes: int
    data: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.nominal_bytes < 0:
            raise ValueError("nominal_bytes cannot be negative")


@dataclass(slots=True)
class Charge:
    """One cost item to apply to the rank clock."""

    seconds: float
    category: TimeCategory
    label: str = ""


class DataEnvironment:
    """Per-rank registry of logical arrays plus residency semantics."""

    def __init__(
        self,
        mode: DataMode,
        *,
        device_memory: DeviceMemory | None = None,
        host_link: LinkSpec | None = None,
        um: UnifiedMemoryManager | None = None,
    ) -> None:
        self.mode = mode
        if mode is not DataMode.CPU:
            if device_memory is None or host_link is None:
                raise ValueError("GPU data environments need device memory and a host link")
        self.device_memory = device_memory
        self.host_link = host_link
        if mode is DataMode.UNIFIED:
            if um is None:
                if host_link is None:
                    raise ValueError("unified mode needs a host link")
                um = UnifiedMemoryManager(host_link=host_link)
            self.um = um
        else:
            self.um = None
        self._arrays: dict[str, LogicalArray] = {}
        self._present: set[str] = set()

    # -- registration -----------------------------------------------------

    def register(self, name: str, nominal_bytes: int, data: np.ndarray | None = None) -> LogicalArray:
        """Declare a logical array. UM-managed arrays start host-resident."""
        if name in self._arrays:
            raise ValueError(f"array {name!r} already registered")
        arr = LogicalArray(name, int(nominal_bytes), data)
        self._arrays[name] = arr
        if self.mode is DataMode.UNIFIED:
            assert self.um is not None
            self.um.register(name, residency=Residency.HOST)
            # managed allocations still consume device capacity when resident;
            # we account capacity at registration like cudaMallocManaged does
            # not, but oversubscription is out of scope for the 36M case.
        return arr

    def unregister(self, name: str) -> None:
        """Remove a logical array (and its device residency)."""
        self._arrays.pop(name)
        if self.mode is DataMode.UNIFIED:
            assert self.um is not None
            self.um.unregister(name)
        elif name in self._present:
            self._present.discard(name)
            assert self.device_memory is not None
            if name in self.device_memory:
                self.device_memory.deallocate(name)

    def array(self, name: str) -> LogicalArray:
        """Look up a registered array."""
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(f"array {name!r} not registered in data environment") from None

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def names(self) -> tuple[str, ...]:
        """All registered array names."""
        return tuple(self._arrays)

    def nominal_bytes(self, name: str) -> int:
        """Paper-scale byte size of one array."""
        return self.array(name).nominal_bytes

    # -- manual data directives (OpenACC enter/exit/update) ---------------

    def enter_data(self, name: str) -> list[Charge]:
        """``!$acc enter data copyin``: allocate + H2D copy."""
        self._require_manual("enter_data")
        arr = self.array(name)
        assert self.device_memory is not None and self.host_link is not None
        if name in self._present:
            raise AllocationError(f"array {name!r} already present on device")
        self.device_memory.allocate(name, arr.nominal_bytes)
        self._present.add(name)
        return [
            Charge(
                self.host_link.transfer_time(arr.nominal_bytes),
                TimeCategory.H2D,
                f"enter_data({name})",
            )
        ]

    def exit_data(self, name: str, *, copyout: bool = False) -> list[Charge]:
        """``!$acc exit data delete`` (or ``copyout``)."""
        self._require_manual("exit_data")
        arr = self.array(name)
        assert self.device_memory is not None and self.host_link is not None
        if name not in self._present:
            raise AllocationError(f"array {name!r} not present on device")
        self.device_memory.deallocate(name)
        self._present.discard(name)
        if copyout:
            return [
                Charge(
                    self.host_link.transfer_time(arr.nominal_bytes),
                    TimeCategory.D2H,
                    f"exit_data({name})",
                )
            ]
        return []

    def update_host(self, name: str, fraction: float = 1.0) -> list[Charge]:
        """``!$acc update host``: D2H copy of a fraction of the array."""
        self._require_manual("update_host")
        nbytes = self._fraction_bytes(name, fraction)
        assert self.host_link is not None
        return [Charge(self.host_link.transfer_time(nbytes), TimeCategory.D2H, f"update_host({name})")]

    def update_device(self, name: str, fraction: float = 1.0) -> list[Charge]:
        """``!$acc update device``: H2D copy of a fraction of the array."""
        self._require_manual("update_device")
        nbytes = self._fraction_bytes(name, fraction)
        assert self.host_link is not None
        return [Charge(self.host_link.transfer_time(nbytes), TimeCategory.H2D, f"update_device({name})")]

    def is_present(self, name: str) -> bool:
        """OpenACC ``present(name)`` check (manual mode only)."""
        return name in self._present

    def _require_manual(self, what: str) -> None:
        if self.mode is not DataMode.MANUAL:
            raise RuntimeError(f"{what} is a manual-data directive; mode is {self.mode.value}")

    def _fraction_bytes(self, name: str, fraction: float) -> float:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        return self.array(name).nominal_bytes * fraction

    # -- kernel / host access semantics ------------------------------------

    def prepare_kernel(self, spec: KernelSpec) -> list[Charge]:
        """Residency cost of launching ``spec`` on the device.

        MANUAL: every touched array must be present (``default(present)``
        semantics, SIV-C) -- missing arrays are a programming error, exactly
        the failure mode the paper keeps ``default(present)`` to catch.
        UNIFIED: host-resident pages fault in over PCIe.
        CPU: free.
        """
        if self.mode is DataMode.CPU:
            return []
        if self.mode is DataMode.MANUAL:
            missing = [a for a in spec.arrays if a not in self._present]
            if missing:
                raise AllocationError(
                    f"kernel {spec.name!r} touched arrays not present on device: {missing}"
                )
            return []
        assert self.um is not None
        charges: list[Charge] = []
        for name in spec.arrays:
            nbytes = int(self.array(name).nominal_bytes * spec.work_fraction)
            dt = self.um.touch_device(name, nbytes)
            if dt > 0:
                charges.append(Charge(dt, TimeCategory.UM_FAULT, f"fault_in({name})"))
        return charges

    def host_access(self, name: str, nbytes: float | None = None) -> list[Charge]:
        """Host-side touch of an array (MPI library, setup code).

        MANUAL mode: free for MPI (CUDA-aware MPI reads device buffers) --
        explicit ``update_host`` is the paid path. UNIFIED: pages migrate
        device->host.
        """
        if self.mode is not DataMode.UNIFIED:
            return []
        assert self.um is not None
        arr = self.array(name)
        n = int(arr.nominal_bytes if nbytes is None else nbytes)
        dt = self.um.touch_host(name, n)
        if dt > 0:
            return [Charge(dt, TimeCategory.UM_FAULT, f"fault_out({name})")]
        return []
