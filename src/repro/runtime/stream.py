"""Asynchronous launch-queue model.

OpenACC's ``async`` clause lets the host enqueue kernels and keep going;
``do concurrent`` has no such hint (SIV-B), so every DC kernel launch is a
synchronous host round-trip. :class:`AsyncQueue` models both with a
two-timeline (host/device) simulation, which is where the paper's
"loss of asynchronous kernels" cost comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(slots=True)
class QueueResult:
    """Outcome of simulating a launch sequence."""

    total_time: float     # wall time from first submit to last completion
    body_time: float      # device busy time
    gap_time: float       # wall time the device sat idle (launch overhead)

    def __post_init__(self) -> None:
        if min(self.total_time, self.body_time, self.gap_time) < 0:
            raise ValueError("times cannot be negative")


@dataclass(frozen=True, slots=True)
class AsyncQueue:
    """Host/device two-timeline launch simulator.

    ``submit_overhead`` is the host cost of one kernel enqueue;
    ``completion_latency`` is the host-visible latency of synchronizing with
    a finished kernel (driver round trip).
    """

    submit_overhead: float = 2.0e-6
    completion_latency: float = 4.0e-6

    def __post_init__(self) -> None:
        if self.submit_overhead < 0 or self.completion_latency < 0:
            raise ValueError("overheads cannot be negative")

    def simulate(self, body_times: Sequence[float], *, async_launch: bool) -> QueueResult:
        """Wall time of launching ``body_times`` kernels back to back.

        Synchronous: host submits, waits for completion, repeats -- each
        kernel pays full submit+completion overhead.

        Asynchronous: host submits all kernels immediately; the device
        pipeline hides all but the first submit and last completion as long
        as kernels are longer than the submit overhead.
        """
        if any(b < 0 for b in body_times):
            raise ValueError("kernel body times cannot be negative")
        if not body_times:
            return QueueResult(0.0, 0.0, 0.0)
        body_total = float(sum(body_times))
        if not async_launch:
            total = sum(self.submit_overhead + b + self.completion_latency for b in body_times)
            return QueueResult(total, body_total, total - body_total)
        host = 0.0
        device_free = 0.0
        for b in body_times:
            host += self.submit_overhead
            start = max(host, device_free)
            device_free = start + b
        total = max(host, device_free) + self.completion_latency
        return QueueResult(total, body_total, total - body_total)
