"""OpenACC kernel-fusion planner.

Inside one ``!$acc parallel`` region, data-independent loops can be compiled
into a single GPU kernel ("kernel fusion", SIV-B). Converting such loops to
``do concurrent`` forces one kernel per loop ("kernel fission"), multiplying
launch overheads. The dependence analysis itself lives in the shared core
(:mod:`repro.analysis.dependence`); loops fuse greedily until a data
dependence (RAW/WAR/WAW on logical arrays) or a category change stops the
group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.dependence import depends, hazards_between
from repro.runtime.kernel import KernelSpec


@dataclass(frozen=True, slots=True)
class FusionGroup:
    """A maximal fusable run of kernels, launched as one GPU kernel."""

    kernels: tuple[KernelSpec, ...]

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("a fusion group cannot be empty")

    @property
    def size(self) -> int:
        """Number of source loops fused into this launch."""
        return len(self.kernels)

    @property
    def name(self) -> str:
        """Display name: first kernel, annotated when fused."""
        if self.size == 1:
            return self.kernels[0].name
        return f"{self.kernels[0].name}+{self.size - 1}"


def plan_fusion(kernels: Sequence[KernelSpec], *, enabled: bool) -> list[FusionGroup]:
    """Partition a region's kernels into launch groups.

    With fusion disabled (or for a DC backend) every kernel is its own
    group. With fusion enabled, consecutive kernels join the current group
    unless they depend on *any* kernel already in it.
    """
    if not enabled:
        return [FusionGroup((k,)) for k in kernels]
    groups: list[FusionGroup] = []
    current: list[KernelSpec] = []
    for k in kernels:
        if current and any(
            depends(prev.reads, prev.writes, k.reads, k.writes)
            for prev in current
        ):
            groups.append(FusionGroup(tuple(current)))
            current = [k]
        else:
            current.append(k)
    if current:
        groups.append(FusionGroup(tuple(current)))
    return groups


def plan_fusion_window(
    kernels: Sequence[KernelSpec], *, enabled: bool
) -> list[FusionGroup]:
    """Cross-region fusion plan for a window between synchronization points.

    Unlike :func:`plan_fusion` (which only merges *consecutive* kernels,
    matching what one ``!$acc parallel`` region can express), the window
    planner may hoist a kernel backwards past groups it is independent of:
    a kernel joins the earliest group such that it carries no hazard with
    any kernel in that group *or any later group*. Because name-based
    hazard sets are symmetric, that one-direction check is sufficient for
    both fusion legality and order preservation. Bodies are unaffected --
    they already ran eagerly at dispatch; only launch cost is re-planned.
    """
    if not enabled:
        return [FusionGroup((k,)) for k in kernels]
    groups: list[list[KernelSpec]] = []
    for k in kernels:
        placed: int | None = None
        for i in range(len(groups) - 1, -1, -1):
            if any(
                depends(prev.reads, prev.writes, k.reads, k.writes)
                for prev in groups[i]
            ):
                break
            placed = i
        if placed is None:
            groups.append([k])
        else:
            groups[placed].append(k)
    return [FusionGroup(tuple(g)) for g in groups]


def validate_plan(
    original: Sequence[KernelSpec], groups: Sequence[FusionGroup]
) -> list[str]:
    """Check a fusion plan against the shared dependence core.

    Returns human-readable violations (empty list = valid plan):

    * every original kernel appears in the plan exactly once;
    * no group fuses two kernels with a RAW/WAR/WAW hazard between them;
    * every hazard-ordered pair of the original sequence stays ordered
      (the earlier kernel's group launches strictly before the later's).
    """
    violations: list[str] = []
    group_of: dict[int, int] = {}
    for gi, g in enumerate(groups):
        for k in g.kernels:
            if id(k) in group_of:
                violations.append(f"kernel {k.name!r} appears twice in the plan")
            group_of[id(k)] = gi
    for k in original:
        if id(k) not in group_of:
            violations.append(f"kernel {k.name!r} missing from the plan")
    if len(group_of) != len(original):
        return violations  # membership broken; ordering checks meaningless
    for i, a in enumerate(original):
        for b in original[i + 1:]:
            hz = hazards_between(a.reads, a.writes, b.reads, b.writes)
            if not hz:
                continue
            kinds = "/".join(sorted(h.name for h in hz))
            if group_of[id(a)] == group_of[id(b)]:
                violations.append(
                    f"{kinds} hazard between {a.name!r} and {b.name!r} "
                    "fused into one group"
                )
            elif group_of[id(a)] > group_of[id(b)]:
                violations.append(
                    f"{kinds} hazard: {b.name!r} reordered before {a.name!r}"
                )
    return violations


class FusionPlanner:
    """Stateful region recorder used by the OpenACC engine.

    Kernels submitted inside an open region are buffered; closing the region
    returns the fusion plan. Nested regions are not allowed (OpenACC forbids
    nested parallel regions in MAS's usage).
    """

    def __init__(self, *, enabled: bool) -> None:
        self.enabled = enabled
        self._open = False
        self._buffer: list[KernelSpec] = []

    @property
    def in_region(self) -> bool:
        """True while a parallel region is open."""
        return self._open

    def open_region(self) -> None:
        """Begin buffering kernels for one parallel region."""
        if self._open:
            raise RuntimeError("nested parallel regions are not supported")
        self._open = True
        self._buffer = []

    def submit(self, spec: KernelSpec) -> None:
        """Add a kernel to the open region."""
        if not self._open:
            raise RuntimeError("submit() outside a parallel region")
        self._buffer.append(spec)

    def close_region(self) -> list[FusionGroup]:
        """End the region and return its launch groups."""
        if not self._open:
            raise RuntimeError("close_region() without an open region")
        self._open = False
        plan = plan_fusion(self._buffer, enabled=self.enabled)
        self._buffer = []
        return plan
