"""OpenACC kernel-fusion planner.

Inside one ``!$acc parallel`` region, data-independent loops can be compiled
into a single GPU kernel ("kernel fusion", SIV-B). Converting such loops to
``do concurrent`` forces one kernel per loop ("kernel fission"), multiplying
launch overheads. The dependence analysis itself lives in the shared core
(:mod:`repro.analysis.dependence`); loops fuse greedily until a data
dependence (RAW/WAR/WAW on logical arrays) or a category change stops the
group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.dependence import depends
from repro.runtime.kernel import KernelSpec


@dataclass(frozen=True, slots=True)
class FusionGroup:
    """A maximal fusable run of kernels, launched as one GPU kernel."""

    kernels: tuple[KernelSpec, ...]

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("a fusion group cannot be empty")

    @property
    def size(self) -> int:
        """Number of source loops fused into this launch."""
        return len(self.kernels)

    @property
    def name(self) -> str:
        """Display name: first kernel, annotated when fused."""
        if self.size == 1:
            return self.kernels[0].name
        return f"{self.kernels[0].name}+{self.size - 1}"


def plan_fusion(kernels: Sequence[KernelSpec], *, enabled: bool) -> list[FusionGroup]:
    """Partition a region's kernels into launch groups.

    With fusion disabled (or for a DC backend) every kernel is its own
    group. With fusion enabled, consecutive kernels join the current group
    unless they depend on *any* kernel already in it.
    """
    if not enabled:
        return [FusionGroup((k,)) for k in kernels]
    groups: list[FusionGroup] = []
    current: list[KernelSpec] = []
    for k in kernels:
        if current and any(
            depends(prev.reads, prev.writes, k.reads, k.writes)
            for prev in current
        ):
            groups.append(FusionGroup(tuple(current)))
            current = [k]
        else:
            current.append(k)
    if current:
        groups.append(FusionGroup(tuple(current)))
    return groups


class FusionPlanner:
    """Stateful region recorder used by the OpenACC engine.

    Kernels submitted inside an open region are buffered; closing the region
    returns the fusion plan. Nested regions are not allowed (OpenACC forbids
    nested parallel regions in MAS's usage).
    """

    def __init__(self, *, enabled: bool) -> None:
        self.enabled = enabled
        self._open = False
        self._buffer: list[KernelSpec] = []

    @property
    def in_region(self) -> bool:
        """True while a parallel region is open."""
        return self._open

    def open_region(self) -> None:
        """Begin buffering kernels for one parallel region."""
        if self._open:
            raise RuntimeError("nested parallel regions are not supported")
        self._open = True
        self._buffer = []

    def submit(self, spec: KernelSpec) -> None:
        """Add a kernel to the open region."""
        if not self._open:
            raise RuntimeError("submit() outside a parallel region")
        self._buffer.append(spec)

    def close_region(self) -> list[FusionGroup]:
        """End the region and return its launch groups."""
        if not self._open:
            raise RuntimeError("close_region() without an open region")
        self._open = False
        plan = plan_fusion(self._buffer, enabled=self.enabled)
        self._buffer = []
        return plan
