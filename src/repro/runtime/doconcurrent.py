"""``do concurrent`` execution engine.

DC semantics as nvfortran 22.11 maps them (SIV-B/D/E):

* one device kernel per DC loop -- converting a fused OpenACC region to DC
  *fissions* it (each loop pays its own launch);
* no ``async`` clause exists -- every launch is a synchronous host round
  trip;
* Fortran 2018 DC has no ``reduce``; scalar reductions need the Fortran
  202X preview (`dc2x_reduce=True`);
* array reductions are either ``!$acc atomic`` inside the DC body
  (Listing 4, Code 4) or the flipped outer-DC/inner-serial-reduce rewrite
  (Listing 5, Code 5/6) -- the strategy is picked by the config and the
  cost model charges the appropriate penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.machine.gpu import GpuDevice
from repro.runtime.clock import SimClock, TimeCategory
from repro.runtime.config import ArrayReductionStrategy
from repro.runtime.cost import KernelCostModel
from repro.runtime.data_env import DataEnvironment, DataMode
from repro.runtime.kernel import KernelSpec, LoopCategory
from repro.runtime.openacc import LaunchStats, observe_kernel
from repro.runtime.stream import AsyncQueue


class UnsupportedLoopError(RuntimeError):
    """A loop shape the DC backend cannot compile.

    Mirrors nvfortran's real restrictions: Fortran-2018 DC rejects
    reductions (no ``reduce`` clause before 202X) and routine calls are
    only supported when inlined.
    """


@dataclass(slots=True)
class DoConcurrentEngine:
    """Executes kernels with DC launch semantics (fission, synchronous)."""

    clock: SimClock
    env: DataEnvironment
    gpu: GpuDevice
    cost: KernelCostModel
    queue: AsyncQueue
    #: Fortran 202X preview features (-stdpar with the reduce clause).
    dc2x_reduce: bool = False
    #: Pure routines callable in DC bodies only after inlining (-Minline).
    routines_inlined: bool = False
    array_reduction: ArrayReductionStrategy = ArrayReductionStrategy.DC_ATOMIC
    working_set_bytes: float | None = None
    stats: LaunchStats = field(default_factory=LaunchStats)

    @property
    def unified_memory(self) -> bool:
        """Whether the data environment is UM-managed."""
        return self.env.mode is DataMode.UNIFIED

    def _check_supported(self, spec: KernelSpec) -> None:
        if spec.category is LoopCategory.SCALAR_REDUCTION and not self.dc2x_reduce:
            raise UnsupportedLoopError(
                f"scalar reduction {spec.name!r} needs the Fortran 202X reduce "
                "clause (dc2x_reduce=False keeps it on OpenACC, as in Code 2/3)"
            )
        if spec.category is LoopCategory.ARRAY_REDUCTION:
            if not self.dc2x_reduce and self.array_reduction is not ArrayReductionStrategy.ACC_ATOMIC:
                raise UnsupportedLoopError(
                    f"array reduction {spec.name!r}: DC array reductions need either "
                    "acc atomic inside DC (202X compilers) or the flipped rewrite"
                )
        if spec.category is LoopCategory.ROUTINE_CALLER and not self.routines_inlined:
            raise UnsupportedLoopError(
                f"loop {spec.name!r} calls a pure routine; nvfortran requires "
                "!$acc routine (OpenACC) or -Minline inlining for DC offload"
            )
        if spec.category is LoopCategory.KERNELS_REGION:
            raise UnsupportedLoopError(
                f"kernels region {spec.name!r} has no DC equivalent until its "
                "intrinsics are expanded into explicit DC loops (Code 5 rewrite)"
            )

    def execute(self, spec: KernelSpec) -> Any:
        """Run one DC loop: synchronous launch, one kernel, run body."""
        self._check_supported(spec)
        for c in self.env.prepare_kernel(spec):
            category = c.category
            if category is TimeCategory.UM_FAULT and "mpi_pack" in spec.tags:
                # buffer loading/unloading counts as MPI time (Fig. 3)
                category = TimeCategory.MPI_TRANSFER
            self.clock.advance(c.seconds, category, c.label)
        body = self.cost.body_time(
            spec,
            self.env,
            self.gpu,
            working_set_bytes=self.working_set_bytes,
            array_reduction=self.array_reduction,
            unified_memory=self.unified_memory,
        )
        observe_kernel(spec, body, self.cost, self.env)
        q = self.queue.simulate([body], async_launch=False)
        gap = q.gap_time + (self.cost.um_launch_extra if self.unified_memory else 0.0)
        category = (
            TimeCategory.MPI_PACK if "mpi_pack" in spec.tags else TimeCategory.COMPUTE
        )
        self.clock.advance(gap, TimeCategory.LAUNCH, f"launch({spec.name})")
        self.clock.advance(q.body_time, category, spec.name)
        self.stats.kernels += 1
        self.stats.launches += 1
        return spec.run_body()

    def execute_sequence(self, specs: list[KernelSpec]) -> list[Any]:
        """Run a fissioned sequence (what was one OpenACC region)."""
        return [self.execute(s) for s in specs]
