"""Simulated clock with time-category accounting.

Each simulated MPI rank owns one :class:`SimClock`. Every cost the machine
model produces is charged to a :class:`TimeCategory`; Fig. 3's split is then
simply ``mpi = sum(categories in MPI_CATEGORIES)`` vs everything else.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable


class TimeCategory(enum.Enum):
    """What a slice of simulated wall-clock time was spent on."""

    COMPUTE = "compute"            # kernel bodies doing physics
    LAUNCH = "launch"              # kernel launch gaps / host round-trips
    UM_FAULT = "um_fault"          # unified-memory page migration
    H2D = "h2d"                    # explicit host-to-device copies
    D2H = "d2h"                    # explicit device-to-host copies
    MPI_PACK = "mpi_pack"          # halo buffer load/unload kernels
    MPI_TRANSFER = "mpi_transfer"  # wire/NVLink/PCIe time of MPI messages
    MPI_WAIT = "mpi_wait"          # load-imbalance wait at exchanges
    HOST = "host"                  # host-side serial work (setup etc.)


#: Categories the paper's Fig. 3 counts as "MPI time": "all MPI calls,
#: buffer initialization/loading/unloading, and MPI waiting caused by load
#: imbalance".
MPI_CATEGORIES = frozenset(
    {TimeCategory.MPI_PACK, TimeCategory.MPI_TRANSFER, TimeCategory.MPI_WAIT}
)


@dataclass(slots=True)
class SimClock:
    """Monotonic simulated time with per-category totals.

    ``on_advance`` observers receive ``(start, duration, category, label)``
    for every advance; the profiler registers one to build Fig. 4 timelines.
    """

    now: float = 0.0
    by_category: dict[TimeCategory, float] = field(default_factory=dict)
    _observers: list[Callable[[float, float, TimeCategory, str], None]] = field(
        default_factory=list
    )

    def advance(self, dt: float, category: TimeCategory, label: str = "") -> float:
        """Advance time by ``dt`` seconds charged to ``category``."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative time {dt}")
        start = self.now
        self.now += dt
        self.by_category[category] = self.by_category.get(category, 0.0) + dt
        for obs in self._observers:
            obs(start, dt, category, label)
        return self.now

    def wait_until(self, t: float, category: TimeCategory = TimeCategory.MPI_WAIT,
                   label: str = "") -> float:
        """Advance to absolute time ``t`` (no-op if already past it)."""
        if t > self.now:
            self.advance(t - self.now, category, label)
        return self.now

    def subscribe(self, observer: Callable[[float, float, TimeCategory, str], None]) -> None:
        """Register an observer of every advance (e.g. the profiler)."""
        self._observers.append(observer)

    def unsubscribe(
        self, observer: Callable[[float, float, TimeCategory, str], None]
    ) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    @property
    def observer_count(self) -> int:
        """Number of registered observers (leak checks in tests)."""
        return len(self._observers)

    def total(self, categories: frozenset[TimeCategory] | None = None) -> float:
        """Total time, optionally restricted to a category set."""
        if categories is None:
            return self.now
        return sum(self.by_category.get(c, 0.0) for c in categories)

    @property
    def mpi_time(self) -> float:
        """Fig. 3's maroon bar: pack + transfer + wait."""
        return self.total(MPI_CATEGORIES)

    @property
    def non_mpi_time(self) -> float:
        """Fig. 3's green bar: wall minus MPI."""
        return self.now - self.mpi_time

    def snapshot(self) -> dict[str, float]:
        """Category totals keyed by category value (for reports)."""
        return {c.value: t for c, t in sorted(self.by_category.items(), key=lambda kv: kv[0].value)}
