"""Kernel cost model: bytes -> seconds on a given GPU.

MAS is memory-bound (paper SIII), so the device time of a kernel body is its
memory traffic over the sustained bandwidth, degraded by strategy-specific
penalties (atomics serialize HBM update traffic; the flipped DC array
reduction serializes the inner loop; SIV-D/E).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dependence import base_name
from repro.machine.gpu import GpuDevice
from repro.runtime.config import ArrayReductionStrategy
from repro.runtime.data_env import DataEnvironment
from repro.runtime.kernel import KernelSpec, LoopCategory


@dataclass(frozen=True, slots=True)
class KernelCostModel:
    """Tunable constants of the kernel-time model.

    Provenance of defaults is documented in `repro.perf.calibration`, which
    is the single place experiments construct these from.
    """

    #: Bandwidth efficiency multiplier for atomic-update array reductions.
    atomic_penalty: float = 0.80
    #: Bandwidth efficiency multiplier for the flipped outer-DC reduction
    #: (inner loop serialized by nvfortran; close to full speed for the
    #: long-outer-loop shapes MAS has).
    flipped_penalty: float = 0.90
    #: Bandwidth efficiency multiplier for kernels regions (array syntax /
    #: intrinsics; the compiler does a decent job, mild penalty).
    kernels_region_penalty: float = 0.95
    #: Extra per-launch host overhead when unified memory is active
    #: (driver residency bookkeeping; visible as larger gaps in Fig. 4).
    um_launch_extra: float = 10.0e-6
    #: Bandwidth efficiency multiplier applied to kernel bodies under UM
    #: (page-table pressure; the paper observes non-MPI time rising only
    #: modestly under UM, Fig. 3).
    um_body_efficiency: float = 0.94
    #: Per-rank multiplicative jitter on kernel bodies (>=1), modelling the
    #: load imbalance that produces MPI wait time at exchanges. Rank 0 of a
    #: job gets 1.0; others get small deterministic offsets.
    body_scale: float = 1.0
    #: Memory-pressure coefficient on MPI buffer kernels: when the device
    #: is nearly full (the paper's 36M-cell case "fits" a 40GB A100), halo
    #: buffer loading slows by 1 + coeff * (working_set/mem)^2. This is why
    #: the manual codes' MPI *share* falls from 14% at 1 GPU to ~9% at 8
    #: in Fig. 3. Calibrated in repro.perf.calibration.
    mpi_buffer_pressure: float = 0.0

    def __post_init__(self) -> None:
        for name in ("atomic_penalty", "flipped_penalty", "kernels_region_penalty",
                     "um_body_efficiency"):
            v = getattr(self, name)
            if not 0 < v <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {v}")
        if self.um_launch_extra < 0:
            raise ValueError("um_launch_extra cannot be negative")
        if self.body_scale < 1.0:
            raise ValueError("body_scale models imbalance overhead and must be >= 1")
        if self.mpi_buffer_pressure < 0:
            raise ValueError("mpi_buffer_pressure cannot be negative")

    def bytes_moved(self, spec: KernelSpec, env: DataEnvironment) -> float:
        """Paper-scale HBM traffic of one kernel."""
        if spec.bytes_override is not None:
            return spec.bytes_override * spec.work_fraction
        total = 0.0
        for name in spec.reads:
            total += env.nominal_bytes(base_name(name))
        for name in spec.writes:
            total += env.nominal_bytes(base_name(name))
        return total * spec.work_fraction

    def strategy_efficiency(
        self,
        spec: KernelSpec,
        *,
        array_reduction: ArrayReductionStrategy,
        unified_memory: bool,
    ) -> float:
        """Combined bandwidth-efficiency multiplier for this kernel."""
        eff = 1.0
        if spec.category is LoopCategory.ARRAY_REDUCTION:
            if array_reduction is ArrayReductionStrategy.FLIPPED_DC:
                eff *= self.flipped_penalty
            else:
                eff *= self.atomic_penalty
        elif spec.category is LoopCategory.ATOMIC_OTHER:
            eff *= self.atomic_penalty
        elif spec.category is LoopCategory.KERNELS_REGION:
            eff *= self.kernels_region_penalty
        if unified_memory:
            eff *= self.um_body_efficiency
        return eff

    def body_time(
        self,
        spec: KernelSpec,
        env: DataEnvironment,
        gpu: GpuDevice,
        *,
        working_set_bytes: float | None,
        array_reduction: ArrayReductionStrategy,
        unified_memory: bool,
    ) -> float:
        """Device-busy time of the kernel body (no launch overhead)."""
        nbytes = self.bytes_moved(spec, env)
        eff = self.strategy_efficiency(
            spec, array_reduction=array_reduction, unified_memory=unified_memory
        )
        base = gpu.kernel_device_time(
            nbytes, nbytes * spec.flops_per_byte, working_set_bytes=working_set_bytes
        )
        scale = self.body_scale
        if (
            self.mpi_buffer_pressure > 0
            and "mpi_pack" in spec.tags
            and working_set_bytes is not None
        ):
            frac = min(working_set_bytes / gpu.spec.mem_bytes, 1.0)
            scale *= 1.0 + self.mpi_buffer_pressure * frac * frac
        return base / eff * scale
