"""Per-rank runtime facade: routes loops to backends per code version.

`repro.mas` is written against this API the way MAS is written against
OpenACC/DC: it declares loops by category (`loop`, `scalar_reduction`,
`array_reduction`, `kernels_region`, `routine_loop`, `atomic_loop`) and
wraps fusable sequences in ``region()``. The active
:class:`~repro.runtime.config.RuntimeConfig` decides what actually happens,
mirroring how the six code versions differ only in directives/flags, not in
physics.

Numerical bodies always execute eagerly at submission, so results are
bit-identical across code versions (the paper validated all versions
against the original "to within solver tolerances"; we validate to
bit-equality). Only *cost* is affected by fusion/async/UM.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.machine.cpu import CpuNodeModel
from repro.machine.gpu import GpuDevice
from repro.obs.telemetry import current as _telemetry
from repro.runtime.clock import SimClock, TimeCategory
from repro.runtime.config import ArrayReductionStrategy, Backend, RuntimeConfig
from repro.runtime.cost import KernelCostModel
from repro.runtime.data_env import DataEnvironment, DataMode
from repro.runtime.doconcurrent import DoConcurrentEngine
from repro.runtime.fusion import FusionGroup, FusionPlanner, plan_fusion_window, validate_plan
from repro.runtime.kernel import KernelSpec, LoopCategory
from repro.runtime.openacc import LaunchStats, OpenAccEngine, observe_kernel
from repro.runtime.stream import AsyncQueue


def _cost_only(spec: KernelSpec) -> KernelSpec:
    """Strip the body so engines account cost without re-running numerics."""
    if spec.body is None:
        return spec
    return KernelSpec(
        name=spec.name,
        category=spec.category,
        reads=spec.reads,
        writes=spec.writes,
        flops_per_byte=spec.flops_per_byte,
        work_fraction=spec.work_fraction,
        bytes_override=spec.bytes_override,
        body=None,
        tags=spec.tags,
    )


class RankRuntime:
    """Everything one simulated MPI rank needs to execute the MHD step."""

    def __init__(
        self,
        config: RuntimeConfig,
        *,
        clock: SimClock | None = None,
        env: DataEnvironment | None = None,
        gpu: GpuDevice | None = None,
        cpu_model: CpuNodeModel | None = None,
        num_ranks: int = 1,
        cost: KernelCostModel | None = None,
        queue: AsyncQueue | None = None,
    ) -> None:
        self.config = config
        self.clock = clock or SimClock()
        self.num_ranks = num_ranks
        self.cost = cost or KernelCostModel()
        self.queue = queue or AsyncQueue()
        if config.target == "cpu":
            if cpu_model is None:
                raise ValueError("CPU configs need a cpu_model")
            self.cpu_model = cpu_model
            self.gpu = None
            self.env = env or DataEnvironment(DataMode.CPU)
        else:
            if gpu is None:
                raise ValueError("GPU configs need a gpu device")
            if env is None:
                raise ValueError("GPU configs need a data environment")
            expected = DataMode.UNIFIED if config.unified_memory else DataMode.MANUAL
            if env.mode is not expected:
                raise ValueError(
                    f"config {config.name!r} expects {expected.value} data mode, "
                    f"environment is {env.mode.value}"
                )
            self.cpu_model = None
            self.gpu = gpu
            self.env = env
        self._working_set = 0.0
        self._acc: OpenAccEngine | None = None
        self._dc: DoConcurrentEngine | None = None
        if self.gpu is not None:
            self._acc = OpenAccEngine(
                clock=self.clock,
                env=self.env,
                gpu=self.gpu,
                cost=self.cost,
                queue=self.queue,
                async_launch=config.async_launch,
                array_reduction=config.array_reduction,
            )
            dc2x = any(
                b is Backend.DC2X for b in config.loop_backend.values()
            )
            self._dc = DoConcurrentEngine(
                clock=self.clock,
                env=self.env,
                gpu=self.gpu,
                cost=self.cost,
                queue=self.queue,
                dc2x_reduce=dc2x,
                routines_inlined=config.inline_routines,
                array_reduction=config.array_reduction,
            )
        self._planner = FusionPlanner(enabled=config.fusion)
        self._cpu_stats = LaunchStats()
        #: Cross-region window: plain/atomic kernels dispatched *outside*
        #: explicit regions buffer here until the next synchronization
        #: point, then launch as one hoisting-fused plan.
        plain_backend = (
            None if config.target == "cpu"
            else config.loop_backend.get(LoopCategory.PLAIN)
        )
        self._cross_region = (
            config.cross_region_fusion
            and config.fusion
            and plain_backend is Backend.ACC
        )
        self._window: list[KernelSpec] = []
        self._window_pack = False
        #: Optional shadow checker (repro.analysis.shadow); None keeps the
        #: dispatch hot path at a single attribute test.
        self._shadow = None

    # -- clocks --------------------------------------------------------------

    def set_clock(self, clock: SimClock) -> None:
        """Retarget all cost charging to ``clock``.

        The overlapped halo engine uses this to run pack/send/unpack cost
        on a detached communication timeline while the main clock keeps
        advancing under interior compute.
        """
        self.clock = clock
        if self._acc is not None:
            self._acc.clock = clock
        if self._dc is not None:
            self._dc.clock = clock

    # -- shadow checker ------------------------------------------------------

    def attach_shadow(self, checker) -> None:
        """Attach a :class:`~repro.analysis.shadow.ShadowChecker`."""
        self._shadow = checker

    def detach_shadow(self) -> None:
        """Remove the shadow checker (restores the no-op hot path)."""
        self._shadow = None

    # -- array registration -------------------------------------------------

    def register_array(self, name: str, nominal_bytes: int, data=None) -> None:
        """Register a logical array and (manual mode) place it on device."""
        self.env.register(name, nominal_bytes, data)
        if self.env.mode is DataMode.MANUAL:
            for c in self.env.enter_data(name):
                self.clock.advance(c.seconds, c.category, c.label)
        self._refresh_working_set()

    def _refresh_working_set(self) -> None:
        self._working_set = float(
            sum(self.env.nominal_bytes(n) for n in self.env.names())
        )
        if self._acc is not None:
            self._acc.working_set_bytes = self._working_set
        if self._dc is not None:
            self._dc.working_set_bytes = self._working_set

    @property
    def working_set_bytes(self) -> float:
        """Total nominal bytes of registered arrays (locality-model input)."""
        return self._working_set

    # -- stats ---------------------------------------------------------------

    @property
    def stats(self) -> LaunchStats:
        """Combined launch counters across both engines."""
        total = LaunchStats()
        if self._acc is not None:
            total.merge(self._acc.stats)
        if self._dc is not None:
            total.merge(self._dc.stats)
        total.merge(self._cpu_stats)
        return total

    # -- regions -------------------------------------------------------------

    def _count_launches(self, groups: list[FusionGroup]) -> None:
        tel = _telemetry()
        if not tel.enabled:
            return
        counter = tel.metrics.counter(
            "kernel_launches_total",
            "kernel launches, by code version and loop category",
            labelnames=("version", "category"),
        )
        for g in groups:
            counter.labels(
                version=self.config.name, category=g.kernels[0].category.value
            ).inc()

    def _count_launch(self, category: LoopCategory) -> None:
        tel = _telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "kernel_launches_total",
                "kernel launches, by code version and loop category",
                labelnames=("version", "category"),
            ).labels(version=self.config.name, category=category.value).inc()

    def _run_groups(self, groups: list[FusionGroup]) -> None:
        if not groups:
            return
        assert self._acc is not None
        self._count_launches(groups)
        self._acc.execute_region(groups)

    @contextmanager
    def region(self) -> Iterator[None]:
        """A fusable sequence of loops (an OpenACC parallel region).

        Transparent for DC backends: each loop inside is its own kernel.
        """
        plain_backend = (
            Backend.CPU if self.config.target == "cpu"
            else self.config.backend_for(LoopCategory.PLAIN)
        )
        if plain_backend is not Backend.ACC:
            yield
            return
        self._flush_window()
        self._planner.open_region()
        try:
            yield
        finally:
            self._run_groups(self._planner.close_region())

    def _flush_region(self) -> None:
        """Execute buffered fusable loops before a non-bufferable op."""
        if self._planner.in_region:
            self._run_groups(self._planner.close_region())
            self._planner.open_region()

    def _flush_window(self) -> None:
        """Launch the buffered cross-region window, if any."""
        if not self._window:
            return
        window, self._window = self._window, []
        groups = plan_fusion_window(window, enabled=True)
        problems = validate_plan(window, groups)
        if problems:  # pragma: no cover - planner bug guard
            raise RuntimeError(
                "cross-region fusion plan violates dependences: "
                + "; ".join(problems)
            )
        self._run_groups(groups)

    def sync(self) -> None:
        """Synchronization point: launch all buffered work on this rank.

        Called by the MPI layer (barriers, collectives, halo exchanges)
        and at step boundaries before reading the clock; everything that
        observes simulated time must drain the cross-region window first.
        """
        self._flush_region()
        self._flush_window()

    # -- loop entry points -----------------------------------------------------

    def loop(self, spec: KernelSpec) -> Any:
        """A plain parallel loop nest (Listing 1/2)."""
        return self._dispatch(spec, LoopCategory.PLAIN)

    def scalar_reduction(self, spec: KernelSpec) -> Any:
        """A loop reducing into a scalar (sum/min/max)."""
        return self._dispatch(spec, LoopCategory.SCALAR_REDUCTION)

    def array_reduction(self, spec: KernelSpec) -> Any:
        """An array-accumulating reduction (Listings 3-5)."""
        return self._dispatch(spec, LoopCategory.ARRAY_REDUCTION)

    def atomic_loop(self, spec: KernelSpec) -> Any:
        """A non-reduction loop with atomic updates."""
        return self._dispatch(spec, LoopCategory.ATOMIC_OTHER)

    def kernels_region(self, spec: KernelSpec) -> Any:
        """An ``!$acc kernels`` region (array syntax / intrinsics).

        When its backend is DC, the region is behaviourally what Code 5 did
        by hand: the intrinsic is expanded into an explicit DC reduction
        loop.
        """
        return self._dispatch(spec, LoopCategory.KERNELS_REGION)

    def routine_loop(self, spec: KernelSpec) -> Any:
        """A loop calling pure routines (needs !$acc routine or inlining)."""
        return self._dispatch(spec, LoopCategory.ROUTINE_CALLER)

    def _dispatch(self, spec: KernelSpec, category: LoopCategory) -> Any:
        if spec.category is not category:
            spec = KernelSpec(
                name=spec.name,
                category=category,
                reads=spec.reads,
                writes=spec.writes,
                flops_per_byte=spec.flops_per_byte,
                work_fraction=spec.work_fraction,
                bytes_override=spec.bytes_override,
                body=spec.body,
                tags=spec.tags,
            )
        if self._shadow is not None:
            self._shadow.on_launch(
                spec, self.env, async_launch=self.config.async_launch
            )
            result = self._shadow.run_body(spec, self.env)
        else:
            result = spec.run_body()
        cost_spec = _cost_only(spec)
        if self.config.target == "cpu":
            self._execute_cpu(cost_spec)
            self._count_launch(category)
            return result
        backend = self.config.backend_for(category)
        if backend is Backend.ACC:
            assert self._acc is not None
            if self._planner.in_region and category in (
                LoopCategory.PLAIN,
                LoopCategory.ATOMIC_OTHER,
            ):
                self._planner.submit(cost_spec)  # counted at region close
            elif self._cross_region and category in (
                LoopCategory.PLAIN,
                LoopCategory.ATOMIC_OTHER,
            ):
                is_pack = "mpi_pack" in cost_spec.tags
                if self._window and self._window_pack is not is_pack:
                    self._flush_window()  # keep MPI_PACK groups homogeneous
                self._window.append(cost_spec)
                self._window_pack = is_pack
            else:
                self._flush_region()
                self._flush_window()
                self._acc.execute_single(cost_spec)
                self._count_launch(category)
        elif backend in (Backend.DC, Backend.DC2X):
            assert self._dc is not None
            self._flush_region()
            self._flush_window()
            self._count_launch(category)
            if category is LoopCategory.KERNELS_REGION:
                # Code 5's rewrite: the intrinsic becomes an explicit DC
                # (reduction) loop with the same data traffic.
                cost_spec = KernelSpec(
                    name=cost_spec.name + "_expanded",
                    category=LoopCategory.SCALAR_REDUCTION,
                    reads=cost_spec.reads,
                    writes=cost_spec.writes,
                    flops_per_byte=cost_spec.flops_per_byte,
                    work_fraction=cost_spec.work_fraction,
                    bytes_override=cost_spec.bytes_override,
                    tags=cost_spec.tags,
                )
            self._dc.execute(cost_spec)
        else:
            raise ValueError(f"backend {backend} cannot run GPU loops")
        return result

    def _execute_cpu(self, spec: KernelSpec) -> None:
        assert self.cpu_model is not None
        if spec.bytes_override is not None:
            nbytes = spec.bytes_override * spec.work_fraction
        else:
            nbytes = self.cost.bytes_moved(spec, self.env)
        # bytes are already rank-local, so only the multi-node locality
        # boost (speedup/n) applies on top of the single-node roofline.
        boost = self.cpu_model.speedup(self.num_ranks) / self.num_ranks
        body = self.cpu_model.kernel_time(nbytes) / boost * self.cost.body_scale
        category = TimeCategory.MPI_PACK if "mpi_pack" in spec.tags else TimeCategory.COMPUTE
        self.clock.advance(body, category, spec.name)
        observe_kernel(spec, body, self.cost, self.env)
        self._cpu_stats.kernels += 1
        self._cpu_stats.launches += 1

    # -- manual data directives (used by MPI layer and setup code) -----------

    def update_host(self, name: str, fraction: float = 1.0) -> None:
        """Charge an ``!$acc update host`` transfer."""
        self._flush_window()
        if self._shadow is not None:
            self._shadow.sync()  # update synchronizes outstanding queues
        if self.env.mode is DataMode.MANUAL:
            for c in self.env.update_host(name, fraction):
                self.clock.advance(c.seconds, c.category, c.label)

    def update_device(self, name: str, fraction: float = 1.0) -> None:
        """Charge an ``!$acc update device`` transfer."""
        self._flush_window()
        if self._shadow is not None:
            self._shadow.sync()
        if self.env.mode is DataMode.MANUAL:
            for c in self.env.update_device(name, fraction):
                self.clock.advance(c.seconds, c.category, c.label)

    def host_access(self, name: str, nbytes: float | None = None,
                    category: TimeCategory = TimeCategory.UM_FAULT) -> None:
        """Host-side touch (MPI library or setup code) with UM migration."""
        self._flush_window()
        if self._shadow is not None:
            self._shadow.sync()
        for c in self.env.host_access(name, nbytes):
            self.clock.advance(c.seconds, category, c.label)
