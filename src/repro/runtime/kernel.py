"""Kernel abstraction shared by both runtime engines.

A :class:`KernelSpec` describes one GPU kernel: what it reads/writes (named
logical arrays with *nominal* byte sizes for the cost model) and an optional
numpy ``body`` that performs the real computation on the (possibly smaller)
actual arrays. The cost model sees paper-scale bytes; the numerics run at
test scale. See DESIGN.md S5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class LoopCategory(enum.Enum):
    """The loop taxonomy of SIV: each category ports differently."""

    PLAIN = "plain"                          # ordinary parallel loop nest
    SCALAR_REDUCTION = "scalar_reduction"    # sum/min/max into a scalar
    ARRAY_REDUCTION = "array_reduction"      # atomic-accumulated array sums
    ATOMIC_OTHER = "atomic_other"            # non-reduction atomics
    KERNELS_REGION = "kernels_region"        # array syntax / intrinsics
    ROUTINE_CALLER = "routine_caller"        # loop calling pure routines


@dataclass(frozen=True, slots=True)
class KernelSpec:
    """Immutable description of one loop nest / kernel.

    ``reads``/``writes`` name logical arrays known to the rank's
    :class:`~repro.runtime.data_env.DataEnvironment`; bytes are derived from
    the environment's nominal sizes unless ``bytes_override`` is given.
    ``work_fraction`` scales array traffic for kernels that touch only a
    slice (e.g. halo packing, boundary loops).
    """

    name: str
    category: LoopCategory = LoopCategory.PLAIN
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    flops_per_byte: float = 0.125
    work_fraction: float = 1.0
    bytes_override: float | None = None
    body: Callable[[], Any] | None = field(default=None, compare=False)
    tags: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("kernel needs a name")
        if not 0.0 < self.work_fraction <= 1.0:
            raise ValueError("work_fraction must be in (0, 1]")
        if self.bytes_override is not None and self.bytes_override < 0:
            raise ValueError("bytes_override cannot be negative")
        if self.flops_per_byte < 0:
            raise ValueError("flops_per_byte cannot be negative")

    @property
    def arrays(self) -> tuple[str, ...]:
        """All logical arrays touched (reads then writes, deduplicated).

        Region qualifiers (``"rho@g2m"``, see
        :mod:`repro.analysis.dependence`) are stripped: data residency and
        nominal sizing are per logical array, not per sub-region.
        """
        from repro.analysis.dependence import base_name

        seen: dict[str, None] = {}
        for a in self.reads + self.writes:
            seen.setdefault(base_name(a))
        return tuple(seen)

    def run_body(self) -> Any:
        """Execute the attached numpy body, if any."""
        if self.body is not None:
            return self.body()
        return None

    def depends_on(self, other: "KernelSpec") -> bool:
        """True if this kernel must run after ``other`` (RAW/WAR/WAW).

        Used by the fusion planner: OpenACC may fuse only data-independent
        loops inside one parallel region. Delegates to the shared
        dependence core (`repro.analysis.dependence`) so the planner, the
        async race detector, and the Fortran lint agree on hazards.
        """
        from repro.analysis.dependence import depends

        return depends(other.reads, other.writes, self.reads, self.writes)

    def with_tags(self, *tags: str) -> "KernelSpec":
        """Copy with extra tags (e.g. 'mpi_pack' for halo buffer loads)."""
        return KernelSpec(
            name=self.name,
            category=self.category,
            reads=self.reads,
            writes=self.writes,
            flops_per_byte=self.flops_per_byte,
            work_fraction=self.work_fraction,
            bytes_override=self.bytes_override,
            body=self.body,
            tags=self.tags | frozenset(tags),
        )
