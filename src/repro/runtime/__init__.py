"""Accelerator programming-model runtimes.

Two executable front-ends over one kernel abstraction reproduce the
mechanism-level differences between OpenACC and Fortran ``do concurrent``
(DC) that the paper identifies (SIV-B):

* :class:`~repro.runtime.openacc.OpenAccEngine` -- parallel regions with
  kernel *fusion*, ``async`` queues, manual data directives, ``atomic``
  array reductions, ``kernels`` regions, ``routine`` support.
* :class:`~repro.runtime.doconcurrent.DoConcurrentEngine` -- one kernel per
  loop (kernel *fission*), synchronous launches only, the Fortran 202X
  ``reduce`` clause, and the flipped outer-DC/inner-reduce array-reduction
  rewrite of Code 5.

A :class:`~repro.runtime.config.RuntimeConfig` (built per code version in
`repro.codes`) routes each loop category to a backend, mirroring Table I.
"""

from repro.runtime.clock import SimClock, TimeCategory
from repro.runtime.kernel import KernelSpec, LoopCategory
from repro.runtime.config import Backend, ArrayReductionStrategy, RuntimeConfig
from repro.runtime.data_env import DataEnvironment, DataMode
from repro.runtime.stream import AsyncQueue
from repro.runtime.fusion import FusionPlanner, plan_fusion
from repro.runtime.openacc import OpenAccEngine
from repro.runtime.doconcurrent import DoConcurrentEngine
from repro.runtime.dispatcher import RankRuntime
from repro.runtime.launch import DeviceBinding, LaunchScript, bind_devices

__all__ = [
    "SimClock",
    "TimeCategory",
    "KernelSpec",
    "LoopCategory",
    "Backend",
    "ArrayReductionStrategy",
    "RuntimeConfig",
    "DataEnvironment",
    "DataMode",
    "AsyncQueue",
    "FusionPlanner",
    "plan_fusion",
    "OpenAccEngine",
    "DoConcurrentEngine",
    "RankRuntime",
    "DeviceBinding",
    "LaunchScript",
    "bind_devices",
]
