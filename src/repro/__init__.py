"""Reproduction of "Acceleration of a production Solar MHD code with
Fortran standard parallelism: From OpenACC to 'do concurrent'"
(Caplan, Stulajter & Linker, IPPS 2023, arXiv:2303.03398).

Subpackage map (see DESIGN.md for the full system inventory):

* :mod:`repro.util` -- tables, ASCII plots, units, seeded RNG.
* :mod:`repro.machine` -- A100/EPYC/node models, unified-memory paging.
* :mod:`repro.runtime` -- OpenACC-style and do-concurrent-style runtimes.
* :mod:`repro.mpi` -- simulated MPI: decomposition, halos, transports.
* :mod:`repro.mas` -- the MAS-analog thermodynamic solar-MHD solver.
* :mod:`repro.fortran` -- mini-Fortran toolchain and porting passes.
* :mod:`repro.codes` -- the six code versions of the paper's Table I.
* :mod:`repro.perf` -- calibration, profiler, breakdowns, scaling.
* :mod:`repro.experiments` -- one driver per table/figure of the paper.

Command line: ``python -m repro --help``.
"""

__version__ = "1.0.0"

#: The paper this repository reproduces.
PAPER = (
    "R. M. Caplan, M. M. Stulajter, J. A. Linker, "
    "'Acceleration of a production Solar MHD code with Fortran standard "
    "parallelism: From OpenACC to do concurrent', IPPS 2023 "
    "(arXiv:2303.03398)"
)
