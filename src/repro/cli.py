"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's artifacts plus utility actions:

* ``table1`` / ``table2`` / ``table3`` / ``fig2`` / ``fig3`` / ``fig4``
  -- regenerate one artifact and print it (optionally ``--csv FILE``);
* ``run`` -- run the MHD model under a chosen code version;
* ``port`` -- run the source-porting pipeline and show per-version counts;
* ``lint`` -- DC-safety analyzer over ported code, fixtures, or a
  shadow-checked runtime smoke test (``docs/ANALYSIS.md``);
* ``telemetry`` -- summarize one telemetry directory, ``--compare`` two,
  or ``--compare --explain`` a wall-time regression;
* ``critpath`` -- cross-rank critical-path attribution and roofline
  speed-of-light for one telemetry directory;
* ``report`` -- regenerate EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.codes import CodeVersion, runtime_config_for, version_info


def _add_csv(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--csv", metavar="FILE", help="also write rows as CSV")


def _add_pcg_options(parser: argparse.ArgumentParser) -> None:
    from repro.mas.pcg import PCG_VARIANTS, PRECONDITIONERS

    parser.add_argument(
        "--pcg",
        default="ca",
        choices=list(PCG_VARIANTS),
        help="PCG solver variant: ca (Chronopoulos-Gear, 1 fused "
        "allreduce/iter, the calibrated default), classic (3 blocking "
        "allreduces/iter, the paper's reference), pipelined "
        "(Ghysels-Vanroose, the fused allreduce overlaps the matvec)",
    )
    parser.add_argument(
        "--precond",
        default="jacobi",
        choices=list(PRECONDITIONERS),
        help="PCG preconditioner: jacobi (diagonal) or cheby (Chebyshev "
        "polynomial, no extra halo exchanges)",
    )


def _add_overlap_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--halo-overlap",
        action="store_true",
        help="overlap halo exchanges with interior compute (split stencils "
        "into interior + boundary-shell passes; needs a code version with "
        "async queues, others degrade to synchronous exchanges)",
    )
    parser.add_argument(
        "--fuse-regions",
        action="store_true",
        help="cross-region launch fusion: collapse adjacent independent "
        "plain-category kernels between synchronization points into single "
        "launches (plan validated against the dependence core)",
    )


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="collect metrics/spans/logs and write a telemetry directory "
        "(manifest, JSONL log, Prometheus metrics, merged Chrome trace)",
    )
    parser.add_argument(
        "--telemetry-stream",
        metavar="N",
        type=int,
        default=0,
        help="stream log records and completed spans to their JSONL files "
        "every N events (killed runs still leave parseable telemetry)",
    )
    parser.add_argument(
        "--telemetry-snapshots",
        metavar="N",
        type=int,
        default=0,
        help="rotate metrics.json snapshots every N model steps (long "
        "streamed runs keep recent counter states on disk as "
        "metrics.json.1..3)",
    )


def _telemetry_session(args: argparse.Namespace):
    """Activate a telemetry session for one CLI command (no-op without
    ``--telemetry``); records the command line in the run manifest."""
    from repro.obs import session

    cli = {
        k: v
        for k, v in vars(args).items()
        if k not in ("fn", "telemetry") and not callable(v)
    }
    return session(
        getattr(args, "telemetry", None),
        flush_every_n=getattr(args, "telemetry_stream", 0),
        snapshot_every_n=getattr(args, "telemetry_snapshots", 0),
        command=args.command,
        cli=cli,
    )


def _write_csv(path: str | None, header: list[str], rows: list[list]) -> None:
    if not path:
        return
    from repro.util.tables import Table

    t = Table(header)
    for r in rows:
        t.add_row(r)
    with open(path, "w") as fh:
        fh.write(t.to_csv() + "\n")
    print(f"wrote {path}")


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import render_table1, run_table1

    rows = run_table1()
    print(render_table1(rows))
    _write_csv(
        args.csv,
        ["version", "total_lines", "paper_total", "acc_lines", "paper_acc"],
        [
            [r.tag, r.total_lines, r.paper_total_lines, r.acc_lines, r.paper_acc_lines or 0]
            for r in rows
        ],
    )
    return 0 if all(r.total_matches and r.acc_matches for r in rows) else 1


def cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments.table2 import PAPER_CENSUS, render_table2, run_table2

    census = run_table2()
    print(render_table2(census))
    _write_csv(
        args.csv,
        ["directive_type", "measured", "paper"],
        [[k.value, v, PAPER_CENSUS[k]] for k, v in census.items()],
    )
    return 0 if census == PAPER_CENSUS else 1


def cmd_table3(args: argparse.Namespace) -> int:
    from repro.experiments.table3 import (
        CPU_VERSIONS,
        NODE_COUNTS,
        render_table3,
        run_table3,
    )

    result = run_table3()
    print(render_table3(result))
    _write_csv(
        args.csv,
        ["nodes", "version", "wall_minutes"],
        [
            [n, v.name, result.value(n, v)]
            for n in NODE_COUNTS
            for v in CPU_VERSIONS
        ],
    )
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments.fig2 import render_fig2, run_fig2
    from repro.perf.scaling import GPU_COUNTS

    with _telemetry_session(args):
        result = run_fig2()
    print(render_fig2(result))
    _write_csv(
        args.csv,
        ["version", "num_gpus", "wall_minutes", "mpi_minutes"],
        [
            [v.name, p.num_gpus, p.wall_minutes, p.mpi_minutes]
            for v, s in result.series.items()
            for p in s.points
        ],
    )
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.experiments.fig3 import GPU_PANELS, render_fig3, run_fig3
    from repro.codes import GPU_VERSIONS
    from repro.perf.calibration import PAPER_CALIBRATION

    calibration = replace(
        PAPER_CALIBRATION,
        pcg_variant=args.pcg,
        pcg_precond=args.precond,
        halo_overlap=args.halo_overlap,
        cross_region_fusion=args.fuse_regions,
    )
    with _telemetry_session(args):
        result = run_fig3(calibration)
    print(render_fig3(result))
    _write_csv(
        args.csv,
        ["num_gpus", "version", "wall_minutes", "mpi_minutes"],
        [
            [n, v.name, result.breakdown(n, v).wall_minutes, result.breakdown(n, v).mpi_minutes]
            for n in GPU_PANELS
            for v in GPU_VERSIONS
        ],
    )
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments.fig4 import render_fig4, run_fig4

    with _telemetry_session(args):
        result = run_fig4()
    print(render_fig4(result))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.mas.model import MasModel, ModelConfig

    version = CodeVersion[args.version]
    rt_cfg = runtime_config_for(version)
    if args.fuse_regions:
        rt_cfg = replace(rt_cfg, cross_region_fusion=True)
    with _telemetry_session(args):
        model = MasModel(
            ModelConfig(
                shape=tuple(args.shape),
                num_ranks=args.ranks,
                pcg_iters=args.pcg_iters,
                pcg_variant=args.pcg,
                pcg_precond=args.precond,
                pcg_tol=args.pcg_tol,
                cheby_degree=args.cheby_degree,
                sts_stages=args.sts_stages,
                halo_overlap=args.halo_overlap,
            ),
            rt_cfg,
        )
        print(f"running {version_info(version).tag}: {version_info(version).description}")
        for i, t in enumerate(model.run(args.steps)):
            print(
                f"step {i:3d}  dt={t.dt:.5f}  wall={t.wall * 1e3:8.2f} ms  "
                f"mpi={t.mpi * 1e3:7.2f} ms  launches={t.launches}"
            )
        d = model.diagnostics()
    print(
        f"done: t={model.time:.4f}, mass={d['mass']:.4f}, "
        f"max|divB|={d['max_divb']:.2e}, max vr={d['max_vr']:.4f}"
    )
    return 0


def _parse_vary(spec: str, members: int) -> tuple[str, tuple[float, ...]]:
    """Parse one ``param=lo:hi[:log]`` sweep axis into per-member values."""
    import numpy as np

    from repro.mas.model import ENSEMBLE_VARY_PARAMS

    name, sep, rng = spec.partition("=")
    if not sep or not rng:
        raise ValueError(f"--vary {spec!r}: expected param=lo:hi[:log]")
    if name not in ENSEMBLE_VARY_PARAMS:
        raise ValueError(
            f"--vary {name!r}: choose from {', '.join(ENSEMBLE_VARY_PARAMS)}"
        )
    parts = rng.split(":")
    log = parts[-1] == "log"
    if log:
        parts = parts[:-1]
    if len(parts) != 2:
        raise ValueError(f"--vary {spec!r}: expected param=lo:hi[:log]")
    lo, hi = float(parts[0]), float(parts[1])
    if log and (lo <= 0 or hi <= 0):
        raise ValueError(f"--vary {spec!r}: log spacing needs positive bounds")
    if members == 1:
        values = np.array([lo])
    elif log:
        values = np.geomspace(lo, hi, members)
    else:
        values = np.linspace(lo, hi, members)
    return name, tuple(float(v) for v in values)


def _render_member_rows(rows: list[dict]) -> str:
    """Per-member convergence table shared by ``sweep`` and the telemetry
    summary."""
    from repro.util.tables import Table

    base = ("member", "sim_time", "dt", "pcg_iterations", "pcg_converged",
            "pcg_breakdown")
    vary_cols = [k for k in rows[0] if k not in base]
    t = Table(["member", *vary_cols, "sim_time", "dt", "pcg_iters",
               "converged", "breakdown"])
    for r in rows:
        t.add_row(
            [
                r["member"],
                *(f"{r[k]:.6g}" for k in vary_cols),
                f"{r['sim_time']:.5f}",
                "-" if r.get("dt") is None else f"{r['dt']:.5f}",
                r["pcg_iterations"],
                r["pcg_converged"],
                "yes" if r["pcg_breakdown"] else "no",
            ]
        )
    return t.render()


def cmd_sweep(args: argparse.Namespace) -> int:
    """Ensemble parameter sweep: B members advanced in one batched model."""
    import json as _json
    from dataclasses import replace
    from pathlib import Path

    from repro.mas.model import MasModel, ModelConfig
    from repro.obs.telemetry import current as _current_telemetry

    version = CodeVersion[args.version]
    rt_cfg = runtime_config_for(version)
    if args.fuse_regions:
        rt_cfg = replace(rt_cfg, cross_region_fusion=True)
    try:
        vary = tuple(_parse_vary(s, args.members) for s in (args.vary or []))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.nominal_shape is not None:
        nominal = tuple(args.nominal_shape)
    else:
        # The paper grid per member would overflow the simulated device at
        # B >= 4; shrink each member's nominal phi extent so the aggregate
        # batch footprint stays at paper scale.
        nr, nt, nphi = ModelConfig.__dataclass_fields__["nominal_shape"].default
        nominal = (nr, nt, max(1, nphi // args.members))
    with _telemetry_session(args):
        model = MasModel(
            ModelConfig(
                shape=tuple(args.shape),
                nominal_shape=nominal,
                num_ranks=args.ranks,
                pcg_iters=args.pcg_iters,
                pcg_variant=args.pcg,
                pcg_precond=args.precond,
                pcg_tol=args.pcg_tol,
                cheby_degree=args.cheby_degree,
                sts_stages=args.sts_stages,
                halo_overlap=args.halo_overlap,
                ensemble_size=args.members,
                ensemble_vary=vary,
            ),
            rt_cfg,
        )
        print(
            f"sweep: {args.members} member(s) under "
            f"{version_info(version).tag}, varying "
            f"{', '.join(n for n, _ in vary) if vary else 'nothing'}"
        )
        for i, t in enumerate(model.run(args.steps)):
            print(
                f"step {i:3d}  dt={t.dt:.5f}  wall={t.wall * 1e3:8.2f} ms  "
                f"mpi={t.mpi * 1e3:7.2f} ms  launches={t.launches}"
            )
        rows = model.ensemble_report()
        tel = _current_telemetry()
        if tel.enabled:
            for row in rows:
                tel.logger.log("sweep_member", **row)
    print()
    print(_render_member_rows(rows))
    manifest = {
        "schema": "repro-sweep/1",
        "members": args.members,
        "vary": {name: list(values) for name, values in vary},
        "version": version.name,
        "ranks": args.ranks,
        "steps": args.steps,
        "shape": list(args.shape),
        "nominal_shape": list(nominal),
        "pcg_variant": args.pcg,
        "pcg_precond": args.precond,
        "member_rows": rows,
    }
    targets = []
    if args.telemetry:
        targets.append(Path(args.telemetry) / "sweep.json")
    if args.manifest:
        targets.append(Path(args.manifest))
    for target in targets:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(_json.dumps(manifest, indent=2) + "\n")
        print(f"wrote {target}")
    return 0


def cmd_port(args: argparse.Namespace) -> int:
    from repro.fortran.codebase import generate_mas_codebase
    from repro.fortran.metrics import measure
    from repro.fortran.pipeline import build_version

    if args.path or args.incremental:
        return _port_external(args)
    if args.to:
        return _port_to(args)
    code1 = generate_mas_codebase()
    print("porting pipeline (Code 1 -> all versions):")
    for v in CodeVersion:
        met = measure(build_version(v, code1=code1))
        print(
            f"  {version_info(v).tag:10s} {met.total_lines:6d} lines  "
            f"{met.acc_lines:5d} !$acc"
        )
    return 0


def _port_external(args: argparse.Namespace) -> int:
    """Incremental per-file port of an external tree (front-end lowered)."""
    from repro.analysis.port import (
        PortTarget,
        port_tree_incremental,
        read_manifest,
        write_ported_tree,
    )
    from repro.fortran.frontend import load_external_tree

    if not args.to:
        print("error: porting an external tree needs --to", file=sys.stderr)
        return 2
    target = PortTarget(args.to)
    with _telemetry_session(args):
        if args.path:
            res = load_external_tree(args.path)
            for d in res.diagnostics:
                print(f"  {d.render()}")
            cb = res.codebase
        else:
            from repro.fortran.codebase import generate_mas_codebase

            cb = generate_mas_codebase()
        prior = read_manifest(args.out) if args.out else {}
        result = port_tree_incremental(cb, target, prior=prior, limit=args.limit)
    print(result.summary())
    for s in sorted(result.statuses, key=lambda s: s.name):
        if s.status != "ported":
            print(f"  {s.status}: {s.name}" + (f" ({s.reason})" if s.reason else ""))
    if args.out:
        write_ported_tree(result, args.out)
        print(f"wrote {args.out}")
    return 0


def _port_to(args: argparse.Namespace) -> int:
    """Analyzer-driven port to one target, optionally verified."""
    from repro.analysis.port import (
        PortRefusedError,
        PortTarget,
        port_codebase,
        verify_port,
    )
    from repro.fortran.codebase import generate_mas_codebase

    target = PortTarget(args.to)
    with _telemetry_session(args):
        code1 = generate_mas_codebase()
        try:
            result = port_codebase(target, code1=code1)
        except PortRefusedError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(result.summary())
        for r in result.refused:
            print(f"  refused: {r.render()}")
        for fname, line in result.dropped_atomics:
            print(f"  dropped atomic (code modification): {fname}:{line}")
        if not args.verify:
            return 0
        report = verify_port(result, code1=code1)
    print(report.render())
    return 0 if report.ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import main as report_main

    report_main(args.output)
    return 0


def cmd_portability(args: argparse.Namespace) -> int:
    from repro.fortran.codebase import generate_mas_codebase
    from repro.fortran.pipeline import build_version
    from repro.fortran.portability import analyze, render_report

    code1 = generate_mas_codebase()
    for v in CodeVersion:
        print(render_report(analyze(build_version(v, code1=code1))))
        print()
    return 0


def cmd_memfit(args: argparse.Namespace) -> int:
    from repro.perf.memory_fit import max_cells_that_fit, paper_case_fits_one_gpu
    from repro.util.units import fmt_bytes

    paper = paper_case_fits_one_gpu()
    print(
        f"paper case {paper.shape} = {paper.total_cells / 1e6:.0f}M cells: "
        f"{fmt_bytes(paper.bytes_per_rank)} per GPU "
        f"({paper.utilization * 100:.0f}% of an A100-40GB) -> fits: {paper.fits}"
    )
    for n in (1, 2, 4, 8):
        e = max_cells_that_fit(n)
        print(
            f"max case on {n} GPU(s): {e.shape} = {e.total_cells / 1e6:.0f}M cells "
            f"({e.utilization * 100:.0f}% of each device)"
        )
    return 0


def cmd_multinode(args: argparse.Namespace) -> int:
    from repro.experiments.multinode import render_multinode, run_multinode

    print(render_multinode(run_multinode()))
    return 0


def cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments.fig1 import render_fig1, run_fig1

    print(render_fig1(run_fig1()))
    return 0


def cmd_tradeoff(args: argparse.Namespace) -> int:
    from repro.experiments.tradeoff import render_tradeoff, run_tradeoff

    print(render_tradeoff(run_tradeoff(args.ranks)))
    return 0


def cmd_categories(args: argparse.Namespace) -> int:
    from repro.perf.categories import measure_categories, render_categories

    with _telemetry_session(args):
        breakdowns = [
            measure_categories(v, args.ranks)
            for v in (CodeVersion.A, CodeVersion.AD, CodeVersion.ADU, CodeVersion.D2XU)
        ]
    print(render_categories(breakdowns))
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.obs.summary import summarize_dir

    try:
        if args.explain and not args.compare:
            print("error: --explain needs --compare A B", file=sys.stderr)
            return 2
        if args.compare:
            a_dir, b_dir = args.compare
            if args.explain:
                from repro.obs.explain import explain_dirs, render_explain

                exp = explain_dirs(a_dir, b_dir)
                print(render_explain(exp, a_name=a_dir, b_name=b_dir))
                return 0
            from repro.obs.compare import (
                compare_metrics,
                load_metrics,
                render_compare,
            )

            deltas = compare_metrics(load_metrics(a_dir), load_metrics(b_dir))
            print(render_compare(deltas, a_name=a_dir, b_name=b_dir))
            return 0
        if args.dir is None:
            print("error: a telemetry DIR (or --compare A B) is required",
                  file=sys.stderr)
            return 2
        print(summarize_dir(args.dir))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_critpath(args: argparse.Namespace) -> int:
    from repro.obs.critpath import analyze_dir, render_result, results_to_json
    from repro.perf.roofline import (
        DEFAULT_SOL_THRESHOLD,
        peaks_from_manifest,
        render_roofline,
        roofline_from_metrics,
    )
    from repro.obs.summary import _read_json
    from repro.obs import telemetry as tmod
    from pathlib import Path

    def _sweep_fallback(reason: str) -> int | None:
        """Sweep telemetry dirs carry aggregate batched-kernel traces that
        have no per-rank critical path; degrade to the per-member summary
        instead of a hard error."""
        import json as _json

        sweep_file = Path(args.dir) / "sweep.json"
        if not sweep_file.exists():
            return None
        sweep = _json.loads(sweep_file.read_text())
        print(f"(sweep telemetry directory: {reason}; "
              "showing per-member convergence instead)")
        rows = sweep.get("member_rows") or []
        if rows:
            print(_render_member_rows(rows))
        return 0

    try:
        results = analyze_dir(args.dir)
    except FileNotFoundError as exc:
        fb = _sweep_fallback(str(exc))
        if fb is not None:
            return fb
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not results:
        fb = _sweep_fallback("trace has no per-rank profiler events")
        if fb is not None:
            return fb
        print("error: trace has no per-rank profiler events to analyze",
              file=sys.stderr)
        return 1
    if args.json:
        import json as _json

        payload = results_to_json(results)
        Path(args.json).write_text(_json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    for result in results.values():
        print(render_result(result, top=args.top))
        print()
    d = Path(args.dir)
    manifest = _read_json(d / tmod.MANIFEST_FILE)
    metrics = _read_json(d / tmod.METRICS_JSON_FILE)
    peaks = peaks_from_manifest(manifest or {})
    if peaks is not None and metrics:
        rows = roofline_from_metrics(metrics, peaks)
        if rows:
            threshold = (
                args.sol_threshold
                if args.sol_threshold is not None
                else DEFAULT_SOL_THRESHOLD
            )
            print(render_roofline(rows, peaks, threshold=threshold))
    else:
        print("(no machine peaks / kernel counters; roofline table skipped)")
    return 0


def _lint_codebases(args: argparse.Namespace) -> list:
    """The ``(codebase, frontend findings, parse census)`` triples one
    ``repro lint`` invocation covers."""
    if getattr(args, "paths", None):
        from repro.fortran.frontend import load_external_tree

        out = []
        for path in args.paths:
            res = load_external_tree(path)
            out.append((res.codebase, res.diagnostics, res.census))
        return out
    if args.fixtures:
        from repro.analysis.fixtures import clean_codebase, seeded_bug_codebase

        cb = (
            seeded_bug_codebase() if args.fixtures == "seeded"
            else clean_codebase()
        )
        return [(cb, [], None)]
    from repro.fortran.codebase import generate_mas_codebase
    from repro.fortran.pipeline import build_version

    code1 = generate_mas_codebase()
    versions = (
        list(CodeVersion) if args.version == "all"
        else [CodeVersion[args.version]]
    )
    return [(build_version(v, code1=code1), [], None) for v in versions]


def _write_fixed_tree(cb, out_dir: str) -> None:
    """Write one lint-fixed codebase under ``out_dir``, inverting the
    front end's opaque degrades so skipped constructs round-trip."""
    from pathlib import Path

    from repro.fortran.frontend.lower import restore_opaque

    base = Path(out_dir)
    base.mkdir(parents=True, exist_ok=True)
    for f in cb.files:
        target = base / f.name
        if not target.resolve().is_relative_to(base.resolve()):
            raise ValueError(f"file name {f.name!r} escapes the tree")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(restore_opaque(ln) for ln in f.lines) + "\n")


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.findings import Severity, max_severity, sort_findings
    from repro.analysis.report import (
        explain_rule,
        findings_to_json,
        findings_to_sarif,
        render_findings,
    )

    if args.explain:
        print(explain_rule(args.explain))
        return 0

    from repro.analysis.fixes import attach_fixes
    from repro.analysis.fortran_lint import analyze_codebase

    with _telemetry_session(args):
        triples = _lint_codebases(args)
        if args.call_graph:
            from repro.analysis.interproc import (
                callgraph_dot,
                callgraph_json,
                summarize,
            )

            for cb, _fe, _census in triples:
                result = summarize(cb)
                if args.call_graph == "dot":
                    print(callgraph_dot(result), end="")
                else:
                    print(callgraph_json(result), end="")
            return 0
        if args.cost:
            from repro.analysis.cost import estimate_cost

            for cb, _fe, census in triples:
                print(estimate_cost(cb, census=census).render())
            return 0
        per_cb = []  # (codebase, findings) pairs, fixes attached
        for cb, fe_findings, _census in triples:
            merged = sort_findings(
                [*analyze_codebase(cb, jobs=args.jobs), *fe_findings]
            )
            per_cb.append(((cb, fe_findings), attach_fixes(cb, merged)))
        findings = [f for _cb, fs in per_cb for f in fs]
        if args.fix:
            from repro.analysis.rewriter import apply_finding_fixes

            findings = []
            for (cb, fe_findings), fs in per_cb:
                rep = apply_finding_fixes(cb, fs)
                print(f"{cb.name}: {rep.summary()}")
                after = attach_fixes(cb, sort_findings(
                    [*analyze_codebase(cb, jobs=args.jobs), *fe_findings]
                ))
                findings.extend(after)
            if args.fix_out:
                for (cb, _fe), _fs in per_cb:
                    _write_fixed_tree(cb, args.fix_out)
                print(f"wrote {args.fix_out}")
        if args.runtime:
            from repro.analysis.fixes import attach_spec_fixes
            from repro.analysis.shadow import shadow_smoke

            rt_version = args.version if args.version != "all" else "A"
            findings.extend(attach_spec_fixes(shadow_smoke(rt_version)))
    if args.format == "json":
        print(findings_to_json(findings))
    elif args.format == "sarif":
        print(findings_to_sarif(findings))
    else:
        print(render_findings(findings))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(findings_to_json(findings) + "\n")
        print(f"wrote {args.json}")
    if args.sarif:
        with open(args.sarif, "w") as fh:
            fh.write(findings_to_sarif(findings) + "\n")
        print(f"wrote {args.sarif}")
    if args.fail_on == "never" or not findings:
        return 0
    threshold = Severity[args.fail_on.upper()]
    worst = max_severity(findings)
    return 1 if worst is not None and worst >= threshold else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the MAS OpenACC -> do concurrent paper",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, doc in (
        ("table1", cmd_table1, "Table I: code-version line counts"),
        ("table2", cmd_table2, "Table II: OpenACC directive census"),
        ("table3", cmd_table3, "Table III: CPU baseline wall clock"),
        ("fig2", cmd_fig2, "Fig. 2: wall clock vs GPU count"),
        ("fig3", cmd_fig3, "Fig. 3: MPI / non-MPI split"),
    ):
        p = sub.add_parser(name, help=doc)
        _add_csv(p)
        if name in ("fig2", "fig3"):
            _add_telemetry(p)
        if name == "fig3":
            _add_pcg_options(p)
            _add_overlap_options(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser("fig4", help="Fig. 4: viscosity-solver timeline")
    _add_telemetry(p)
    p.set_defaults(fn=cmd_fig4)

    p = sub.add_parser("fig1", help="Fig. 1: test-case visualization")
    p.set_defaults(fn=cmd_fig1)

    p = sub.add_parser("categories", help="per-step time by category per version")
    p.add_argument("--ranks", type=int, default=8)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_categories)

    p = sub.add_parser("tradeoff", help="directive count vs performance synthesis")
    p.add_argument("--ranks", type=int, default=8)
    p.set_defaults(fn=cmd_tradeoff)

    p = sub.add_parser("run", help="run the MHD model under one code version")
    p.add_argument("--version", default="A", choices=[v.name for v in CodeVersion])
    p.add_argument("--ranks", type=int, default=1)
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--shape", type=int, nargs=3, default=[12, 10, 20],
                   metavar=("NR", "NT", "NP"))
    p.add_argument("--pcg-iters", type=int, default=5)
    p.add_argument("--pcg-tol", type=float, default=0.0,
                   help="PCG early-exit relative residual (0 = fixed "
                   "iterations, the paper-scale reference semantics)")
    p.add_argument("--cheby-degree", type=int, default=3,
                   help="Chebyshev preconditioner degree (--precond cheby)")
    p.add_argument("--sts-stages", type=int, default=5)
    _add_pcg_options(p)
    _add_overlap_options(p)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "sweep",
        help="ensemble parameter sweep: advance B members in one batched model",
    )
    p.add_argument("--members", type=int, required=True, metavar="N",
                   help="ensemble size B (all members advance in one "
                   "batched kernel stream; launches and halo messages "
                   "amortize ~B-fold)")
    p.add_argument("--vary", action="append", default=[],
                   metavar="PARAM=LO:HI[:log]",
                   help="sweep one parameter linearly (or log-spaced) "
                   "across members; repeatable; params: b0, perturbation, "
                   "viscosity, resistivity")
    p.add_argument("--manifest", metavar="FILE", default=None,
                   help="also write the sweep manifest JSON here (always "
                   "written into the --telemetry dir as sweep.json)")
    p.add_argument("--version", default="A", choices=[v.name for v in CodeVersion])
    p.add_argument("--ranks", type=int, default=1)
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--shape", type=int, nargs=3, default=[12, 10, 20],
                   metavar=("NR", "NT", "NP"))
    p.add_argument("--nominal-shape", type=int, nargs=3, default=None,
                   metavar=("NR", "NT", "NP"),
                   help="per-member nominal (cost-model) grid; defaults to "
                   "the paper grid with its phi extent divided by B so the "
                   "whole batch fits simulated device memory")
    p.add_argument("--pcg-iters", type=int, default=5)
    p.add_argument("--pcg-tol", type=float, default=0.0,
                   help="PCG early-exit relative residual; a converged "
                   "member freezes via mask and never stalls the batch")
    p.add_argument("--cheby-degree", type=int, default=3)
    p.add_argument("--sts-stages", type=int, default=5)
    _add_pcg_options(p)
    _add_overlap_options(p)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("port", help="run the source-porting pipeline")
    p.add_argument("path", nargs="?", default=None,
                   help="external Fortran tree to port incrementally "
                   "(loaded through the tolerant front end); default: the "
                   "vendored repro codebase")
    p.add_argument("--to", default=None,
                   choices=["acc-opt", "dc", "pure-dc"],
                   help="analyzer-driven port to one target: acc-opt (Code "
                   "2), pure-dc (Code 5), dc (Code 6, the production "
                   "endpoint); default: hand-built pipeline summary")
    p.add_argument("--verify", action="store_true",
                   help="differentially verify the port against the "
                   "hand-built version (lint set, census, region kinds)")
    p.add_argument("--incremental", action="store_true",
                   help="per-file porting with a ported/pending/refused "
                   "manifest (external trees are always ported per file; "
                   "combine with --out and --limit)")
    p.add_argument("--out", metavar="DIR", default=None,
                   help="write the ported tree plus port-manifest.json "
                   "here; re-runs read the manifest back for incremental "
                   "progress")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="port at most N not-yet-ported files this run "
                   "(the rest are recorded as pending)")
    _add_telemetry(p)
    p.set_defaults(fn=cmd_port)

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p.add_argument("--output", default=None)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("portability", help="compiler portability per code version")
    p.set_defaults(fn=cmd_portability)

    p = sub.add_parser("memfit", help="largest problem fitting the GPUs (SV-A sizing)")
    p.set_defaults(fn=cmd_memfit)

    p = sub.add_parser("multinode", help="extension: scaling beyond one node")
    p.set_defaults(fn=cmd_multinode)

    p = sub.add_parser("telemetry", help="summarize a telemetry directory")
    p.add_argument("dir", nargs="?", default=None,
                   help="directory written by a --telemetry run")
    p.add_argument("--compare", nargs=2, metavar=("A", "B"), default=None,
                   help="diff the metrics.json of two telemetry directories")
    p.add_argument("--explain", action="store_true",
                   help="with --compare: decompose the wall-time delta "
                   "hierarchically (category -> phase -> kernel -> rank) "
                   "and rank the top contributors")
    p.set_defaults(fn=cmd_telemetry)

    p = sub.add_parser(
        "critpath",
        help="cross-rank critical-path attribution for a telemetry directory",
    )
    p.add_argument("dir", help="directory written by a --telemetry run "
                   "(needs the merged trace.json)")
    p.add_argument("--top", type=int, default=10,
                   help="top critical-path contributors to list (default 10)")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the analysis as JSON")
    p.add_argument("--sol-threshold", type=float, default=None,
                   help="flag kernels below this speed-of-light fraction "
                   "in the roofline table (default 0.5)")
    p.set_defaults(fn=cmd_critpath)

    p = sub.add_parser(
        "lint",
        help="DC-safety analyzer: dependence, directive, and data-region lint",
    )
    p.add_argument("paths", nargs="*", default=[],
                   help="external Fortran trees to lint (lowered through "
                   "the tolerant real-Fortran front end); default: the "
                   "vendored repro code versions")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="lint files in N parallel processes (merged "
                   "finding order and SARIF stay byte-identical to a "
                   "serial run)")
    p.add_argument("--cost", action="store_true",
                   help="print the porting-cost report (regions bucketed "
                   "by safety class, projected post-port census) instead "
                   "of findings")
    p.add_argument("--call-graph", default=None, choices=["dot", "json"],
                   dest="call_graph", metavar="FMT",
                   help="print the interprocedural call graph (dot|json) "
                   "with per-routine purity verdicts instead of findings")
    p.add_argument("--fix-out", metavar="DIR", default=None,
                   help="with --fix: write the fixed tree here (sources "
                   "are never modified in place; whitespace and "
                   "continuations come out normalized)")
    p.add_argument("--version", default="all",
                   choices=["all"] + [v.name for v in CodeVersion],
                   help="lint one ported code version (default: all six)")
    p.add_argument("--fixtures", choices=["seeded", "clean"], default=None,
                   help="lint a fixture corpus instead of the ported code")
    p.add_argument("--runtime", action="store_true",
                   help="also run the shadow-checked model smoke test")
    p.add_argument("--fix", action="store_true",
                   help="apply the machine-generated fixes in place and "
                   "re-lint; prints the apply report per codebase")
    p.add_argument("--explain", metavar="RULE", default=None,
                   help="print the catalog entry for one rule id and exit")
    p.add_argument("--format", default="table",
                   choices=["table", "json", "sarif"],
                   help="stdout format for the findings (default: table)")
    p.add_argument("--json", metavar="FILE", help="write findings as JSON")
    p.add_argument("--sarif", metavar="FILE",
                   help="write findings as SARIF 2.1.0 (CI code-scanning)")
    p.add_argument("--fail-on", default="warning",
                   choices=["note", "warning", "error", "never"],
                   help="exit 1 when any finding is at or above this severity")
    _add_telemetry(p)
    p.set_defaults(fn=cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    fn: Callable[[argparse.Namespace], int] = args.fn
    return fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
