"""Fig. 3: MPI vs non-MPI wall-clock split at 1 and 8 GPUs.

MPI time follows the paper's definition: all MPI calls, buffer
initialization/loading/unloading, and MPI waiting from load imbalance.
The headline mechanisms: manual-data codes' MPI share *falls* with GPU
count (NVLink P2P), UM codes' MPI time stays huge and roughly constant
(page migration through the host on every exchange).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import CodeVersion, GPU_VERSIONS, version_info
from repro.perf.breakdown import RunBreakdown, measure_breakdown
from repro.perf.calibration import Calibration, PAPER_CALIBRATION
from repro.util.ascii_plot import AsciiBarChart
from repro.util.tables import Table

#: Paper bars: (wall, wall - MPI) minutes at 1 and 8 GPUs.
PAPER_BARS = {
    1: {
        CodeVersion.A: (200.9, 171.9),
        CodeVersion.AD: (206.9, 177.8),
        CodeVersion.ADU: (268.9, 227.5),
        CodeVersion.AD2XU: (270.7, 229.5),
        CodeVersion.D2XU: (273.0, 230.9),
        CodeVersion.D2XAD: (213.0, 183.5),
    },
    8: {
        CodeVersion.A: (23.0, 21.0),
        CodeVersion.AD: (25.3, 23.0),
        CodeVersion.ADU: (69.6, 29.7),
        CodeVersion.AD2XU: (74.1, 32.5),
        CodeVersion.D2XU: (67.6, 31.2),
        CodeVersion.D2XAD: (27.4, 23.9),
    },
}

GPU_PANELS = (1, 8)


@dataclass(frozen=True)
class Fig3Result:
    """Breakdown per (gpu count, version)."""

    bars: dict[tuple[int, CodeVersion], RunBreakdown]

    def breakdown(self, num_gpus: int, version: CodeVersion) -> RunBreakdown:
        """One bar."""
        return self.bars[(num_gpus, version)]

    def um_mpi_blowup(self, num_gpus: int) -> float:
        """UM MPI time over manual MPI time (Code 3 vs Code 1)."""
        um = self.breakdown(num_gpus, CodeVersion.ADU).mpi_minutes
        manual = self.breakdown(num_gpus, CodeVersion.A).mpi_minutes
        return um / manual


def run_fig3(calibration: Calibration = PAPER_CALIBRATION) -> Fig3Result:
    """Measure all twelve bars."""
    bars = {}
    for n in GPU_PANELS:
        for v in GPU_VERSIONS:
            bars[(n, v)] = measure_breakdown(v, n, calibration=calibration)
    return Fig3Result(bars)


#: Ablation modes for the overlapped-exchange study (Code 1 only: the
#: original OpenACC version is the one with async queues to overlap on).
OVERLAP_MODES: tuple[tuple[str, dict], ...] = (
    ("sync", {}),
    ("overlap", {"halo_overlap": True}),
    ("overlap+fusion", {"halo_overlap": True, "cross_region_fusion": True}),
)


def run_fig3_overlap_ablation(
    ranks: tuple[int, ...] = (1, 2, 4, 8),
    calibration: Calibration = PAPER_CALIBRATION,
) -> dict[tuple[str, int], RunBreakdown]:
    """Fig. 3's Code-1 bars under the overlap/fusion ablation.

    ``sync`` is the paper's bulk-synchronous exchange; ``overlap`` splits
    every halo-consuming stencil into interior + boundary shell and hides
    the exchange under the interior pass; ``overlap+fusion`` additionally
    collapses independent plain kernels across region boundaries. All
    three produce bit-identical states -- only the cost moves.
    """
    from dataclasses import replace

    out = {}
    for mode, overrides in OVERLAP_MODES:
        cal = replace(calibration, **overrides)
        for n in ranks:
            out[(mode, n)] = measure_breakdown(CodeVersion.A, n, calibration=cal)
    return out


def render_fig3(result: Fig3Result) -> str:
    """Stacked bar charts plus paper-vs-measured table."""
    out = []
    for n in GPU_PANELS:
        chart = AsciiBarChart(
            title=f"Fig. 3 -- run time split on {n} A100 GPU(s)", unit="min"
        )
        for v in GPU_VERSIONS:
            b = result.breakdown(n, v)
            chart.add_group(
                version_info(v).tag,
                [("wall-mpi", b.non_mpi_minutes), ("mpi", b.mpi_minutes)],
            )
        out.append(chart.render())

        t = Table(
            ["Code", "wall-mpi", "(paper)", "mpi", "(paper)", "wall", "(paper)"],
            title=f"{n} GPU(s): measured vs paper (minutes)",
        )
        for v in GPU_VERSIONS:
            b = result.breakdown(n, v)
            pw, pnm = PAPER_BARS[n][v]
            t.add_row(
                [
                    version_info(v).tag,
                    b.non_mpi_minutes,
                    pnm,
                    b.mpi_minutes,
                    pw - pnm,
                    b.wall_minutes,
                    pw,
                ]
            )
        out.append(t.render())
    return "\n\n".join(out)
