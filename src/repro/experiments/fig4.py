"""Fig. 4: NSIGHT-style timeline of viscosity-solver iterations.

Profiles Code 1 (A) on 8 GPUs twice: with manual memory management and
with unified memory (the paper ran exactly this control: Code 1 with UM
enabled). The paper's findings, asserted by the regenerating bench:

* manual: halo exchanges ride GPU peer-to-peer (NVLink) transfers;
* UM: every exchange performs multiple CPU-GPU transfers with larger
  gaps between kernel launches;
* a viscosity-solver iteration is ~3x slower under UM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import CodeVersion, runtime_config_for
from repro.mas.model import MasModel, ModelConfig
from repro.perf.calibration import Calibration, MEASURE_SHAPE, PAPER_CALIBRATION
from repro.perf.profiler import Profiler
from repro.runtime.clock import TimeCategory

NUM_GPUS = 8


@dataclass(frozen=True)
class Fig4Result:
    """Viscosity-iteration timing and event composition, manual vs UM."""

    iteration_manual: float      # seconds per PCG iteration, manual data
    iteration_um: float          # seconds per PCG iteration, unified memory
    manual_p2p_events: int       # NVLink messages during the solve window
    manual_staged_events: int    # host-staged transfers (should be 0)
    um_staged_events: int        # CPU<->GPU migrations during the solve
    timeline_manual: str
    timeline_um: str

    @property
    def um_slowdown(self) -> float:
        """Per-iteration UM/manual ratio (paper: ~3x)."""
        return self.iteration_um / self.iteration_manual


def _profiled_model(unified: bool, calibration: Calibration) -> tuple[MasModel, Profiler]:
    rt_cfg = runtime_config_for(CodeVersion.A)
    if unified:
        rt_cfg = rt_cfg.with_unified_memory()
    model = MasModel(
        ModelConfig(
            shape=MEASURE_SHAPE,
            num_ranks=NUM_GPUS,
            pcg_iters=calibration.pcg_iters,
            sts_stages=calibration.sts_stages,
            extra_model_arrays=67,
        ),
        rt_cfg,
        cost=calibration.cost_model(),
        queue=calibration.queue(),
        um_host_mpi_overhead=calibration.um_host_mpi_overhead,
        um_page_amplification=calibration.um_page_amplification,
        halo_pack_inefficiency=calibration.halo_pack_inefficiency,
        halo_buffer_init_fraction=calibration.halo_buffer_init_fraction,
        rank_jitter=calibration.rank_jitter,
    )
    profiler = Profiler()
    for r, rt in enumerate(model.ranks):
        profiler.attach(rt.clock, f"gpu{r}")
    return model, profiler


def _solver_window(profiler: Profiler) -> tuple[float, float]:
    visc = profiler.by_label("visc_")
    if not visc:
        raise RuntimeError("no viscosity-solver events recorded")
    return min(e.start for e in visc), max(e.end for e in visc)


def run_fig4(calibration: Calibration = PAPER_CALIBRATION) -> Fig4Result:
    """Profile the viscosity solve under both memory managements."""
    iters_per_step = 3 * calibration.pcg_iters  # three velocity components
    results = {}
    for unified in (False, True):
        model, profiler = _profiled_model(unified, calibration)
        model.run(1)  # warmup: UM first-touch, device fills
        start_events = len(profiler.events)
        model.run(1)
        step_events = profiler.events[start_events:]
        window_profiler = Profiler(events=step_events)
        t0, t1 = _solver_window(window_profiler)
        in_window = [e for e in step_events if e.start >= t0 and e.end <= t1]
        p2p = sum(
            1
            for e in in_window
            if e.category is TimeCategory.MPI_TRANSFER and "msg" in e.label
        )
        staged = sum(
            1
            for e in in_window
            if (e.category is TimeCategory.UM_FAULT)
            or (
                e.category is TimeCategory.MPI_TRANSFER
                and ("fault" in e.label or "um_mpi" in e.label)
            )
        )
        timeline = window_profiler.render_timeline(
            title=(
                "Fig. 4 -- viscosity solver, "
                + ("unified managed memory" if unified else "manual memory management")
            ),
            t0=t0,
            t1=min(t1, t0 + (t1 - t0) / 4),  # zoom on the first iterations
        )
        results[unified] = ((t1 - t0) / iters_per_step, p2p, staged, timeline)

    (it_m, p2p_m, staged_m, tl_m) = results[False]
    (it_u, _p2p_u, staged_u, tl_u) = results[True]
    return Fig4Result(
        iteration_manual=it_m,
        iteration_um=it_u,
        manual_p2p_events=p2p_m,
        manual_staged_events=staged_m,
        um_staged_events=staged_u,
        timeline_manual=tl_m,
        timeline_um=tl_u,
    )


def render_fig4(result: Fig4Result) -> str:
    """Both timelines plus the per-iteration comparison."""
    summary = (
        f"viscosity-solver iteration: manual {result.iteration_manual * 1e3:.3f} ms, "
        f"unified {result.iteration_um * 1e3:.3f} ms "
        f"-> UM is {result.um_slowdown:.2f}x slower per iteration (paper: ~3x)\n"
        f"manual window: {result.manual_p2p_events} P2P messages, "
        f"{result.manual_staged_events} host-staged transfers; "
        f"UM window: {result.um_staged_events} CPU<->GPU migrations"
    )
    return "\n\n".join([result.timeline_manual, result.timeline_um, summary])
