"""Table III: CPU wall-clock baseline on Expanse EPYC nodes.

Runs Codes 1 (A) and 2 (AD) with the CPU-target runtime on 1 and 8
dual-socket EPYC 7742 nodes. The paper's point: the DC version performs
identically to the original on CPUs (725.54 vs 725.53 min; 79.58 vs 79.64
-- differences are run-to-run noise). Our simulator is deterministic, so
the two versions produce *exactly* equal times; EXPERIMENTS.md records
this deviation-by-determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.codes import CodeVersion, runtime_config_for
from repro.mas.model import MasModel, ModelConfig
from repro.perf.calibration import Calibration, MEASURE_SHAPE, PAPER_CALIBRATION, project_run_minutes
from repro.util.tables import Table

#: The paper's Table III (minutes).
PAPER_TABLE3 = {
    (1, CodeVersion.A): 725.54,
    (1, CodeVersion.AD): 725.53,
    (8, CodeVersion.A): 79.58,
    (8, CodeVersion.AD): 79.64,
}

NODE_COUNTS = (1, 8)
CPU_VERSIONS = (CodeVersion.A, CodeVersion.AD)


@dataclass(frozen=True, slots=True)
class Table3Result:
    """Measured CPU wall-clock minutes per (nodes, version)."""

    minutes: dict[tuple[int, CodeVersion], float]

    def value(self, nodes: int, version: CodeVersion) -> float:
        """Wall minutes for one cell of the table."""
        return self.minutes[(nodes, version)]

    @property
    def dc_matches_openacc(self) -> bool:
        """The paper's claim: DC == OpenACC on CPU (within noise)."""
        return all(
            abs(self.value(n, CodeVersion.A) - self.value(n, CodeVersion.AD))
            / self.value(n, CodeVersion.A)
            < 0.005
            for n in NODE_COUNTS
        )


def _cpu_model_for(version: CodeVersion, nodes: int, calibration: Calibration) -> MasModel:
    # Both versions compile to the same machine code on CPU (directives are
    # comments; DC loops run as ordinary loops) -- the CPU-target runtime
    # captures that by ignoring the loop-backend table.
    rt_cfg = replace(runtime_config_for(CodeVersion.CPU), name=f"cpu_{version.name}")
    model_cfg = ModelConfig(
        shape=MEASURE_SHAPE,
        num_ranks=nodes,
        pcg_iters=calibration.pcg_iters,
        sts_stages=calibration.sts_stages,
        extra_model_arrays=67,
    )
    return MasModel(
        model_cfg,
        rt_cfg,
        cost=calibration.cost_model(),
        queue=calibration.queue(),
        halo_pack_inefficiency=calibration.halo_pack_inefficiency,
        halo_buffer_init_fraction=calibration.halo_buffer_init_fraction,
        rank_jitter=calibration.rank_jitter,
    )


def run_table3(calibration: Calibration = PAPER_CALIBRATION) -> Table3Result:
    """Measure the four cells of Table III."""
    minutes = {}
    for nodes in NODE_COUNTS:
        for version in CPU_VERSIONS:
            m = _cpu_model_for(version, nodes, calibration)
            timings = m.run(calibration.warmup_steps + calibration.bench_steps)
            wall, _ = project_run_minutes(timings, calibration=calibration)
            minutes[(nodes, version)] = wall
    return Table3Result(minutes)


def render_table3(result: Table3Result) -> str:
    """Paper-style rendering with paper-vs-measured columns."""
    t = Table(
        ["# Nodes", "Code 1 (A)", "(paper)", "Code 2 (AD)", "(paper)"],
        title="Table III -- CPU wall clock (minutes), dual-socket EPYC 7742 nodes",
    )
    for nodes in NODE_COUNTS:
        t.add_row(
            [
                nodes,
                result.value(nodes, CodeVersion.A),
                PAPER_TABLE3[(nodes, CodeVersion.A)],
                result.value(nodes, CodeVersion.AD),
                PAPER_TABLE3[(nodes, CodeVersion.AD)],
            ]
        )
    return t.render()
