"""Beyond-paper study: where does the critical path live, per optimization?

Fig. 3 answers "how much MPI time does each code version pay"; this
ablation answers the sharper question the critical-path observatory
makes answerable: *which resource actually gates the wall clock*. The
same Code 1 model runs under four communication schedules and each run's
merged per-rank event graph is walked by
:func:`repro.obs.critpath.extract_critical_path`:

* ``sync`` -- blocking halo exchanges, classic PCG (the paper's regime);
* ``overlap`` -- halo exchanges post on detached communication clocks and
  ride under the split interior stencils;
* ``overlap+fusion`` -- plus cross-region launch fusion;
* ``pipelined`` -- plus pipelined PCG (the fused allreduce overlaps the
  matvec).

The expected migration -- halo/collective blame shrinking and compute
blame absorbing the path -- is asserted (loosely) by
``benchmarks/bench_critpath.py`` and rendered into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.codes import CodeVersion, runtime_config_for
from repro.obs.critpath import BLAME_GROUPS, CritPathResult, analyze_session
from repro.obs.telemetry import Telemetry, activate, deactivate
from repro.util.tables import Table

#: Mode name -> (halo_overlap, cross_region_fusion, pcg_variant).
MODES: dict[str, tuple[bool, bool, str]] = {
    "sync": (False, False, "classic"),
    "overlap": (True, False, "classic"),
    "overlap+fusion": (True, True, "classic"),
    "pipelined": (True, True, "pipelined"),
}


@dataclass(frozen=True)
class AblationResult:
    """Critical-path analysis of every mode (one model each)."""

    num_ranks: int
    steps: int
    results: dict[str, CritPathResult]

    def blame_share(self, mode: str, group: str) -> float:
        """Share of the critical path one blame group holds in ``mode``."""
        return self.results[mode].blame_share(group)


def _run_mode(
    mode: str,
    *,
    num_ranks: int,
    steps: int,
    shape: tuple[int, int, int],
    pcg_iters: int,
    sts_stages: int,
) -> CritPathResult:
    from repro.mas.model import MasModel, ModelConfig

    halo_overlap, fuse, pcg_variant = MODES[mode]
    rt_cfg = runtime_config_for(CodeVersion.A)
    if fuse:
        rt_cfg = replace(rt_cfg, cross_region_fusion=True)
    tel = Telemetry(None)  # in-memory session: profiler + spans, no files
    activate(tel)
    try:
        model = MasModel(
            ModelConfig(
                shape=shape,
                num_ranks=num_ranks,
                pcg_iters=pcg_iters,
                pcg_variant=pcg_variant,
                sts_stages=sts_stages,
                halo_overlap=halo_overlap,
            ),
            rt_cfg,
        )
        for _ in model.run(steps):
            pass
    finally:
        deactivate(tel)
    results = analyze_session(tel)
    (result,) = results.values()
    return result


def run_critpath_ablation(
    num_ranks: int = 4,
    *,
    steps: int = 2,
    shape: tuple[int, int, int] = (10, 8, 16),
    pcg_iters: int = 4,
    sts_stages: int = 2,
) -> AblationResult:
    """Run every mode and critical-path-analyze each one."""
    results = {
        mode: _run_mode(
            mode,
            num_ranks=num_ranks,
            steps=steps,
            shape=shape,
            pcg_iters=pcg_iters,
            sts_stages=sts_stages,
        )
        for mode in MODES
    }
    return AblationResult(num_ranks=num_ranks, steps=steps, results=results)


def render_critpath_ablation(result: AblationResult) -> str:
    """One row per mode: wall plus blame-group shares of the path."""
    groups = [g for g in BLAME_GROUPS if g not in ("host",)]
    t = Table(
        ["mode", "wall (ms)", *[f"{g} %" for g in groups]],
        title=(
            f"Critical-path blame migration, Code 1 @ {result.num_ranks}"
            f" rank(s), {result.steps} step(s)"
        ),
    )
    for mode, r in result.results.items():
        t.add_row(
            [
                mode,
                r.wall * 1e3,
                *[f"{r.blame_share(g) * 100:.1f}" for g in groups],
            ]
        )
    return t.render()
