"""Calibration sensitivity: which fitted constants carry the conclusions.

A reproduction built on a calibrated model owes the reader a robustness
check: if a headline (say, the Code 5 vs Code 1 slowdown at 8 GPUs) only
holds for a knife-edge setting of some constant, it is calibration, not
mechanism. This experiment perturbs each fitted constant by a factor in
both directions and re-measures the headline metrics; the bench asserts
the paper's qualitative conclusions survive every perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.codes import CodeVersion
from repro.perf.breakdown import measure_breakdown
from repro.perf.calibration import Calibration
from repro.util.tables import Table

#: Constants perturbed, with a short note on what each models.
PERTURBED_CONSTANTS = (
    ("um_body_efficiency", "UM kernel-body slowdown"),
    ("um_launch_extra", "UM per-launch overhead"),
    ("um_page_amplification", "UM page-migration traffic"),
    ("um_host_mpi_overhead", "UM per-message host sync"),
    ("halo_pack_inefficiency", "strided pack traffic"),
    ("halo_buffer_init_fraction", "buffer maintenance traffic"),
    ("mpi_buffer_pressure", "memory-pressure slowdown"),
    ("rank_jitter", "load imbalance"),
)


@dataclass(frozen=True, slots=True)
class SensitivityPoint:
    """Headline metrics under one perturbed calibration."""

    constant: str
    factor: float
    dc_slowdown_8: float       # Code 5 / Code 1 wall at 8 GPUs
    um_mpi_blowup_8: float     # Code 3 MPI / Code 1 MPI at 8 GPUs

    @property
    def conclusions_hold(self) -> bool:
        """The paper's two qualitative claims, directionally: DC+UM is
        meaningfully slower than OpenACC but the same order of magnitude,
        and UM blows MPI time up by several times."""
        return 1.2 < self.dc_slowdown_8 < 5.0 and self.um_mpi_blowup_8 > 3.0


def _perturb(cal: Calibration, name: str, factor: float) -> Calibration:
    value = getattr(cal, name)
    new = value * factor
    if name == "um_body_efficiency":
        new = min(new, 1.0)  # efficiency is capped at 1
    if name in ("halo_pack_inefficiency", "um_page_amplification"):
        new = max(new, 1.0)  # traffic multipliers are >= 1 by contract
    return replace(cal, **{name: new})


def _headlines(cal: Calibration) -> tuple[float, float]:
    a = measure_breakdown(CodeVersion.A, 8, calibration=cal)
    d2xu = measure_breakdown(CodeVersion.D2XU, 8, calibration=cal)
    adu = measure_breakdown(CodeVersion.ADU, 8, calibration=cal)
    return (
        d2xu.wall_minutes / a.wall_minutes,
        adu.mpi_minutes / max(a.mpi_minutes, 1e-12),
    )


def run_sensitivity(
    *,
    base: Calibration | None = None,
    factors: tuple[float, ...] = (0.5, 2.0),
) -> list[SensitivityPoint]:
    """Sweep each constant by each factor; returns all points.

    The first returned point is the unperturbed baseline (factor 1.0).
    """
    cal = base or Calibration(pcg_iters=3, sts_stages=3, bench_steps=1)
    points = []
    s0, b0 = _headlines(cal)
    points.append(SensitivityPoint("baseline", 1.0, s0, b0))
    for name, _note in PERTURBED_CONSTANTS:
        for factor in factors:
            s, b = _headlines(_perturb(cal, name, factor))
            points.append(SensitivityPoint(name, factor, s, b))
    return points


def render_sensitivity(points: list[SensitivityPoint]) -> str:
    """Tornado-style table of the sweep."""
    notes = dict(PERTURBED_CONSTANTS)
    t = Table(
        ["constant", "x", "Code5/Code1 @8", "UM MPI blowup @8", "conclusions hold"],
        title="Calibration sensitivity (headline metrics under perturbation)",
    )
    for p in points:
        t.add_row(
            [
                f"{p.constant}" + (f" ({notes[p.constant]})" if p.constant in notes else ""),
                f"{p.factor:g}",
                p.dc_slowdown_8,
                p.um_mpi_blowup_8,
                p.conclusions_hold,
            ]
        )
    return t.render()
