"""Synthesis: the directive-count vs performance trade-off.

The paper's implicit bottom line in one picture: every code version
plotted by how many OpenACC directives its source still carries (Table I,
x-axis) against its wall-clock time (Fig. 2, y-axis). Codes 2 and 6 are
the paper's recommendation because they sit in the corner -- few
directives, near-original performance -- while the zero-directive UM
codes pay the 1.25x-3x toll.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import CodeVersion, GPU_VERSIONS, version_info
from repro.fortran.codebase import generate_mas_codebase
from repro.fortran.metrics import measure
from repro.fortran.pipeline import build_version
from repro.perf.breakdown import measure_breakdown
from repro.perf.calibration import Calibration, PAPER_CALIBRATION
from repro.util.tables import Table


@dataclass(frozen=True, slots=True)
class TradeoffPoint:
    """One code version's position in the trade-off plane."""

    version: CodeVersion
    acc_lines: int
    wall_minutes: float

    @property
    def slowdown_per_directive_removed(self) -> float | None:
        """Not defined standalone; see :func:`pareto_front`."""
        return None


@dataclass(frozen=True)
class TradeoffResult:
    """All versions' points at one GPU count."""

    num_gpus: int
    points: dict[CodeVersion, TradeoffPoint]

    def pareto_front(self) -> list[CodeVersion]:
        """Versions not dominated in (fewer directives, less time)."""
        front = []
        for v, p in self.points.items():
            dominated = any(
                q.acc_lines <= p.acc_lines
                and q.wall_minutes <= p.wall_minutes
                and (q.acc_lines < p.acc_lines or q.wall_minutes < p.wall_minutes)
                for w, q in self.points.items()
                if w is not v
            )
            if not dominated:
                front.append(v)
        return sorted(front, key=lambda v: self.points[v].acc_lines)


def run_tradeoff(
    num_gpus: int = 8, *, calibration: Calibration = PAPER_CALIBRATION
) -> TradeoffResult:
    """Measure directive counts (source pipeline) and wall times (model)."""
    code1 = generate_mas_codebase()
    points = {}
    for v in GPU_VERSIONS:
        acc = measure(build_version(v, code1=code1)).acc_lines
        wall = measure_breakdown(v, num_gpus, calibration=calibration).wall_minutes
        points[v] = TradeoffPoint(version=v, acc_lines=acc, wall_minutes=wall)
    return TradeoffResult(num_gpus=num_gpus, points=points)


def render_tradeoff(result: TradeoffResult) -> str:
    """Table ordered by directive count, Pareto front marked."""
    front = set(result.pareto_front())
    t = Table(
        ["code", "!$acc lines", f"wall @ {result.num_gpus} GPUs (min)", "Pareto"],
        title="Directive count vs performance (the paper's trade-off)",
    )
    for v in sorted(result.points, key=lambda v: result.points[v].acc_lines):
        p = result.points[v]
        t.add_row([version_info(v).tag, p.acc_lines, p.wall_minutes, v in front])
    return t.render()
