"""Fig. 2: wall-clock vs GPU count for all six code versions.

The paper's observations, all of which must hold here:

* Codes 1 (A), 2 (AD), 6 (D2XAd) show 'super' scaling at first, dipping
  below ideal later, but land at better-than-or-close-to-ideal at 8 GPUs;
* Codes 2 and 6 (DC + manual data) trail Code 1 slightly;
* Codes 3/4/5 (unified memory) are much slower with much worse scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import CodeVersion, GPU_VERSIONS, version_info
from repro.perf.calibration import Calibration, PAPER_CALIBRATION
from repro.perf.scaling import GPU_COUNTS, ScalingSeries, measure_scaling
from repro.util.ascii_plot import AsciiLinePlot
from repro.util.tables import Table

#: Paper anchor points readable off Fig. 2/3 (1- and 8-GPU wall minutes).
PAPER_WALL = {
    CodeVersion.A: {1: 200.9, 8: 23.0},
    CodeVersion.AD: {1: 206.9, 8: 25.3},
    CodeVersion.ADU: {1: 268.9, 8: 69.6},
    CodeVersion.AD2XU: {1: 270.7, 8: 74.1},
    CodeVersion.D2XU: {1: 273.0, 8: 67.6},
    CodeVersion.D2XAD: {1: 213.0, 8: 27.4},
}


@dataclass(frozen=True)
class Fig2Result:
    """All six scaling curves."""

    series: dict[CodeVersion, ScalingSeries]

    def wall(self, version: CodeVersion, num_gpus: int) -> float:
        """Wall minutes for one curve point."""
        return self.series[version].wall(num_gpus)

    def slowdown_vs_code1(self, version: CodeVersion, num_gpus: int) -> float:
        """Headline metric: how much slower than the OpenACC original."""
        return self.wall(version, num_gpus) / self.wall(CodeVersion.A, num_gpus)


def run_fig2(calibration: Calibration = PAPER_CALIBRATION) -> Fig2Result:
    """Measure every version at 1/2/4/8 GPUs."""
    return Fig2Result(
        series={
            v: measure_scaling(v, calibration=calibration) for v in GPU_VERSIONS
        }
    )


def render_fig2(result: Fig2Result) -> str:
    """Log-log ASCII plot plus the underlying numbers."""
    plot = AsciiLinePlot(
        title="Fig. 2 -- wall clock vs # A100 GPUs (log-log)",
        xlabel="# A100 (40GB) GPUs",
        ylabel="wall clock (minutes)",
    )
    for v in GPU_VERSIONS:
        s = result.series[v]
        plot.add_series(
            f"CODE {version_info(v).tag.replace(': ', ' (')})",
            [p.num_gpus for p in s.points],
            [p.wall_minutes for p in s.points],
        )
    ideal = result.series[CodeVersion.A].ideal()
    plot.add_series(
        "Ideal Scaling",
        [p.num_gpus for p in ideal.points],
        [p.wall_minutes for p in ideal.points],
        marker=".",
    )

    t = Table(
        ["Code", *[f"{n} GPU" for n in GPU_COUNTS], "paper@1", "paper@8"],
        title="Wall clock minutes per GPU count (paper anchors at 1 and 8)",
    )
    for v in GPU_VERSIONS:
        s = result.series[v]
        t.add_row(
            [
                version_info(v).tag,
                *[s.wall(n) for n in GPU_COUNTS],
                PAPER_WALL[v][1],
                PAPER_WALL[v][8],
            ]
        )
    return plot.render() + "\n\n" + t.render()
