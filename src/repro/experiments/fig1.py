"""Fig. 1: visualization of the MAS solution for the test case.

The paper's Fig. 1 shows temperature cuts of the last time step of the
coronal background run. This experiment runs the relaxation at laptop
scale and renders the same kind of cuts as ASCII heatmaps: a meridional
(r-theta) slice and a spherical-surface (theta-phi) shell, plus physics
diagnostics asserting the solution is a sane corona (hot above the
surface, stratified density, machine-zero div B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codes import CodeVersion, runtime_config_for
from repro.mas.constants import PhysicsParams
from repro.mas.model import MasModel, ModelConfig
from repro.util.ascii_plot import AsciiHeatmap


@dataclass(frozen=True)
class Fig1Result:
    """Final-state cuts and diagnostics."""

    meridional_temp: np.ndarray   # (nr, nt) slice at fixed phi
    shell_temp: np.ndarray        # (nt, np) slice at fixed r
    r_centers: np.ndarray
    diagnostics: dict[str, float]
    steps: int
    time: float

    @property
    def corona_heated(self) -> bool:
        """Coronal heating raised temperatures above the initial
        isothermal T0 = 1 somewhere in the cut."""
        return float(self.meridional_temp.max()) > 1.0

    @property
    def stratified(self) -> bool:
        """Outward temperature structure exists (not isothermal noise)."""
        return float(self.meridional_temp.std()) > 1e-4


def run_fig1(
    *,
    shape: tuple[int, int, int] = (18, 14, 24),
    steps: int = 25,
    params: PhysicsParams | None = None,
) -> Fig1Result:
    """Run the coronal relaxation and cut the final state."""
    model = MasModel(
        ModelConfig(
            shape=shape,
            num_ranks=1,
            params=params or PhysicsParams(),
            pcg_iters=6,
            sts_stages=5,
        ),
        runtime_config_for(CodeVersion.A),
    )
    model.run(steps)
    grid = model.local_grids[0]
    state = model.states[0]
    i = grid.interior()
    temp = state.temp[i]
    k_cut = temp.shape[2] // 2
    r_cut = min(4, temp.shape[0] - 1)  # low corona shell
    return Fig1Result(
        meridional_temp=temp[:, :, k_cut].copy(),
        shell_temp=temp[r_cut].copy(),
        r_centers=grid.rc[i[-3]].copy(),
        diagnostics=model.diagnostics(),
        steps=steps,
        time=model.time,
    )


def render_fig1(result: Fig1Result) -> str:
    """ASCII heatmaps of both cuts plus the diagnostics line."""
    mer = AsciiHeatmap(
        width=56,
        title="Fig. 1 -- temperature, meridional cut (rows: r outward; cols: theta)",
    )
    mer_txt = mer.render(
        result.meridional_temp,
        row_labels=[f"r={r:.2f}" for r in result.r_centers],
        col_axis="theta: pole .. equator .. pole",
    )
    shell = AsciiHeatmap(
        width=56,
        title="Fig. 1 -- temperature, low-corona shell (rows: theta; cols: phi)",
    )
    shell_txt = shell.render(result.shell_temp, col_axis="phi: 0 .. 2*pi")
    d = result.diagnostics
    footer = (
        f"after {result.steps} steps (t={result.time:.3f}): "
        f"mass={d['mass']:.3f}, max vr={d['max_vr']:.4f}, "
        f"max|divB|={d['max_divb']:.2e}"
    )
    return "\n\n".join([mer_txt, shell_txt, footer])
