"""Table II: OpenACC directive census of the original GPU branch (Code 1)."""

from __future__ import annotations

from repro.fortran.codebase import GeneratorBudget, MAS_BUDGET, generate_mas_codebase
from repro.fortran.directives import DirectiveKind
from repro.fortran.metrics import directive_census
from repro.util.tables import Table

#: The paper's census (Table II).
PAPER_CENSUS: dict[DirectiveKind, int] = {
    DirectiveKind.PARALLEL_LOOP: 997,
    DirectiveKind.DATA: 320,
    DirectiveKind.ATOMIC: 34,
    DirectiveKind.ROUTINE: 12,
    DirectiveKind.KERNELS: 6,
    DirectiveKind.WAIT: 6,
    DirectiveKind.SET_DEVICE: 1,
    DirectiveKind.CONTINUATION: 82,
}

PAPER_TOTAL = 1458


def run_table2(budget: GeneratorBudget = MAS_BUDGET) -> dict[DirectiveKind, int]:
    """Census of the generated Code 1 codebase."""
    return directive_census(generate_mas_codebase(budget))


def render_table2(census: dict[DirectiveKind, int]) -> str:
    """Paper-style rendering with paper-vs-measured columns."""
    t = Table(
        ["OpenACC directive type", "# of lines", "(paper)"],
        title="Table II -- OpenACC directives in the original GPU branch (Code 1)",
    )
    for kind in DirectiveKind:
        t.add_row([kind.value, census.get(kind, 0), PAPER_CENSUS[kind]])
    t.add_row(["Total", sum(census.values()), PAPER_TOTAL])
    return t.render()
