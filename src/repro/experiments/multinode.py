"""Extension experiment: scaling beyond one node (8 -> 64 GPUs).

The paper measures up to one Delta node (8 A100s); MAS itself scales "to
thousands of CPU cores or dozens of GPUs" (SIII). This extension carries
the calibrated model across nodes: intra-node halo messages keep riding
NVLink while inter-node messages cross the Slingshot fabric, so strong
scaling bends where the surface-to-volume ratio meets the fabric's much
lower bandwidth -- and the UM codes, already page-migration-bound, barely
notice the fabric at all.

Not a paper artifact: no paper numbers exist to compare against. The
bench asserts mechanism properties only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import CodeVersion, runtime_config_for, version_info
from repro.machine.cluster import GpuCluster
from repro.mas.model import MasModel, ModelConfig
from repro.perf.calibration import Calibration, MEASURE_SHAPE, PAPER_CALIBRATION, project_run_minutes
from repro.util.ascii_plot import AsciiLinePlot
from repro.util.tables import Table

#: GPU counts of the extension sweep (8 = the paper's endpoint).
GPU_COUNTS = (8, 16, 32, 64)
GPUS_PER_NODE = 8


@dataclass(frozen=True)
class MultiNodeResult:
    """Wall/MPI minutes per (version, gpu count)."""

    minutes: dict[tuple[CodeVersion, int], tuple[float, float]]

    def wall(self, version: CodeVersion, num_gpus: int) -> float:
        """Projected wall minutes."""
        return self.minutes[(version, num_gpus)][0]

    def mpi(self, version: CodeVersion, num_gpus: int) -> float:
        """Projected MPI minutes."""
        return self.minutes[(version, num_gpus)][1]

    def speedup(self, version: CodeVersion, num_gpus: int) -> float:
        """Relative to the 8-GPU (single-node) point."""
        return self.wall(version, 8) / self.wall(version, num_gpus)


def run_multinode(
    versions: tuple[CodeVersion, ...] = (CodeVersion.A, CodeVersion.AD, CodeVersion.ADU),
    *,
    gpu_counts: tuple[int, ...] = GPU_COUNTS,
    calibration: Calibration = PAPER_CALIBRATION,
    shape: tuple[int, int, int] = (12, 8, 64),
) -> MultiNodeResult:
    """Measure the multi-node sweep."""
    minutes = {}
    for v in versions:
        for n in gpu_counts:
            cluster = GpuCluster.of_delta_nodes(max(1, n // GPUS_PER_NODE))
            m = MasModel(
                ModelConfig(
                    shape=shape,
                    num_ranks=n,
                    pcg_iters=calibration.pcg_iters,
                    sts_stages=calibration.sts_stages,
                    extra_model_arrays=67,
                ),
                runtime_config_for(v),
                cluster=cluster,
                cost=calibration.cost_model(),
                queue=calibration.queue(),
                um_host_mpi_overhead=calibration.um_host_mpi_overhead,
                um_page_amplification=calibration.um_page_amplification,
                halo_pack_inefficiency=calibration.halo_pack_inefficiency,
                halo_buffer_init_fraction=calibration.halo_buffer_init_fraction,
                rank_jitter=calibration.rank_jitter,
            )
            timings = m.run(calibration.warmup_steps + calibration.bench_steps)
            minutes[(v, n)] = project_run_minutes(timings, calibration=calibration)
    return MultiNodeResult(minutes)


def render_multinode(result: MultiNodeResult) -> str:
    """Scaling table + log-log plot of the extension sweep."""
    versions = sorted({v for v, _ in result.minutes}, key=lambda v: v.value)
    counts = sorted({n for _, n in result.minutes})
    t = Table(
        ["code", *[f"{n} GPUs" for n in counts], f"speedup@{counts[-1]}"],
        title="Extension: multi-node strong scaling (projected wall minutes)",
    )
    plot = AsciiLinePlot(
        title="multi-node scaling (log-log)", xlabel="# A100 GPUs (8/node)",
        ylabel="wall minutes",
    )
    for v in versions:
        t.add_row(
            [
                version_info(v).tag,
                *[result.wall(v, n) for n in counts],
                f"{result.speedup(v, counts[-1]):.2f}x",
            ]
        )
        plot.add_series(
            version_info(v).tag, list(counts), [result.wall(v, n) for n in counts]
        )
    return t.render() + "\n\n" + plot.render()
