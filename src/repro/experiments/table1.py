"""Table I: summary of all MAS code versions developed and tested.

Runs the full porting pipeline (generate Code 1, transform to Codes 0 and
2-6) and reports each version's total and ``!$acc`` line counts next to
the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import CodeVersion, version_info
from repro.fortran.codebase import GeneratorBudget, MAS_BUDGET, generate_mas_codebase
from repro.fortran.metrics import measure
from repro.fortran.pipeline import build_version
from repro.util.tables import Table


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One measured row of Table I."""

    version: CodeVersion
    tag: str
    description: str
    compiler_flags: str
    total_lines: int
    acc_lines: int
    paper_total_lines: int
    paper_acc_lines: int | None

    @property
    def total_matches(self) -> bool:
        """Measured total equals the paper's."""
        return self.total_lines == self.paper_total_lines

    @property
    def acc_matches(self) -> bool:
        """Measured directive count equals the paper's."""
        return self.acc_lines == (self.paper_acc_lines or 0)


def run_table1(budget: GeneratorBudget = MAS_BUDGET) -> list[Table1Row]:
    """Build every version and measure it."""
    code1 = generate_mas_codebase(budget)
    rows = []
    for v in CodeVersion:
        info = version_info(v)
        met = measure(build_version(v, code1=code1, budget=budget))
        rows.append(
            Table1Row(
                version=v,
                tag=info.tag,
                description=info.description,
                compiler_flags=info.compiler_flags,
                total_lines=met.total_lines,
                acc_lines=met.acc_lines,
                paper_total_lines=info.paper_total_lines,
                paper_acc_lines=info.paper_acc_lines,
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Paper-style rendering with paper-vs-measured columns."""
    t = Table(
        ["Code Version", "Total Lines", "(paper)", "$acc Lines", "(paper)"],
        title="Table I -- summary of all MAS code versions (measured vs paper)",
    )
    for r in rows:
        t.add_row(
            [
                r.tag,
                r.total_lines,
                r.paper_total_lines,
                r.acc_lines if r.acc_lines else "0",
                r.paper_acc_lines if r.paper_acc_lines is not None else "0",
            ]
        )
    return t.render()
