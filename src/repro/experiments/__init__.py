"""Experiment drivers: one module per table/figure of the paper."""

from repro.experiments.fig1 import Fig1Result, run_fig1, render_fig1
from repro.experiments.table1 import Table1Row, run_table1, render_table1
from repro.experiments.table2 import run_table2, render_table2
from repro.experiments.table3 import Table3Result, run_table3, render_table3
from repro.experiments.fig2 import Fig2Result, run_fig2, render_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3, render_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4, render_fig4

__all__ = [
    "Fig1Result",
    "run_fig1",
    "render_fig1",
    "Table1Row",
    "run_table1",
    "render_table1",
    "run_table2",
    "render_table2",
    "Table3Result",
    "run_table3",
    "render_table3",
    "Fig2Result",
    "run_fig2",
    "render_fig2",
    "Fig3Result",
    "run_fig3",
    "render_fig3",
    "Fig4Result",
    "run_fig4",
    "render_fig4",
]
