"""Multi-node GPU clusters.

The paper's runs stay inside one Delta node (1-8 A100s), but MAS itself
"exhibits performance scaling to ... dozens of GPUs" (SIII). This module
extends the machine model across nodes: intra-node messages keep riding
NVLink, inter-node messages cross the fabric (Slingshot on Delta), which
is both slower and latency-heavier -- the crossover every multi-node halo
exchange lives with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.gpu import GpuDevice
from repro.machine.node import GpuNode, make_delta_node


@dataclass
class GpuCluster:
    """Several identical GPU nodes plus a rank -> device placement.

    Ranks are placed node-major (ranks 0..g-1 on node 0, etc.), matching
    how MPI launchers fill nodes.
    """

    nodes: list[GpuNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        per = self.nodes[0].num_gpus
        if any(n.num_gpus != per for n in self.nodes):
            raise ValueError("heterogeneous clusters are not modelled")

    @classmethod
    def of_delta_nodes(cls, num_nodes: int) -> "GpuCluster":
        """A cluster of fresh Delta 8xA100 nodes."""
        if num_nodes < 1:
            raise ValueError("need at least one node")
        return cls(nodes=[make_delta_node() for _ in range(num_nodes)])

    @property
    def gpus_per_node(self) -> int:
        """GPUs on each node."""
        return self.nodes[0].num_gpus

    @property
    def total_gpus(self) -> int:
        """Cluster-wide GPU count."""
        return self.gpus_per_node * len(self.nodes)

    def node_of(self, rank: int) -> int:
        """Node index hosting a global rank."""
        if not 0 <= rank < self.total_gpus:
            raise IndexError(f"rank {rank} outside cluster of {self.total_gpus} GPUs")
        return rank // self.gpus_per_node

    def local_rank(self, rank: int) -> int:
        """Node-local rank (what launch.sh's env variable reports)."""
        return rank % self.gpus_per_node

    def device_of(self, rank: int) -> GpuDevice:
        """The GPU a global rank is bound to (1 GPU per local rank)."""
        return self.nodes[self.node_of(rank)].device(self.local_rank(rank))

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True when two ranks share NVLink (same node)."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def rank_node_map(self, num_ranks: int) -> list[int]:
        """Node index per rank, for the halo engine's transport choice."""
        if num_ranks > self.total_gpus:
            raise ValueError(
                f"{num_ranks} ranks exceed the cluster's {self.total_gpus} GPUs"
            )
        return [self.node_of(r) for r in range(num_ranks)]

    @property
    def interconnect(self):
        """Intra-node interconnect (homogeneous across nodes)."""
        return self.nodes[0].interconnect
