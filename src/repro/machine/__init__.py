"""Simulated hardware: GPUs, CPUs, nodes, interconnects, unified memory.

The paper's testbeds are modelled as calibrated reduced-order machines:

* NCSA Delta 8x NVIDIA A100-40GB node (GPU runs, Fig. 2/3/4),
* SDSC Expanse dual-socket AMD EPYC 7742 nodes (CPU baseline, Table III).

MAS is memory-bound ("performance typically proportional to the hardware's
memory bandwidth", paper SIII), so the first-order machine model is a
bandwidth/latency model; the unified-memory paging engine adds the
page-migration behaviour that drives the paper's headline slowdown.
"""

from repro.machine.spec import CpuSpec, GpuSpec, LinkSpec
from repro.machine.gpu import A100_40GB, GpuDevice, effective_bandwidth
from repro.machine.cpu import EPYC_7742_NODE, EPYC_7763_NODE, CpuNodeModel
from repro.machine.interconnect import NVLINK3, PCIE4_X16, SLINGSHOT, Interconnect
from repro.machine.memory import AllocationError, DeviceMemory, Residency
from repro.machine.unified_memory import UnifiedMemoryManager, PageMigrationStats
from repro.machine.node import DELTA_A100_NODE, EXPANSE_NODE, GpuNode, CpuCluster
from repro.machine.cluster import GpuCluster

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "LinkSpec",
    "A100_40GB",
    "GpuDevice",
    "effective_bandwidth",
    "EPYC_7742_NODE",
    "EPYC_7763_NODE",
    "CpuNodeModel",
    "NVLINK3",
    "PCIE4_X16",
    "SLINGSHOT",
    "Interconnect",
    "AllocationError",
    "DeviceMemory",
    "Residency",
    "UnifiedMemoryManager",
    "PageMigrationStats",
    "DELTA_A100_NODE",
    "EXPANSE_NODE",
    "GpuNode",
    "CpuCluster",
    "GpuCluster",
]
