"""Interconnect models: NVLink, PCIe, and the inter-node fabric.

Fig. 4's mechanism lives here: with manual (CUDA-aware) data management the
halo exchange rides NVLink peer-to-peer; with unified managed memory every
MPI buffer touch on the host faults pages back and forth over PCIe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import LinkSpec
from repro.util.units import GB

#: NVLink 3.0 between A100s on a Delta node (per-direction, per-pair
#: effective; the node is NVSwitch-connected so any pair sustains this).
NVLINK3 = LinkSpec(name="NVLink3", latency=2.5e-6, bandwidth=250 * GB)

#: PCIe 4.0 x16 host link, the path unified-memory page migration takes.
PCIE4_X16 = LinkSpec(name="PCIe4 x16", latency=4.0e-6, bandwidth=24 * GB)

#: Inter-node fabric (Slingshot on Delta, HDR IB on Expanse); only used by
#: the CPU-cluster model since all GPU runs in the paper are single-node.
SLINGSHOT = LinkSpec(name="Slingshot-10", latency=2.0e-6, bandwidth=12.5 * GB)


@dataclass(frozen=True, slots=True)
class Interconnect:
    """Named bundle of the links reachable from one device."""

    peer: LinkSpec
    host: LinkSpec
    fabric: LinkSpec

    def p2p_time(self, nbytes: float) -> float:
        """Device-to-device transfer time over the peer link."""
        return self.peer.transfer_time(nbytes)

    def h2d_time(self, nbytes: float) -> float:
        """Host-to-device transfer time."""
        return self.host.transfer_time(nbytes)

    def d2h_time(self, nbytes: float) -> float:
        """Device-to-host transfer time."""
        return self.host.transfer_time(nbytes)

    def staged_time(self, nbytes: float) -> float:
        """D2H then H2D through host memory (non-CUDA-aware / UM path)."""
        return self.d2h_time(nbytes) + self.h2d_time(nbytes)


#: Default intra-node interconnect for a Delta A100 node.
DELTA_INTERCONNECT = Interconnect(peer=NVLINK3, host=PCIE4_X16, fabric=SLINGSHOT)
