"""Unified managed memory (UM) paging engine.

NVIDIA's managed memory automatically pages data between host and device on
demand. The paper (SIV-B, Fig. 4) attributes the UM slowdown to two effects,
both modelled here:

1. MPI buffers living in managed memory are touched by the host-side MPI
   library, so every halo exchange drags pages device->host->device over
   PCIe instead of riding NVLink peer-to-peer.
2. Page-fault servicing adds per-page latency and enlarges the gaps between
   kernel launches.

The manager tracks residency per named allocation at page granularity and
returns the *time cost* of each touch; the caller (runtime / MPI transport)
advances its simulated clock by that amount and logs profiler events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.machine.memory import Residency
from repro.machine.spec import LinkSpec
from repro.util.units import KiB, MiB


@dataclass(slots=True)
class PageMigrationStats:
    """Counters accumulated by one :class:`UnifiedMemoryManager`."""

    faults_h2d: int = 0
    faults_d2h: int = 0
    bytes_h2d: int = 0
    bytes_d2h: int = 0

    @property
    def total_faults(self) -> int:
        """Total page-fault groups serviced in either direction."""
        return self.faults_h2d + self.faults_d2h

    @property
    def total_bytes(self) -> int:
        """Total bytes migrated in either direction."""
        return self.bytes_h2d + self.bytes_d2h

    def merge(self, other: "PageMigrationStats") -> None:
        """Accumulate another rank's counters into this one."""
        self.faults_h2d += other.faults_h2d
        self.faults_d2h += other.faults_d2h
        self.bytes_h2d += other.bytes_h2d
        self.bytes_d2h += other.bytes_d2h


@dataclass(slots=True)
class UnifiedMemoryManager:
    """Per-device residency tracker with migration cost accounting.

    ``fault_latency`` is the service time of one page-fault *group* (the
    driver batches replayable faults and migrates whole 2 MiB pages, so it
    is charged per migrated page, not per 4KiB OS page).
    """

    host_link: LinkSpec
    page_size: int = 2 * MiB
    fault_group: int = 2 * MiB
    fault_latency: float = 10e-6
    #: Residency per allocation name.
    _residency: dict[str, Residency] = field(default_factory=dict)
    stats: PageMigrationStats = field(default_factory=PageMigrationStats)

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.fault_group <= 0:
            raise ValueError("page sizes must be positive")
        if self.fault_latency < 0:
            raise ValueError("fault latency cannot be negative")

    def register(self, name: str, *, residency: Residency = Residency.HOST) -> None:
        """Declare a managed allocation; UM allocations start host-resident."""
        if name in self._residency:
            raise ValueError(f"managed allocation {name!r} already registered")
        self._residency[name] = residency

    def unregister(self, name: str) -> None:
        """Forget an allocation (e.g. deallocated array)."""
        del self._residency[name]

    def residency(self, name: str) -> Residency:
        """Current residency of a managed allocation."""
        return self._residency[name]

    def __contains__(self, name: str) -> bool:
        return name in self._residency

    def _migration_cost(self, nbytes: int) -> float:
        groups = max(1, math.ceil(nbytes / self.fault_group))
        # Fault servicing is partially pipelined with the copy; charge the
        # copy at link bandwidth plus a per-group latency term.
        return groups * self.fault_latency + self.host_link.transfer_time(nbytes)

    def touch_device(self, name: str, nbytes: int) -> float:
        """GPU access to ``nbytes`` of ``name``; returns migration time.

        Host-resident (or split) data migrates to the device; already
        device-resident data is free.
        """
        if nbytes < 0:
            raise ValueError("touch size cannot be negative")
        res = self._residency[name]
        if res is Residency.DEVICE or nbytes == 0:
            return 0.0
        self._residency[name] = Residency.DEVICE
        self.stats.faults_h2d += max(1, math.ceil(nbytes / self.fault_group))
        self.stats.bytes_h2d += nbytes
        return self._migration_cost(nbytes)

    def touch_host(self, name: str, nbytes: int) -> float:
        """CPU access to ``nbytes`` of ``name``; returns migration time."""
        if nbytes < 0:
            raise ValueError("touch size cannot be negative")
        res = self._residency[name]
        if res is Residency.HOST or nbytes == 0:
            return 0.0
        self._residency[name] = Residency.HOST
        self.stats.faults_d2h += max(1, math.ceil(nbytes / self.fault_group))
        self.stats.bytes_d2h += nbytes
        return self._migration_cost(nbytes)

    def evict_all(self) -> None:
        """Force everything host-resident (e.g. device reset)."""
        for name in self._residency:
            self._residency[name] = Residency.HOST
