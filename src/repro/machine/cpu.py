"""CPU node model for the Table III baseline.

The paper's CPU baseline runs on SDSC Expanse dual-socket AMD EPYC 7742
nodes, each with a maximum theoretical memory bandwidth of 381.4 GiB/s
(409.5 GB/s). The Delta GPU node hosts dual EPYC 7763 CPUs, which matter only
for host-side overheads in the GPU runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import CpuSpec
from repro.util.units import GB

#: SDSC Expanse compute node (paper SV-B).
EPYC_7742_NODE = CpuSpec(
    name="2x AMD EPYC 7742 (Expanse)",
    sockets=2,
    cores_per_socket=64,
    mem_bandwidth=409.5 * GB,
    stream_efficiency=0.79,
)

#: NCSA Delta GPU-node host CPUs.
EPYC_7763_NODE = CpuSpec(
    name="2x AMD EPYC 7763 (Delta)",
    sockets=2,
    cores_per_socket=64,
    mem_bandwidth=409.5 * GB,
    stream_efficiency=0.70,
)


@dataclass(frozen=True, slots=True)
class CpuNodeModel:
    """Cost model for running the (memory-bound) MHD step on CPU nodes.

    A CPU "kernel" has no launch overhead to speak of; the dominant
    cost is memory traffic at the node's sustained bandwidth, plus a
    per-node-count parallel efficiency for multi-node MPI runs.
    """

    spec: CpuSpec
    #: Fraction of ideal speedup retained per doubling of node count;
    #: calibrated against Table III (1 node 725.5 min -> 8 nodes 79.6 min,
    #: i.e. 9.12x on 8 nodes net of MPI overheads: slightly super-linear, same locality effect
    #: as on GPUs).
    scaling_boost_per_doubling: float = 1.075

    def kernel_time(self, bytes_moved: float, num_nodes: int = 1) -> float:
        """Time for one memory-bound kernel spread over ``num_nodes``."""
        if bytes_moved < 0:
            raise ValueError("bytes_moved must be non-negative")
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        bw = self.spec.mem_bandwidth * self.spec.stream_efficiency
        boost = self.scaling_boost_per_doubling ** _log2i(num_nodes)
        return bytes_moved / (bw * num_nodes * boost)

    def speedup(self, num_nodes: int) -> float:
        """Observed speedup of ``num_nodes`` relative to one node."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        return num_nodes * self.scaling_boost_per_doubling ** _log2i(num_nodes)


def _log2i(n: int) -> float:
    """log2 for possibly-non-power-of-two node counts."""
    import math

    return math.log2(n)
