"""GPU device model.

The A100 numbers follow the paper's SV-B: each A100 (40GB) has a peak
theoretical memory bandwidth of 1555 GB/s. MAS is memory-bound, so a kernel's
device time is bytes_moved / effective_bandwidth plus launch overhead (the
launch overhead itself is charged by the runtime, which knows whether the
kernel was fused or launched asynchronously).

``effective_bandwidth`` includes a *locality boost*: when the per-GPU working
set shrinks (strong scaling across more GPUs), cache/TLB behaviour improves
and sustained bandwidth rises. This is the mechanism behind the "super
scaling" the paper observes for Codes 1/2/6 in Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.memory import DeviceMemory
from repro.machine.spec import GpuSpec
from repro.util.units import GB

#: NVIDIA A100 (40GB) as used on NCSA Delta (paper SV-B).
A100_40GB = GpuSpec(
    name="NVIDIA A100-SXM4-40GB",
    mem_bytes=40 * GB,
    mem_bandwidth=1555 * GB,
    stream_efficiency=0.82,
    kernel_launch_latency=6.0e-6,
    flops_fp64=9.7e12,
    num_sms=108,
)


@dataclass(frozen=True, slots=True)
class LocalityModel:
    """Working-set-dependent sustained-bandwidth curve.

    ``gain`` is the maximum fractional bandwidth boost as the working set
    shrinks toward zero; ``ref_fraction`` is the working-set/memory fraction
    at which the boost is zero (the single-GPU, memory-nearly-full case).
    """

    gain: float = 0.14
    ref_fraction: float = 0.75

    def boost(self, working_set_bytes: float, mem_bytes: float) -> float:
        """Multiplicative bandwidth factor, >= 1, <= 1 + gain."""
        if mem_bytes <= 0:
            raise ValueError("mem_bytes must be positive")
        if working_set_bytes < 0:
            raise ValueError("working set cannot be negative")
        frac = min(working_set_bytes / mem_bytes, 1.0)
        rel = max(0.0, (self.ref_fraction - frac) / self.ref_fraction)
        return 1.0 + self.gain * rel


def effective_bandwidth(
    spec: GpuSpec,
    *,
    working_set_bytes: float | None = None,
    locality: LocalityModel | None = None,
) -> float:
    """Sustained bytes/s for a memory-bound kernel on this GPU."""
    bw = spec.mem_bandwidth * spec.stream_efficiency
    if working_set_bytes is not None:
        locality = locality or LocalityModel()
        bw *= locality.boost(working_set_bytes, spec.mem_bytes)
    return bw


@dataclass(slots=True)
class GpuDevice:
    """One GPU instance: a spec plus mutable device-memory state.

    ``device_id`` is the CUDA-style ordinal within its node; the runtime's
    device-binding logic (``set device_num`` vs CUDA_VISIBLE_DEVICES) selects
    among these.
    """

    spec: GpuSpec
    device_id: int
    memory: DeviceMemory = field(init=False)
    locality: LocalityModel = field(default_factory=LocalityModel)

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ValueError("device_id must be non-negative")
        self.memory = DeviceMemory(self.spec.mem_bytes)

    def kernel_device_time(
        self, bytes_moved: float, flops: float = 0.0, *, working_set_bytes: float | None = None
    ) -> float:
        """Roofline time for one kernel body (excluding launch overhead)."""
        if bytes_moved < 0 or flops < 0:
            raise ValueError("bytes_moved and flops must be non-negative")
        bw = effective_bandwidth(
            self.spec, working_set_bytes=working_set_bytes, locality=self.locality
        )
        t_mem = bytes_moved / bw
        t_flop = flops / self.spec.flops_fp64
        return max(t_mem, t_flop)
