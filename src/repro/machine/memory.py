"""Device memory tracking.

A :class:`DeviceMemory` is a capacity-checked allocator ledger: it does not
store array payloads (those live in numpy on the host throughout the
simulation), it tracks *logical* allocations so that out-of-memory behaviour
and working-set sizes are faithful. The unified-memory manager layers page
residency on top of this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AllocationError(RuntimeError):
    """Raised when a device allocation exceeds remaining capacity."""


class Residency(enum.Enum):
    """Where the authoritative copy of a managed allocation currently lives."""

    HOST = "host"
    DEVICE = "device"
    #: Pages split between host and device (partially migrated).
    SPLIT = "split"


@dataclass(slots=True)
class Allocation:
    """One logical device allocation."""

    name: str
    nbytes: int
    residency: Residency = Residency.DEVICE

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("allocation size cannot be negative")


@dataclass(slots=True)
class DeviceMemory:
    """Capacity-checked ledger of live allocations on one device."""

    capacity: int
    _live: dict[str, Allocation] = field(default_factory=dict)
    _used: int = 0
    #: High-water mark, for reporting peak memory (the paper sized the test
    #: problem to fit a single A100-40GB).
    peak: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("device capacity must be positive")

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free(self) -> int:
        """Bytes remaining."""
        return self.capacity - self._used

    def allocate(self, name: str, nbytes: int, *, residency: Residency = Residency.DEVICE) -> Allocation:
        """Reserve ``nbytes`` under ``name``; raises on OOM or duplicates."""
        if name in self._live:
            raise AllocationError(f"allocation {name!r} already live")
        alloc = Allocation(name, int(nbytes), residency)
        if self._used + alloc.nbytes > self.capacity:
            raise AllocationError(
                f"out of device memory allocating {name!r}: "
                f"need {alloc.nbytes}, free {self.free} of {self.capacity}"
            )
        self._live[name] = alloc
        self._used += alloc.nbytes
        self.peak = max(self.peak, self._used)
        return alloc

    def deallocate(self, name: str) -> None:
        """Release a live allocation; raises KeyError if unknown."""
        alloc = self._live.pop(name)
        self._used -= alloc.nbytes

    def get(self, name: str) -> Allocation:
        """Look up a live allocation by name."""
        return self._live[name]

    def __contains__(self, name: str) -> bool:
        return name in self._live

    def live_allocations(self) -> list[Allocation]:
        """Snapshot of live allocations (copy of the ledger values)."""
        return list(self._live.values())

    def reset(self) -> None:
        """Drop all allocations (e.g. between benchmark repetitions)."""
        self._live.clear()
        self._used = 0
