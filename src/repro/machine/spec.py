"""Hardware specification dataclasses.

Specs are immutable value objects; behaviour (allocation, paging, cost
evaluation) lives in the device/node model classes that consume them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class GpuSpec:
    """Static description of one GPU.

    ``mem_bandwidth`` is the peak theoretical HBM bandwidth in bytes/s;
    ``stream_efficiency`` is the fraction of peak a well-tuned memory-bound
    stencil kernel sustains (BabelStream-like, ~0.85 on A100).
    """

    name: str
    mem_bytes: int
    mem_bandwidth: float
    stream_efficiency: float
    kernel_launch_latency: float
    flops_fp64: float
    num_sms: int

    def __post_init__(self) -> None:
        if self.mem_bytes <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("GPU memory size and bandwidth must be positive")
        if not 0 < self.stream_efficiency <= 1:
            raise ValueError("stream_efficiency must be in (0, 1]")
        if self.kernel_launch_latency < 0:
            raise ValueError("kernel launch latency cannot be negative")


@dataclass(frozen=True, slots=True)
class CpuSpec:
    """Static description of one CPU *node* (all sockets combined)."""

    name: str
    sockets: int
    cores_per_socket: int
    mem_bandwidth: float
    stream_efficiency: float

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise ValueError("socket/core counts must be positive")
        if self.mem_bandwidth <= 0:
            raise ValueError("memory bandwidth must be positive")
        if not 0 < self.stream_efficiency <= 1:
            raise ValueError("stream_efficiency must be in (0, 1]")

    @property
    def total_cores(self) -> int:
        """Total hardware cores on the node."""
        return self.sockets * self.cores_per_socket


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """A point-to-point link: latency (s) plus bandwidth (bytes/s)."""

    name: str
    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")

    def transfer_time(self, nbytes: float) -> float:
        """Alpha-beta cost of moving ``nbytes`` over this link."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth
