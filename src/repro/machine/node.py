"""Node and cluster topologies used by the paper.

* :data:`DELTA_A100_NODE` -- one NCSA Delta GPU node: dual EPYC 7763 plus
  eight NVLink-connected A100-40GB GPUs (all Fig. 2/3/4 runs).
* :data:`EXPANSE_NODE` -- one SDSC Expanse CPU node (Table III runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.cpu import EPYC_7742_NODE, EPYC_7763_NODE, CpuNodeModel
from repro.machine.gpu import A100_40GB, GpuDevice
from repro.machine.interconnect import DELTA_INTERCONNECT, Interconnect
from repro.machine.spec import CpuSpec, GpuSpec


@dataclass(slots=True)
class GpuNode:
    """A single multi-GPU node (the paper never crosses node boundaries)."""

    name: str
    gpu_spec: GpuSpec
    num_gpus: int
    host_spec: CpuSpec
    interconnect: Interconnect
    gpus: list[GpuDevice] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("a GPU node needs at least one GPU")
        self.gpus = [GpuDevice(self.gpu_spec, i) for i in range(self.num_gpus)]

    def device(self, device_id: int) -> GpuDevice:
        """Fetch a GPU by CUDA ordinal."""
        if not 0 <= device_id < self.num_gpus:
            raise IndexError(
                f"device {device_id} out of range on {self.name} ({self.num_gpus} GPUs)"
            )
        return self.gpus[device_id]

    def visible_devices(self, mask: str | None) -> list[GpuDevice]:
        """Apply a CUDA_VISIBLE_DEVICES-style mask string.

        ``None`` or empty means all devices visible, matching CUDA semantics
        for an unset variable. Ordinals in the mask re-index the visible set.
        """
        if mask is None or mask == "":
            return list(self.gpus)
        ids = []
        for tok in mask.split(","):
            tok = tok.strip()
            if not tok:
                continue
            dev = int(tok)
            if not 0 <= dev < self.num_gpus:
                raise ValueError(f"CUDA_VISIBLE_DEVICES entry {dev} does not exist")
            ids.append(dev)
        return [self.gpus[i] for i in ids]

    def fresh(self) -> "GpuNode":
        """A new node with the same topology and pristine device state."""
        return GpuNode(
            name=self.name,
            gpu_spec=self.gpu_spec,
            num_gpus=self.num_gpus,
            host_spec=self.host_spec,
            interconnect=self.interconnect,
        )


@dataclass(frozen=True, slots=True)
class CpuCluster:
    """A homogeneous CPU cluster (Expanse) for the Table III baseline."""

    name: str
    node_model: CpuNodeModel
    max_nodes: int = 64

    def validate_nodes(self, num_nodes: int) -> int:
        """Check a requested node count against the allocation size."""
        if not 1 <= num_nodes <= self.max_nodes:
            raise ValueError(f"{num_nodes} nodes outside [1, {self.max_nodes}]")
        return num_nodes


def make_delta_node() -> GpuNode:
    """Construct a fresh Delta 8xA100 node."""
    return GpuNode(
        name="Delta 8xA100-40GB",
        gpu_spec=A100_40GB,
        num_gpus=8,
        host_spec=EPYC_7763_NODE,
        interconnect=DELTA_INTERCONNECT,
    )


#: Shared default instances. Experiments that mutate device state should call
#: ``DELTA_A100_NODE.fresh()`` (GpuNode) instead of mutating these.
DELTA_A100_NODE = make_delta_node()
EXPANSE_NODE = CpuCluster(name="Expanse 2xEPYC-7742", node_model=CpuNodeModel(EPYC_7742_NODE))
